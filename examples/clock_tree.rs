//! Buffering a clock-style H-tree.
//!
//! Clock distribution is the classic consumer of repeaters: a symmetric
//! H-tree must deliver the edge to every leaf within a tight required
//! arrival time. This example buffers a 256-sink H-tree, compares the
//! library sizes the paper studies (does a 64-type library beat an 8-type
//! one?), and shows the clustering trade-off the paper cites as the prior
//! remedy for big libraries.
//!
//! Run: `cargo run --release --example clock_tree`

use fastbuf::buflib::cluster::cluster_library;
use fastbuf::netgen::HTreeSpec;
use fastbuf::prelude::*;
use fastbuf::rctree::elmore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = HTreeSpec {
        levels: 4, // 256 leaf flops
        arm: Microns::new(5000.0),
        site_pitch: Some(Microns::new(200.0)),
        ..HTreeSpec::default()
    };
    let tree = spec.build();
    println!("H-tree: {}", tree.stats());

    let unbuffered = elmore::evaluate(&tree, &fastbuf::buflib::BufferLibrary::empty(), &[])?;
    println!("unbuffered slack: {}\n", unbuffered.slack);

    // Sweep the paper's library sizes: more choices -> better or equal slack.
    println!(
        "{:<14} {:>14} {:>9} {:>12}",
        "library", "slack", "buffers", "solve time"
    );
    let mut best_with_64 = None;
    for b in [8usize, 16, 32, 64] {
        // One session per library size; requests return typed Results.
        let session = Session::new(BufferLibrary::paper_synthetic_jittered(b, 7)?);
        let outcome = session.request(&tree).solve()?;
        outcome.verify(&tree, session.library())?;
        let sol = outcome.solution().unwrap().clone();
        println!(
            "{:<14} {:>14} {:>9} {:>12?}",
            format!("b = {b}"),
            sol.slack.to_string(),
            sol.placements.len(),
            sol.stats.elapsed
        );
        if b == 64 {
            best_with_64 = Some((session, sol));
        }
    }

    // The pre-2005 recipe: cluster the 64-type library down to 8 and solve
    // the smaller problem. Compare against using the full library directly.
    let (full_session, full_sol) = best_with_64.expect("loop ran");
    let full_lib = full_session.library();
    let reduced = cluster_library(full_lib, 8)?;
    let clustered = Session::new(reduced.library.clone());
    let clustered_sol = clustered.request(&tree).solve()?;
    let clustered_sol = clustered_sol.solution().unwrap().clone();
    println!(
        "\nclustered 64→8: slack {} vs full-library {} (loss {:.2} ps)",
        clustered_sol.slack,
        full_sol.slack,
        full_sol.slack.picos() - clustered_sol.slack.picos()
    );
    println!(
        "the O(bn²) algorithm makes the full library affordable: {:?} for b = 64",
        full_sol.stats.elapsed
    );

    // Clock trees care about skew too: report the slack spread across leaves.
    let report = elmore::evaluate(&tree, full_lib, &full_sol.placement_pairs())?;
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, s) in &report.sink_slacks {
        lo = lo.min(s.picos());
        hi = hi.max(s.picos());
    }
    println!(
        "\nleaf slack spread after buffering: {:.1} .. {:.1} ps",
        lo, hi
    );
    Ok(())
}
