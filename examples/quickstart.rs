//! Quickstart: buffer a long two-pin wire through the unified request API.
//!
//! Builds the textbook van Ginneken scenario — a source driving a single
//! sink over a 12 mm wire with equally spaced candidate buffer positions —
//! solves it through a `Session`/`SolveRequest`, cross-checks the DP's
//! predicted slack against an independent forward Elmore evaluation, and
//! finishes with a three-corner multi-scenario request.
//!
//! Run: `cargo run --release --example quickstart`

use fastbuf::prelude::*;
use fastbuf::rctree::elmore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A technology and a buffer library spanning the paper's parameter
    //    ranges (180–7000 Ω drive resistance, 0.7–23 fF input capacitance).
    let tech = Technology::tsmc180_like();
    let lib = BufferLibrary::paper_synthetic(16)?;
    println!("{lib}");

    // 2. A 12 mm line with 23 buffer sites every 500 µm.
    let mut b = TreeBuilder::new();
    let src = b.source(Driver::new(Ohms::new(180.0)));
    let mut prev = src;
    for _ in 0..23 {
        let site = b.buffer_site();
        b.connect(prev, site, Wire::from_length(&tech, Microns::new(500.0)))?;
        prev = site;
    }
    let sink = b.sink(Farads::from_femto(25.0), Seconds::from_pico(2000.0));
    b.connect(prev, sink, Wire::from_length(&tech, Microns::new(500.0)))?;
    let tree = b.build()?;
    println!("net: {}", tree.stats());

    // 3. Slack without any buffers (forward Elmore analysis).
    let unbuffered = elmore::evaluate(&tree, &lib, &[])?;
    println!("\nunbuffered slack: {}", unbuffered.slack);

    // 4. Optimal buffering through the front door: a Session holds the
    //    shared context, a request returns a typed Result.
    let session = Session::new(lib);
    let outcome = session.request(&tree).solve()?;
    let solution = outcome.solution().expect("single-scenario max slack");
    println!(
        "buffered slack:   {}   ({} buffers)",
        solution.slack,
        solution.placements.len()
    );
    for p in &solution.placements {
        println!(
            "  insert {:>6} at {}",
            session.library().get(p.buffer).name(),
            p.node
        );
    }

    // 5. Verify: re-evaluating the placements with the independent Elmore
    //    engine must reproduce the DP's prediction exactly. The outcome
    //    remembers which delay model each scenario solved with.
    outcome.verify(&tree, session.library())?;
    println!("\nverified: forward evaluation matches the prediction");

    // 6. The O(b²n²) baseline agrees on the optimum.
    let baseline = session
        .request(&tree)
        .scenario(Scenario::named("baseline").algorithm(Algorithm::Lillis))
        .solve()?;
    let baseline = baseline.scenarios[0]
        .solution()
        .expect("max-slack scenario")
        .clone();
    println!(
        "baseline (Lillis) slack: {} — {}",
        baseline.slack,
        if (baseline.slack - solution.slack).abs() < Seconds::from_pico(1e-3) {
            "identical, as Theorem 1 promises"
        } else {
            "MISMATCH (bug!)"
        }
    );

    // 7. The production question — three timing corners in one request
    //    (solved concurrently over the session's workspace pool).
    let corners = session
        .request(&tree)
        .scenario(Scenario::named("typical"))
        .scenario(Scenario::named("slow").rat_derate(0.9))
        .scenario(Scenario::named("signoff").slew_limit(Seconds::from_pico(300.0)))
        .solve()?;
    println!("\nmulti-corner:");
    for corner in &corners.scenarios {
        let s = corner.solution().expect("max-slack scenario");
        println!(
            "  {:<8} slack {}   {} buffers{}",
            corner.scenario.name,
            s.slack,
            s.placements.len(),
            if s.slew_ok { "" } else { "  [slew infeasible]" }
        );
    }
    corners.verify(&tree, session.library())?;
    println!(
        "worst corner slack: {}",
        corners.worst_slack().expect("three corners")
    );
    Ok(())
}
