//! Batch solving: a fleet of nets through the worker pool.
//!
//! Builds a reproducible heavy-tailed suite of nets, solves them all with
//! `BatchSolver` (largest-first scheduling, per-worker reusable
//! workspaces), and cross-checks a few results against sequential solves.
//!
//! Run: `cargo run --release --example batch_suite`

use fastbuf::netgen::SuiteSpec;
use fastbuf::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = SuiteSpec {
        nets: 40,
        max_sinks: 96,
        seed: 2026,
        ..SuiteSpec::default()
    };
    let nets = suite.build();
    let lib = BufferLibrary::paper_synthetic(16)?;

    let report = BatchSolver::new(&nets, &lib).workers(4).solve();
    println!("{report}");

    // The three largest nets, by solve time.
    let mut by_time: Vec<_> = report.outcomes.iter().collect();
    by_time.sort_by_key(|o| std::cmp::Reverse(o.elapsed));
    println!("\nslowest nets:");
    for o in by_time.iter().take(3) {
        println!(
            "  net{:05}: {} sinks, {} sites, {} buffers, {:?}",
            o.index,
            o.sinks,
            o.sites,
            o.placements.len(),
            o.elapsed
        );
    }

    // Batch results are identical to per-net requests through the same
    // api layer the batch itself uses — spot-check a few.
    let session = Session::new(lib);
    for i in [0usize, 7, 23] {
        let solo = session.request(&nets[i]).solve()?;
        let solo = solo.solution().unwrap();
        assert_eq!(report.outcomes[i].slack, solo.slack);
        assert_eq!(report.outcomes[i].placements, solo.placements);
    }
    println!("\nspot-checked 3 nets against per-net requests: identical");
    Ok(())
}
