//! Repeater insertion with inverters and polarity constraints.
//!
//! Inverters are smaller and faster than buffers, but flip polarity; legal
//! solutions must deliver the right parity of inversions to every sink.
//! This example compares three flows on the same net:
//!
//! 1. buffers only (the plain solver);
//! 2. buffers + inverters with all sinks positive (inverters must pair up);
//! 3. one sink negated (an odd inverter chain towards it becomes *free*).
//!
//! Run: `cargo run --release --example inverter_polarity`

use fastbuf::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::tsmc180_like();

    // A net with two branches; k2 will later be negated (e.g. it feeds a
    // falling-edge-triggered latch).
    let mut b = TreeBuilder::new();
    let src = b.source(Driver::new(Ohms::new(200.0)));
    let mut prev = src;
    for _ in 0..4 {
        let s = b.buffer_site();
        b.connect(prev, s, Wire::from_length(&tech, Microns::new(1500.0)))?;
        prev = s;
    }
    let tee = b.internal();
    b.connect(prev, tee, Wire::zero())?;
    let mut arm1 = tee;
    for _ in 0..3 {
        let s = b.buffer_site();
        b.connect(arm1, s, Wire::from_length(&tech, Microns::new(1200.0)))?;
        arm1 = s;
    }
    let k1 = b.sink(Farads::from_femto(12.0), Seconds::from_pico(2000.0));
    b.connect(arm1, k1, Wire::from_length(&tech, Microns::new(300.0)))?;
    let mut arm2 = tee;
    for _ in 0..3 {
        let s = b.buffer_site();
        b.connect(arm2, s, Wire::from_length(&tech, Microns::new(1400.0)))?;
        arm2 = s;
    }
    let k2 = b.sink(Farads::from_femto(18.0), Seconds::from_pico(2200.0));
    b.connect(arm2, k2, Wire::from_length(&tech, Microns::new(300.0)))?;
    let tree = b.build()?;

    // A mixed library: odd entries are inverters (cheaper, faster).
    let mixed = BufferLibrary::paper_synthetic_mixed(16)?;
    let buffers_only = BufferLibrary::new(
        mixed
            .iter()
            .filter(|(_, t)| !t.is_inverting())
            .map(|(_, t)| t.clone())
            .collect(),
    )?;

    // One session per library; the polarity flows are one objective away.
    let plain_session = Session::new(buffers_only);
    let mixed_session = Session::new(mixed);

    // 1. Buffers only.
    let plain = plain_session.request(&tree).solve()?;
    let plain = plain.solution().unwrap().clone();
    println!(
        "buffers only:            slack {}  ({} repeaters)",
        plain.slack,
        plain.placements.len()
    );

    // 2. Mixed library, all sinks positive: inverter parity must be even
    //    on every source->sink path.
    let pos_outcome = mixed_session
        .request(&tree)
        .objective(Objective::PolarityAware {
            negated_sinks: Vec::new(),
        })
        .solve()?;
    pos_outcome.verify(&tree, mixed_session.library())?;
    let pos = pos_outcome.scenarios[0].polarity().unwrap();
    println!(
        "with inverters (even):   slack {}  ({} repeaters, {} inverters)",
        pos.slack,
        pos.placements.len(),
        pos.inverter_count
    );
    assert!(
        pos.slack.picos() >= plain.slack.picos() - 1e-9,
        "a richer library can only help"
    );

    // 3. Negate k2: the branch to it now *wants* an odd inverter count.
    let neg_outcome = mixed_session
        .request(&tree)
        .objective(Objective::PolarityAware {
            negated_sinks: vec![k2],
        })
        .solve()?;
    neg_outcome.verify(&tree, mixed_session.library())?;
    let neg = neg_outcome.scenarios[0].polarity().unwrap();
    println!(
        "with k2 negated:         slack {}  ({} repeaters, {} inverters)",
        neg.slack,
        neg.placements.len(),
        neg.inverter_count
    );

    // Without any inverter in the library, negating k2 is infeasible —
    // reported as a typed SolveError, never a panic.
    match plain_session
        .request(&tree)
        .objective(Objective::PolarityAware {
            negated_sinks: vec![k2],
        })
        .solve()
    {
        Err(e) => println!("negated sink without inverters: {e}"),
        Ok(_) => unreachable!("buffers cannot invert"),
    }
    Ok(())
}
