//! Repeater insertion on a bus-style caterpillar net with load limits.
//!
//! A long bus tapping many receivers is the workload the paper's
//! introduction motivates with the Saxena et al. projection that 35% of all
//! cells will be repeaters. This example adds a twist production flows
//! care about: *maximum load* (slew) constraints — weak buffers may not
//! legally drive large downstream capacitance. The solvers handle
//! per-type `max_load` limits exactly.
//!
//! Run: `cargo run --release --example bus_repeater`

use fastbuf::netgen::caterpillar_net;
use fastbuf::prelude::*;
use fastbuf::rctree::elmore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64-receiver bus: taps every 400 µm, 40 µm stubs.
    let tree = caterpillar_net(64, Microns::new(400.0), Microns::new(40.0));
    println!("bus: {}", tree.stats());

    // Library with realistic drive-strength limits: each buffer may drive
    // at most ~12x its own input capacitance.
    let unconstrained = BufferLibrary::paper_synthetic(8)?;
    let constrained = BufferLibrary::new(
        unconstrained
            .iter()
            .map(|(_, b)| {
                b.clone()
                    .with_max_load(Farads::new(b.input_capacitance().value() * 12.0))
            })
            .collect(),
    )?;

    let unbuffered = elmore::evaluate(&tree, &unconstrained, &[])?;
    println!("unbuffered slack: {}\n", unbuffered.slack);

    // One session per library: the session is the shared context, and a
    // request per question.
    let free_session = Session::new(unconstrained);
    let free_outcome = free_session.request(&tree).solve()?;
    free_outcome.verify(&tree, free_session.library())?;
    let free = free_outcome.solution().unwrap();
    println!(
        "no load limits:   slack {}, {} buffers",
        free.slack,
        free.placements.len()
    );

    let limited_session = Session::new(constrained);
    let limited_outcome = limited_session.request(&tree).solve()?;
    limited_outcome.verify(&tree, limited_session.library())?;
    let limited = limited_outcome.solution().unwrap();
    let constrained = limited_session.library();
    println!(
        "with load limits: slack {}, {} buffers",
        limited.slack,
        limited.placements.len()
    );
    assert!(
        limited.slack.picos() <= free.slack.picos() + 1e-6,
        "constraints can only reduce the achievable slack"
    );

    // Which buffer types did the constrained solve use, and how often?
    let mut histogram = vec![0usize; constrained.len()];
    for p in &limited.placements {
        histogram[p.buffer.index()] += 1;
    }
    println!("\nbuffer usage under load limits:");
    for (id, buf) in constrained.iter() {
        let n = histogram[id.index()];
        if n > 0 {
            println!(
                "  {:>6}  R={:>12}  max_load={:>12}  used {n} times",
                buf.name(),
                buf.driving_resistance().to_string(),
                buf.max_load().unwrap().to_string()
            );
        }
    }

    // Every receiver must still meet timing.
    let report = elmore::evaluate(&tree, constrained, &limited.placement_pairs())?;
    let failing = report
        .sink_slacks
        .iter()
        .filter(|(_, s)| s.value() < 0.0)
        .count();
    println!(
        "\nreceivers missing timing after buffering: {failing}/{}",
        report.sink_slacks.len()
    );
    Ok(())
}
