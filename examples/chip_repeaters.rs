//! Design-level repeater insertion: buffer an entire synthetic netlist.
//!
//! The paper's motivation (via Saxena et al.) is that repeaters become a
//! third of all cells, which means the buffer-insertion algorithm runs once
//! per net across a whole design — exactly where an O(bn²) vs O(b²n²)
//! difference compounds. This example builds a 400-net design with a
//! realistic size mix, buffers it in parallel with both algorithms, and
//! prints the timing report.
//!
//! Run: `cargo run --release --example chip_repeaters`

use std::num::NonZeroUsize;

use fastbuf::design::{solve_design, DesignSolveOptions, DesignSpec};
use fastbuf::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = DesignSpec {
        nets: 400,
        max_sinks: 300,
        seed: 2005,
        ..DesignSpec::default()
    }
    .build();
    let lib = BufferLibrary::paper_synthetic(32)?;
    println!(
        "design: {} nets, {} sinks, {} candidate buffer positions",
        design.nets.len(),
        design.total_sinks(),
        design.total_sites()
    );

    for algorithm in [Algorithm::Lillis, Algorithm::LiShi] {
        let report = solve_design(
            &design,
            &lib,
            &DesignSolveOptions {
                algorithm,
                ..DesignSolveOptions::default()
            },
        );
        println!(
            "\n[{algorithm}] {} threads, wall time {:?}",
            report.threads, report.elapsed
        );
        println!(
            "  WNS {} -> {}   TNS {} -> {}",
            report.wns_before, report.wns_after, report.tns_before, report.tns_after
        );
        println!(
            "  {} repeaters inserted ({:.1}% of a {}-cell design if sinks were cells), total cost {:.0}",
            report.total_buffers,
            100.0 * report.total_buffers as f64
                / (design.total_sinks() + report.total_buffers) as f64,
            design.total_sinks() + report.total_buffers,
            report.total_cost
        );
        // The five slowest nets dominate the runtime — the heavy tail.
        let mut by_time: Vec<_> = report.nets.iter().collect();
        by_time.sort_by_key(|n| std::cmp::Reverse(n.elapsed));
        println!("  slowest nets:");
        for n in by_time.iter().take(5) {
            println!(
                "    {}  {:>9?}  slack {} -> {}  ({} buffers)",
                n.name, n.elapsed, n.slack_before, n.slack_after, n.buffers
            );
        }
    }

    // Single-thread vs parallel: identical results, different wall time.
    let serial = solve_design(
        &design,
        &lib,
        &DesignSolveOptions {
            algorithm: Algorithm::LiShi,
            threads: NonZeroUsize::new(1),
            ..DesignSolveOptions::default()
        },
    );
    let parallel = solve_design(&design, &lib, &DesignSolveOptions::default());
    assert_eq!(serial.wns_after, parallel.wns_after);
    assert_eq!(serial.total_buffers, parallel.total_buffers);
    println!(
        "\nserial {:?} vs parallel {:?} ({} threads) — identical results",
        serial.elapsed, parallel.elapsed, parallel.threads
    );
    Ok(())
}
