//! Working with net files: generate → save → load → solve → report.
//!
//! `fastbuf` ships a plain-text net format (see `fastbuf::rctree::io`) so
//! nets can be exchanged with scripts and other tools. This example
//! generates a random net, round-trips it through the format, solves both
//! copies, and prints a small timing report — the same flow the `fastbuf`
//! CLI wraps.
//!
//! Run: `cargo run --release --example net_files`

use fastbuf::netgen::RandomNetSpec;
use fastbuf::prelude::*;
use fastbuf::rctree::io;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = RandomNetSpec {
        sinks: 24,
        seed: 7,
        site_pitch: Some(Microns::new(150.0)),
        ..RandomNetSpec::default()
    }
    .build();

    // Serialize and show a excerpt of the format.
    let text = io::write(&original);
    println!(
        "--- net file ({} lines), first 10: ---",
        text.lines().count()
    );
    for line in text.lines().take(10) {
        println!("{line}");
    }
    println!("...\n");

    // Parse it back: the parser re-validates the whole structure.
    let parsed = io::parse(&text)?;
    assert_eq!(parsed.node_count(), original.node_count());
    assert_eq!(parsed.sink_count(), original.sink_count());

    // Both copies solve to the identical optimum (one session, two
    // requests; the second reuses the first's warm workspace).
    let session = Session::new(BufferLibrary::paper_synthetic(16)?);
    let a = session.request(&original).solve()?;
    let b = session.request(&parsed).solve()?;
    let (a, b) = (a.solution().unwrap().clone(), b.solution().unwrap().clone());
    assert_eq!(a.slack, b.slack);
    println!("slack from original net: {}", a.slack);
    println!("slack from parsed net:   {}", b.slack);

    // A report a timing engineer would want: worst sinks after buffering.
    let lib = session.library();
    let report = fastbuf::rctree::elmore::evaluate(&parsed, lib, &b.placement_pairs())?;
    let mut slacks = report.sink_slacks.clone();
    slacks.sort_by(|x, y| x.1.partial_cmp(&y.1).unwrap());
    println!(
        "\nworst 5 sinks after buffering ({} buffers):",
        b.placements.len()
    );
    for (node, slack) in slacks.iter().take(5) {
        println!("  {node}: {slack}");
    }

    // Malformed input is rejected with a line number.
    let bad = text.replace("sink", "sunk");
    match io::parse(&bad) {
        Err(e) => println!("\nmalformed file rejected as expected: {e}"),
        Ok(_) => unreachable!("parser must reject unknown node kinds"),
    }
    Ok(())
}
