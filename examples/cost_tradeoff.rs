//! Slack versus buffer cost: how much timing does each area unit buy?
//!
//! The unconstrained solver maximizes slack no matter how many buffers it
//! burns. The cost-bounded solver ([`CostSolver`]) instead computes the
//! whole Pareto frontier, realizing the "reduce buffer cost" application
//! the paper's conclusion sketches. This example prints the frontier for a
//! random 24-sink net and locates the knee: the cheapest budget achieving
//! 95% of the maximum improvement.
//!
//! Run: `cargo run --release --example cost_tradeoff`

use fastbuf::netgen::RandomNetSpec;
use fastbuf::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = RandomNetSpec {
        sinks: 24,
        seed: 2005,
        ..RandomNetSpec::paper(24)
    }
    .build();
    let lib = BufferLibrary::paper_synthetic(8)?;
    println!("net: {}", tree.stats());

    // A 200-unit budget is just above this net's unconstrained optimum
    // (cost 191), so the frontier's top point must match the free solver.
    // The frontier is one `Objective::SlackCost` request away.
    let session = Session::new(lib);
    let outcome = session
        .request(&tree)
        .objective(Objective::SlackCost { max_cost: 200 })
        .solve()?;
    let frontier = outcome.scenarios[0]
        .frontier()
        .expect("slack-cost objective");
    let base = frontier.points.first().expect("frontier never empty");
    let best = frontier.points.last().expect("frontier never empty");
    let span = (best.slack - base.slack).picos().max(1e-9);

    println!(
        "\n{:>6} {:>9} {:>14} {:>12}",
        "cost", "buffers", "slack", "% of gain"
    );
    let mut knee: Option<&fastbuf::cost::FrontierPoint> = None;
    for p in &frontier.points {
        let pct = 100.0 * (p.slack - base.slack).picos() / span;
        println!(
            "{:>6} {:>9} {:>14} {:>11.1}%",
            p.cost,
            p.placements.len(),
            p.slack.to_string(),
            pct
        );
        if pct >= 95.0 && knee.is_none() {
            knee = Some(p);
        }
    }

    let knee = knee.expect("the last point reaches 100%");
    println!(
        "\nknee: 95% of the achievable improvement costs {} units ({} buffers) — the last {} units buy only {:.1} ps more",
        knee.cost,
        knee.placements.len(),
        best.cost - knee.cost,
        (best.slack - knee.slack).picos()
    );

    // Sanity: the frontier's maximum equals the unconstrained optimum.
    let unconstrained = session.request(&tree).solve()?;
    let unconstrained = unconstrained.solution().unwrap().clone();
    assert!(
        (unconstrained.slack - best.slack).abs() < Seconds::from_pico(1e-3),
        "frontier must reach the unconstrained optimum"
    );
    println!(
        "unconstrained solver agrees: slack {} at cost {:.0}",
        unconstrained.slack,
        unconstrained.total_cost(session.library())
    );
    Ok(())
}
