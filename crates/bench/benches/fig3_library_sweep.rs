//! Criterion version of **Figure 3** (runtime vs library size `b`) at a
//! statistically samplable scale. The full-scale table is produced by the
//! `fig3` binary.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastbuf_bench::paper_net;
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::{Algorithm, Solver};

fn bench_library_sweep(c: &mut Criterion) {
    let tree = paper_net(150, Some(2000));
    let mut g = c.benchmark_group("fig3_library_size");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    for b in [8usize, 16, 32, 64] {
        let lib = BufferLibrary::paper_synthetic(b).unwrap();
        for algo in [Algorithm::Lillis, Algorithm::LiShi] {
            g.bench_with_input(BenchmarkId::new(algo.name(), b), &b, |bench, _| {
                bench.iter(|| {
                    black_box(
                        Solver::new(black_box(&tree), black_box(&lib))
                            .algorithm(algo)
                            .track_predecessors(false)
                            .solve()
                            .slack,
                    )
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_library_sweep);
criterion_main!(benches);
