//! Criterion comparison of the three full solvers on one medium net —
//! a statistically sampled companion to the `table1` harness.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastbuf_bench::paper_net;
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::{Algorithm, Solver};

fn bench_solvers(c: &mut Criterion) {
    let tree = paper_net(100, Some(1200));
    let mut g = c.benchmark_group("solve");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    for b in [8usize, 32] {
        let lib = BufferLibrary::paper_synthetic(b).unwrap();
        for algo in Algorithm::ALL {
            g.bench_with_input(
                BenchmarkId::new(algo.name(), format!("b{b}")),
                &algo,
                |bench, &algo| {
                    bench.iter(|| {
                        let sol = Solver::new(black_box(&tree), black_box(&lib))
                            .algorithm(algo)
                            .track_predecessors(false)
                            .solve();
                        black_box(sol.slack)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
