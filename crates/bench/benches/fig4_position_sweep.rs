//! Criterion version of **Figure 4** (runtime vs buffer positions `n` at
//! `b = 32`) at a statistically samplable scale. The full-scale table is
//! produced by the `fig4` binary.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastbuf_bench::paper_net;
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::{Algorithm, Solver};

fn bench_position_sweep(c: &mut Criterion) {
    let lib = BufferLibrary::paper_synthetic(32).unwrap();
    let mut g = c.benchmark_group("fig4_positions");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    for n in [500usize, 1000, 2000, 4000] {
        let tree = paper_net(150, Some(n));
        for algo in [Algorithm::Lillis, Algorithm::LiShi] {
            g.bench_with_input(BenchmarkId::new(algo.name(), n), &n, |bench, _| {
                bench.iter(|| {
                    black_box(
                        Solver::new(black_box(&tree), black_box(&lib))
                            .algorithm(algo)
                            .track_predecessors(false)
                            .solve()
                            .slack,
                    )
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_position_sweep);
criterion_main!(benches);
