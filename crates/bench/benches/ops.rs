//! Criterion micro-benchmarks of the three DP operations the paper
//! analyses: convex pruning / hull construction (Lemma 2), wire
//! propagation, and branch merging.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastbuf_core::{
    convex_prune_in_place, merge_branches, upper_hull_into, Candidate, CandidateList, PredArena,
    PredRef,
};

/// Deterministic pseudo-random nonredundant staircase of `k` candidates.
fn staircase(k: usize, seed: u64) -> CandidateList {
    let mut state = seed | 1;
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    };
    let mut q = 0.0;
    let mut c = 0.0;
    let mut v = Vec::with_capacity(k);
    for _ in 0..k {
        q += rnd() * 1e-12 + 1e-15;
        c += rnd() * 1e-15 + 1e-18;
        v.push(Candidate::new(q, c, PredRef::NONE));
    }
    CandidateList::from_sorted(v)
}

fn bench_hull(c: &mut Criterion) {
    let mut g = c.benchmark_group("hull");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(2));
    for k in [100usize, 1000, 10_000] {
        let list = staircase(k, 42);
        let mut hull = Vec::with_capacity(k);
        g.bench_with_input(BenchmarkId::new("upper_hull_into", k), &k, |b, _| {
            b.iter(|| {
                upper_hull_into(black_box(list.as_slice()), &mut hull);
                black_box(hull.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("convex_prune_in_place", k), &k, |b, _| {
            b.iter(|| {
                let mut l = list.clone();
                black_box(convex_prune_in_place(&mut l))
            })
        });
    }
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(2));
    for k in [100usize, 1000, 10_000] {
        let list = staircase(k, 7);
        g.bench_with_input(BenchmarkId::new("add_wire", k), &k, |b, _| {
            b.iter(|| {
                let mut l = list.clone();
                l.add_wire(black_box(3.8), black_box(5.9e-15));
                black_box(l.len())
            })
        });
    }
    g.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(2));
    for k in [100usize, 1000, 10_000] {
        let left = staircase(k, 1);
        let right = staircase(k, 2);
        g.bench_with_input(BenchmarkId::new("merge_branches", k), &k, |b, _| {
            b.iter(|| {
                let mut arena = PredArena::new();
                let out = merge_branches(
                    black_box(left.clone()),
                    black_box(right.clone()),
                    &mut arena,
                    false,
                );
                black_box(out.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hull, bench_wire, bench_merge);
criterion_main!(benches);
