//! Reproduces **Figure 4** of Li & Shi, DATE 2005: normalized running time
//! vs the number of buffer positions `n` on the 1944-sink net with a
//! 32-buffer library.
//!
//! Both algorithms are quadratic in `n`, but the new algorithm grows much
//! more slowly because adding a buffer (the dominant operation as `n`
//! rises) costs O(k + b) instead of O(k·b). The paper normalizes each curve
//! to its own time at n = 1943; at n ≈ 66k Lillis reaches ~160× while the
//! new algorithm stays far below.
//!
//! Run: `cargo run --release -p fastbuf-bench --bin fig4 [--full]`

use fastbuf_bench::{fmt_duration, paper_net, print_table, time_solve, HarnessOptions};
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::Algorithm;

fn main() {
    let opts = HarnessOptions::from_args();
    let m = opts.sinks(1944);
    let lib = BufferLibrary::paper_synthetic(32).expect("b > 0");
    println!(
        "# Figure 4 reproduction: m = {m}, b = 32 (scale {})\n",
        opts.scale
    );

    // The paper sweeps 1943 .. ~66k positions on the fixed net.
    let paper_sweep = [1943usize, 4000, 8000, 16_000, 33_133, 66_000];
    let mut base: Option<(f64, f64)> = None;
    let mut rows = Vec::new();
    for &paper_n in &paper_sweep {
        let n_target = opts.positions(paper_n);
        let tree = paper_net(m, Some(n_target));
        let n = tree.buffer_site_count();
        let (t_lillis, _) = time_solve(&tree, &lib, Algorithm::Lillis, opts.repeats);
        let (t_lishi, _) = time_solve(&tree, &lib, Algorithm::LiShi, opts.repeats);
        let (bl, bs) = *base.get_or_insert((t_lillis.as_secs_f64(), t_lishi.as_secs_f64()));
        rows.push(vec![
            n.to_string(),
            fmt_duration(t_lillis),
            format!("{:.2}", t_lillis.as_secs_f64() / bl),
            fmt_duration(t_lishi),
            format!("{:.2}", t_lishi.as_secs_f64() / bs),
        ]);
    }
    print_table(
        &["n", "Lillis", "Lillis (norm)", "Li-Shi", "Li-Shi (norm)"],
        &rows,
    );
    println!("\npaper: both curves superlinear in n; Li-Shi grows much more slowly than Lillis");
}
