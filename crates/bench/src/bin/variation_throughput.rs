//! Monte-Carlo yield-sweep throughput: family-cached sampling vs naive
//! per-sample scratch solves.
//!
//! The workload is a netgen suite (a fleet of ECO-sized nets); the bench
//! picks its **small / median / largest** nets by node count and sweeps
//! each under a gaussian [`VariationSpec`] at several localities (the
//! fraction of the tree a sample perturbs). Two ways to produce the
//! identical distribution:
//!
//! * **cached** — the API's yield path ([`Objective::YieldTarget`]): all
//!   samples stream through one warm [`IncrementalSolver`]; sample k + 1
//!   re-derives only the root paths of the perturbed pool, splicing every
//!   untouched cached subtree into its merges;
//! * **scratch** — what a caller without the variation subsystem would
//!   write: clone the pristine tree, apply the sample's script, build a
//!   solver, and run a full from-scratch solve, once per sample.
//!
//! Every per-sample slack is asserted **bit-identical** between the two
//! paths before any time is reported, so the benchmark doubles as a
//! release-mode differential check. Results (with the cache-reuse
//! counters that explain each speedup) go to `BENCH_variation.json`.
//!
//! Expected shape: fleet-typical nets at tight locality clear 10×+ (the
//! naive path pays per-sample setup plus a full solve; the cached path
//! pays a few shallow path recomputes), while the largest, deepest net
//! converges to the intrinsic path-vs-full ratio (~4–7×, cf.
//! BENCH_eco.json) because near-root merges recompute in both worlds.
//!
//! Run: `cargo run --release -p fastbuf-bench --bin variation_throughput --
//!       [--nets N] [--max-sinks M] [--samples K] [--sigma S] [--seed S]
//!       [--lib B] [--out FILE] [--quick]`

use std::time::Instant;

use fastbuf_api::{Objective, Session};
use fastbuf_bench::{fmt_duration, print_table};
use fastbuf_buflib::BufferLibrary;
use fastbuf_incremental::IncrementalSolver;
use fastbuf_netgen::{SuiteSpec, VariationSpec};
use fastbuf_rctree::RoutingTree;

struct Options {
    nets: usize,
    max_sinks: usize,
    samples: usize,
    sigma: f64,
    seed: u64,
    lib: usize,
    out: String,
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: variation_throughput [--nets N] [--max-sinks M] [--samples K] [--sigma S] \
         [--seed S] [--lib B] [--out FILE] [--quick]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

fn parse_args() -> Options {
    let mut opts = Options {
        nets: 60,
        max_sinks: 512,
        samples: 256,
        sigma: 0.05,
        seed: 1,
        lib: 16,
        out: "BENCH_variation.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |what: &str| args.next().unwrap_or_else(|| usage(what));
        match arg.as_str() {
            "--nets" => {
                opts.nets = next("--nets needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --nets"))
            }
            "--max-sinks" => {
                opts.max_sinks = next("--max-sinks needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --max-sinks"))
            }
            "--samples" => {
                opts.samples = next("--samples needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --samples"))
            }
            "--sigma" => {
                opts.sigma = next("--sigma needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --sigma"))
            }
            "--seed" => {
                opts.seed = next("--seed needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --seed"))
            }
            "--lib" => {
                opts.lib = next("--lib needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --lib"))
            }
            "--out" => opts.out = next("--out needs a value"),
            "--quick" => {
                // CI smoke size: the real pipeline in seconds.
                opts.nets = 12;
                opts.max_sinks = 96;
                opts.samples = 24;
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if opts.samples == 0 || opts.nets == 0 || opts.max_sinks < 8 || opts.lib == 0 {
        usage("--samples/--nets/--lib must be positive and --max-sinks at least 8");
    }
    if !(opts.sigma > 0.0 && opts.sigma.is_finite()) {
        usage("--sigma must be a positive number");
    }
    opts
}

struct Run {
    net: &'static str,
    nodes: usize,
    sinks: usize,
    sites: usize,
    locality: f64,
    samples: usize,
    cached_secs: f64,
    scratch_secs: f64,
    recomputed: u64,
    reused: u64,
}

fn main() {
    let opts = parse_args();
    let spec = SuiteSpec {
        nets: opts.nets,
        max_sinks: opts.max_sinks,
        seed: opts.seed,
        ..SuiteSpec::default()
    };
    let mut fleet: Vec<RoutingTree> = (0..spec.nets).map(|i| spec.build_net(i)).collect();
    fleet.sort_by_key(RoutingTree::node_count);
    // Fleet percentiles: the small nets most fleets are made of, the
    // median, the large-typical p80 (the biggest class still solved in
    // bulk), and the largest (which dominates absolute sweep time).
    let picks: Vec<(&'static str, RoutingTree)> = vec![
        ("p10", fleet[fleet.len() / 10].clone()),
        ("p50", fleet[fleet.len() / 2].clone()),
        ("p80", fleet[fleet.len() * 4 / 5].clone()),
        ("max", fleet[fleet.len() - 1].clone()),
    ];
    let lib = BufferLibrary::paper_synthetic(opts.lib).expect("nonzero library");
    let session = Session::new(lib.clone());
    println!(
        "# variation throughput: {}-net suite, {} samples/net, sigma {}, b = {}\n",
        opts.nets,
        opts.samples,
        opts.sigma,
        lib.len(),
    );

    let mut rows = Vec::new();
    let mut measured: Vec<Run> = Vec::new();
    for (name, tree) in &picks {
        // Untimed warmup: first-touch allocator and cache costs land
        // here, not in the first measured row.
        let _ = session.request(tree).solve().expect("nominal solve");
        for locality in [0.002f64, 0.01, 0.05] {
            let vspec = VariationSpec::gaussian(opts.sigma, locality, opts.seed);

            // Cached sweep: the API's yield path on one worker
            // (steady-state family reuse is the quantity of interest,
            // not thread fan-out).
            let t0 = Instant::now();
            let outcome = session
                .request(tree)
                .objective(Objective::YieldTarget {
                    samples: opts.samples,
                    quantile: 0.5,
                })
                .variation(vspec.clone())
                .workers(1)
                .solve()
                .expect("yield solve succeeds");
            let cached_wall = t0.elapsed();
            let v = outcome.scenarios[0]
                .variation()
                .expect("yield objective produces a variation outcome");

            // Naive sweep: per-sample scratch solves of the same scripts.
            let scripts = vspec.expand(tree, opts.samples);
            let mut scratch_bits = Vec::with_capacity(opts.samples);
            let t0 = Instant::now();
            for script in &scripts {
                let mut solver = IncrementalSolver::new(tree.clone(), lib.clone());
                solver.apply_all(script).expect("sampled edits are valid");
                scratch_bits.push(solver.solve_scratch().slack.value().to_bits());
            }
            let scratch_wall = t0.elapsed();

            let cached_bits: Vec<u64> = v
                .samples
                .iter()
                .map(|s| s.slack.value().to_bits())
                .collect();
            assert_eq!(
                cached_bits, scratch_bits,
                "cached and scratch sample slacks must be bit-identical"
            );

            let n = opts.samples as f64;
            let cached_rate = n / cached_wall.as_secs_f64().max(1e-12);
            let scratch_rate = n / scratch_wall.as_secs_f64().max(1e-12);
            let speedup = scratch_wall.as_secs_f64() / cached_wall.as_secs_f64().max(1e-12);
            let s = &v.summary;
            rows.push(vec![
                format!("{name}/{}", tree.node_count()),
                format!("{:.1}%", locality * 100.0),
                fmt_duration(cached_wall),
                format!("{cached_rate:.0}"),
                fmt_duration(scratch_wall),
                format!("{scratch_rate:.0}"),
                format!("{speedup:.2}x"),
                format!(
                    "{:.1}%",
                    100.0 * s.nodes_reused as f64
                        / (s.nodes_recomputed + s.nodes_reused).max(1) as f64
                ),
            ]);
            measured.push(Run {
                net: name,
                nodes: tree.node_count(),
                sinks: tree.sink_count(),
                sites: tree.buffer_site_count(),
                locality,
                samples: opts.samples,
                cached_secs: cached_wall.as_secs_f64(),
                scratch_secs: scratch_wall.as_secs_f64(),
                recomputed: s.nodes_recomputed,
                reused: s.nodes_reused,
            });
        }
    }
    print_table(
        &[
            "net/nodes",
            "locality",
            "cached wall",
            "samples/s",
            "scratch wall",
            "scr samples/s",
            "speedup",
            "subtrees reused",
        ],
        &rows,
    );
    let peak = measured
        .iter()
        .map(|r| r.scratch_secs / r.cached_secs.max(1e-12))
        .fold(f64::NEG_INFINITY, f64::max);
    println!("\npeak speedup: {peak:.2}x");

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"hw_threads\": {},\n",
        fastbuf_bench::hw_threads()
    ));
    json.push_str(&format!("  \"suite_nets\": {},\n", opts.nets));
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str(&format!("  \"sigma\": {},\n", opts.sigma));
    json.push_str(&format!("  \"library\": {},\n", opts.lib));
    json.push_str(&format!("  \"peak_speedup\": {peak:.3},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, r) in measured.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"net\": \"{}\", \"nodes\": {}, \"sinks\": {}, \"sites\": {}, \
             \"locality\": {}, \"samples\": {}, \
             \"cached_secs\": {:.6}, \"scratch_secs\": {:.6}, \
             \"cached_samples_per_sec\": {:.1}, \"scratch_samples_per_sec\": {:.1}, \
             \"speedup\": {:.3}, \"nodes_recomputed\": {}, \"nodes_reused\": {}}}{}\n",
            r.net,
            r.nodes,
            r.sinks,
            r.sites,
            r.locality,
            r.samples,
            r.cached_secs,
            r.scratch_secs,
            r.samples as f64 / r.cached_secs.max(1e-12),
            r.samples as f64 / r.scratch_secs.max(1e-12),
            r.scratch_secs / r.cached_secs.max(1e-12),
            r.recomputed,
            r.reused,
            if i + 1 < measured.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("warning: cannot write {}: {e}", opts.out);
    } else {
        println!("recorded to {}", opts.out);
    }
}
