//! Ablation **X2**: machine-independent `AddBuffer` work counters.
//!
//! Wall-clock curves (Figures 3/4) depend on the machine; the DP's operation
//! counts do not. For each library size `b` this harness reports the total
//! `AddBuffer` work — candidates visited by scans, candidates fed to hull
//! construction, hull walk steps, betas emitted — for both algorithms on
//! the same net. Lillis' work grows ~linearly in `b` per position (O(k·b));
//! Li–Shi's stays ~flat (O(k + b)), which is the paper's whole point.
//!
//! Run: `cargo run --release -p fastbuf-bench --bin ablation_counters`

use fastbuf_bench::{paper_net, print_table, HarnessOptions, PAPER_LIB_SIZES};
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::{Algorithm, Kernel, Solver};
use fastbuf_global::{GlobalNet, GlobalSolver, SiteCapacityMap};
use fastbuf_netgen::SharedSuiteSpec;

fn main() {
    let opts = HarnessOptions::from_args();
    let m = opts.sinks(1944);
    let tree = paper_net(m, Some(m * 17));
    println!(
        "# AddBuffer work counters: m = {}, n = {} (scale {})\n",
        m,
        tree.buffer_site_count(),
        opts.scale
    );

    let mut rows = Vec::new();
    let mut base: Option<(f64, f64)> = None;
    for &b in &PAPER_LIB_SIZES {
        let lib = BufferLibrary::paper_synthetic(b).expect("b > 0");
        let stats_of = |algo: Algorithm| {
            Solver::new(&tree, &lib)
                .algorithm(algo)
                .track_predecessors(false)
                .solve()
                .stats
        };
        let lillis = stats_of(Algorithm::Lillis);
        let lishi = stats_of(Algorithm::LiShi);
        let (wl, ws) = (
            lillis.addbuffer_work() as f64,
            lishi.addbuffer_work() as f64,
        );
        let (bl, bs) = *base.get_or_insert((wl, ws));
        rows.push(vec![
            b.to_string(),
            format!("{:.2e}", wl),
            format!("{:.2}", wl / bl),
            format!("{:.2e}", ws),
            format!("{:.2}", ws / bs),
            format!("{:.1}x", wl / ws),
            lillis.max_list_len.to_string(),
        ]);
    }
    print_table(
        &[
            "b",
            "Lillis work",
            "(norm)",
            "Li-Shi work",
            "(norm)",
            "work ratio",
            "max list len",
        ],
        &rows,
    );
    println!(
        "\nLillis' AddBuffer work scales ~b; Li-Shi's is nearly flat in b (O(k+b) vs O(k*b))."
    );

    // Slab-kernel counters: how much candidate traffic the struct-of-arrays
    // layout moves (scanned = elements read by lane sweeps, pruned =
    // dominated elements dropped in those sweeps, bytes peak = high-water
    // slab footprint), plus how many sibling subtrees the intra-net mode
    // forks when 2 workers are requested. Machine-independent like the
    // table above — these are the numbers behind `BENCH_kernel.json`.
    println!("\n# Slab kernel counters (Li-Shi, intra-net workers = 2)\n");
    let mut rows = Vec::new();
    for &b in &PAPER_LIB_SIZES {
        let lib = BufferLibrary::paper_synthetic(b).expect("b > 0");
        let stats = Solver::new(&tree, &lib)
            .algorithm(Algorithm::LiShi)
            .track_predecessors(false)
            .kernel(Kernel::Slab)
            .intra_net_workers(2)
            .solve()
            .stats;
        rows.push(vec![
            b.to_string(),
            format!("{:.2e}", stats.slab_candidates_scanned as f64),
            format!("{:.2e}", stats.slab_candidates_pruned as f64),
            format!("{:.1} KiB", stats.slab_bytes_peak as f64 / 1024.0),
            stats.parallel_subtrees.to_string(),
        ]);
    }
    print_table(
        &[
            "b",
            "slab scanned",
            "slab pruned",
            "slab bytes peak",
            "parallel subtrees",
        ],
        &rows,
    );

    // Pricing-loop counters: what the design-level Lagrangian loop does,
    // iteration by iteration, on the default contended fleet at unit
    // capacities. Machine-independent like the tables above — nets
    // re-solved per iteration shows the warm-cache dirtying at work
    // (iteration 0 re-solves everything; afterwards only nets whose
    // mapped site prices changed), sites overused shows convergence.
    let spec = SharedSuiteSpec::default();
    let fleet: Vec<GlobalNet> = spec
        .build()
        .into_iter()
        .enumerate()
        .map(|(i, net)| GlobalNet::new(format!("shared/{i}"), net.tree, net.site_of))
        .collect();
    let lib = BufferLibrary::paper_synthetic(8).expect("b > 0");
    let outcome = GlobalSolver::new(fleet, lib, SiteCapacityMap::uniform(spec.pool_sites, 1))
        .solve()
        .expect("the default fleet is valid");
    let report = &outcome.report;
    println!(
        "\n# Global pricing-loop counters ({} nets, {} shared sites, capacity 1)\n",
        report.nets, report.pool_sites
    );
    let mut rows = Vec::new();
    for row in &report.history {
        rows.push(vec![
            row.iter.to_string(),
            row.nets_resolved.to_string(),
            row.sites_overused.to_string(),
            row.total_overuse.to_string(),
            format!("{}", row.max_price),
        ]);
    }
    print_table(
        &[
            "iter",
            "nets re-solved",
            "sites overused",
            "total overuse",
            "max price",
        ],
        &rows,
    );
    println!(
        "\n{} of {} possible inner solves ({} iterations x {} nets): the warm loop only \
         re-solves nets whose prices changed. Feasible: {}.",
        report.total_resolved,
        report.iterations * report.nets,
        report.iterations,
        report.nets,
        report.feasible
    );
}
