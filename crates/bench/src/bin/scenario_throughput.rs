//! Multi-corner throughput: corner-solves/sec of the `fastbuf-api`
//! request layer vs independent legacy solves.
//!
//! Solves one reproducible heavy-tailed net suite where every net is
//! asked the same question in 1, 2, and 4 timing corners (typical /
//! derated / slew-limited / scaled-model), two ways:
//!
//! * **request** — one multi-scenario `SolveRequest` per net; corners
//!   share the session's warm workspace pool (the api fan-out path);
//! * **legacy** — one fresh `Solver::solve()` per corner (what callers
//!   wrote before the request layer existed; allocates per solve).
//!
//! Results are asserted identical per corner, then corner-solves/sec are
//! printed and recorded in `BENCH_scenarios.json`.
//!
//! Run: `cargo run --release -p fastbuf-bench --bin scenario_throughput --
//!       [--nets N] [--max-sinks M] [--seed S] [--repeats K] [--out FILE]
//!       [--quick]`

use std::sync::Arc;
use std::time::{Duration, Instant};

use fastbuf_api::{Scenario, Session};
use fastbuf_bench::{fmt_duration, print_table};
use fastbuf_buflib::units::Seconds;
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::Solver;
use fastbuf_netgen::SuiteSpec;
use fastbuf_rctree::ScaledElmoreModel;

struct Options {
    nets: usize,
    max_sinks: usize,
    seed: u64,
    repeats: usize,
    out: String,
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: scenario_throughput [--nets N] [--max-sinks M] [--seed S] [--repeats K] [--out FILE] [--quick]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

fn parse_args() -> Options {
    let mut opts = Options {
        nets: 60,
        max_sinks: 96,
        seed: 1,
        repeats: 3,
        out: "BENCH_scenarios.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |what: &str| args.next().unwrap_or_else(|| usage(what));
        match arg.as_str() {
            "--nets" => {
                opts.nets = next("--nets needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --nets"))
            }
            "--max-sinks" => {
                opts.max_sinks = next("--max-sinks needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --max-sinks"))
            }
            "--seed" => {
                opts.seed = next("--seed needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --seed"))
            }
            "--repeats" => {
                opts.repeats = next("--repeats needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --repeats"))
            }
            "--out" => opts.out = next("--out needs a value"),
            "--quick" => {
                // CI smoke size: run the real pipeline in seconds.
                opts.nets = 10;
                opts.max_sinks = 24;
                opts.repeats = 1;
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if opts.repeats == 0 {
        usage("--repeats must be at least 1");
    }
    if opts.nets == 0 {
        usage("--nets must be at least 1");
    }
    if opts.max_sinks < 8 {
        usage("--max-sinks must be at least 8");
    }
    opts
}

/// The corner ladder: every prefix of this list is a scenario set.
fn corners(k: usize) -> Vec<Scenario> {
    let all = [
        Scenario::named("typical"),
        Scenario::named("slow").rat_derate(0.9),
        Scenario::named("signoff").slew_limit(Seconds::from_pico(300.0)),
        Scenario::named("optimistic").delay_model(Arc::new(ScaledElmoreModel::default())),
    ];
    all[..k].to_vec()
}

fn main() {
    let opts = parse_args();
    let nets = SuiteSpec {
        nets: opts.nets,
        max_sinks: opts.max_sinks,
        seed: opts.seed,
        ..SuiteSpec::default()
    }
    .build();
    let lib = BufferLibrary::paper_synthetic(16).expect("nonzero library");
    println!(
        "# scenario throughput: {} nets x up to 4 corners, repeats {}\n",
        nets.len(),
        opts.repeats
    );

    let mut rows = Vec::new();
    let mut measured: Vec<(usize, f64, f64)> = Vec::new(); // (corners, request secs, legacy secs)
    for k in [1usize, 2, 4] {
        let scenarios = corners(k);
        let session = Session::new(lib.clone());

        let mut request_best = Duration::MAX;
        let mut legacy_best = Duration::MAX;
        for _ in 0..opts.repeats {
            // Request path: one multi-scenario request per net, warm
            // workspaces from the session pool.
            let t0 = Instant::now();
            let mut request_slacks = Vec::with_capacity(nets.len() * k);
            for tree in &nets {
                let outcome = session
                    .request(tree)
                    .scenarios(scenarios.clone())
                    .solve()
                    .expect("valid max-slack scenarios");
                request_slacks.extend(
                    outcome
                        .scenarios
                        .iter()
                        .map(|s| s.solution().unwrap().slack),
                );
            }
            request_best = request_best.min(t0.elapsed());

            // Legacy path: k independent solves per net, allocating each
            // time — what callers wrote before the request layer.
            let t0 = Instant::now();
            let mut legacy_slacks = Vec::with_capacity(nets.len() * k);
            for tree in &nets {
                for scenario in &scenarios {
                    let solve_tree = scenario.apply_derate(tree);
                    let mut solver = Solver::new(&solve_tree, &lib);
                    if let Some(model) = &scenario.delay_model {
                        solver = solver.delay_model(Arc::clone(model));
                    }
                    if let Some(limit) = scenario.slew_limit {
                        solver = solver.slew_limit(limit);
                    }
                    legacy_slacks.push(solver.solve().slack);
                }
            }
            legacy_best = legacy_best.min(t0.elapsed());

            assert_eq!(
                request_slacks, legacy_slacks,
                "paths must agree bit for bit"
            );
        }

        let corner_solves = (nets.len() * k) as f64;
        let req_rate = corner_solves / request_best.as_secs_f64();
        let leg_rate = corner_solves / legacy_best.as_secs_f64();
        rows.push(vec![
            k.to_string(),
            fmt_duration(request_best),
            format!("{req_rate:.0}"),
            fmt_duration(legacy_best),
            format!("{leg_rate:.0}"),
            format!(
                "{:.2}x",
                legacy_best.as_secs_f64() / request_best.as_secs_f64()
            ),
        ]);
        measured.push((k, request_best.as_secs_f64(), legacy_best.as_secs_f64()));
    }
    print_table(
        &[
            "corners",
            "request wall",
            "req corner/s",
            "legacy wall",
            "leg corner/s",
            "request speedup",
        ],
        &rows,
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"hw_threads\": {},\n",
        fastbuf_bench::hw_threads()
    ));
    json.push_str(&format!("  \"nets\": {},\n", nets.len()));
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str(&format!("  \"repeats\": {},\n", opts.repeats));
    json.push_str("  \"runs\": [\n");
    for (i, (k, req, leg)) in measured.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"corners\": {}, \"request_secs\": {:.6}, \"legacy_secs\": {:.6}, \"request_speedup\": {:.3}}}{}\n",
            k,
            req,
            leg,
            leg / req,
            if i + 1 < measured.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("warning: cannot write {}: {e}", opts.out);
    } else {
        println!("\nrecorded to {}", opts.out);
    }
}
