//! Reproduces **Table 1** of Li & Shi, DATE 2005: running time of the
//! Lillis O(b²n²) algorithm vs the new O(bn²) algorithm on three nets
//! (337 / 1944 / 2676 sinks) across library sizes {8, 16, 32, 64}.
//!
//! The paper reports the new algorithm up to ~11× faster at b = 64 with a
//! small overhead at b = 8 (the extra `Convexpruning` work); the same shape
//! should appear here. Absolute times are not comparable (the paper used a
//! 400 MHz SPARC; the nets here are synthetic stand-ins).
//!
//! Run: `cargo run --release -p fastbuf-bench --bin table1 [--full]`

use fastbuf_bench::{
    fmt_duration, paper_net, print_table, time_solve, HarnessOptions, PAPER_LIB_SIZES, PAPER_SINKS,
};
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::Algorithm;

fn main() {
    let opts = HarnessOptions::from_args();
    println!(
        "# Table 1 reproduction (scale {}, repeats {})\n",
        opts.scale, opts.repeats
    );
    let mut rows = Vec::new();
    for &paper_m in &PAPER_SINKS {
        let m = opts.sinks(paper_m);
        // Paper density: ~17 positions per sink on the 1944-sink net.
        let tree = paper_net(m, Some(m * 17));
        let n = tree.buffer_site_count();
        for &b in &PAPER_LIB_SIZES {
            let lib = BufferLibrary::paper_synthetic(b).expect("b > 0");
            let (t_lillis, s_lillis) = time_solve(&tree, &lib, Algorithm::Lillis, opts.repeats);
            let (t_lishi, s_lishi) = time_solve(&tree, &lib, Algorithm::LiShi, opts.repeats);
            let speedup = t_lillis.as_secs_f64() / t_lishi.as_secs_f64();
            let slack_match = (s_lillis.slack.picos() - s_lishi.slack.picos()).abs() < 1e-6;
            rows.push(vec![
                m.to_string(),
                n.to_string(),
                b.to_string(),
                format!("{:.1}", s_lishi.slack.picos()),
                fmt_duration(t_lillis),
                fmt_duration(t_lishi),
                format!("{speedup:.2}x"),
                if slack_match {
                    "yes".into()
                } else {
                    "NO!".into()
                },
            ]);
        }
    }
    print_table(
        &[
            "m (sinks)",
            "n (positions)",
            "b",
            "slack (ps)",
            "Lillis O(b^2 n^2)",
            "Li-Shi O(b n^2)",
            "speedup",
            "same slack",
        ],
        &rows,
    );
    println!("\npaper: speedups grow with b, up to ~11x at b = 64; ~1x (slight overhead) at b = 8");
}
