//! Server throughput: requests/sec of `fastbuf serve` vs client count,
//! warm vs cold.
//!
//! The warm mode measures the point of the server: an in-process TCP
//! server with one resident design (library parsed once, `Session` and
//! workspaces warm) hammered by 1/2/4/8 concurrent closed-loop clients,
//! each waiting for its reply before sending the next solve. The cold
//! mode is the status quo it replaces: the same solve as a fresh
//! `fastbuf solve` **process per request** (binary discovered next to
//! this harness, or `$FASTBUF_BIN`), paying process spawn + net parse +
//! library parse + session build every time. When the CLI binary is not
//! built the cold runs fall back to an in-process cold path (full parse +
//! session build per request, no spawn) and the JSON says so.
//!
//! Writes `BENCH_server.json` (current directory) with a `runs` array so
//! successive runs can be compared.
//!
//! Run: `cargo run --release -p fastbuf-bench --bin server_throughput --
//!       [--sinks N] [--requests K] [--seed S] [--out FILE] [--quick]`

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Instant;

use fastbuf_api::wire::Json;
use fastbuf_api::Session;
use fastbuf_bench::{fmt_duration, print_table};
use fastbuf_buflib::BufferLibrary;
use fastbuf_netgen::RandomNetSpec;
use fastbuf_rctree::io as netio;
use fastbuf_server::{Server, ServerConfig};

struct Options {
    sinks: usize,
    requests: usize,
    seed: u64,
    out: String,
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: server_throughput [--sinks N] [--requests K] [--seed S] [--out FILE] [--quick]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

fn parse_args() -> Options {
    let mut opts = Options {
        sinks: 64,
        requests: 16,
        seed: 1,
        out: "BENCH_server.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |what: &str| args.next().unwrap_or_else(|| usage(what));
        match arg.as_str() {
            "--sinks" => {
                opts.sinks = next("--sinks needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --sinks"))
            }
            "--requests" => {
                opts.requests = next("--requests needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --requests"))
            }
            "--seed" => {
                opts.seed = next("--seed needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --seed"))
            }
            "--out" => opts.out = next("--out needs a value"),
            "--quick" => {
                // CI smoke size: exercise the real pipeline in seconds.
                opts.sinks = 12;
                opts.requests = 3;
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if opts.sinks < 2 {
        usage("--sinks must be at least 2");
    }
    if opts.requests == 0 {
        usage("--requests must be at least 1");
    }
    opts
}

/// One closed-loop client: send a frame, block for the reply, repeat.
fn warm_client(addr: SocketAddr, requests: usize, client: usize) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    for i in 0..requests {
        let frame =
            format!(r#"{{"v": 1, "id": "c{client}-{i}", "op": "solve", "design": "bench"}}"#);
        writeln!(writer, "{frame}").expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply");
        let reply = Json::parse(line.trim()).expect("reply parses");
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "solve failed: {line}"
        );
    }
}

/// The `fastbuf` binary, if it was built alongside this harness.
fn fastbuf_binary() -> Option<PathBuf> {
    if let Ok(path) = std::env::var("FASTBUF_BIN") {
        let path = PathBuf::from(path);
        return path.is_file().then_some(path);
    }
    let mut path = std::env::current_exe().ok()?;
    path.set_file_name("fastbuf");
    path.is_file().then_some(path)
}

enum ColdMode {
    /// `fastbuf solve` process per request.
    Spawn(PathBuf),
    /// No CLI binary around: full parse + session build per request,
    /// in-process (still cold state, no spawn cost).
    InProcess,
}

fn cold_request(mode: &ColdMode, net_path: &str, lib_path: &str) {
    match mode {
        ColdMode::Spawn(bin) => {
            let status = std::process::Command::new(bin)
                .args(["solve", "--net", net_path, "--lib", lib_path])
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .status()
                .expect("spawn fastbuf");
            assert!(status.success(), "cold solve failed");
        }
        ColdMode::InProcess => {
            let net = std::fs::read_to_string(net_path).expect("read net");
            let tree = netio::parse(&net).expect("parse net");
            let lib = std::fs::read_to_string(lib_path).expect("read lib");
            let lib = BufferLibrary::from_text(&lib).expect("parse lib");
            let session = Session::new(lib);
            let outcome = session.request(&tree).workers(1).solve().expect("solve");
            outcome
                .verify(&tree, session.library())
                .expect("cold solve verifies");
        }
    }
}

fn main() {
    let opts = parse_args();
    let tree = RandomNetSpec {
        seed: opts.seed,
        ..RandomNetSpec::paper(opts.sinks)
    }
    .build();
    let net_text = netio::write(&tree);
    let lib = BufferLibrary::paper_synthetic(16).expect("nonzero library");
    let lib_text = lib.to_text();

    // Cold requests read real files, like any CLI invocation would.
    let dir = std::env::temp_dir().join(format!("fastbuf-server-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let net_path = dir.join("bench.net");
    let lib_path = dir.join("bench.lib");
    std::fs::write(&net_path, &net_text).expect("write net");
    std::fs::write(&lib_path, &lib_text).expect("write lib");
    let net_path = net_path.to_str().expect("utf8 path").to_owned();
    let lib_path = lib_path.to_str().expect("utf8 path").to_owned();

    let cold_mode = match fastbuf_binary() {
        Some(bin) => {
            println!("# cold mode: spawning {}", bin.display());
            ColdMode::Spawn(bin)
        }
        None => {
            println!("# cold mode: in-process (fastbuf binary not found; build it for spawn cost)");
            ColdMode::InProcess
        }
    };

    // One resident server for every warm measurement; the design loads
    // once, exactly the deployment the server exists for.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = Server::new(ServerConfig {
        workers: 8,
        ..ServerConfig::default()
    });
    let stop = server.stop_flag();
    let server_thread = std::thread::spawn(move || server.serve_tcp(listener).expect("serve"));
    {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let frame = format!(
            r#"{{"v": 1, "id": "load", "op": "load", "design": "bench", "net": {}, "lib": {}}}"#,
            Json::Str(net_text.clone()).to_json(),
            Json::Str(lib_text.clone()).to_json(),
        );
        writeln!(writer, "{frame}").expect("send load");
        let mut line = String::new();
        reader.read_line(&mut line).expect("load reply");
        assert!(line.contains("\"ok\": true"), "load failed: {line}");
    }

    println!(
        "# server throughput: {} sinks, {} buffer positions, {} requests/client\n",
        tree.sink_count(),
        tree.buffer_site_count(),
        opts.requests
    );

    let client_counts = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    // (clients, warm_secs, warm_rps, cold_secs, cold_rps)
    let mut measured: Vec<(usize, f64, f64, f64, f64)> = Vec::new();
    for &clients in &client_counts {
        let total = clients * opts.requests;

        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for c in 0..clients {
                scope.spawn(move || warm_client(addr, opts.requests, c));
            }
        });
        let warm = t0.elapsed();

        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..clients {
                scope.spawn(|| {
                    for _ in 0..opts.requests {
                        cold_request(&cold_mode, &net_path, &lib_path);
                    }
                });
            }
        });
        let cold = t0.elapsed();

        let warm_rps = total as f64 / warm.as_secs_f64();
        let cold_rps = total as f64 / cold.as_secs_f64();
        rows.push(vec![
            clients.to_string(),
            fmt_duration(warm),
            format!("{warm_rps:.1}"),
            fmt_duration(cold),
            format!("{cold_rps:.1}"),
            format!("{:.2}x", warm_rps / cold_rps),
        ]);
        measured.push((
            clients,
            warm.as_secs_f64(),
            warm_rps,
            cold.as_secs_f64(),
            cold_rps,
        ));
    }
    print_table(
        &[
            "clients",
            "warm wall",
            "warm req/s",
            "cold wall",
            "cold req/s",
            "warm/cold",
        ],
        &rows,
    );

    // Drain the server before reporting, so the numbers above are from a
    // healthy run end to end.
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    server_thread.join().expect("server thread");
    std::fs::remove_dir_all(&dir).ok();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"hw_threads\": {},\n",
        fastbuf_bench::hw_threads()
    ));
    json.push_str(&format!("  \"sinks\": {},\n", tree.sink_count()));
    json.push_str(&format!("  \"sites\": {},\n", tree.buffer_site_count()));
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str(&format!("  \"requests_per_client\": {},\n", opts.requests));
    json.push_str(&format!("  \"hardware_threads\": {cores},\n"));
    json.push_str(&format!(
        "  \"cold_mode\": \"{}\",\n",
        match cold_mode {
            ColdMode::Spawn(_) => "process-spawn",
            ColdMode::InProcess => "in-process",
        }
    ));
    json.push_str("  \"runs\": [\n");
    for (k, (clients, warm_secs, warm_rps, cold_secs, cold_rps)) in measured.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"clients\": {clients}, \"warm_secs\": {warm_secs:.6}, \
             \"warm_req_per_sec\": {warm_rps:.2}, \"cold_secs\": {cold_secs:.6}, \
             \"cold_req_per_sec\": {cold_rps:.2}, \"warm_over_cold\": {:.3}}}{}\n",
            warm_rps / cold_rps,
            if k + 1 < measured.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("warning: cannot write {}: {e}", opts.out);
    } else {
        println!("\nrecorded to {}", opts.out);
    }
}
