//! Reproduces **Figure 3** of Li & Shi, DATE 2005: normalized running time
//! vs buffer library size `b` on the 1944-sink net with 33133 buffer
//! positions.
//!
//! In the paper both algorithms grow near-linearly in `b` (Lillis' worst
//! case is quadratic but behaves linearly, as the paper notes), with the
//! new algorithm's slope much smaller — at `b = 64` Lillis sits at ~11× its
//! own `b = 8` time while the new algorithm stays near ~2×.
//!
//! Run: `cargo run --release -p fastbuf-bench --bin fig3 [--full]`

use fastbuf_bench::{
    fmt_duration, paper_net, print_table, time_solve, HarnessOptions, PAPER_POSITIONS_1944,
};
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::Algorithm;

fn main() {
    let opts = HarnessOptions::from_args();
    let m = opts.sinks(1944);
    let n_target = opts.positions(PAPER_POSITIONS_1944);
    let tree = paper_net(m, Some(n_target));
    println!(
        "# Figure 3 reproduction: m = {}, n = {} (scale {})\n",
        m,
        tree.buffer_site_count(),
        opts.scale
    );

    let sweep = [8usize, 16, 24, 32, 40, 48, 56, 64];
    let mut base: Option<(f64, f64)> = None;
    let mut rows = Vec::new();
    for &b in &sweep {
        let lib = BufferLibrary::paper_synthetic(b).expect("b > 0");
        let (t_lillis, _) = time_solve(&tree, &lib, Algorithm::Lillis, opts.repeats);
        let (t_lishi, _) = time_solve(&tree, &lib, Algorithm::LiShi, opts.repeats);
        let (bl, bs) = *base.get_or_insert((t_lillis.as_secs_f64(), t_lishi.as_secs_f64()));
        rows.push(vec![
            b.to_string(),
            fmt_duration(t_lillis),
            format!("{:.2}", t_lillis.as_secs_f64() / bl),
            fmt_duration(t_lishi),
            format!("{:.2}", t_lishi.as_secs_f64() / bs),
        ]);
    }
    print_table(
        &[
            "b",
            "Lillis",
            "Lillis (norm to b=8)",
            "Li-Shi",
            "Li-Shi (norm to b=8)",
        ],
        &rows,
    );
    println!(
        "\npaper: Lillis rises to ~11x by b = 64; Li-Shi stays flat (~2x), much smaller slope"
    );
}
