//! Design-level pricing-loop convergence: iterations to feasibility and
//! net-solve throughput, warm per-net caches vs from-scratch inner solves.
//!
//! Builds seeded shared-site fleets (`SharedSuiteSpec`) whose unpriced,
//! independently optimal solves overflow the shared site pool, then runs
//! the `fastbuf-global` Lagrangian loop twice per fleet:
//!
//! * **warm** — per-net `IncrementalSolver` caches persist across pricing
//!   iterations, so an iteration only re-solves the nets whose site
//!   prices changed (and within those, only the re-priced root paths);
//! * **scratch** — every inner solve starts from an empty cache (what a
//!   naive loop over the plain `Solver` would do).
//!
//! Both runs are asserted bit-identical (feasibility, iteration history,
//! slack bits, placements) before any time is reported — the benchmark
//! doubles as a release-mode differential check of the warm-cache path.
//! Results go to `BENCH_global.json`.
//!
//! Run: `cargo run --release -p fastbuf-bench --bin global_convergence --
//!       [--seed S] [--lib B] [--out FILE] [--quick]`

use std::time::{Duration, Instant};

use fastbuf_bench::{fmt_duration, print_table};
use fastbuf_buflib::BufferLibrary;
use fastbuf_global::{GlobalNet, GlobalOutcome, GlobalSolver, SiteCapacityMap};
use fastbuf_netgen::SharedSuiteSpec;

struct Options {
    seed: u64,
    lib: usize,
    out: String,
    quick: bool,
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: global_convergence [--seed S] [--lib B] [--out FILE] [--quick]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

fn parse_args() -> Options {
    let mut opts = Options {
        seed: 1,
        lib: 8,
        out: "BENCH_global.json".to_owned(),
        quick: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |what: &str| args.next().unwrap_or_else(|| usage(what));
        match arg.as_str() {
            "--seed" => {
                opts.seed = next("--seed needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --seed"))
            }
            "--lib" => {
                opts.lib = next("--lib needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --lib"))
            }
            "--out" => opts.out = next("--out needs a value"),
            "--quick" => opts.quick = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if opts.lib == 0 {
        usage("--lib must be positive");
    }
    opts
}

/// One benchmark fleet: `nets` lines over a `pool`-site pool at capacity 1.
struct Fleet {
    nets: usize,
    pool: u32,
    sites_per_net: usize,
}

fn build(fleet: &Fleet, seed: u64) -> (Vec<GlobalNet>, SharedSuiteSpec) {
    let spec = SharedSuiteSpec {
        nets: fleet.nets,
        pool_sites: fleet.pool,
        sites_per_net: fleet.sites_per_net,
        seed,
        ..SharedSuiteSpec::default()
    };
    let nets = spec
        .build()
        .into_iter()
        .enumerate()
        .map(|(i, net)| GlobalNet::new(format!("shared/{i:04}"), net.tree, net.site_of))
        .collect();
    (nets, spec)
}

/// Solves the fleet `REPS` times and reports the last outcome with the
/// best wall time (every repetition is bit-identical — the loop is
/// deterministic — so best-of-N only de-noises the clock).
fn run(fleet: &Fleet, seed: u64, lib: &BufferLibrary, warm: bool) -> (GlobalOutcome, Duration) {
    const REPS: usize = 3;
    let mut best: Option<(GlobalOutcome, Duration)> = None;
    for _ in 0..REPS {
        let (nets, _) = build(fleet, seed);
        let solver = GlobalSolver::new(nets, lib.clone(), SiteCapacityMap::uniform(fleet.pool, 1))
            .max_iters(128)
            .warm(warm);
        let t0 = Instant::now();
        let outcome = solver.solve().expect("generated fleets are valid");
        let wall = t0.elapsed();
        if best.as_ref().is_none_or(|(_, b)| wall < *b) {
            best = Some((outcome, wall));
        }
    }
    best.expect("REPS > 0")
}

fn main() {
    let opts = parse_args();
    // Fleet shapes where the per-net DP is big enough for the warm caches
    // to pay for themselves (tiny 10-site lines re-solve faster from
    // scratch than through cache bookkeeping — that regime belongs to the
    // batch benchmarks, not this one).
    let fleets: &[Fleet] = if opts.quick {
        &[Fleet {
            nets: 8,
            pool: 96,
            sites_per_net: 48,
        }]
    } else {
        &[
            Fleet {
                nets: 8,
                pool: 96,
                sites_per_net: 48,
            },
            Fleet {
                nets: 8,
                pool: 200,
                sites_per_net: 100,
            },
            Fleet {
                nets: 16,
                pool: 300,
                sites_per_net: 150,
            },
        ]
    };
    let lib = BufferLibrary::paper_synthetic(opts.lib).expect("nonzero library");
    println!(
        "# global convergence: shared-site fleets at capacity 1, b = {}\n",
        lib.len()
    );

    let mut rows = Vec::new();
    let mut measured = Vec::new();
    for fleet in fleets {
        let (warm_out, warm_wall) = run(fleet, opts.seed, &lib, true);
        let (scratch_out, scratch_wall) = run(fleet, opts.seed, &lib, false);

        // The warm-cache path must not change a single bit of the outcome.
        assert_eq!(warm_out.report.feasible, scratch_out.report.feasible);
        assert_eq!(warm_out.report.iterations, scratch_out.report.iterations);
        assert_eq!(warm_out.report.history, scratch_out.report.history);
        let bits = |o: &GlobalOutcome| -> Vec<(u64, Vec<_>)> {
            o.solutions
                .iter()
                .map(|s| (s.slack.value().to_bits(), s.placements.clone()))
                .collect()
        };
        assert_eq!(
            bits(&warm_out),
            bits(&scratch_out),
            "warm and scratch loops must be bit-identical"
        );
        assert!(
            warm_out.report.feasible,
            "benchmark fleets must reach feasibility"
        );

        let report = &warm_out.report;
        let overuse0 = report.history[0].total_overuse;
        // Throughput metric: net-solves per second. The warm loop does
        // fewer inner solves for the same iteration count — both the
        // solve-rate and the end-to-end wall time are reported.
        let warm_rate = report.total_resolved as f64 / warm_wall.as_secs_f64().max(1e-12);
        let scratch_rate =
            scratch_out.report.total_resolved as f64 / scratch_wall.as_secs_f64().max(1e-12);
        let speedup = scratch_wall.as_secs_f64() / warm_wall.as_secs_f64().max(1e-12);
        rows.push(vec![
            format!("{}x{}", fleet.nets, fleet.pool),
            format!("{overuse0}"),
            format!("{}", report.iterations),
            format!(
                "{}/{}",
                report.total_resolved,
                (report.iterations * report.nets)
            ),
            fmt_duration(warm_wall),
            format!("{warm_rate:.0}"),
            fmt_duration(scratch_wall),
            format!("{scratch_rate:.0}"),
            format!("{speedup:.2}x"),
        ]);
        measured.push((
            fleet.nets,
            fleet.pool,
            fleet.sites_per_net,
            overuse0,
            report.iterations,
            report.total_resolved,
            warm_wall.as_secs_f64(),
            scratch_wall.as_secs_f64(),
        ));
    }
    print_table(
        &[
            "fleet",
            "overuse@0",
            "iters",
            "solves/full",
            "warm wall",
            "warm solves/s",
            "scratch wall",
            "scr solves/s",
            "speedup",
        ],
        &rows,
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"hw_threads\": {},\n",
        fastbuf_bench::hw_threads()
    ));
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str(&format!("  \"library\": {},\n", opts.lib));
    json.push_str("  \"runs\": [\n");
    for (i, (nets, pool, sites, overuse0, iters, resolved, warm, scratch)) in
        measured.iter().enumerate()
    {
        json.push_str(&format!(
            "    {{\"nets\": {nets}, \"pool_sites\": {pool}, \"sites_per_net\": {sites}, \
             \"initial_overuse\": {overuse0}, \"iterations\": {iters}, \
             \"inner_solves\": {resolved}, \"full_solves\": {}, \
             \"warm_secs\": {warm:.6}, \"scratch_secs\": {scratch:.6}, \
             \"warm_net_iters_per_sec\": {:.1}, \"scratch_net_iters_per_sec\": {:.1}, \
             \"speedup\": {:.3}}}{}\n",
            iters * nets,
            (iters * nets) as f64 / warm.max(1e-12),
            (iters * nets) as f64 / scratch.max(1e-12),
            scratch / warm.max(1e-12),
            if i + 1 < measured.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("warning: cannot write {}: {e}", opts.out);
    } else {
        println!("\nrecorded to {}", opts.out);
    }
}
