//! Extension **X3**: buffer-library clustering vs solving the full library.
//!
//! Before the O(bn²) algorithm, the standard remedy for very large
//! libraries was to *shrink the library* by clustering similar buffers
//! (Alpert, Gandham, Neves & Quay — reference \[3\] of the paper), accepting
//! a quality loss. This harness reproduces that trade-off: solve with the
//! full b = 64 library (fast thanks to the O(bn²) algorithm), then with
//! clustered sub-libraries of 16, 8 and 4 types, reporting slack loss and
//! runtime.
//!
//! Run: `cargo run --release -p fastbuf-bench --bin clustering_quality`

use fastbuf_bench::{fmt_duration, paper_net, print_table, time_solve, HarnessOptions};
use fastbuf_buflib::cluster::cluster_library;
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::Algorithm;

fn main() {
    let opts = HarnessOptions::from_args();
    let m = opts.sinks(337);
    let tree = paper_net(m, Some(m * 17));
    println!(
        "# Library clustering quality: m = {}, n = {} (scale {})\n",
        m,
        tree.buffer_site_count(),
        opts.scale
    );

    let full = BufferLibrary::paper_synthetic_jittered(64, 2005).expect("b > 0");
    let (t_full, s_full) = time_solve(&tree, &full, Algorithm::LiShi, opts.repeats);
    let full_slack = s_full.slack.picos();

    let mut rows = vec![vec![
        "64 (full)".to_string(),
        format!("{full_slack:.1}"),
        "0.0".to_string(),
        fmt_duration(t_full),
        "1.00x".to_string(),
    ]];
    for k in [16usize, 8, 4] {
        let reduced = cluster_library(&full, k).expect("valid k").library;
        let (t, s) = time_solve(&tree, &reduced, Algorithm::LiShi, opts.repeats);
        rows.push(vec![
            k.to_string(),
            format!("{:.1}", s.slack.picos()),
            format!("{:.1}", full_slack - s.slack.picos()),
            fmt_duration(t),
            format!("{:.2}x", t_full.as_secs_f64() / t.as_secs_f64()),
        ]);
    }
    print_table(
        &[
            "library size",
            "slack (ps)",
            "slack loss (ps)",
            "runtime",
            "runtime vs full",
        ],
        &rows,
    );
    println!("\nClustering buys runtime but costs slack; the O(bn^2) algorithm makes the full library affordable instead.");
}
