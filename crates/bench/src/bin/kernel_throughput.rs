//! Kernel throughput: the struct-of-arrays candidate slab vs the
//! reference `Vec<Candidate>` kernel, plus intra-net subtree scaling.
//!
//! Solves the largest nets of one reproducible `netgen::SuiteSpec` suite
//! single-net at a time and reports solves/sec for:
//!
//! * `reference@1` — the pre-refactor AoS kernel, single-threaded;
//! * `slab@1` — the SoA slab kernel, single-threaded (the headline
//!   kernel speedup is `slab@1` vs `reference@1`);
//! * `slab@2`, `slab@4` — the slab kernel with 2 and 4 intra-net
//!   workers solving sibling subtrees concurrently (bit-identical
//!   results at every count; on a 1-thread machine these rows record
//!   the scheduling overhead honestly).
//!
//! Results go to `BENCH_kernel.json` (current directory) together with
//! `hw_threads` so the scaling rows are self-describing.
//!
//! Run: `cargo run --release -p fastbuf-bench --bin kernel_throughput --
//!       [--nets N] [--max-sinks M] [--top K] [--seed S] [--repeats R]
//!       [--lib B] [--out FILE] [--quick]`

use std::time::{Duration, Instant};

use fastbuf_bench::{fmt_duration, print_table};
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::{Algorithm, Kernel, Solver};
use fastbuf_netgen::SuiteSpec;
use fastbuf_rctree::RoutingTree;

struct Options {
    nets: usize,
    max_sinks: usize,
    top: usize,
    seed: u64,
    repeats: usize,
    lib: usize,
    algo: Algorithm,
    out: String,
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: kernel_throughput [--nets N] [--max-sinks M] [--top K] [--seed S] \
         [--repeats R] [--lib B] [--algo A] [--out FILE] [--quick]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

fn parse_args() -> Options {
    // Defaults reproduce the committed `BENCH_kernel.json`: the two
    // largest nets of a 48-net suite (candidate lists long enough for
    // lane-wise kernels to matter) against the paper's largest Table 1
    // library, b = 64 — the struct-of-arrays payoff grows with `b`
    // because every buffer type rescans the same staircase.
    let mut opts = Options {
        nets: 48,
        max_sinks: 2048,
        top: 2,
        seed: 7,
        repeats: 15,
        lib: 64,
        algo: Algorithm::LiShi,
        out: "BENCH_kernel.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |what: &str| args.next().unwrap_or_else(|| usage(what));
        match arg.as_str() {
            "--nets" => {
                opts.nets = next("--nets needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --nets"))
            }
            "--max-sinks" => {
                opts.max_sinks = next("--max-sinks needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --max-sinks"))
            }
            "--top" => {
                opts.top = next("--top needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --top"))
            }
            "--seed" => {
                opts.seed = next("--seed needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --seed"))
            }
            "--repeats" => {
                opts.repeats = next("--repeats needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --repeats"))
            }
            "--lib" => {
                opts.lib = next("--lib needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --lib"))
            }
            "--algo" => {
                opts.algo = next("--algo needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --algo"))
            }
            "--out" => opts.out = next("--out needs a value"),
            "--quick" => {
                // CI smoke size: run the real pipeline in seconds.
                opts.nets = 8;
                opts.max_sinks = 48;
                opts.top = 2;
                opts.repeats = 1;
                opts.lib = 8;
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if opts.repeats == 0 || opts.nets == 0 || opts.top == 0 {
        usage("--repeats, --nets, and --top must be at least 1");
    }
    if opts.max_sinks < 8 {
        usage("--max-sinks must be at least 8");
    }
    if opts.lib == 0 {
        usage("--lib must be at least 1");
    }
    opts
}

/// One timed configuration: which kernel and how many intra-net workers.
struct Config {
    name: &'static str,
    kernel: Kernel,
    workers: usize,
}

/// Fastest-of-`repeats` time per config to solve every net in `nets` one
/// at a time (single-net solves, not a batch pool — this measures the
/// kernel).
///
/// The configs are timed **interleaved**: each repeat runs every config
/// once, round-robin, and each config keeps its own minimum. Timing them
/// back-to-back instead would hand the earlier configs whatever thermal
/// and frequency headroom the machine started with and charge the decay
/// to the later ones; interleaving spreads machine drift evenly, so the
/// recorded ratios survive a busy host.
///
/// Per repeat each config records wall time and, when the OS exposes
/// per-thread on-CPU accounting, the solving thread's on-CPU time (immune
/// to preemption, though not to frequency drift). With more than one
/// intra-net worker the solving thread blocks while workers run, so only
/// wall time is meaningful and the on-CPU reading is skipped.
fn time_configs(
    nets: &[RoutingTree],
    lib: &BufferLibrary,
    configs: &[Config],
    algo: Algorithm,
    repeats: usize,
) -> Vec<(Duration, Option<u64>)> {
    let mut best = vec![(Duration::MAX, None::<u64>); configs.len()];
    for _ in 0..repeats {
        for (cfg, slot) in configs.iter().zip(best.iter_mut()) {
            let cpu0 = fastbuf_bench::thread_cpu_ns();
            let start = Instant::now();
            for tree in nets {
                let sol = Solver::new(tree, lib)
                    .algorithm(algo)
                    .track_predecessors(false)
                    .kernel(cfg.kernel)
                    .intra_net_workers(cfg.workers)
                    .solve();
                std::hint::black_box(sol.slack);
            }
            slot.0 = slot.0.min(start.elapsed());
            if cfg.workers == 1 {
                if let (Some(a), Some(b)) = (cpu0, fastbuf_bench::thread_cpu_ns()) {
                    let spent = b.saturating_sub(a);
                    slot.1 = Some(slot.1.map_or(spent, |prev| prev.min(spent)));
                }
            }
        }
    }
    best
}

fn main() {
    let opts = parse_args();
    let suite = SuiteSpec {
        nets: opts.nets,
        max_sinks: opts.max_sinks,
        seed: opts.seed,
        ..SuiteSpec::default()
    };
    // Largest-first: the kernel numbers should come from the heavy tail
    // of the suite, where candidate lists are long enough to matter.
    let mut nets = suite.build();
    nets.sort_by_key(|t| std::cmp::Reverse(t.buffer_site_count()));
    nets.truncate(opts.top);
    let lib = BufferLibrary::paper_synthetic(opts.lib).expect("nonzero library");
    let total_sites: usize = nets.iter().map(|t| t.buffer_site_count()).sum();
    let largest = nets.first().map(|t| t.buffer_site_count()).unwrap_or(0);
    println!(
        "# kernel throughput: {} largest suite nets ({} total buffer positions, largest {}), \
         library {}, {} hardware threads\n",
        nets.len(),
        total_sites,
        largest,
        opts.lib,
        fastbuf_bench::hw_threads(),
    );

    let configs = [
        Config {
            name: "reference@1",
            kernel: Kernel::Reference,
            workers: 1,
        },
        Config {
            name: "slab@1",
            kernel: Kernel::Slab,
            workers: 1,
        },
        Config {
            name: "slab@2",
            kernel: Kernel::Slab,
            workers: 2,
        },
        Config {
            name: "slab@4",
            kernel: Kernel::Slab,
            workers: 4,
        },
    ];
    let mut rows = Vec::new();
    let mut measured: Vec<(&'static str, usize, f64, f64, Option<f64>)> = Vec::new();
    let mut reference_secs = None;
    let mut reference_cpu = None;
    let timed = time_configs(&nets, &lib, &configs, opts.algo, opts.repeats);
    for (cfg, (best, best_cpu)) in configs.iter().zip(timed) {
        let secs = best.as_secs_f64();
        let cpu_secs = best_cpu.map(|ns| ns as f64 / 1e9);
        let solves_per_sec = nets.len() as f64 / secs;
        let base = *reference_secs.get_or_insert(secs);
        if reference_cpu.is_none() {
            reference_cpu = cpu_secs;
        }
        let cpu_ratio = match (reference_cpu, cpu_secs) {
            (Some(r), Some(c)) => format!("{:.2}x", r / c),
            _ => "-".to_owned(),
        };
        rows.push(vec![
            cfg.name.to_owned(),
            fmt_duration(best),
            format!("{solves_per_sec:.1}"),
            format!("{:.2}x", base / secs),
            cpu_ratio,
        ]);
        measured.push((cfg.name, cfg.workers, secs, solves_per_sec, cpu_secs));
    }
    print_table(
        &[
            "config",
            "wall time",
            "solves/sec",
            "speedup vs reference@1",
            "on-cpu speedup",
        ],
        &rows,
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"hw_threads\": {},\n",
        fastbuf_bench::hw_threads()
    ));
    json.push_str(&format!("  \"nets\": {},\n", nets.len()));
    json.push_str(&format!("  \"largest_sites\": {largest},\n"));
    json.push_str(&format!("  \"total_sites\": {total_sites},\n"));
    json.push_str(&format!("  \"library\": {},\n", opts.lib));
    json.push_str(&format!("  \"algorithm\": \"{}\",\n", opts.algo));
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str(&format!("  \"repeats\": {},\n", opts.repeats));
    json.push_str("  \"runs\": [\n");
    for (k, (name, workers, secs, sps, cpu)) in measured.iter().enumerate() {
        let cpu_fields = match (measured[0].4, cpu) {
            (Some(ref_cpu), Some(cpu)) => format!(
                ", \"cpu_secs\": {:.6}, \"cpu_speedup_vs_reference\": {:.3}",
                cpu,
                ref_cpu / cpu
            ),
            _ => String::new(),
        };
        json.push_str(&format!(
            "    {{\"config\": \"{}\", \"intra_net_workers\": {}, \"secs\": {:.6}, \
             \"solves_per_sec\": {:.2}, \"speedup_vs_reference\": {:.3}{}}}{}\n",
            name,
            workers,
            secs,
            sps,
            measured[0].2 / secs,
            cpu_fields,
            if k + 1 < measured.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("warning: cannot write {}: {e}", opts.out);
    } else {
        println!("\nrecorded to {}", opts.out);
    }
}
