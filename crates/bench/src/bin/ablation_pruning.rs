//! Ablation **X1**: scratch-hull (`Algorithm::LiShi`, exact) vs the paper's
//! published permanent convex pruning (`Algorithm::LiShiPermanent`).
//!
//! The published pseudo-code frees convex-pruned candidates from the
//! propagated list. That is loss-free on 2-pin nets but can discard a
//! candidate that a later *branch merge* would have made optimal
//! (DESIGN.md §2.1). This harness quantifies both sides of the trade on
//! random multi-pin nets: how much faster permanent pruning is, and how
//! often / how much slack it gives up.
//!
//! Run: `cargo run --release -p fastbuf-bench --bin ablation_pruning`

use fastbuf_bench::{fmt_duration, print_table, time_solve, HarnessOptions};
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::Algorithm;
use fastbuf_netgen::RandomNetSpec;

fn main() {
    let opts = HarnessOptions::from_args();
    let lib = BufferLibrary::paper_synthetic(32).expect("b > 0");
    println!(
        "# Permanent vs scratch convex pruning (b = 32, scale {})\n",
        opts.scale
    );

    let mut rows = Vec::new();
    let mut nets = 0usize;
    let mut suboptimal = 0usize;
    let mut worst_gap = 0.0f64;
    for seed in 0..12u64 {
        let sinks = opts.sinks(200 + (seed as usize) * 37);
        let tree = RandomNetSpec {
            sinks,
            seed,
            ..RandomNetSpec::paper(sinks)
        }
        .build();
        let (t_exact, s_exact) = time_solve(&tree, &lib, Algorithm::LiShi, opts.repeats);
        let (t_perm, s_perm) = time_solve(&tree, &lib, Algorithm::LiShiPermanent, opts.repeats);
        let gap_ps = s_exact.slack.picos() - s_perm.slack.picos();
        nets += 1;
        if gap_ps > 1e-6 {
            suboptimal += 1;
            worst_gap = worst_gap.max(gap_ps);
        }
        rows.push(vec![
            seed.to_string(),
            sinks.to_string(),
            tree.buffer_site_count().to_string(),
            fmt_duration(t_exact),
            fmt_duration(t_perm),
            format!("{:.2}x", t_exact.as_secs_f64() / t_perm.as_secs_f64()),
            format!("{:.3}", gap_ps),
            s_perm.stats.convex_pruned.to_string(),
        ]);
    }
    print_table(
        &[
            "seed",
            "m",
            "n",
            "LiShi (exact)",
            "LiShi permanent",
            "perm speedup",
            "slack gap (ps)",
            "cands pruned",
        ],
        &rows,
    );
    println!(
        "\n{suboptimal}/{nets} nets lost slack to permanent pruning (worst gap {worst_gap:.3} ps)."
    );
    println!("Permanent pruning is the paper's published behaviour; the exact variant is the default here.");
}
