//! Slew-limit sweep: how the slew-constrained mode trades slack and buffer
//! count against the per-net output-slew limit.
//!
//! Solves one slew-stressed suite (`netgen::SuiteSpec { slew_stress: true,
//! .. }`) at a descending ladder of slew limits (∞ first, as the baseline
//! that must match unconstrained solving), prints a table, and records the
//! run in `BENCH_slew.json` so successive runs can be compared. Each row
//! reports worst slack, total buffers, measured worst slew (forward
//! evaluation, the ground truth), nets that could not meet the limit, and
//! wall time.
//!
//! Run: `cargo run --release -p fastbuf-bench --bin slew_sweep --
//!       [--nets N] [--max-sinks M] [--seed S] [--model NAME] [--out FILE]
//!       [--quick]`

use std::time::Instant;

use fastbuf_batch::BatchSolver;
use fastbuf_bench::print_table;
use fastbuf_buflib::units::Seconds;
use fastbuf_buflib::BufferLibrary;
use fastbuf_netgen::SuiteSpec;
use fastbuf_rctree::model_by_name;

struct Options {
    nets: usize,
    max_sinks: usize,
    seed: u64,
    model: String,
    out: String,
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: slew_sweep [--nets N] [--max-sinks M] [--seed S] [--model NAME] [--out FILE] [--quick]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

fn parse_args() -> Options {
    let mut opts = Options {
        nets: 60,
        max_sinks: 96,
        seed: 1,
        model: "elmore".to_owned(),
        out: "BENCH_slew.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |what: &str| args.next().unwrap_or_else(|| usage(what));
        match arg.as_str() {
            "--nets" => {
                opts.nets = next("--nets needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --nets"))
            }
            "--max-sinks" => {
                opts.max_sinks = next("--max-sinks needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --max-sinks"))
            }
            "--seed" => {
                opts.seed = next("--seed needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --seed"))
            }
            "--model" => opts.model = next("--model needs a value"),
            "--out" => opts.out = next("--out needs a value"),
            "--quick" => {
                // CI smoke size: exercises the whole pipeline in seconds.
                opts.nets = 12;
                opts.max_sinks = 24;
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if opts.nets == 0 {
        usage("--nets must be at least 1");
    }
    if opts.max_sinks < 8 {
        usage("--max-sinks must be at least 8");
    }
    opts
}

fn main() {
    let opts = parse_args();
    let model = model_by_name(&opts.model)
        .unwrap_or_else(|| usage(&format!("unknown delay model `{}`", opts.model)));
    let suite = SuiteSpec {
        nets: opts.nets,
        max_sinks: opts.max_sinks,
        seed: opts.seed,
        slew_stress: true,
        ..SuiteSpec::default()
    };
    let nets = suite.build();
    let lib = BufferLibrary::paper_synthetic(16).expect("nonzero library");
    println!(
        "# slew sweep: {} slew-stressed nets (seed {}), model {}\n",
        nets.len(),
        opts.seed,
        model.name()
    );

    // ∞ first: the baseline row must reproduce unconstrained solving.
    let limits_ps: [f64; 6] = [f64::INFINITY, 800.0, 400.0, 200.0, 100.0, 50.0];
    let mut rows = Vec::new();
    let mut measured: Vec<(f64, f64, usize, f64, usize, f64)> = Vec::new();
    for &limit_ps in &limits_ps {
        let t0 = Instant::now();
        let mut solver = BatchSolver::new(&nets, &lib).delay_model(model.clone());
        if limit_ps.is_finite() {
            solver = solver.slew_limit(Seconds::from_pico(limit_ps));
        }
        let report = solver.solve();
        let secs = t0.elapsed().as_secs_f64();
        let label = if limit_ps.is_finite() {
            format!("{limit_ps:.0} ps")
        } else {
            "unlimited".to_owned()
        };
        rows.push(vec![
            label,
            format!("{:.1} ps", report.wns_after.picos()),
            report.total_buffers.to_string(),
            format!("{:.1} ps", report.worst_slew.picos()),
            report.slew_violations.to_string(),
            format!("{:.1} ms", secs * 1e3),
        ]);
        measured.push((
            limit_ps,
            report.wns_after.picos(),
            report.total_buffers,
            report.worst_slew.picos(),
            report.slew_violations,
            secs,
        ));
    }
    print_table(
        &[
            "slew limit",
            "WNS after",
            "buffers",
            "worst slew",
            "infeasible",
            "wall time",
        ],
        &rows,
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"hw_threads\": {},\n",
        fastbuf_bench::hw_threads()
    ));
    json.push_str(&format!("  \"nets\": {},\n", nets.len()));
    json.push_str(&format!("  \"max_sinks\": {},\n", opts.max_sinks));
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str(&format!("  \"model\": \"{}\",\n", model.name()));
    json.push_str("  \"slew_stress\": true,\n");
    json.push_str("  \"runs\": [\n");
    for (k, (limit, wns, buffers, worst, infeasible, secs)) in measured.iter().enumerate() {
        let limit_json = if limit.is_finite() {
            format!("{limit}")
        } else {
            "null".to_owned()
        };
        json.push_str(&format!(
            "    {{\"slew_limit_ps\": {limit_json}, \"wns_after_ps\": {wns:.4}, \
             \"buffers\": {buffers}, \"worst_slew_ps\": {worst:.4}, \
             \"infeasible_nets\": {infeasible}, \"secs\": {secs:.6}}}{}\n",
            if k + 1 < measured.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("warning: cannot write {}: {e}", opts.out);
    } else {
        println!("\nrecorded to {}", opts.out);
    }
}
