//! CTS quality: skew and slack of the clock-tree pipeline across scales.
//!
//! For each sink count the bench generates a seeded placement, builds the
//! recursive-bipartition topology, and solves it twice with the skew-aware
//! DP: once unbounded (bit-identical to the plain max-slack solver; the
//! skew is merely reported) and once with the skew bound set to half the
//! unbounded skew, recording how much slack the tighter clock costs and
//! whether the pruned search still found a feasible solution.
//!
//! Results go to `BENCH_cts.json` (current directory) together with
//! `hw_threads`, matching the schema conventions of the other benches.
//!
//! Run: `cargo run --release -p fastbuf-bench --bin cts_quality --
//!       [--sizes N,N,...] [--seed S] [--repeats R] [--lib B] [--out FILE]
//!       [--quick]`

use std::time::{Duration, Instant};

use fastbuf_bench::{fmt_duration, print_table};
use fastbuf_buflib::units::Seconds;
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::skew::SkewSolver;
use fastbuf_netgen::{build_topology, CtsPlacementSpec, CtsTopologySpec};

struct Options {
    sizes: Vec<usize>,
    seed: u64,
    repeats: usize,
    lib: usize,
    out: String,
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: cts_quality [--sizes N,N,...] [--seed S] [--repeats R] [--lib B] \
         [--out FILE] [--quick]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

fn parse_args() -> Options {
    let mut opts = Options {
        sizes: vec![32, 64, 128, 256],
        seed: 1,
        repeats: 5,
        lib: 8,
        out: "BENCH_cts.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |what: &str| args.next().unwrap_or_else(|| usage(what));
        match arg.as_str() {
            "--sizes" => {
                opts.sizes = next("--sizes needs a value")
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| usage("bad --sizes")))
                    .collect()
            }
            "--seed" => {
                opts.seed = next("--seed needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --seed"))
            }
            "--repeats" => {
                opts.repeats = next("--repeats needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --repeats"))
            }
            "--lib" => {
                opts.lib = next("--lib needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --lib"))
            }
            "--out" => opts.out = next("--out needs a value"),
            "--quick" => {
                // CI smoke size: run the real pipeline in seconds.
                opts.sizes = vec![16, 32];
                opts.repeats = 1;
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if opts.repeats == 0 || opts.sizes.is_empty() {
        usage("--repeats and --sizes must be at least 1");
    }
    if opts.lib == 0 {
        usage("--lib must be at least 1");
    }
    opts
}

struct Row {
    sinks: usize,
    sites: usize,
    secs: f64,
    skew_ps: f64,
    slack_ps: f64,
    buffers: usize,
    bound_ps: f64,
    bounded_skew_ps: f64,
    bounded_slack_ps: f64,
    bounded_feasible: bool,
}

fn main() {
    let opts = parse_args();
    let lib = BufferLibrary::paper_synthetic(opts.lib).expect("nonzero library");
    println!(
        "# cts quality: sizes {:?}, library {}, seed {}, {} hardware threads\n",
        opts.sizes,
        opts.lib,
        opts.seed,
        fastbuf_bench::hw_threads(),
    );

    let mut measured = Vec::new();
    for &sinks in &opts.sizes {
        let placements = CtsPlacementSpec {
            sinks,
            seed: opts.seed,
            ..CtsPlacementSpec::default()
        }
        .generate();
        let topo =
            build_topology(&placements, &CtsTopologySpec::default()).expect("valid generated spec");
        let tree = &topo.tree;

        // Fastest-of-repeats for the unbounded (reporting) solve.
        let mut best = Duration::MAX;
        let mut sol = None;
        for _ in 0..opts.repeats {
            let start = Instant::now();
            let s = SkewSolver::new(tree, &lib).solve();
            best = best.min(start.elapsed());
            sol = Some(s);
        }
        let sol = sol.expect("repeats >= 1");

        // Tighten: half the free-running skew becomes the bound.
        let bound = Seconds::new(sol.skew.value() * 0.5);
        let bounded = SkewSolver::new(tree, &lib).max_skew(Some(bound)).solve();

        measured.push(Row {
            sinks,
            sites: tree.buffer_site_count(),
            secs: best.as_secs_f64(),
            skew_ps: sol.skew.picos(),
            slack_ps: sol.slack.picos(),
            buffers: sol.placements.len(),
            bound_ps: bound.picos(),
            bounded_skew_ps: bounded.skew.picos(),
            bounded_slack_ps: bounded.slack.picos(),
            bounded_feasible: bounded.skew_ok,
        });
    }

    let rows: Vec<Vec<String>> = measured
        .iter()
        .map(|r| {
            vec![
                r.sinks.to_string(),
                r.sites.to_string(),
                fmt_duration(Duration::from_secs_f64(r.secs)),
                format!("{:.2}", r.skew_ps),
                format!("{:.2}", r.slack_ps),
                r.buffers.to_string(),
                format!("{:.2}", r.bounded_skew_ps),
                format!("{:+.2}", r.bounded_slack_ps - r.slack_ps),
                if r.bounded_feasible { "yes" } else { "NO" }.to_owned(),
            ]
        })
        .collect();
    print_table(
        &[
            "sinks",
            "sites",
            "solve",
            "skew ps",
            "slack ps",
            "buffers",
            "skew@bound",
            "slack cost",
            "feasible",
        ],
        &rows,
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"hw_threads\": {},\n",
        fastbuf_bench::hw_threads()
    ));
    json.push_str(&format!("  \"library\": {},\n", opts.lib));
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str(&format!("  \"repeats\": {},\n", opts.repeats));
    json.push_str("  \"runs\": [\n");
    for (k, r) in measured.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"sinks\": {}, \"sites\": {}, \"secs\": {:.6}, \"skew_ps\": {:.4}, \
             \"slack_ps\": {:.4}, \"buffers\": {}, \"bound_ps\": {:.4}, \
             \"bounded_skew_ps\": {:.4}, \"bounded_slack_ps\": {:.4}, \
             \"bounded_feasible\": {}}}{}\n",
            r.sinks,
            r.sites,
            r.secs,
            r.skew_ps,
            r.slack_ps,
            r.buffers,
            r.bound_ps,
            r.bounded_skew_ps,
            r.bounded_slack_ps,
            r.bounded_feasible,
            if k + 1 < measured.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("warning: cannot write {}: {e}", opts.out);
    } else {
        println!("\nrecorded to {}", opts.out);
    }
}
