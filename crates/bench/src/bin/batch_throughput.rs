//! Batch throughput: nets/sec of `fastbuf-batch` vs worker count.
//!
//! Solves one reproducible heavy-tailed net suite (`netgen::SuiteSpec`)
//! with 1, 2, 4, and 8 workers, prints a table, and records the numbers in
//! `BENCH_batch.json` (written to the current directory) so successive
//! runs can be compared. Speedup is relative to the 1-worker run; on a
//! single-core machine all rows will be ~1×, which the JSON records
//! honestly together with the machine's available parallelism.
//!
//! Run: `cargo run --release -p fastbuf-bench --bin batch_throughput --
//!       [--nets N] [--max-sinks M] [--seed S] [--repeats K] [--out FILE]
//!       [--quick]`

use std::time::Duration;

use fastbuf_batch::BatchSolver;
use fastbuf_bench::{fmt_duration, print_table};
use fastbuf_buflib::BufferLibrary;
use fastbuf_netgen::SuiteSpec;

struct Options {
    nets: usize,
    max_sinks: usize,
    seed: u64,
    repeats: usize,
    out: String,
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: batch_throughput [--nets N] [--max-sinks M] [--seed S] [--repeats K] [--out FILE] [--quick]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

fn parse_args() -> Options {
    let mut opts = Options {
        nets: 100,
        max_sinks: 128,
        seed: 1,
        repeats: 3,
        out: "BENCH_batch.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |what: &str| args.next().unwrap_or_else(|| usage(what));
        match arg.as_str() {
            "--nets" => {
                opts.nets = next("--nets needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --nets"))
            }
            "--max-sinks" => {
                opts.max_sinks = next("--max-sinks needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --max-sinks"))
            }
            "--seed" => {
                opts.seed = next("--seed needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --seed"))
            }
            "--repeats" => {
                opts.repeats = next("--repeats needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --repeats"))
            }
            "--out" => opts.out = next("--out needs a value"),
            "--quick" => {
                // CI smoke size: run the real pipeline in seconds.
                opts.nets = 16;
                opts.max_sinks = 24;
                opts.repeats = 1;
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if opts.repeats == 0 {
        usage("--repeats must be at least 1");
    }
    if opts.nets == 0 {
        usage("--nets must be at least 1");
    }
    if opts.max_sinks < 8 {
        usage("--max-sinks must be at least 8");
    }
    opts
}

fn main() {
    let opts = parse_args();
    let suite = SuiteSpec {
        nets: opts.nets,
        max_sinks: opts.max_sinks,
        seed: opts.seed,
        ..SuiteSpec::default()
    };
    let nets = suite.build();
    let lib = BufferLibrary::paper_synthetic(16).expect("nonzero library");
    let total_sites: usize = nets.iter().map(|t| t.buffer_site_count()).sum();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "# batch throughput: {} nets, {} total buffer positions, {} hardware threads\n",
        nets.len(),
        total_sites,
        cores
    );

    let worker_counts = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    let mut measured: Vec<(usize, f64, f64)> = Vec::new(); // (workers, secs, nets/sec)
    let mut base_secs = None;
    for &workers in &worker_counts {
        // Fastest of `repeats` runs, like the paper-reproduction harnesses.
        let mut best = Duration::MAX;
        let mut nets_per_sec = 0.0;
        for _ in 0..opts.repeats {
            let report = BatchSolver::new(&nets, &lib)
                .workers(workers)
                .track_predecessors(false)
                .solve();
            if report.elapsed < best {
                best = report.elapsed;
                nets_per_sec = report.nets_per_sec();
            }
        }
        let secs = best.as_secs_f64();
        let base = *base_secs.get_or_insert(secs);
        rows.push(vec![
            workers.to_string(),
            fmt_duration(best),
            format!("{nets_per_sec:.0}"),
            format!("{:.2}x", base / secs),
        ]);
        measured.push((workers, secs, nets_per_sec));
    }
    print_table(&["workers", "wall time", "nets/sec", "speedup vs 1"], &rows);

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"hw_threads\": {},\n",
        fastbuf_bench::hw_threads()
    ));
    json.push_str(&format!("  \"nets\": {},\n", nets.len()));
    json.push_str(&format!("  \"total_sites\": {total_sites},\n"));
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str(&format!("  \"repeats\": {},\n", opts.repeats));
    json.push_str(&format!("  \"hardware_threads\": {cores},\n"));
    json.push_str("  \"runs\": [\n");
    for (k, (workers, secs, nps)) in measured.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"secs\": {:.6}, \"nets_per_sec\": {:.2}, \"speedup\": {:.3}}}{}\n",
            workers,
            secs,
            nps,
            measured[0].1 / secs,
            if k + 1 < measured.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("warning: cannot write {}: {e}", opts.out);
    } else {
        println!("\nrecorded to {}", opts.out);
    }
}
