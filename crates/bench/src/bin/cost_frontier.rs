//! Extension **X4**: the slack-vs-cost Pareto frontier.
//!
//! The paper's conclusion notes the algorithm "can also be applied to
//! reduce buffer cost". This harness runs the cost-bounded solver
//! (`fastbuf_core::cost::CostSolver`) on a medium net and prints the
//! frontier: for each total buffer cost, the best achievable slack. The
//! first row is the unbuffered net; the last matches the unconstrained
//! solver's optimum.
//!
//! Run: `cargo run --release -p fastbuf-bench --bin cost_frontier`

use fastbuf_bench::{paper_net, print_table, HarnessOptions};
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::cost::CostSolver;
use fastbuf_core::Solver;

fn main() {
    let opts = HarnessOptions::from_args();
    let m = opts.sinks(128);
    let tree = paper_net(m, Some(m * 8));
    let lib = BufferLibrary::paper_synthetic(8).expect("b > 0");
    println!(
        "# Slack-vs-cost frontier: m = {}, n = {}, b = {}\n",
        m,
        tree.buffer_site_count(),
        lib.len()
    );

    let frontier = CostSolver::new(&tree, &lib)
        .max_cost(200)
        .solve()
        .expect("integer costs");
    let unconstrained = Solver::new(&tree, &lib).solve();

    let mut rows = Vec::new();
    let best = frontier.points.last().expect("frontier is never empty");
    for p in &frontier.points {
        rows.push(vec![
            p.cost.to_string(),
            p.placements.len().to_string(),
            format!("{:.1}", p.slack.picos()),
            format!(
                "{:.1}%",
                100.0 * (p.slack.picos() - frontier.points[0].slack.picos())
                    / (best.slack.picos() - frontier.points[0].slack.picos()).max(1e-9)
            ),
        ]);
    }
    print_table(
        &["cost", "buffers", "slack (ps)", "% of max improvement"],
        &rows,
    );
    println!(
        "\nUnconstrained optimum: {:.1} ps at cost {:.0}; frontier max: {:.1} ps at cost {}.",
        unconstrained.slack.picos(),
        unconstrained.total_cost(&lib),
        best.slack.picos(),
        best.cost
    );
    println!("Note how most of the improvement is available at a fraction of the maximum cost.");
}
