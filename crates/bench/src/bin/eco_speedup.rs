//! ECO re-solve throughput: incremental (subtree-cached) vs from-scratch
//! solves/sec under edit scripts of varying locality.
//!
//! Takes the **largest net of a netgen suite** (the net that dominates a
//! fleet's ECO turnaround), generates reproducible edit scripts at 1%, 10%
//! and 50% locality, and replays each script twice:
//!
//! * **incremental** — `IncrementalSolver::solve` after every edit: only
//!   the edited root paths recompute, cached sibling subtrees splice into
//!   merges unchanged;
//! * **scratch** — a full `Solver::solve` of the edited tree after every
//!   edit (what callers did before `fastbuf-incremental`).
//!
//! Every pair of results is asserted bit-identical (slack bits and
//! placements) before any time is reported — the benchmark doubles as a
//! release-mode differential check. Results go to `BENCH_eco.json`.
//!
//! Run: `cargo run --release -p fastbuf-bench --bin eco_speedup --
//!       [--nets N] [--max-sinks M] [--edits K] [--seed S] [--lib B]
//!       [--out FILE] [--quick]`

use std::time::Instant;

use fastbuf_bench::{fmt_duration, print_table};
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::SolverOptions;
use fastbuf_incremental::{EditScriptSpec, IncrementalSolver};
use fastbuf_netgen::SuiteSpec;

struct Options {
    nets: usize,
    max_sinks: usize,
    edits: usize,
    seed: u64,
    lib: usize,
    out: String,
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: eco_speedup [--nets N] [--max-sinks M] [--edits K] [--seed S] [--lib B] [--out FILE] [--quick]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

fn parse_args() -> Options {
    let mut opts = Options {
        nets: 100,
        max_sinks: 256,
        edits: 200,
        seed: 1,
        lib: 16,
        out: "BENCH_eco.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |what: &str| args.next().unwrap_or_else(|| usage(what));
        match arg.as_str() {
            "--nets" => {
                opts.nets = next("--nets needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --nets"))
            }
            "--max-sinks" => {
                opts.max_sinks = next("--max-sinks needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --max-sinks"))
            }
            "--edits" => {
                opts.edits = next("--edits needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --edits"))
            }
            "--seed" => {
                opts.seed = next("--seed needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --seed"))
            }
            "--lib" => {
                opts.lib = next("--lib needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --lib"))
            }
            "--out" => opts.out = next("--out needs a value"),
            "--quick" => {
                // CI smoke size: the real pipeline in seconds.
                opts.nets = 12;
                opts.max_sinks = 48;
                opts.edits = 25;
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if opts.edits == 0 || opts.nets == 0 || opts.max_sinks < 8 || opts.lib == 0 {
        usage("--edits/--nets/--lib must be positive and --max-sinks at least 8");
    }
    opts
}

fn main() {
    let opts = parse_args();
    let spec = SuiteSpec {
        nets: opts.nets,
        max_sinks: opts.max_sinks,
        seed: opts.seed,
        ..SuiteSpec::default()
    };
    // The largest net of the suite (by node count) is the ECO workload.
    let tree = (0..spec.nets)
        .map(|i| spec.build_net(i))
        .max_by_key(|t| t.node_count())
        .expect("suite has at least one net");
    let lib = BufferLibrary::paper_synthetic(opts.lib).expect("nonzero library");
    println!(
        "# eco speedup: largest of {} suite nets -> {} sinks, {} sites, {} nodes; {} edits, b = {}\n",
        opts.nets,
        tree.sink_count(),
        tree.buffer_site_count(),
        tree.node_count(),
        opts.edits,
        lib.len(),
    );

    let mut rows = Vec::new();
    let mut measured: Vec<(f64, usize, f64, f64, u64, u64)> = Vec::new();
    for locality in [0.01f64, 0.10, 0.50] {
        let script = EditScriptSpec {
            edits: opts.edits,
            locality,
            seed: opts.seed,
            swap_library_every: 0,
        }
        .generate(&tree);

        // Incremental replay (baseline solve warms the cache, untimed —
        // steady-state ECO throughput is the quantity of interest).
        let mut inc = IncrementalSolver::new(tree.clone(), lib.clone())
            .with_options(SolverOptions::default());
        let _ = inc.solve();
        let mut inc_slacks = Vec::with_capacity(script.len());
        let mut inc_placements = Vec::with_capacity(script.len());
        let mut recomputed = 0u64;
        let mut reused = 0u64;
        let t0 = Instant::now();
        for edit in &script {
            inc.apply(edit).expect("generated edits are valid");
            let sol = inc.solve();
            recomputed += sol.stats.nodes_recomputed;
            reused += sol.stats.nodes_reused;
            inc_slacks.push(sol.slack.value().to_bits());
            inc_placements.push(sol.placements);
        }
        let inc_wall = t0.elapsed();

        // Scratch replay on an identical solver (cache never consulted).
        let mut scratch = IncrementalSolver::new(tree.clone(), lib.clone())
            .with_options(SolverOptions::default());
        let mut scratch_slacks = Vec::with_capacity(script.len());
        let mut scratch_placements = Vec::with_capacity(script.len());
        let t0 = Instant::now();
        for edit in &script {
            scratch.apply(edit).expect("generated edits are valid");
            let sol = scratch.solve_scratch();
            scratch_slacks.push(sol.slack.value().to_bits());
            scratch_placements.push(sol.placements);
        }
        let scratch_wall = t0.elapsed();

        assert_eq!(
            inc_slacks, scratch_slacks,
            "incremental and scratch slacks must be bit-identical"
        );
        assert_eq!(
            inc_placements, scratch_placements,
            "incremental and scratch placements must be identical"
        );

        let solves = script.len() as f64;
        let inc_rate = solves / inc_wall.as_secs_f64().max(1e-12);
        let scratch_rate = solves / scratch_wall.as_secs_f64().max(1e-12);
        let speedup = scratch_wall.as_secs_f64() / inc_wall.as_secs_f64().max(1e-12);
        rows.push(vec![
            format!("{:.0}%", locality * 100.0),
            fmt_duration(inc_wall),
            format!("{inc_rate:.0}"),
            fmt_duration(scratch_wall),
            format!("{scratch_rate:.0}"),
            format!("{speedup:.2}x"),
            format!(
                "{:.1}%",
                100.0 * reused as f64 / (recomputed + reused).max(1) as f64
            ),
        ]);
        measured.push((
            locality,
            script.len(),
            inc_wall.as_secs_f64(),
            scratch_wall.as_secs_f64(),
            recomputed,
            reused,
        ));
    }
    print_table(
        &[
            "locality",
            "inc wall",
            "inc solves/s",
            "scratch wall",
            "scr solves/s",
            "speedup",
            "nodes reused",
        ],
        &rows,
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"hw_threads\": {},\n",
        fastbuf_bench::hw_threads()
    ));
    json.push_str(&format!(
        "  \"net\": {{\"sinks\": {}, \"sites\": {}, \"nodes\": {}}},\n",
        tree.sink_count(),
        tree.buffer_site_count(),
        tree.node_count()
    ));
    json.push_str(&format!("  \"suite_nets\": {},\n", opts.nets));
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str(&format!("  \"library\": {},\n", opts.lib));
    json.push_str("  \"runs\": [\n");
    for (i, (locality, edits, inc, scr, recomputed, reused)) in measured.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"locality\": {locality}, \"edits\": {edits}, \
             \"incremental_secs\": {inc:.6}, \"scratch_secs\": {scr:.6}, \
             \"incremental_solves_per_sec\": {:.1}, \"scratch_solves_per_sec\": {:.1}, \
             \"speedup\": {:.3}, \"nodes_recomputed\": {recomputed}, \"nodes_reused\": {reused}}}{}\n",
            *edits as f64 / inc.max(1e-12),
            *edits as f64 / scr.max(1e-12),
            scr / inc.max(1e-12),
            if i + 1 < measured.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("warning: cannot write {}: {e}", opts.out);
    } else {
        println!("\nrecorded to {}", opts.out);
    }
}
