//! Shared infrastructure for the benchmark harnesses reproducing the
//! evaluation section of Li & Shi, DATE 2005.
//!
//! Binaries (run with `cargo run --release -p fastbuf-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — runtime of Lillis vs Li–Shi on three nets × library sizes {8, 16, 32, 64} |
//! | `fig3` | Figure 3 — normalized runtime vs library size `b` on the 1944-sink net |
//! | `fig4` | Figure 4 — normalized runtime vs buffer positions `n` at `b = 32` |
//! | `ablation_pruning` | scratch-hull vs paper's permanent convex pruning (runtime + slack gap) |
//! | `ablation_counters` | machine-independent `AddBuffer` work counters vs `b` |
//! | `clustering_quality` | library clustering (Alpert et al.) quality loss vs solving the full library |
//! | `cost_frontier` | slack-vs-cost Pareto frontier (the paper's cost extension) |
//! | `batch_throughput` | nets/sec of the `fastbuf-batch` worker pool at 1/2/4/8 workers (writes `BENCH_batch.json`) |
//! | `slew_sweep` | slack / buffer-count / feasibility trade-off vs the per-net slew limit (writes `BENCH_slew.json`) |
//! | `eco_speedup` | incremental vs from-scratch solves/sec under edit scripts at 1/10/50% locality (writes `BENCH_eco.json`) |
//! | `server_throughput` | requests/sec of the resident `fastbuf serve` daemon at 1/2/4/8 concurrent clients, warm session vs cold per-request process spawn (writes `BENCH_server.json`) |
//!
//! Every harness accepts `--scale <f>` (shrink sink counts for quick runs;
//! default 0.25) or `--full` (exact paper sizes), plus `--repeats <k>`.
//! The JSON-recording harnesses (`batch_throughput`, `slew_sweep`) accept
//! `--quick` instead, a seconds-scale smoke size used by CI.
//! Criterion micro-benchmarks for the individual DP operations live in
//! `benches/`.

use std::time::{Duration, Instant};

use fastbuf_buflib::BufferLibrary;
use fastbuf_core::{Algorithm, Solution, Solver};
use fastbuf_netgen::RandomNetSpec;
use fastbuf_rctree::RoutingTree;

/// Sink counts of the paper's three industrial nets.
pub const PAPER_SINKS: [usize; 3] = [337, 1944, 2676];

/// Library sizes of the paper's Table 1 / Figure 3.
pub const PAPER_LIB_SIZES: [usize; 4] = [8, 16, 32, 64];

/// Buffer-position count of the paper's 1944-sink net (Figure 3/4 caption).
pub const PAPER_POSITIONS_1944: usize = 33_133;

/// Common command-line options of the harness binaries.
#[derive(Clone, Debug)]
pub struct HarnessOptions {
    /// Multiplier on the paper's sink counts (1.0 = full scale).
    pub scale: f64,
    /// Timing repetitions (fastest run is reported).
    pub repeats: usize,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            scale: 0.25,
            repeats: 1,
        }
    }
}

impl HarnessOptions {
    /// Parses `--scale <f>`, `--full`, `--repeats <k>` from `std::env::args`.
    /// Exits with a usage message on unknown flags.
    pub fn from_args() -> Self {
        let mut opts = HarnessOptions::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => opts.scale = 1.0,
                "--scale" => {
                    opts.scale = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--scale needs a number"));
                }
                "--repeats" => {
                    opts.repeats = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--repeats needs an integer"));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag `{other}`")),
            }
        }
        opts
    }

    /// A paper sink count scaled by `--scale` (at least 8 sinks).
    pub fn sinks(&self, paper_m: usize) -> usize {
        ((paper_m as f64 * self.scale) as usize).max(8)
    }

    /// The paper position count scaled by `--scale` (at least 64).
    pub fn positions(&self, paper_n: usize) -> usize {
        ((paper_n as f64 * self.scale) as usize).max(64)
    }
}

/// Hardware thread count of the machine running the benchmark, as stamped
/// into every `BENCH_*.json` so recorded numbers are self-describing (a
/// 1-thread container and a 32-thread workstation produce very different
/// scaling rows). Falls back to 1 when the OS cannot say.
pub fn hw_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Nanoseconds the calling thread has spent on-CPU
/// (`clock_gettime(CLOCK_THREAD_CPUTIME_ID)`). Unlike wall clocks this is
/// immune to preemption by other tenants of a shared machine, so
/// single-threaded kernel comparisons stay meaningful under load. The
/// workspace links no libc, so on x86_64 Linux the clock is read with a
/// raw `clock_gettime` syscall; elsewhere this returns `None` and callers
/// should fall back to wall time.
pub fn thread_cpu_ns() -> Option<u64> {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        const SYS_CLOCK_GETTIME: i64 = 228;
        const CLOCK_THREAD_CPUTIME_ID: i64 = 3;
        let mut ts = [0i64; 2]; // struct timespec { tv_sec, tv_nsec }
        let ret: i64;
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") SYS_CLOCK_GETTIME => ret,
                in("rdi") CLOCK_THREAD_CPUTIME_ID,
                in("rsi") ts.as_mut_ptr(),
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        (ret == 0).then(|| ts[0] as u64 * 1_000_000_000 + ts[1] as u64)
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    {
        None
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <harness> [--full | --scale <f>] [--repeats <k>]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

/// Builds the synthetic stand-in for one of the paper's nets with a target
/// buffer-position count (defaults to paper density when `None`).
pub fn paper_net(sinks: usize, positions: Option<usize>) -> RoutingTree {
    let spec = RandomNetSpec::paper(sinks);
    match positions {
        None => spec.build(),
        Some(n) => spec.with_target_positions(n).build(),
    }
}

/// Times `algorithm` on `(tree, lib)` with predecessor tracking off (pure
/// DP timing, matching how the paper measures) and returns the fastest of
/// `repeats` runs together with the last solution.
pub fn time_solve(
    tree: &RoutingTree,
    lib: &BufferLibrary,
    algorithm: Algorithm,
    repeats: usize,
) -> (Duration, Solution) {
    assert!(repeats > 0, "at least one repetition required");
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let sol = Solver::new(tree, lib)
            .algorithm(algorithm)
            .track_predecessors(false)
            .solve();
        best = best.min(start.elapsed());
        last = Some(sol);
    }
    (best, last.expect("repeats > 0"))
}

/// Formats a duration in engineering style (`412 us`, `1.73 s`).
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.0} us", s * 1e6)
    }
}

/// Prints a markdown table: a header row then aligned rows.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:>w$} |", c, w = widths[i]));
        }
        println!("{s}");
    };
    line(header.iter().map(|s| s.to_string()).collect());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_net_respects_target_positions() {
        let t = paper_net(64, Some(600));
        let got = t.buffer_site_count();
        assert!((got as f64 - 600.0).abs() / 600.0 < 0.3, "got {got}");
    }

    #[test]
    fn time_solve_returns_solution() {
        let t = paper_net(16, Some(100));
        let lib = BufferLibrary::paper_synthetic(4).unwrap();
        let (d, sol) = time_solve(&t, &lib, Algorithm::LiShi, 2);
        assert!(d > Duration::ZERO);
        assert!(!sol.tracked);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(412)), "412 us");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs_f64(1.734)), "1.73 s");
    }

    #[test]
    fn scaled_sizes() {
        let o = HarnessOptions {
            scale: 0.25,
            repeats: 1,
        };
        assert_eq!(o.sinks(1944), 486);
        assert_eq!(o.sinks(8), 8);
        assert_eq!(o.positions(33_133), 8283);
    }
}
