//! `fastbuf` — command-line buffer insertion.
//!
//! ```text
//! fastbuf gen net   [--kind random|line|htree|caterpillar] [--sinks N] [--sites N]
//!                   [--seed S] [--pitch UM] [-o FILE]
//! fastbuf gen lib   [--size B] [--jitter SEED] [-o FILE]
//! fastbuf gen suite --out-dir DIR [--nets N] [--max-sinks M] [--seed S] [--pitch UM]
//!                   [--slew-stress]
//! fastbuf info      --net FILE
//! fastbuf solve     --net FILE --lib FILE [--algo lishi|lillis|lishi-permanent]
//!                   [--slew-limit PS] [--model elmore|scaled-elmore]
//!                   [--placements] [--stats] [--no-verify]
//! fastbuf batch     (--dir DIR | --manifest FILE) --lib FILE [--algo A] [--workers N]
//!                   [--slew-limit PS] [--model M] [--json FILE] [--placements]
//!                   [--per-net] [--check] [--no-verify]
//! fastbuf frontier  --net FILE --lib FILE [--max-cost W]
//! fastbuf serve     (--stdio | --port N) [--host H] [--workers N] [--max-designs N]
//!                   [--max-inflight N] [--deadline-ms MS] [--model M]
//!                   [--preload ID=NET,LIB]
//! ```
//!
//! `--slew-limit` runs the slew-constrained mode: candidates whose stage
//! would exceed the limit (in ps) at any buffer input or sink are pruned,
//! and reports carry measured worst slews. `--model` selects the delay
//! backend (`elmore` default, `scaled-elmore` for the D2M-style scaled
//! wire metric).
//!
//! `batch` solves every net of a directory or manifest in parallel through
//! `fastbuf-batch` and emits per-net + aggregate results (optionally as
//! JSON); `gen suite` writes a reproducible heavy-tailed net fleet for it.
//!
//! `serve` keeps sessions resident and speaks the newline-delimited JSON
//! v1 envelope of `docs/PROTOCOL.md` over TCP or stdin/stdout.
//!
//! Nets and libraries use the plain-text formats of `fastbuf_rctree::io`
//! and `fastbuf_buflib::BufferLibrary::{to_text, from_text}`.
//!
//! Exit codes are documented in `fastbuf --help`: 0 success, 2 usage or
//! failed check, 3 I/O, and 10–24 for the typed solver errors (one
//! distinct code per `SolveError` variant).

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.code)
        }
    }
}
