//! Subcommand implementations, one module per subcommand.
//!
//! This module owns the shared surface — [`USAGE`], [`CliError`], the
//! [`run`] dispatcher, and the flag-loading helpers — while each
//! subcommand lives in its own file (`solve.rs`, `batch.rs`, `eco.rs`,
//! `serve.rs`, `gen.rs`, …).

use std::fs;
use std::sync::Arc;

use fastbuf_api::SolveError;
use fastbuf_buflib::units::Seconds;
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::DelayModel;
use fastbuf_rctree::{io as netio, RoutingTree};

use crate::args::Flags;

mod batch;
mod cts;
mod eco;
mod frontier;
mod gen;
mod global;
mod info;
mod serve;
mod solve;
#[cfg(test)]
mod tests;

const USAGE: &str = "usage:
  fastbuf gen net   [--kind random|line|htree|caterpillar] [--sinks N] [--sites N]
                    [--seed S] [--pitch UM] [--length UM] [--levels L] [-o FILE]
  fastbuf gen lib   [--size B] [--jitter SEED] [-o FILE]
  fastbuf gen suite --out-dir DIR [--nets N] [--max-sinks M] [--seed S] [--pitch UM]
                    [--slew-stress]
  fastbuf info      --net FILE
  fastbuf solve     --net FILE --lib FILE [--algo lishi|lillis|lishi-permanent]
                    [--slew-limit PS] [--model elmore|scaled-elmore]
                    [--scenarios FILE] [--json FILE]
                    [--variation FILE] [--samples N] [--quantile Q]
                    [--intra-workers N]
                    [--placements] [--stats] [--no-verify]
                    (--scenarios runs every corner of FILE; lines are
                     `name [model=M] [slew-limit-ps=N] [derate=F] [algo=A]`.
                     --model/--algo become the defaults for lines that do
                     not set their own; --slew-limit conflicts with
                     --scenarios. --json writes per-corner records in the
                     same schema as `batch --json`.
                     --variation runs a Monte-Carlo yield sweep instead:
                     FILE is a `parse_variation` spec, --samples (default
                     64) dice are solved through per-worker warm subtree
                     caches, and the slack distribution plus the --quantile
                     (default 0.5) slack are reported per corner.
                     --intra-workers N solves sibling subtrees of one net
                     concurrently; results are bit-identical at any N.)
  fastbuf batch     (--dir DIR | --manifest FILE) --lib FILE [--algo A] [--workers N]
                    [--slew-limit PS] [--model M] [--json FILE] [--placements]
                    [--per-net] [--check] [--no-verify]
  fastbuf eco       --net FILE --lib FILE (--edits FILE | --random N)
                    [--locality F] [--seed S] [--algo A] [--model M]
                    [--slew-limit PS] [--check] [--per-edit] [--json FILE]
                    [--emit-edits FILE]
                    (applies each edit and re-solves incrementally through
                     the subtree cache; --check re-solves from scratch after
                     every edit and fails on any non-bit-identical result.
                     --random N generates a reproducible N-edit script at
                     --locality (default 0.1); --emit-edits saves it.)
  fastbuf frontier  --net FILE --lib FILE [--max-cost W]
  fastbuf cts       --lib FILE (--placements FILE | [--sinks N] [--seed S] [--span UM])
                    [--pitch UM] [--max-skew PS] [--algo A] [--inverters]
                    [--emit-placements FILE] [--show-placements] [--json FILE]
                    [--no-verify]
                    (clock-tree synthesis: reads `sink <x> <y> <cap> <rat>`
                     placements (or generates --sinks of them on a --span
                     die), builds a recursive-bipartition topology with
                     buffer sites every --pitch um (0 = merge taps only),
                     and solves skew-aware: skew is tracked through the
                     candidate recursion and bounded by --max-skew; exits 2
                     if no candidate meets the bound. --inverters routes
                     buffering through the polarity DP instead (all sinks
                     kept positive) and measures skew post hoc.)
  fastbuf global    --lib FILE [--nets N] [--pool N] [--sites-per-net N] [--seed S]
                    [--cap N] [--capacity FILE] [--max-iters N] [--workers N]
                    [--step-ps PS] [--growth F] [--scratch] [--algo A] [--model M]
                    [--history] [--per-site] [--json FILE]
                    (design-level resource-constrained buffering: a seeded
                     fleet of nets contends for a shared pool of physical
                     buffer sites, and a Lagrangian pricing loop re-solves
                     each net optimally against per-site prices until no
                     site exceeds its capacity. --capacity overrides the
                     uniform --cap (default 1) with `site <id> <capacity>`
                     lines; --scratch disables the warm per-net caches;
                     exits 2 if the --max-iters cap is hit infeasible.)
  fastbuf serve     (--stdio | --port N) [--host H] [--workers N]
                    [--max-designs N] [--max-inflight N] [--deadline-ms MS]
                    [--model M] [--preload ID=NET,LIB]
                    (resident solve server speaking the newline-delimited
                     JSON v1 envelope of docs/PROTOCOL.md over TCP or
                     stdin/stdout; keeps warm per-design sessions and ECO
                     caches, LRU-evicted beyond --max-designs.)

exit codes:
  0 success | 2 usage, validation, or failed --check | 3 I/O
  solver errors map one variant to one code:
  10 no-scenarios | 11 duplicate-scenario | 12 invalid-derate
  13 invalid-slew-limit | 14 unsupported | 15 cost | 16 polarity
  17 verify | 18 scenario-parse | 19 unknown-model | 20 edit
  21 no-samples | 22 invalid-quantile | 23 variation-parse
  24 invalid-variation | 25 invalid-skew-bound";

/// A CLI failure: what to print on stderr and the process exit code.
///
/// Usage and validation errors exit 2, I/O failures exit 3, and typed
/// solver errors carry the distinct per-variant codes of
/// [`SolveError::exit_code`] (10–25) — the same mapping `fastbuf --help`
/// documents and the server reports as kebab-case `error.code` strings.
#[derive(Debug)]
pub struct CliError {
    /// Process exit code (never 0).
    pub code: u8,
    /// Message for stderr (printed as `error: {message}`).
    pub message: String,
}

impl CliError {
    /// Whether the message mentions `needle` (assertion convenience).
    #[cfg(test)]
    pub fn contains(&self, needle: &str) -> bool {
        self.message.contains(needle)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError { code: 2, message }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError {
            code: 2,
            message: message.to_owned(),
        }
    }
}

impl From<SolveError> for CliError {
    fn from(e: SolveError) -> Self {
        CliError {
            code: e.exit_code(),
            message: e.to_string(),
        }
    }
}

/// An I/O failure: exit code 3.
fn io_error(message: String) -> CliError {
    CliError { code: 3, message }
}

/// Dispatches `argv` to a subcommand.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    match argv.first().map(String::as_str) {
        Some("gen") => match argv.get(1).map(String::as_str) {
            Some("net") => gen::gen_net(&argv[2..]),
            Some("lib") => gen::gen_lib(&argv[2..]),
            Some("suite") => gen::gen_suite(&argv[2..]),
            _ => Err(format!("`gen` needs `net`, `lib`, or `suite`\n{USAGE}").into()),
        },
        Some("info") => info::info(&argv[1..]),
        Some("solve") => solve::solve(&argv[1..]),
        Some("batch") => batch::batch(&argv[1..]),
        Some("eco") => eco::eco(&argv[1..]),
        Some("frontier") => frontier::frontier(&argv[1..]),
        Some("cts") => cts::cts(&argv[1..]),
        Some("global") => global::global(&argv[1..]),
        Some("serve") => serve::serve(&argv[1..]),
        Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}").into()),
    }
}

fn emit(flags: &Flags, content: &str) -> Result<(), CliError> {
    match flags.value("o") {
        None => {
            print!("{content}");
            Ok(())
        }
        Some(path) => {
            fs::write(path, content).map_err(|e| io_error(format!("cannot write `{path}`: {e}")))
        }
    }
}

fn load_net(flags: &Flags) -> Result<RoutingTree, CliError> {
    let path = flags.required("net")?;
    let text =
        fs::read_to_string(path).map_err(|e| io_error(format!("cannot read `{path}`: {e}")))?;
    netio::parse(&text).map_err(|e| format!("{path}: {e}").into())
}

/// Parses `--model` into a delay model (default Elmore).
fn load_model(flags: &Flags) -> Result<Arc<dyn DelayModel>, CliError> {
    match flags.value("model") {
        None => Ok(fastbuf_rctree::model_by_name("elmore").expect("elmore always exists")),
        Some(name) => fastbuf_rctree::model_by_name(name).ok_or_else(|| {
            format!("unknown delay model `{name}` (expected elmore or scaled-elmore)").into()
        }),
    }
}

/// Parses `--slew-limit` (picoseconds) into an optional limit.
fn load_slew_limit(flags: &Flags) -> Result<Option<Seconds>, CliError> {
    match flags.value("slew-limit") {
        None => Ok(None),
        Some(v) => {
            let ps: f64 = v
                .parse()
                .map_err(|_| format!("flag `--slew-limit`: cannot parse `{v}`"))?;
            if !ps.is_finite() || ps <= 0.0 {
                return Err("--slew-limit must be a positive number of picoseconds".into());
            }
            Ok(Some(Seconds::from_pico(ps)))
        }
    }
}

fn load_lib(flags: &Flags) -> Result<BufferLibrary, CliError> {
    let path = flags.required("lib")?;
    let text =
        fs::read_to_string(path).map_err(|e| io_error(format!("cannot read `{path}`: {e}")))?;
    BufferLibrary::from_text(&text).map_err(|e| format!("{path}: {e}").into())
}
