//! `fastbuf frontier`: the slack-vs-cost Pareto frontier.

use fastbuf_api::SolveError;
use fastbuf_core::cost::CostSolver;

use super::{load_lib, load_net, CliError};
use crate::args::Flags;

pub(super) fn frontier(argv: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(argv, &["net", "lib", "max-cost"], &[])?;
    let tree = load_net(&flags)?;
    let lib = load_lib(&flags)?;
    let max_cost = flags.parsed_or("max-cost", 64u32)?;
    let frontier = CostSolver::new(&tree, &lib)
        .max_cost(max_cost)
        .solve()
        .map_err(|e| CliError::from(SolveError::Cost(e)))?;
    println!("{:>8} {:>9} {:>16}", "cost", "buffers", "slack");
    for p in &frontier.points {
        println!(
            "{:>8} {:>9} {:>16}",
            p.cost,
            p.placements.len(),
            p.slack.to_string()
        );
    }
    let base = frontier.points.first().expect("never empty");
    let best = frontier.points.last().expect("never empty");
    println!(
        "\nimprovement {} over unbuffered at cost {}",
        best.slack - base.slack,
        best.cost
    );
    Ok(())
}
