//! `fastbuf serve`: the resident solve server (TCP or stdio).

use std::fs;

use fastbuf_api::Session;
use fastbuf_buflib::BufferLibrary;
use fastbuf_rctree::io as netio;

use super::{io_error, load_model, CliError, USAGE};
use crate::args::Flags;

pub(super) fn serve(argv: &[String]) -> Result<(), CliError> {
    use fastbuf_server::{Server, ServerConfig};

    let flags = Flags::parse(
        argv,
        &[
            "port",
            "host",
            "workers",
            "max-designs",
            "max-inflight",
            "deadline-ms",
            "preload",
            "model",
        ],
        &["stdio"],
    )?;

    let mut config = ServerConfig::default();
    if let Some(w) = flags.value("workers") {
        let w: usize = w.parse().map_err(|_| "bad --workers".to_string())?;
        if w == 0 {
            return Err("--workers must be at least 1".into());
        }
        config.workers = w;
    }
    config.max_designs = flags.parsed_or("max-designs", config.max_designs)?;
    if config.max_designs == 0 {
        return Err("--max-designs must be at least 1".into());
    }
    config.max_inflight = flags.parsed_or("max-inflight", config.max_inflight)?;
    if config.max_inflight == 0 {
        return Err("--max-inflight must be at least 1".into());
    }
    if let Some(ms) = flags.value("deadline-ms") {
        let ms: u64 = ms.parse().map_err(|_| "bad --deadline-ms".to_string())?;
        config.default_deadline = Some(std::time::Duration::from_millis(ms));
    }

    let server = Server::new(config);
    if let Some(spec) = flags.value("preload") {
        // `--preload ID=NET,LIB`: make a design resident before the first
        // client connects (cold-load latency paid once, at startup).
        let (id, files) = spec.split_once('=').ok_or("--preload expects ID=NET,LIB")?;
        let (net_path, lib_path) = files
            .split_once(',')
            .ok_or("--preload expects ID=NET,LIB")?;
        let text = fs::read_to_string(net_path)
            .map_err(|e| io_error(format!("cannot read `{net_path}`: {e}")))?;
        let tree = netio::parse(&text).map_err(|e| format!("{net_path}: {e}"))?;
        let text = fs::read_to_string(lib_path)
            .map_err(|e| io_error(format!("cannot read `{lib_path}`: {e}")))?;
        let lib = BufferLibrary::from_text(&text).map_err(|e| format!("{lib_path}: {e}"))?;
        let model = load_model(&flags)?;
        let session = Session::builder(lib).delay_model(model).build();
        server.registry().load(id, session, tree);
        eprintln!("fastbuf serve: preloaded design `{id}`");
    }

    // Status lines go to stderr: in stdio mode stdout *is* the protocol
    // stream, and keeping TCP mode symmetric costs nothing.
    match (flags.switch("stdio"), flags.value("port")) {
        (true, Some(_)) => Err("give either --stdio or --port, not both".into()),
        (true, None) => {
            eprintln!("fastbuf serve: speaking v1 frames on stdin/stdout");
            server.serve_stdio();
            Ok(())
        }
        (false, Some(p)) => {
            let port: u16 = p.parse().map_err(|_| "bad --port".to_string())?;
            let host = flags.value("host").unwrap_or("127.0.0.1");
            let listener = std::net::TcpListener::bind((host, port))
                .map_err(|e| io_error(format!("cannot bind {host}:{port}: {e}")))?;
            if let Ok(addr) = listener.local_addr() {
                eprintln!("fastbuf serve: listening on {addr}");
            }
            server
                .serve_tcp(listener)
                .map_err(|e| io_error(format!("serve: {e}")))
        }
        (false, None) => Err(format!("`serve` needs --stdio or --port\n{USAGE}").into()),
    }
}
