//! `fastbuf eco`: incremental re-solving of an edit script through the
//! subtree cache.

use std::fs;
use std::sync::Arc;

use fastbuf_api::SolveError;
use fastbuf_core::Algorithm;

use super::{io_error, load_lib, load_model, load_net, load_slew_limit, CliError, USAGE};
use crate::args::Flags;

pub(super) fn eco(argv: &[String]) -> Result<(), CliError> {
    use fastbuf_incremental::{parse_edits, write_edits, EditScriptSpec, IncrementalSolver};

    let flags = Flags::parse(
        argv,
        &[
            "net",
            "lib",
            "edits",
            "random",
            "locality",
            "seed",
            "algo",
            "model",
            "slew-limit",
            "json",
            "emit-edits",
        ],
        &["check", "per-edit"],
    )?;
    let tree = load_net(&flags)?;
    let lib = load_lib(&flags)?;
    let algo: Algorithm = flags.value("algo").unwrap_or("lishi").parse()?;
    let model = load_model(&flags)?;
    let slew_limit = load_slew_limit(&flags)?;

    let edits = match (flags.value("edits"), flags.value("random")) {
        (Some(_), Some(_)) => return Err("give either --edits or --random, not both".into()),
        (Some(path), None) => {
            let text = fs::read_to_string(path)
                .map_err(|e| io_error(format!("cannot read `{path}`: {e}")))?;
            parse_edits(&text).map_err(|e| format!("{path}: {e}"))?
        }
        (None, Some(n)) => {
            let n: usize = n.parse().map_err(|_| "bad --random".to_string())?;
            if n == 0 {
                return Err("--random must be at least 1".into());
            }
            let locality: f64 = flags.parsed_or("locality", 0.1f64)?;
            if !(locality > 0.0 && locality <= 1.0) {
                return Err("--locality must be in (0, 1]".into());
            }
            EditScriptSpec {
                edits: n,
                locality,
                seed: flags.parsed_or("seed", 1u64)?,
                swap_library_every: 0,
            }
            .generate(&tree)
        }
        (None, None) => return Err(format!("`eco` needs --edits or --random\n{USAGE}").into()),
    };
    if let Some(path) = flags.value("emit-edits") {
        fs::write(path, write_edits(&edits))
            .map_err(|e| io_error(format!("cannot write `{path}`: {e}")))?;
    }

    let mut options = fastbuf_core::SolverOptions::default();
    options.algorithm = algo;
    options.delay_model = Arc::clone(&model);
    options.slew_limit = slew_limit;
    let mut solver = IncrementalSolver::new(tree, lib).with_options(options);

    // Baseline solve populates the cache.
    let baseline = solver.solve();
    println!(
        "baseline: slack {} with {} buffers ({} nodes cached)",
        baseline.slack,
        baseline.placements.len(),
        solver.cache().cached_nodes()
    );

    let mut records = String::new();
    let mut total_recomputed = 0u64;
    let mut total_reused = 0u64;
    let mut incremental_time = std::time::Duration::ZERO;
    let mut scratch_time = std::time::Duration::ZERO;
    let want_json = flags.value("json").is_some();
    for (k, edit) in edits.iter().enumerate() {
        solver.apply(edit).map_err(|e| {
            let message = format!("edit {} (`{edit}`): {e}", k + 1);
            CliError {
                code: SolveError::Edit(e).exit_code(),
                message,
            }
        })?;
        let t0 = std::time::Instant::now();
        let sol = solver.solve();
        incremental_time += t0.elapsed();
        total_recomputed += sol.stats.nodes_recomputed;
        total_reused += sol.stats.nodes_reused;
        if flags.switch("check") {
            let t0 = std::time::Instant::now();
            let scratch = solver.solve_scratch();
            scratch_time += t0.elapsed();
            if sol.slack != scratch.slack
                || sol.placements != scratch.placements
                || sol.slew_ok != scratch.slew_ok
            {
                return Err(format!(
                    "check failed: edit {} (`{edit}`) diverges from scratch: \
                     incremental slack {} vs scratch {}",
                    k + 1,
                    sol.slack,
                    scratch.slack
                )
                .into());
            }
        }
        if flags.switch("per-edit") {
            println!(
                "  edit {:>4} {:<24} slack {}  buffers {:>3}  recomputed {:>5} reused {:>5}{}",
                k + 1,
                edit.to_string(),
                sol.slack,
                sol.placements.len(),
                sol.stats.nodes_recomputed,
                sol.stats.nodes_reused,
                if sol.slew_ok {
                    ""
                } else {
                    "  [SLEW INFEASIBLE]"
                },
            );
        }
        if want_json {
            records.push_str(&format!(
                "    {{\"edit\": \"{edit}\", \"slack_ps\": {:.6}, \"buffers\": {}, \
                 \"nodes_recomputed\": {}, \"nodes_reused\": {}, \"slew_ok\": {}}}{}\n",
                sol.slack.picos(),
                sol.placements.len(),
                sol.stats.nodes_recomputed,
                sol.stats.nodes_reused,
                sol.slew_ok,
                if k + 1 < edits.len() { "," } else { "" }
            ));
        }
    }

    let final_sol = solver.solve();
    let nodes = solver.tree().node_count() as u64;
    let touched = total_recomputed + total_reused;
    println!(
        "eco: {} edits on {} nodes | recomputed {} of {} node-solves ({:.1}% reused) | \
         incremental wall {:?}",
        edits.len(),
        nodes,
        total_recomputed,
        touched,
        100.0 * total_reused as f64 / touched.max(1) as f64,
        incremental_time,
    );
    if flags.switch("check") {
        println!(
            "check: all {} incremental results bit-identical to scratch (scratch wall {:?})",
            edits.len(),
            scratch_time
        );
    }
    println!(
        "final: slack {} with {} buffers{}",
        final_sol.slack,
        final_sol.placements.len(),
        if final_sol.slew_ok {
            ""
        } else {
            "  [SLEW INFEASIBLE]"
        }
    );

    if let Some(path) = flags.value("json") {
        let json = format!(
            "{{\n  \"edits\": {},\n  \"nodes\": {},\n  \"total_recomputed\": {},\n  \
             \"total_reused\": {},\n  \"final_slack_ps\": {:.6},\n  \"final_buffers\": {},\n  \
             \"checked\": {},\n  \"results\": [\n{}  ]\n}}\n",
            edits.len(),
            nodes,
            total_recomputed,
            total_reused,
            final_sol.slack.picos(),
            final_sol.placements.len(),
            flags.switch("check"),
            records
        );
        if path == "-" {
            print!("{json}");
        } else {
            fs::write(path, json).map_err(|e| io_error(format!("cannot write `{path}`: {e}")))?;
            println!("json report written to {path}");
        }
    }
    Ok(())
}
