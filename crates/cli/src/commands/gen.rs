//! `fastbuf gen net|lib|suite`: synthetic net, library, and benchmark-suite
//! generation.

use std::fs;
use std::path::PathBuf;

use fastbuf_buflib::units::Microns;
use fastbuf_buflib::BufferLibrary;
use fastbuf_netgen::{caterpillar_net, h_tree, line_net, HTreeSpec, RandomNetSpec, SuiteSpec};
use fastbuf_rctree::io as netio;

use super::{emit, io_error, CliError};
use crate::args::Flags;

pub(super) fn gen_net(argv: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        argv,
        &[
            "kind", "sinks", "sites", "seed", "pitch", "length", "levels", "o",
        ],
        &[],
    )?;
    let kind = flags.value("kind").unwrap_or("random");
    let tree = match kind {
        "random" => {
            let sinks = flags.parsed_or("sinks", 64usize)?;
            let mut spec = RandomNetSpec {
                seed: flags.parsed_or("seed", 1u64)?,
                ..RandomNetSpec::paper(sinks)
            };
            if let Some(p) = flags.value("pitch") {
                let p: f64 = p.parse().map_err(|_| "bad --pitch".to_string())?;
                spec.site_pitch = Some(Microns::new(p));
            }
            spec.build()
        }
        "line" => line_net(
            Microns::new(flags.parsed_or("length", 10_000.0f64)?),
            flags.parsed_or("sites", 99usize)?,
        ),
        "htree" => {
            let levels = flags.parsed_or("levels", 3usize)?;
            match flags.value("pitch") {
                None => h_tree(levels),
                Some(p) => {
                    let p: f64 = p.parse().map_err(|_| "bad --pitch".to_string())?;
                    HTreeSpec {
                        levels,
                        site_pitch: Some(Microns::new(p)),
                        ..HTreeSpec::default()
                    }
                    .build()
                }
            }
        }
        "caterpillar" => caterpillar_net(
            flags.parsed_or("sinks", 32usize)?,
            Microns::new(flags.parsed_or("pitch", 400.0f64)?),
            Microns::new(40.0),
        ),
        other => return Err(format!("unknown net kind `{other}`").into()),
    };
    emit(&flags, &netio::write(&tree))
}

pub(super) fn gen_lib(argv: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(argv, &["size", "jitter", "o"], &[])?;
    let size = flags.parsed_or("size", 16usize)?;
    let lib = match flags.value("jitter") {
        None => BufferLibrary::paper_synthetic(size),
        Some(seed) => {
            let seed: u64 = seed.parse().map_err(|_| "bad --jitter".to_string())?;
            BufferLibrary::paper_synthetic_jittered(size, seed)
        }
    }
    .map_err(|e| e.to_string())?;
    emit(&flags, &lib.to_text())
}

pub(super) fn gen_suite(argv: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        argv,
        &["out-dir", "nets", "max-sinks", "seed", "pitch"],
        &["slew-stress"],
    )?;
    let dir = PathBuf::from(flags.required("out-dir")?);
    let spec = SuiteSpec {
        nets: flags.parsed_or("nets", 100usize)?,
        max_sinks: flags.parsed_or("max-sinks", 256usize)?,
        seed: flags.parsed_or("seed", 1u64)?,
        site_pitch: Microns::new(flags.parsed_or("pitch", 200.0f64)?),
        slew_stress: flags.switch("slew-stress"),
    };
    if spec.nets == 0 {
        return Err("--nets must be at least 1".into());
    }
    if spec.max_sinks < 8 {
        return Err("--max-sinks must be at least 8".into());
    }
    fs::create_dir_all(&dir)
        .map_err(|e| io_error(format!("cannot create `{}`: {e}", dir.display())))?;
    for i in 0..spec.nets {
        let tree = spec.build_net(i);
        let path = dir.join(format!("net{i:05}.net"));
        fs::write(&path, netio::write(&tree))
            .map_err(|e| io_error(format!("cannot write `{}`: {e}", path.display())))?;
    }
    println!(
        "wrote {} nets (seed {}, max {} sinks) to {}",
        spec.nets,
        spec.seed,
        spec.max_sinks,
        dir.display()
    );
    Ok(())
}
