use super::*;

#[test]
fn dispatch_rejects_unknown() {
    let argv: Vec<String> = vec!["frobnicate".into()];
    assert!(run(&argv).is_err());
    let argv: Vec<String> = vec!["gen".into(), "nothing".into()];
    assert!(run(&argv).is_err());
}

#[test]
fn help_is_ok() {
    assert!(run(&["--help".to_string()]).is_ok());
    assert!(run(&[]).is_ok());
}

#[test]
fn end_to_end_via_tempdir() {
    let dir = std::env::temp_dir().join(format!("fastbuf-cli-test-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let net = dir.join("t.net");
    let lib = dir.join("t.lib");

    let argv: Vec<String> = [
        "gen",
        "net",
        "--kind",
        "line",
        "--length",
        "8000",
        "--sites",
        "7",
        "-o",
        net.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    run(&argv).unwrap();

    let argv: Vec<String> = ["gen", "lib", "--size", "4", "-o", lib.to_str().unwrap()]
        .iter()
        .map(|s| s.to_string())
        .collect();
    run(&argv).unwrap();

    let argv: Vec<String> = [
        "solve",
        "--net",
        net.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--placements",
        "--stats",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    run(&argv).unwrap();

    let argv: Vec<String> = [
        "frontier",
        "--net",
        net.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--max-cost",
        "40",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    run(&argv).unwrap();

    let argv: Vec<String> = ["info", "--net", net.to_str().unwrap()]
        .iter()
        .map(|s| s.to_string())
        .collect();
    run(&argv).unwrap();

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn yield_solve_end_to_end() {
    let dir = std::env::temp_dir().join(format!("fastbuf-cli-yield-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let net = dir.join("y.net");
    let lib = dir.join("y.lib");
    let var = dir.join("y.var");
    let json = dir.join("y.json");

    let argv: Vec<String> = [
        "gen",
        "net",
        "--kind",
        "line",
        "--length",
        "8000",
        "--sites",
        "7",
        "-o",
        net.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    run(&argv).unwrap();
    let argv: Vec<String> = ["gen", "lib", "--size", "4", "-o", lib.to_str().unwrap()]
        .iter()
        .map(|s| s.to_string())
        .collect();
    run(&argv).unwrap();
    fs::write(
        &var,
        "wire-r normal 1.0 0.05\nwire-c normal 1.0 0.05\nlocality 0.5\nseed 7\n",
    )
    .unwrap();

    let argv: Vec<String> = [
        "solve",
        "--net",
        net.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--variation",
        var.to_str().unwrap(),
        "--samples",
        "8",
        "--quantile",
        "0.25",
        "--stats",
        "--json",
        json.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    run(&argv).unwrap();
    let report = fs::read_to_string(&json).unwrap();
    for key in [
        "\"samples\": 8",
        "\"quantile\": 0.25",
        "\"quantile_slack_ps\"",
        "\"yield\"",
        "\"per_sample\"",
    ] {
        assert!(report.contains(key), "missing {key} in {report}");
    }

    // --samples / --quantile without --variation is a usage error, as
    // is --placements in yield mode (there are no placements to show).
    let argv: Vec<String> = [
        "solve",
        "--net",
        net.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--samples",
        "8",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    assert!(run(&argv)
        .unwrap_err()
        .contains("--samples needs --variation"));
    let argv: Vec<String> = [
        "solve",
        "--net",
        net.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--variation",
        var.to_str().unwrap(),
        "--placements",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    assert!(run(&argv).unwrap_err().contains("--placements"));

    // A malformed spec is rejected with its line number.
    fs::write(&var, "wire-r normal 1.0 -0.5\n").unwrap();
    let argv: Vec<String> = [
        "solve",
        "--net",
        net.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--variation",
        var.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    assert!(run(&argv).unwrap_err().contains("line 1"));

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn gen_accepts_every_net_kind() {
    let dir = std::env::temp_dir().join(format!("fastbuf-cli-kinds-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    for (kind, extra) in [
        ("random", vec!["--sinks", "12", "--seed", "3"]),
        ("line", vec!["--length", "3000", "--sites", "4"]),
        ("htree", vec!["--levels", "2", "--pitch", "300"]),
        ("caterpillar", vec!["--sinks", "9", "--pitch", "250"]),
    ] {
        let net = dir.join(format!("{kind}.net"));
        let mut argv: Vec<String> = ["gen", "net", "--kind", kind]
            .iter()
            .map(|s| s.to_string())
            .collect();
        argv.extend(extra.iter().map(|s| s.to_string()));
        argv.push("-o".into());
        argv.push(net.to_str().unwrap().into());
        run(&argv).unwrap_or_else(|e| panic!("{kind}: {e}"));
        // Generated files parse and report.
        let argv: Vec<String> = ["info", "--net", net.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&argv).unwrap_or_else(|e| panic!("{kind} info: {e}"));
    }
    let argv: Vec<String> = ["gen", "net", "--kind", "mystery"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert!(run(&argv).unwrap_err().contains("unknown net kind"));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn suite_and_batch_end_to_end() {
    let dir = std::env::temp_dir().join(format!("fastbuf-cli-batch-{}", std::process::id()));
    let suite_dir = dir.join("suite");
    fs::create_dir_all(&dir).unwrap();
    let lib = dir.join("b.lib");
    let json = dir.join("report.json");

    let argv: Vec<String> = [
        "gen",
        "suite",
        "--nets",
        "12",
        "--max-sinks",
        "24",
        "--seed",
        "5",
        "--out-dir",
        suite_dir.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    run(&argv).unwrap();
    assert_eq!(fs::read_dir(&suite_dir).unwrap().count(), 12);

    let argv: Vec<String> = ["gen", "lib", "--size", "4", "-o", lib.to_str().unwrap()]
        .iter()
        .map(|s| s.to_string())
        .collect();
    run(&argv).unwrap();

    let argv: Vec<String> = [
        "batch",
        "--dir",
        suite_dir.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--workers",
        "3",
        "--check",
        "--per-net",
        "--json",
        json.to_str().unwrap(),
        "--placements",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    run(&argv).unwrap();
    let report = fs::read_to_string(&json).unwrap();
    assert!(report.contains("\"nets\": 12"));
    assert!(report.contains("\"placements\""));

    // The same run through a manifest (with a comment line) works too.
    let manifest = dir.join("nets.txt");
    let mut listing = String::from("# three nets of the suite\n");
    for i in [0usize, 3, 7] {
        listing.push_str(&format!("suite/net{i:05}.net\n"));
    }
    fs::write(&manifest, listing).unwrap();
    let argv: Vec<String> = [
        "batch",
        "--manifest",
        manifest.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    run(&argv).unwrap();

    fs::remove_dir_all(&dir).ok();
}

/// Satellite: the `--check` failure path must fail loudly, naming the
/// offending net. `--check-fault N` (a testing hook) perturbs net N's
/// sequential re-solve so the divergence branch actually runs; the
/// binary's `main` maps the returned `Err` to a nonzero exit code.
#[test]
fn batch_check_failure_names_the_offending_net() {
    let dir = std::env::temp_dir().join(format!("fastbuf-cli-fault-{}", std::process::id()));
    let suite_dir = dir.join("suite");
    fs::create_dir_all(&dir).unwrap();
    let lib = dir.join("b.lib");
    let run_strs = |args: &[&str]| run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>());

    run_strs(&[
        "gen",
        "suite",
        "--nets",
        "5",
        "--max-sinks",
        "16",
        "--seed",
        "2",
        "--out-dir",
        suite_dir.to_str().unwrap(),
    ])
    .unwrap();
    run_strs(&["gen", "lib", "--size", "3", "-o", lib.to_str().unwrap()]).unwrap();

    // Sanity: without the fault the check passes.
    run_strs(&[
        "batch",
        "--dir",
        suite_dir.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--check",
    ])
    .unwrap();

    // Forced mismatch on net index 3: the error names it.
    let err = run_strs(&[
        "batch",
        "--dir",
        suite_dir.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--check",
        "--check-fault",
        "3",
    ])
    .unwrap_err();
    assert!(err.contains("check failed"), "{err}");
    assert!(err.contains("net 3"), "must name the net index: {err}");
    assert!(
        err.contains("net00003.net"),
        "must name the net file: {err}"
    );
    assert!(err.contains("diverges"), "{err}");

    // A fault index outside the batch changes nothing.
    run_strs(&[
        "batch",
        "--dir",
        suite_dir.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--check",
        "--check-fault",
        "99",
    ])
    .unwrap();

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn solve_and_batch_with_slew_limit_and_model() {
    let dir = std::env::temp_dir().join(format!("fastbuf-cli-slew-{}", std::process::id()));
    let suite_dir = dir.join("suite");
    fs::create_dir_all(&dir).unwrap();
    let net = dir.join("t.net");
    let lib = dir.join("t.lib");
    let json = dir.join("r.json");
    let run_strs = |args: &[&str]| run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>());

    run_strs(&[
        "gen",
        "net",
        "--kind",
        "line",
        "--length",
        "9000",
        "--sites",
        "8",
        "-o",
        net.to_str().unwrap(),
    ])
    .unwrap();
    run_strs(&["gen", "lib", "--size", "4", "-o", lib.to_str().unwrap()]).unwrap();

    for model in ["elmore", "scaled-elmore"] {
        run_strs(&[
            "solve",
            "--net",
            net.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--slew-limit",
            "300",
            "--model",
            model,
            "--placements",
        ])
        .unwrap_or_else(|e| panic!("{model}: {e}"));
    }
    let err = run_strs(&[
        "solve",
        "--net",
        net.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--model",
        "spice",
    ])
    .unwrap_err();
    assert!(err.contains("unknown delay model"), "{err}");
    let err = run_strs(&[
        "solve",
        "--net",
        net.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--slew-limit",
        "-5",
    ])
    .unwrap_err();
    assert!(err.contains("--slew-limit"), "{err}");

    // Slew-stressed suite through the slew-constrained batch, with
    // check + JSON.
    run_strs(&[
        "gen",
        "suite",
        "--nets",
        "6",
        "--max-sinks",
        "16",
        "--seed",
        "3",
        "--slew-stress",
        "--out-dir",
        suite_dir.to_str().unwrap(),
    ])
    .unwrap();
    run_strs(&[
        "batch",
        "--dir",
        suite_dir.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--slew-limit",
        "400",
        "--check",
        "--per-net",
        "--json",
        json.to_str().unwrap(),
    ])
    .unwrap();
    let report = fs::read_to_string(&json).unwrap();
    assert!(report.contains("\"slew_limit_ps\": 400"), "{report}");
    assert!(report.contains("\"max_slew_ps\""));
    assert!(report.contains("\"slew_ok\""));

    fs::remove_dir_all(&dir).ok();
}

/// Satellite: `solve --json` emits the same per-net JSON schema as
/// `batch --json` (shared `fastbuf_api::json::NetRecord` serializer),
/// and `solve --scenarios FILE` runs multi-corner requests end to end.
#[test]
fn solve_json_and_scenarios_end_to_end() {
    let dir = std::env::temp_dir().join(format!("fastbuf-cli-scen-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let net = dir.join("t.net");
    let lib = dir.join("t.lib");
    let corners = dir.join("corners.txt");
    let solve_json = dir.join("solve.json");
    let batch_json = dir.join("batch.json");
    let run_strs = |args: &[&str]| run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>());

    run_strs(&[
        "gen",
        "net",
        "--kind",
        "line",
        "--length",
        "9000",
        "--sites",
        "8",
        "-o",
        net.to_str().unwrap(),
    ])
    .unwrap();
    run_strs(&["gen", "lib", "--size", "4", "-o", lib.to_str().unwrap()]).unwrap();

    // Single solve --json first: its record keys must be exactly the
    // batch per-net keys (shared serializer).
    run_strs(&[
        "solve",
        "--net",
        net.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--json",
        solve_json.to_str().unwrap(),
        "--placements",
    ])
    .unwrap();
    let single = fs::read_to_string(&solve_json).unwrap();
    let manifest = dir.join("one.txt");
    fs::write(&manifest, "t.net\n").unwrap();
    run_strs(&[
        "batch",
        "--manifest",
        manifest.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--json",
        batch_json.to_str().unwrap(),
        "--placements",
    ])
    .unwrap();
    let batch = fs::read_to_string(&batch_json).unwrap();
    for key in [
        "\"net\"",
        "\"index\"",
        "\"sinks\"",
        "\"sites\"",
        "\"slack_before_ps\"",
        "\"slack_after_ps\"",
        "\"slew_before_ps\"",
        "\"max_slew_ps\"",
        "\"slew_ok\"",
        "\"buffers\"",
        "\"cost\"",
        "\"elapsed_us\"",
        "\"placements\"",
    ] {
        assert!(batch.contains(key), "batch lost {key}: {batch}");
        assert!(single.contains(key), "solve missing {key}: {single}");
    }

    // Multi-corner run through a scenario file.
    fs::write(
        &corners,
        "# three corners\n\
         typical\n\
         slow derate=0.9 slew-limit-ps=350\n\
         fast model=scaled-elmore algo=lillis\n",
    )
    .unwrap();
    run_strs(&[
        "solve",
        "--net",
        net.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--scenarios",
        corners.to_str().unwrap(),
        "--json",
        solve_json.to_str().unwrap(),
    ])
    .unwrap();
    let multi = fs::read_to_string(&solve_json).unwrap();
    assert!(multi.contains("\"scenarios\": 3"), "{multi}");
    for name in ["typical", "slow", "fast"] {
        assert!(
            multi.contains(&format!("\"scenario\": \"{name}\"")),
            "{multi}"
        );
    }
    assert!(multi.contains("\"slack_after_ps\""));

    // A corner file with a single line keeps the named, scenario-keyed
    // output — downstream tooling keyed on scenario names must not
    // break when a file shrinks to one corner.
    fs::write(&corners, "signoff slew-limit-ps=350\n").unwrap();
    run_strs(&[
        "solve",
        "--net",
        net.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--scenarios",
        corners.to_str().unwrap(),
        "--json",
        solve_json.to_str().unwrap(),
    ])
    .unwrap();
    let single_corner = fs::read_to_string(&solve_json).unwrap();
    assert!(
        single_corner.contains("\"scenario\": \"signoff\""),
        "{single_corner}"
    );

    // Flag conflicts and file errors are reported, not panicked.
    let err = run_strs(&[
        "solve",
        "--net",
        net.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--scenarios",
        corners.to_str().unwrap(),
        "--slew-limit",
        "200",
    ])
    .unwrap_err();
    assert!(err.contains("conflicts"), "{err}");
    assert_eq!(err.code, 2, "flag conflicts are usage errors");
    fs::write(&corners, "bad line=").unwrap();
    let err = run_strs(&[
        "solve",
        "--net",
        net.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--scenarios",
        corners.to_str().unwrap(),
    ])
    .unwrap_err();
    assert!(err.contains("line 1"), "{err}");
    // The distinct per-variant exit code of `SolveError::ScenarioParse`
    // (documented in --help).
    assert_eq!(err.code, 18, "scenario-parse exit code");

    fs::remove_dir_all(&dir).ok();
}

/// Satellite: every error family keeps its documented exit code —
/// usage 2, I/O 3, typed solver errors their per-variant 10–20.
#[test]
fn exit_codes_follow_the_documented_mapping() {
    let run_strs = |args: &[&str]| run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    // Usage: unknown command.
    assert_eq!(run_strs(&["bogus"]).unwrap_err().code, 2);
    // I/O: unreadable net file.
    let err = run_strs(&["info", "--net", "/nonexistent/x.net"]).unwrap_err();
    assert!(err.contains("cannot read"), "{err}");
    assert_eq!(err.code, 3, "I/O errors exit 3");
    // The mapping itself is pinned distinct in `fastbuf-api`'s
    // `kinds_and_exit_codes_are_distinct`; here we pin that `--help`
    // documents every code the binary can exit with.
    for code in ["| 2 usage", "| 3 I/O", "10 no-scenarios", "20 edit"] {
        assert!(USAGE.contains(code), "--help must document `{code}`");
    }
}

/// Satellite: `fastbuf serve` flag validation (the server's behavior
/// itself is covered by `fastbuf-server`'s tests).
#[test]
fn serve_validates_flags_before_binding() {
    let run_strs = |args: &[&str]| run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let err = run_strs(&["serve"]).unwrap_err();
    assert!(err.contains("--stdio or --port"), "{err}");
    let err = run_strs(&["serve", "--stdio", "--port", "0"]).unwrap_err();
    assert!(err.contains("not both"), "{err}");
    let err = run_strs(&["serve", "--stdio", "--workers", "0"]).unwrap_err();
    assert!(err.contains("--workers"), "{err}");
    let err = run_strs(&["serve", "--stdio", "--preload", "busted"]).unwrap_err();
    assert!(err.contains("ID=NET,LIB"), "{err}");
    let err =
        run_strs(&["serve", "--stdio", "--preload", "d=/nonexistent.net,/x.lib"]).unwrap_err();
    assert_eq!(err.code, 3, "preload I/O failures exit 3: {err}");
}

/// Satellite: `fastbuf eco` end to end — random scripts, edit files,
/// `--check` bit-identity, JSON output, and flag validation.
#[test]
fn eco_end_to_end() {
    let dir = std::env::temp_dir().join(format!("fastbuf-cli-eco-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let net = dir.join("t.net");
    let lib = dir.join("t.lib");
    let edits = dir.join("script.eco");
    let json = dir.join("eco.json");
    let run_strs = |args: &[&str]| run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>());

    run_strs(&[
        "gen",
        "net",
        "--kind",
        "random",
        "--sinks",
        "14",
        "--seed",
        "4",
        "-o",
        net.to_str().unwrap(),
    ])
    .unwrap();
    run_strs(&["gen", "lib", "--size", "4", "-o", lib.to_str().unwrap()]).unwrap();

    // Random script + check + emit + json, in one run.
    run_strs(&[
        "eco",
        "--net",
        net.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--random",
        "12",
        "--locality",
        "0.3",
        "--seed",
        "7",
        "--check",
        "--per-edit",
        "--emit-edits",
        edits.to_str().unwrap(),
        "--json",
        json.to_str().unwrap(),
    ])
    .unwrap();
    let report = fs::read_to_string(&json).unwrap();
    assert!(report.contains("\"edits\": 12"), "{report}");
    assert!(report.contains("\"nodes_recomputed\""));
    assert!(report.contains("\"checked\": true"));

    // The emitted script replays through --edits (with a slew limit
    // and a non-default model, still bit-identical under --check).
    assert!(fs::read_to_string(&edits).unwrap().lines().count() == 12);
    for model in ["elmore", "scaled-elmore"] {
        run_strs(&[
            "eco",
            "--net",
            net.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--edits",
            edits.to_str().unwrap(),
            "--model",
            model,
            "--slew-limit",
            "400",
            "--check",
        ])
        .unwrap_or_else(|e| panic!("{model}: {e}"));
    }

    // Flag validation.
    let err = run_strs(&[
        "eco",
        "--net",
        net.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
    ])
    .unwrap_err();
    assert!(err.contains("--edits or --random"), "{err}");
    let err = run_strs(&[
        "eco",
        "--net",
        net.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--random",
        "5",
        "--locality",
        "1.5",
    ])
    .unwrap_err();
    assert!(err.contains("--locality"), "{err}");
    // A script naming a nonexistent node fails with the edit named.
    fs::write(&edits, "rat n9999 100\n").unwrap();
    let err = run_strs(&[
        "eco",
        "--net",
        net.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--edits",
        edits.to_str().unwrap(),
    ])
    .unwrap_err();
    assert!(err.contains("edit 1"), "{err}");
    assert!(err.contains("n9999"), "{err}");
    // A malformed script reports its line.
    fs::write(&edits, "wire n1\n").unwrap();
    let err = run_strs(&[
        "eco",
        "--net",
        net.to_str().unwrap(),
        "--lib",
        lib.to_str().unwrap(),
        "--edits",
        edits.to_str().unwrap(),
    ])
    .unwrap_err();
    assert!(err.contains("line 1"), "{err}");

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_flag_validation() {
    let run_strs = |args: &[&str]| run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let err = run_strs(&["batch", "--lib", "/nonexistent.lib"]).unwrap_err();
    assert!(err.contains("--dir or --manifest"), "{err}");
    let err = run_strs(&[
        "batch",
        "--dir",
        "/nonexistent-dir",
        "--manifest",
        "/nonexistent.txt",
        "--lib",
        "x",
    ])
    .unwrap_err();
    assert!(err.contains("not both"), "{err}");
    let err = run_strs(&["batch", "--dir", "/nonexistent-dir", "--lib", "x"]).unwrap_err();
    assert!(err.contains("cannot read"), "{err}");
    // Suite bounds are CLI errors, not netgen panics.
    let err = run_strs(&["gen", "suite", "--out-dir", "/tmp/x", "--nets", "0"]).unwrap_err();
    assert!(err.contains("--nets"), "{err}");
    let err = run_strs(&["gen", "suite", "--out-dir", "/tmp/x", "--max-sinks", "4"]).unwrap_err();
    assert!(err.contains("--max-sinks"), "{err}");
}

#[test]
fn gen_lib_with_jitter_roundtrips() {
    let dir = std::env::temp_dir().join(format!("fastbuf-cli-lib-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let lib = dir.join("j.lib");
    let argv: Vec<String> = [
        "gen",
        "lib",
        "--size",
        "6",
        "--jitter",
        "11",
        "-o",
        lib.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    run(&argv).unwrap();
    let parsed = BufferLibrary::from_text(&fs::read_to_string(&lib).unwrap()).unwrap();
    assert_eq!(parsed.len(), 6);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn solve_reports_missing_files() {
    let argv: Vec<String> = [
        "solve",
        "--net",
        "/nonexistent.net",
        "--lib",
        "/nonexistent.lib",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let err = run(&argv).unwrap_err();
    assert!(err.contains("cannot read"));
}

/// `fastbuf cts` end to end: generated placements, file round-trip,
/// skew-aware solving, JSON, the inverter path, and flag validation.
#[test]
fn cts_end_to_end() {
    let dir = std::env::temp_dir().join(format!("fastbuf-cts-test-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let lib = dir.join("c.lib");
    let placements = dir.join("c.sinks");
    let json = dir.join("c.json");
    let run_strs = |args: &[&str]| run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>());

    run_strs(&["gen", "lib", "--size", "4", "-o", lib.to_str().unwrap()]).unwrap();

    // Generated placements, emitted to a file, loose skew bound met.
    run_strs(&[
        "cts",
        "--lib",
        lib.to_str().unwrap(),
        "--sinks",
        "24",
        "--seed",
        "7",
        "--max-skew",
        "500",
        "--emit-placements",
        placements.to_str().unwrap(),
        "--json",
        json.to_str().unwrap(),
    ])
    .unwrap();
    let record = fs::read_to_string(&json).unwrap();
    for key in [
        "\"skew_ps\"",
        "\"latency_max_ps\"",
        "\"skew_ok\": true",
        "\"max_skew_ps\": 500",
    ] {
        assert!(record.contains(key), "{key} missing from {record}");
    }

    // The emitted placement file drives the same pipeline.
    run_strs(&[
        "cts",
        "--lib",
        lib.to_str().unwrap(),
        "--placements",
        placements.to_str().unwrap(),
        "--pitch",
        "0",
    ])
    .unwrap();

    // Inverter-aware path.
    run_strs(&[
        "cts",
        "--lib",
        lib.to_str().unwrap(),
        "--sinks",
        "8",
        "--inverters",
    ])
    .unwrap();

    // Flag validation.
    let err = run_strs(&["cts", "--lib", lib.to_str().unwrap(), "--sinks", "0"]).unwrap_err();
    assert!(err.contains("--sinks"), "{err}");
    let err = run_strs(&[
        "cts",
        "--lib",
        lib.to_str().unwrap(),
        "--placements",
        placements.to_str().unwrap(),
        "--sinks",
        "4",
    ])
    .unwrap_err();
    assert!(err.contains("conflicts"), "{err}");
    let err = run_strs(&["cts", "--lib", lib.to_str().unwrap(), "--max-skew", "-5"]).unwrap_err();
    assert!(err.contains("--max-skew"), "{err}");
    let err = run_strs(&[
        "cts",
        "--lib",
        lib.to_str().unwrap(),
        "--sinks",
        "8",
        "--inverters",
        "--json",
        "-",
    ])
    .unwrap_err();
    assert!(err.contains("--inverters"), "{err}");

    // A bad placement line is a line-numbered error.
    fs::write(&placements, "sink 0 0 nan 1000\n").unwrap();
    let err = run_strs(&[
        "cts",
        "--lib",
        lib.to_str().unwrap(),
        "--placements",
        placements.to_str().unwrap(),
    ])
    .unwrap_err();
    assert!(err.contains("line 1"), "{err}");
    fs::remove_dir_all(&dir).ok();
}
