//! `fastbuf global`: design-level resource-constrained buffering over a
//! generated shared-site fleet (the `fastbuf-global` pricing loop).

use std::fs;

use fastbuf_buflib::units::Seconds;
use fastbuf_core::Algorithm;
use fastbuf_global::{GlobalNet, GlobalOptions, GlobalSolver, SiteCapacityMap};
use fastbuf_netgen::{parse_capacity, SharedSuiteSpec};

use super::{io_error, load_lib, load_model, CliError};
use crate::args::Flags;

pub(super) fn global(argv: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        argv,
        &[
            "lib",
            "nets",
            "pool",
            "sites-per-net",
            "seed",
            "cap",
            "capacity",
            "max-iters",
            "workers",
            "step-ps",
            "growth",
            "algo",
            "model",
            "json",
        ],
        &["scratch", "history", "per-site"],
    )?;
    let lib = load_lib(&flags)?;

    // The fleet: seeded 2-pin lines contending for a shared site pool.
    let spec = SharedSuiteSpec {
        nets: flags.parsed_or("nets", 24usize)?,
        pool_sites: flags.parsed_or("pool", 48u32)?,
        sites_per_net: flags.parsed_or("sites-per-net", 10usize)?,
        seed: flags.parsed_or("seed", 1u64)?,
        ..SharedSuiteSpec::default()
    };
    if spec.nets == 0 || spec.pool_sites == 0 || spec.sites_per_net == 0 {
        return Err("--nets, --pool, and --sites-per-net must all be at least 1".into());
    }
    let fleet: Vec<GlobalNet> = spec
        .build()
        .into_iter()
        .enumerate()
        .map(|(i, net)| GlobalNet::new(format!("shared/{i:04}"), net.tree, net.site_of))
        .collect();

    // Capacities: uniform `--cap` (default 1), with optional per-site
    // overrides from a `site <id> <capacity>` file.
    let default_cap: u32 = flags.parsed_or("cap", 1u32)?;
    let capacity = match flags.value("capacity") {
        None => SiteCapacityMap::uniform(spec.pool_sites, default_cap),
        Some(path) => {
            let text = fs::read_to_string(path)
                .map_err(|e| io_error(format!("cannot read `{path}`: {e}")))?;
            let pairs = parse_capacity(&text).map_err(|e| format!("{path}: {e}"))?;
            SiteCapacityMap::from_pairs(spec.pool_sites, default_cap, &pairs)
                .map_err(|e| format!("{path}: {e}"))?
        }
    };

    let mut options = GlobalOptions {
        max_iters: flags.parsed_or("max-iters", 64usize)?,
        workers: flags.parsed_or("workers", 1usize)?,
        warm: !flags.switch("scratch"),
        ..GlobalOptions::default()
    };
    if let Some(ps) = flags.value("step-ps") {
        let ps: f64 = ps.parse().map_err(|_| "bad --step-ps".to_string())?;
        if !(ps.is_finite() && ps > 0.0) {
            return Err("--step-ps must be a positive number of picoseconds".into());
        }
        options.step0 = Seconds::from_pico(ps);
    }
    if let Some(g) = flags.value("growth") {
        options.growth = g.parse().map_err(|_| "bad --growth".to_string())?;
    }
    if options.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let algo: Algorithm = flags.value("algo").unwrap_or("lishi").parse()?;
    options.solver.algorithm = algo;
    options.solver.delay_model = load_model(&flags)?;

    let outcome = GlobalSolver::new(fleet, lib, capacity)
        .with_options(options)
        .solve()
        .map_err(|e| e.to_string())?;
    let report = &outcome.report;

    println!("{}", report.summary());
    if flags.switch("history") {
        println!("  iter  resolved  overused  overuse  max-price");
        for row in &report.history {
            println!(
                "  {:>4}  {:>8}  {:>8}  {:>7}  {}",
                row.iter, row.nets_resolved, row.sites_overused, row.total_overuse, row.max_price
            );
        }
    }
    if flags.switch("per-site") {
        println!("  site  usage  capacity  price");
        for u in &report.utilization {
            println!(
                "  {:>4}  {:>5}  {:>8}  {}",
                u.site, u.usage, u.capacity, u.price
            );
        }
    }
    if let Some(path) = flags.value("json") {
        let json = report.to_json();
        if path == "-" {
            print!("{json}");
        } else {
            fs::write(path, json).map_err(|e| io_error(format!("cannot write `{path}`: {e}")))?;
            println!("json report written to {path}");
        }
    }
    if !report.feasible {
        return Err(format!(
            "did not reach feasibility within {} iterations (raise --max-iters \
             or --step-ps, or relax capacities)",
            report.iterations
        )
        .into());
    }
    Ok(())
}
