//! `fastbuf info`: net statistics and unbuffered slack.

use fastbuf_buflib::BufferLibrary;
use fastbuf_rctree::elmore;

use super::{load_net, CliError};
use crate::args::Flags;

pub(super) fn info(argv: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(argv, &["net"], &[])?;
    let tree = load_net(&flags)?;
    println!("{}", tree.stats());
    let report =
        elmore::evaluate(&tree, &BufferLibrary::empty(), &[]).map_err(|e| e.to_string())?;
    println!(
        "unbuffered slack: {} (critical sink {})",
        report.slack, report.critical_sink
    );
    Ok(())
}
