//! `fastbuf batch`: solve a whole directory or manifest of nets.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use fastbuf_batch::BatchSolver;
use fastbuf_buflib::units::Seconds;
use fastbuf_core::{Algorithm, Solver};
use fastbuf_rctree::{elmore, io as netio, RoutingTree};

use super::{io_error, load_lib, load_model, load_slew_limit, CliError, USAGE};
use crate::args::Flags;

/// Loads the nets of a `batch` run: every `*.net` in `--dir` (sorted by
/// file name), or the paths listed in `--manifest` (one per line, `#`
/// comments allowed, relative to the manifest's directory).
fn load_batch_nets(flags: &Flags) -> Result<(Vec<String>, Vec<RoutingTree>), CliError> {
    let paths: Vec<PathBuf> = match (flags.value("dir"), flags.value("manifest")) {
        (Some(_), Some(_)) => return Err("give either --dir or --manifest, not both".into()),
        (Some(dir), None) => {
            let mut v: Vec<PathBuf> = fs::read_dir(dir)
                .map_err(|e| io_error(format!("cannot read `{dir}`: {e}")))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|ext| ext == "net"))
                .collect();
            v.sort();
            v
        }
        (None, Some(manifest)) => {
            let text = fs::read_to_string(manifest)
                .map_err(|e| io_error(format!("cannot read `{manifest}`: {e}")))?;
            let base = Path::new(manifest).parent().unwrap_or(Path::new("."));
            text.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(|l| base.join(l))
                .collect()
        }
        (None, None) => return Err(format!("`batch` needs --dir or --manifest\n{USAGE}").into()),
    };
    if paths.is_empty() {
        return Err("no .net files found".into());
    }
    let mut names = Vec::with_capacity(paths.len());
    let mut nets = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path)
            .map_err(|e| io_error(format!("cannot read `{}`: {e}", path.display())))?;
        nets.push(netio::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?);
        names.push(path.display().to_string());
    }
    Ok((names, nets))
}

pub(super) fn batch(argv: &[String]) -> Result<(), CliError> {
    let mut value_flags = vec![
        "dir",
        "manifest",
        "lib",
        "algo",
        "workers",
        "json",
        "slew-limit",
        "model",
    ];
    // `--check-fault N` is a testing hook: it perturbs net N's sequential
    // re-solve so the `--check` failure path can be exercised end to end.
    // Test builds only — the production binary rejects it as unknown.
    if cfg!(test) {
        value_flags.push("check-fault");
    }
    let flags = Flags::parse(
        argv,
        &value_flags,
        &["placements", "per-net", "check", "no-verify"],
    )?;
    let (names, nets) = load_batch_nets(&flags)?;
    let lib = load_lib(&flags)?;
    let algo: Algorithm = flags.value("algo").unwrap_or("lishi").parse()?;
    let model = load_model(&flags)?;
    let slew_limit = load_slew_limit(&flags)?;
    let check_fault: Option<usize> = match flags.value("check-fault") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| "bad --check-fault".to_string())?),
    };
    let mut solver = BatchSolver::new(&nets, &lib)
        .algorithm(algo)
        .delay_model(Arc::clone(&model));
    if let Some(limit) = slew_limit {
        solver = solver.slew_limit(limit);
    }
    if let Some(w) = flags.value("workers") {
        let w: usize = w.parse().map_err(|_| "bad --workers".to_string())?;
        if w == 0 {
            return Err("--workers must be at least 1".into());
        }
        solver = solver.workers(w);
    }
    let report = solver.solve();

    if !flags.switch("no-verify") {
        // Independent forward check of every reconstruction, under the
        // same delay model the batch solved with.
        for o in &report.outcomes {
            let measured = elmore::evaluate_with(
                &nets[o.index],
                &lib,
                &o.placements
                    .iter()
                    .map(|p| (p.node, p.buffer))
                    .collect::<Vec<_>>(),
                &*model,
            )
            .map_err(|e| format!("{}: {e}", names[o.index]))?;
            // Same relative tolerance as `Solution::verify` — one
            // definition of "verified" across the workspace.
            let (predicted, measured_v) = (o.slack.value(), measured.slack.value());
            let tol = 1e-9 * predicted.abs().max(measured_v.abs()).max(1e-12);
            if (measured_v - predicted).abs() > tol {
                return Err(format!(
                    "{}: batch predicted {} but forward evaluation measures {}",
                    names[o.index], o.slack, measured.slack
                )
                .into());
            }
            if let Some(limit) = slew_limit {
                if o.slew_ok && o.max_slew.value() > limit.value() * (1.0 + 1e-9) {
                    return Err(format!(
                        "{}: reported slew-feasible but measures {} over the {} limit",
                        names[o.index], o.max_slew, limit
                    )
                    .into());
                }
            }
        }
    }
    if flags.switch("check") {
        // Re-solve sequentially and demand bit-identical results.
        for o in &report.outcomes {
            let mut seq = Solver::new(&nets[o.index], &lib)
                .algorithm(algo)
                .delay_model(Arc::clone(&model));
            if let Some(limit) = slew_limit {
                seq = seq.slew_limit(limit);
            }
            let mut solo = seq.solve();
            if check_fault == Some(o.index) {
                solo.slack += Seconds::from_pico(1.0);
            }
            if solo.slack != o.slack || solo.placements != o.placements {
                return Err(format!(
                    "check failed: net {} (`{}`) diverges from its sequential \
                     solve: batch slack {} vs sequential {}",
                    o.index, names[o.index], o.slack, solo.slack
                )
                .into());
            }
        }
        println!(
            "check: all {} batch results identical to sequential solves",
            report.outcomes.len()
        );
    }

    if flags.switch("per-net") {
        for o in &report.outcomes {
            println!(
                "  {:<40} sinks {:>5} sites {:>6} slack {} -> {} buffers {:>4} slew {}{}",
                names[o.index],
                o.sinks,
                o.sites,
                o.slack_before,
                o.slack,
                o.placements.len(),
                o.max_slew,
                if o.slew_ok { "" } else { " [OVER LIMIT]" },
            );
        }
    }
    println!("{report}");
    if let Some(path) = flags.value("json") {
        let json = report.to_json(Some(&names), flags.switch("placements"));
        if path == "-" {
            print!("{json}");
        } else {
            fs::write(path, json).map_err(|e| io_error(format!("cannot write `{path}`: {e}")))?;
            println!("json report written to {path}");
        }
    }
    Ok(())
}
