//! `fastbuf solve`: single-net solving — plain, multi-corner scenario
//! files, and Monte-Carlo yield sweeps.

use std::fs;
use std::sync::Arc;

use fastbuf_api::{parse_scenario_lines, wire, Objective, Scenario, Session};
use fastbuf_core::Algorithm;
use fastbuf_rctree::{elmore, RoutingTree};

use super::{io_error, load_lib, load_model, load_net, load_slew_limit, CliError};
use crate::args::Flags;

pub(super) fn solve(argv: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        argv,
        &[
            "net",
            "lib",
            "algo",
            "slew-limit",
            "model",
            "scenarios",
            "json",
            "variation",
            "samples",
            "quantile",
            "intra-workers",
        ],
        &["placements", "stats", "no-verify"],
    )?;
    let net_path = flags.required("net")?.to_owned();
    let tree = load_net(&flags)?;
    let lib = load_lib(&flags)?;
    let algo: Algorithm = flags.value("algo").unwrap_or("lishi").parse()?;
    let model = load_model(&flags)?;
    let slew_limit = load_slew_limit(&flags)?;
    let intra_workers = match flags.value("intra-workers") {
        None => 1,
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| format!("flag `--intra-workers`: cannot parse `{v}`"))?;
            if n == 0 {
                return Err("--intra-workers must be at least 1".into());
            }
            n
        }
    };

    // Everything below goes through the unified request layer: one
    // session, one request, one scenario per corner.
    let session = Session::builder(lib)
        .delay_model(Arc::clone(&model))
        .build();
    let lib = session.library();

    let scenarios = match flags.value("scenarios") {
        None => {
            let mut scenario = Scenario::default().algorithm(algo);
            if let Some(limit) = slew_limit {
                scenario = scenario.slew_limit(limit);
            }
            vec![scenario]
        }
        Some(path) => {
            if slew_limit.is_some() {
                return Err(
                    "--slew-limit conflicts with --scenarios; put `slew-limit-ps=` on the \
                     scenario lines instead"
                        .into(),
                );
            }
            let text = fs::read_to_string(path)
                .map_err(|e| io_error(format!("cannot read `{path}`: {e}")))?;
            // The shared corner-file path (`api::parse_scenario_lines`):
            // the server's `scenarios` frames go through the same parser,
            // with --algo as the default for lines without their own
            // `algo=`.
            parse_scenario_lines(&text, Some(algo), None).map_err(|e| CliError {
                code: e.exit_code(),
                message: format!("{path}: {e}"),
            })?
        }
    };
    // Corner files get named, table-style output and `"scenario"` keys in
    // JSON — even when the file happens to contain a single corner, so
    // downstream tooling keyed on scenario names never breaks. (This also
    // keeps the anonymous branch's improvement-vs-unbuffered print sound:
    // flag-built scenarios always share the session model and derate 1.0.)
    let named = flags.value("scenarios").is_some();

    if flags.value("variation").is_some() {
        return solve_yield(&flags, &tree, &session, scenarios, named);
    }
    for conflicting in ["samples", "quantile"] {
        if flags.value(conflicting).is_some() {
            return Err(format!("--{conflicting} needs --variation").into());
        }
    }

    let unbuffered = elmore::evaluate_with(&tree, lib, &[], &*model).map_err(|e| e.to_string())?;
    let outcome = session
        .request(&tree)
        .scenarios(scenarios)
        .intra_net_workers(intra_workers)
        .solve()?;

    if !flags.switch("no-verify") {
        // Each corner is re-measured under its own model and derate.
        outcome.verify(&tree, lib)?;
    }

    println!("unbuffered slack: {}", unbuffered.slack);
    let want_json = flags.value("json").is_some();
    let mut records = String::new();
    for (k, corner) in outcome.scenarios.iter().enumerate() {
        let solution = corner
            .solution()
            .expect("solve command always asks for max slack");
        let scenario = &corner.scenario;
        // The corner's record in the shared wire schema (`api::wire`) —
        // the exact serializer the server and `batch --json` go through.
        // It re-measures this corner under its own model and derate
        // (ground-truth worst slew, same definition as `batch`), so it is
        // only built when something consumes it: a slew limit to check,
        // or a JSON report to write.
        let record = if scenario.slew_limit.is_some() || want_json {
            Some(wire::scenario_record(
                &net_path,
                0,
                &tree,
                lib,
                corner,
                named,
                flags.switch("placements"),
            )?)
        } else {
            None
        };
        let measured_slew = record.as_ref().map(|r| r.max_slew);
        // The hard cross-check runs for *every* corner with a limit: a
        // corner reported feasible must measure within its limit.
        if let (Some(limit), Some(measured)) = (scenario.slew_limit, measured_slew) {
            if solution.slew_ok && measured.value() > limit.value() * (1.0 + 1e-9) {
                return Err(format!(
                    "scenario `{}`: slew check failed: measured {} over the {} limit",
                    scenario.name, measured, limit
                )
                .into());
            }
        }
        if named {
            println!(
                "scenario {:<12} algo {:<16} model {:<13} derate {:<5} slack {}  buffers {}{}",
                scenario.name,
                corner.algorithm,
                corner.model.name(),
                scenario.rat_derate,
                solution.slack,
                solution.placements.len(),
                if solution.slew_ok {
                    ""
                } else {
                    "  [SLEW INFEASIBLE]"
                },
            );
        } else {
            println!("algorithm:        {}", corner.algorithm);
            println!("delay model:      {}", corner.model.name());
            println!(
                "buffered slack:   {}  (improvement {})",
                solution.slack,
                solution.slack - unbuffered.slack
            );
            println!(
                "buffers inserted: {}  (total cost {:.0})",
                solution.placements.len(),
                solution.total_cost(lib)
            );
            if let (Some(limit), Some(measured)) = (scenario.slew_limit, measured_slew) {
                println!(
                    "slew:             worst {} against limit {}{}",
                    measured,
                    limit,
                    if solution.slew_ok {
                        ""
                    } else {
                        "  [INFEASIBLE: best effort]"
                    }
                );
            }
            if !flags.switch("no-verify") {
                println!("verified:         forward evaluation matches each corner");
            }
        }
        if flags.switch("placements") {
            for p in &solution.placements {
                println!("  {} {}", p.node, lib.get(p.buffer).name());
            }
        }
        if flags.switch("stats") {
            println!("stats: {}", solution.stats);
        }
        if want_json {
            // `record.slack_before` was re-measured under *this corner's*
            // model and derate, so `slack_after − slack_before` is the
            // buffering improvement in every corner, never a model/derate
            // artifact.
            let record = record.as_ref().expect("built whenever want_json");
            records.push_str("    ");
            records.push_str(&record.to_json());
            if k + 1 < outcome.scenarios.len() {
                records.push(',');
            }
            records.push('\n');
        }
    }
    if named {
        if let Some(worst) = outcome.worst_slack() {
            println!("worst corner slack: {worst}");
        }
    }
    if let Some(path) = flags.value("json") {
        let json = format!(
            "{{\n  \"nets\": 1,\n  \"scenarios\": {},\n  \"results\": [\n{}  ]\n}}\n",
            outcome.scenarios.len(),
            records
        );
        if path == "-" {
            print!("{json}");
        } else {
            fs::write(path, json).map_err(|e| io_error(format!("cannot write `{path}`: {e}")))?;
            println!("json report written to {path}");
        }
    }
    Ok(())
}

/// `fastbuf solve --variation FILE [--samples N] [--quantile Q]`: the
/// Monte-Carlo yield sweep. Each corner's samples are solved through
/// per-worker warm subtree caches (the same family-cache machinery the
/// differential harness certifies bit-identical to scratch solves), and
/// the slack distribution is reported instead of a single slack.
fn solve_yield(
    flags: &Flags,
    tree: &RoutingTree,
    session: &Session,
    scenarios: Vec<Scenario>,
    named: bool,
) -> Result<(), CliError> {
    if flags.switch("placements") {
        return Err(
            "--placements is not available with --variation (yield sweeps \
                    report slack statistics, not placements)"
                .into(),
        );
    }
    let vpath = flags.value("variation").expect("checked by the caller");
    let text =
        fs::read_to_string(vpath).map_err(|e| io_error(format!("cannot read `{vpath}`: {e}")))?;
    let spec = fastbuf_api::parse_variation_spec(&text).map_err(|e| CliError {
        code: e.exit_code(),
        message: format!("{vpath}: {e}"),
    })?;
    let samples: usize = flags.parsed_or("samples", 64)?;
    let quantile: f64 = flags.parsed_or("quantile", 0.5)?;

    let outcome = session
        .request(tree)
        .objective(Objective::YieldTarget { samples, quantile })
        .variation(spec)
        .scenarios(scenarios)
        .solve()?;

    let want_json = flags.value("json").is_some();
    let mut records = String::new();
    for (k, corner) in outcome.scenarios.iter().enumerate() {
        let v = corner
            .variation()
            .expect("yield objective produces variation outcomes");
        let s = &v.summary;
        let prefix = if named {
            format!("scenario {:<12} ", corner.scenario.name)
        } else {
            String::new()
        };
        println!(
            "{prefix}samples {:<5} yield {:>6.1}%  slack q{:.2} {}  min {}  mean {}  max {}",
            s.samples,
            s.yield_fraction * 100.0,
            s.quantile,
            s.quantile_slack,
            s.min_slack,
            s.mean_slack,
            s.max_slack,
        );
        if flags.switch("stats") {
            let total = s.nodes_recomputed + s.nodes_reused;
            println!(
                "{prefix}cache: {} subtrees recomputed, {} reused ({:.1}% reuse)",
                s.nodes_recomputed,
                s.nodes_reused,
                if total > 0 {
                    100.0 * s.nodes_reused as f64 / total as f64
                } else {
                    0.0
                },
            );
        }
        if want_json {
            records.push_str("    ");
            records.push_str(&wire::variation_record(corner, named, true)?);
            if k + 1 < outcome.scenarios.len() {
                records.push(',');
            }
            records.push('\n');
        }
    }
    if let Some(path) = flags.value("json") {
        let json = format!(
            "{{\n  \"nets\": 1,\n  \"scenarios\": {},\n  \"results\": [\n{}  ]\n}}\n",
            outcome.scenarios.len(),
            records
        );
        if path == "-" {
            print!("{json}");
        } else {
            fs::write(path, json).map_err(|e| io_error(format!("cannot write `{path}`: {e}")))?;
            println!("json report written to {path}");
        }
    }
    Ok(())
}
