//! `fastbuf cts`: the clock-tree-synthesis pipeline — sink placements in
//! (from a file or the seeded generator), recursive-bipartition topology,
//! skew-aware buffering, skew/latency report out.

use std::fs;

use fastbuf_api::{wire, Objective, Scenario, Session};
use fastbuf_buflib::units::{Microns, Seconds};
use fastbuf_core::polarity::{Polarity, PolaritySolver};
use fastbuf_core::Algorithm;
use fastbuf_netgen::{
    build_topology, parse_placements, write_placements, CtsPlacementSpec, CtsTopologySpec,
};
use fastbuf_rctree::{elmore, NodeKind};

use super::{io_error, load_lib, CliError};
use crate::args::Flags;

pub(super) fn cts(argv: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        argv,
        &[
            "placements",
            "sinks",
            "seed",
            "span",
            "lib",
            "pitch",
            "max-skew",
            "algo",
            "json",
            "emit-placements",
        ],
        &["inverters", "show-placements", "no-verify"],
    )?;
    let lib = load_lib(&flags)?;
    let algo: Algorithm = flags.value("algo").unwrap_or("lishi").parse()?;
    let max_skew = match flags.value("max-skew") {
        None => None,
        Some(v) => {
            let ps: f64 = v
                .parse()
                .map_err(|_| format!("flag `--max-skew`: cannot parse `{v}`"))?;
            if !ps.is_finite() || ps < 0.0 {
                return Err("--max-skew must be a non-negative number of picoseconds".into());
            }
            Some(Seconds::from_pico(ps))
        }
    };

    // Sink placements: a file, or the seeded generator.
    let (placements, net_name) = match flags.value("placements") {
        Some(path) => {
            for conflicting in ["sinks", "seed", "span"] {
                if flags.value(conflicting).is_some() {
                    return Err(format!("--{conflicting} conflicts with --placements").into());
                }
            }
            let text = fs::read_to_string(path)
                .map_err(|e| io_error(format!("cannot read `{path}`: {e}")))?;
            let placements = parse_placements(&text).map_err(|e| format!("{path}: {e}"))?;
            (placements, path.to_owned())
        }
        None => {
            let mut spec = CtsPlacementSpec {
                sinks: flags.parsed_or("sinks", 64usize)?,
                seed: flags.parsed_or("seed", 1u64)?,
                ..CtsPlacementSpec::default()
            };
            if spec.sinks == 0 {
                return Err("--sinks must be at least 1".into());
            }
            if let Some(v) = flags.value("span") {
                let um: f64 = v
                    .parse()
                    .map_err(|_| format!("flag `--span`: cannot parse `{v}`"))?;
                if !um.is_finite() || um <= 0.0 {
                    return Err("--span must be a positive number of microns".into());
                }
                spec.die = Microns::new(um);
            }
            let name = format!("cts-{}x{}", spec.sinks, spec.seed);
            (spec.generate(), name)
        }
    };
    if let Some(path) = flags.value("emit-placements") {
        fs::write(path, write_placements(&placements))
            .map_err(|e| io_error(format!("cannot write `{path}`: {e}")))?;
        println!("placements written to {path}");
    }

    // Topology: recursive bipartition, merge taps as buffer sites.
    let mut topo_spec = CtsTopologySpec::default();
    if let Some(v) = flags.value("pitch") {
        let um: f64 = v
            .parse()
            .map_err(|_| format!("flag `--pitch`: cannot parse `{v}`"))?;
        if um == 0.0 {
            topo_spec.site_pitch = None;
        } else {
            if !um.is_finite() || um < 0.0 {
                return Err("--pitch must be a non-negative number of microns (0 = off)".into());
            }
            topo_spec.site_pitch = Some(Microns::new(um));
        }
    }
    let topo = build_topology(&placements, &topo_spec).map_err(CliError::from)?;
    let tree = &topo.tree;
    println!(
        "{net_name}: {} sinks, {} candidate sites, topology depth {}",
        tree.sink_count(),
        tree.buffer_site_count(),
        tree.stats().max_depth
    );

    if flags.switch("inverters") {
        if flags.value("json").is_some() {
            return Err("--json covers skew-target solves only; drop --inverters".into());
        }
        return cts_inverters(&flags, tree, &lib, algo, max_skew);
    }

    let session = Session::new(lib);
    let outcome = session
        .request(tree)
        .objective(Objective::SkewTarget { max_skew })
        .scenario(Scenario::default().algorithm(algo))
        .solve()?;
    if !flags.switch("no-verify") {
        outcome.verify(tree, session.library())?;
    }
    let corner = &outcome.scenarios[0];
    let sol = corner.skew().expect("skew-target solves produce Skew");

    println!("slack:     {}", sol.slack);
    println!(
        "latency:   {} .. {} (insertion delay)",
        sol.latency_min, sol.latency_max
    );
    println!("skew:      {}", sol.skew);
    match max_skew {
        Some(bound) if sol.skew_ok => println!("skew met:  yes (bound {bound})"),
        Some(bound) => {
            println!("skew met:  NO (bound {bound}; narrowest-window fallback reported)")
        }
        None => {}
    }
    println!("buffers:   {}", sol.placements.len());
    if flags.switch("show-placements") {
        for p in &sol.placements {
            println!("  node {:>6}  buffer {}", p.node.index(), p.buffer.index());
        }
    }

    if let Some(path) = flags.value("json") {
        let record = wire::skew_record(
            &net_name,
            0,
            tree,
            session.library(),
            corner,
            false,
            flags.switch("show-placements"),
            max_skew,
        )?;
        let json = format!("{record}\n");
        if path == "-" {
            print!("{json}");
        } else {
            fs::write(path, json).map_err(|e| io_error(format!("cannot write `{path}`: {e}")))?;
            println!("json report written to {path}");
        }
    }
    if max_skew.is_some() && !sol.skew_ok {
        return Err(CliError {
            code: 2,
            message: "no solution within the skew bound survived the search".into(),
        });
    }
    Ok(())
}

/// The inverter-aware path: buffering through the polarity DP (every sink
/// required positive, so inverters come in pairs), with the skew measured
/// post hoc by the forward evaluator.
fn cts_inverters(
    flags: &Flags,
    tree: &fastbuf_rctree::RoutingTree,
    lib: &fastbuf_buflib::BufferLibrary,
    algo: Algorithm,
    max_skew: Option<Seconds>,
) -> Result<(), CliError> {
    let mut solver = PolaritySolver::new(tree, lib).algorithm(algo);
    for sink in tree.sinks() {
        solver
            .require(sink, Polarity::Positive)
            .map_err(|e| CliError::from(fastbuf_api::SolveError::Polarity(e)))?;
    }
    let sol = solver
        .solve()
        .map_err(|e| CliError::from(fastbuf_api::SolveError::Polarity(e)))?;
    if !flags.switch("no-verify") {
        sol.verify(tree, lib)
            .map_err(|e| CliError::from(fastbuf_api::SolveError::Polarity(e)))?;
    }

    // The polarity DP carries no arrival windows; measure the skew of the
    // solved tree with the independent forward evaluator instead.
    let pairs: Vec<_> = sol.placements.iter().map(|p| (p.node, p.buffer)).collect();
    let report = elmore::evaluate(tree, lib, &pairs).map_err(|e| e.to_string())?;
    let (mut lo, mut hi) = (f64::MAX, f64::MIN);
    for &(n, s) in &report.sink_slacks {
        let arrival = match tree.kind(n) {
            NodeKind::Sink {
                required_arrival, ..
            } => required_arrival.value() - s.value(),
            _ => unreachable!("sink_slacks only lists sinks"),
        };
        lo = lo.min(arrival);
        hi = hi.max(arrival);
    }
    let skew = Seconds::new(hi - lo);

    println!("slack:     {}", sol.slack);
    println!("skew:      {skew} (measured post hoc; the polarity DP does not bound it)");
    println!(
        "repeaters: {} ({} inverters)",
        sol.placements.len(),
        sol.inverter_count
    );
    if flags.switch("show-placements") {
        for p in &sol.placements {
            println!("  node {:>6}  buffer {}", p.node.index(), p.buffer.index());
        }
    }
    if let Some(bound) = max_skew {
        if skew > bound {
            return Err(CliError {
                code: 2,
                message: format!("measured skew {skew} exceeds the bound {bound}"),
            });
        }
        println!("skew met:  yes (bound {bound})");
    }
    Ok(())
}
