//! Subcommand implementations.

use std::fs;
use std::path::{Path, PathBuf};

use std::sync::Arc;

use fastbuf_api::{parse_scenario_lines, wire, Objective, Scenario, Session, SolveError};
use fastbuf_batch::BatchSolver;
use fastbuf_buflib::units::{Microns, Seconds};
use fastbuf_buflib::BufferLibrary;
use fastbuf_core::cost::CostSolver;
use fastbuf_core::{Algorithm, DelayModel, Solver};
use fastbuf_netgen::{caterpillar_net, h_tree, line_net, HTreeSpec, RandomNetSpec, SuiteSpec};
use fastbuf_rctree::{elmore, io as netio, RoutingTree};

use crate::args::Flags;

const USAGE: &str = "usage:
  fastbuf gen net   [--kind random|line|htree|caterpillar] [--sinks N] [--sites N]
                    [--seed S] [--pitch UM] [--length UM] [--levels L] [-o FILE]
  fastbuf gen lib   [--size B] [--jitter SEED] [-o FILE]
  fastbuf gen suite --out-dir DIR [--nets N] [--max-sinks M] [--seed S] [--pitch UM]
                    [--slew-stress]
  fastbuf info      --net FILE
  fastbuf solve     --net FILE --lib FILE [--algo lishi|lillis|lishi-permanent]
                    [--slew-limit PS] [--model elmore|scaled-elmore]
                    [--scenarios FILE] [--json FILE]
                    [--variation FILE] [--samples N] [--quantile Q]
                    [--placements] [--stats] [--no-verify]
                    (--scenarios runs every corner of FILE; lines are
                     `name [model=M] [slew-limit-ps=N] [derate=F] [algo=A]`.
                     --model/--algo become the defaults for lines that do
                     not set their own; --slew-limit conflicts with
                     --scenarios. --json writes per-corner records in the
                     same schema as `batch --json`.
                     --variation runs a Monte-Carlo yield sweep instead:
                     FILE is a `parse_variation` spec, --samples (default
                     64) dice are solved through per-worker warm subtree
                     caches, and the slack distribution plus the --quantile
                     (default 0.5) slack are reported per corner.)
  fastbuf batch     (--dir DIR | --manifest FILE) --lib FILE [--algo A] [--workers N]
                    [--slew-limit PS] [--model M] [--json FILE] [--placements]
                    [--per-net] [--check] [--no-verify]
  fastbuf eco       --net FILE --lib FILE (--edits FILE | --random N)
                    [--locality F] [--seed S] [--algo A] [--model M]
                    [--slew-limit PS] [--check] [--per-edit] [--json FILE]
                    [--emit-edits FILE]
                    (applies each edit and re-solves incrementally through
                     the subtree cache; --check re-solves from scratch after
                     every edit and fails on any non-bit-identical result.
                     --random N generates a reproducible N-edit script at
                     --locality (default 0.1); --emit-edits saves it.)
  fastbuf frontier  --net FILE --lib FILE [--max-cost W]
  fastbuf serve     (--stdio | --port N) [--host H] [--workers N]
                    [--max-designs N] [--max-inflight N] [--deadline-ms MS]
                    [--model M] [--preload ID=NET,LIB]
                    (resident solve server speaking the newline-delimited
                     JSON v1 envelope of docs/PROTOCOL.md over TCP or
                     stdin/stdout; keeps warm per-design sessions and ECO
                     caches, LRU-evicted beyond --max-designs.)

exit codes:
  0 success | 2 usage, validation, or failed --check | 3 I/O
  solver errors map one variant to one code:
  10 no-scenarios | 11 duplicate-scenario | 12 invalid-derate
  13 invalid-slew-limit | 14 unsupported | 15 cost | 16 polarity
  17 verify | 18 scenario-parse | 19 unknown-model | 20 edit
  21 no-samples | 22 invalid-quantile | 23 variation-parse
  24 invalid-variation";

/// A CLI failure: what to print on stderr and the process exit code.
///
/// Usage and validation errors exit 2, I/O failures exit 3, and typed
/// solver errors carry the distinct per-variant codes of
/// [`SolveError::exit_code`] (10–24) — the same mapping `fastbuf --help`
/// documents and the server reports as kebab-case `error.code` strings.
#[derive(Debug)]
pub struct CliError {
    /// Process exit code (never 0).
    pub code: u8,
    /// Message for stderr (printed as `error: {message}`).
    pub message: String,
}

impl CliError {
    /// Whether the message mentions `needle` (assertion convenience).
    #[cfg(test)]
    pub fn contains(&self, needle: &str) -> bool {
        self.message.contains(needle)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError { code: 2, message }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError {
            code: 2,
            message: message.to_owned(),
        }
    }
}

impl From<SolveError> for CliError {
    fn from(e: SolveError) -> Self {
        CliError {
            code: e.exit_code(),
            message: e.to_string(),
        }
    }
}

/// An I/O failure: exit code 3.
fn io_error(message: String) -> CliError {
    CliError { code: 3, message }
}

/// Dispatches `argv` to a subcommand.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    match argv.first().map(String::as_str) {
        Some("gen") => match argv.get(1).map(String::as_str) {
            Some("net") => gen_net(&argv[2..]),
            Some("lib") => gen_lib(&argv[2..]),
            Some("suite") => gen_suite(&argv[2..]),
            _ => Err(format!("`gen` needs `net`, `lib`, or `suite`\n{USAGE}").into()),
        },
        Some("info") => info(&argv[1..]),
        Some("solve") => solve(&argv[1..]),
        Some("batch") => batch(&argv[1..]),
        Some("eco") => eco(&argv[1..]),
        Some("frontier") => frontier(&argv[1..]),
        Some("serve") => serve(&argv[1..]),
        Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}").into()),
    }
}

fn emit(flags: &Flags, content: &str) -> Result<(), CliError> {
    match flags.value("o") {
        None => {
            print!("{content}");
            Ok(())
        }
        Some(path) => {
            fs::write(path, content).map_err(|e| io_error(format!("cannot write `{path}`: {e}")))
        }
    }
}

fn load_net(flags: &Flags) -> Result<RoutingTree, CliError> {
    let path = flags.required("net")?;
    let text =
        fs::read_to_string(path).map_err(|e| io_error(format!("cannot read `{path}`: {e}")))?;
    netio::parse(&text).map_err(|e| format!("{path}: {e}").into())
}

/// Parses `--model` into a delay model (default Elmore).
fn load_model(flags: &Flags) -> Result<Arc<dyn DelayModel>, CliError> {
    match flags.value("model") {
        None => Ok(fastbuf_rctree::model_by_name("elmore").expect("elmore always exists")),
        Some(name) => fastbuf_rctree::model_by_name(name).ok_or_else(|| {
            format!("unknown delay model `{name}` (expected elmore or scaled-elmore)").into()
        }),
    }
}

/// Parses `--slew-limit` (picoseconds) into an optional limit.
fn load_slew_limit(flags: &Flags) -> Result<Option<Seconds>, CliError> {
    match flags.value("slew-limit") {
        None => Ok(None),
        Some(v) => {
            let ps: f64 = v
                .parse()
                .map_err(|_| format!("flag `--slew-limit`: cannot parse `{v}`"))?;
            if !ps.is_finite() || ps <= 0.0 {
                return Err("--slew-limit must be a positive number of picoseconds".into());
            }
            Ok(Some(Seconds::from_pico(ps)))
        }
    }
}

fn load_lib(flags: &Flags) -> Result<BufferLibrary, CliError> {
    let path = flags.required("lib")?;
    let text =
        fs::read_to_string(path).map_err(|e| io_error(format!("cannot read `{path}`: {e}")))?;
    BufferLibrary::from_text(&text).map_err(|e| format!("{path}: {e}").into())
}

fn gen_net(argv: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        argv,
        &[
            "kind", "sinks", "sites", "seed", "pitch", "length", "levels", "o",
        ],
        &[],
    )?;
    let kind = flags.value("kind").unwrap_or("random");
    let tree = match kind {
        "random" => {
            let sinks = flags.parsed_or("sinks", 64usize)?;
            let mut spec = RandomNetSpec {
                seed: flags.parsed_or("seed", 1u64)?,
                ..RandomNetSpec::paper(sinks)
            };
            if let Some(p) = flags.value("pitch") {
                let p: f64 = p.parse().map_err(|_| "bad --pitch".to_string())?;
                spec.site_pitch = Some(Microns::new(p));
            }
            spec.build()
        }
        "line" => line_net(
            Microns::new(flags.parsed_or("length", 10_000.0f64)?),
            flags.parsed_or("sites", 99usize)?,
        ),
        "htree" => {
            let levels = flags.parsed_or("levels", 3usize)?;
            match flags.value("pitch") {
                None => h_tree(levels),
                Some(p) => {
                    let p: f64 = p.parse().map_err(|_| "bad --pitch".to_string())?;
                    HTreeSpec {
                        levels,
                        site_pitch: Some(Microns::new(p)),
                        ..HTreeSpec::default()
                    }
                    .build()
                }
            }
        }
        "caterpillar" => caterpillar_net(
            flags.parsed_or("sinks", 32usize)?,
            Microns::new(flags.parsed_or("pitch", 400.0f64)?),
            Microns::new(40.0),
        ),
        other => return Err(format!("unknown net kind `{other}`").into()),
    };
    emit(&flags, &netio::write(&tree))
}

fn gen_lib(argv: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(argv, &["size", "jitter", "o"], &[])?;
    let size = flags.parsed_or("size", 16usize)?;
    let lib = match flags.value("jitter") {
        None => BufferLibrary::paper_synthetic(size),
        Some(seed) => {
            let seed: u64 = seed.parse().map_err(|_| "bad --jitter".to_string())?;
            BufferLibrary::paper_synthetic_jittered(size, seed)
        }
    }
    .map_err(|e| e.to_string())?;
    emit(&flags, &lib.to_text())
}

fn gen_suite(argv: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        argv,
        &["out-dir", "nets", "max-sinks", "seed", "pitch"],
        &["slew-stress"],
    )?;
    let dir = PathBuf::from(flags.required("out-dir")?);
    let spec = SuiteSpec {
        nets: flags.parsed_or("nets", 100usize)?,
        max_sinks: flags.parsed_or("max-sinks", 256usize)?,
        seed: flags.parsed_or("seed", 1u64)?,
        site_pitch: Microns::new(flags.parsed_or("pitch", 200.0f64)?),
        slew_stress: flags.switch("slew-stress"),
    };
    if spec.nets == 0 {
        return Err("--nets must be at least 1".into());
    }
    if spec.max_sinks < 8 {
        return Err("--max-sinks must be at least 8".into());
    }
    fs::create_dir_all(&dir)
        .map_err(|e| io_error(format!("cannot create `{}`: {e}", dir.display())))?;
    for i in 0..spec.nets {
        let tree = spec.build_net(i);
        let path = dir.join(format!("net{i:05}.net"));
        fs::write(&path, netio::write(&tree))
            .map_err(|e| io_error(format!("cannot write `{}`: {e}", path.display())))?;
    }
    println!(
        "wrote {} nets (seed {}, max {} sinks) to {}",
        spec.nets,
        spec.seed,
        spec.max_sinks,
        dir.display()
    );
    Ok(())
}

/// Loads the nets of a `batch` run: every `*.net` in `--dir` (sorted by
/// file name), or the paths listed in `--manifest` (one per line, `#`
/// comments allowed, relative to the manifest's directory).
fn load_batch_nets(flags: &Flags) -> Result<(Vec<String>, Vec<RoutingTree>), CliError> {
    let paths: Vec<PathBuf> = match (flags.value("dir"), flags.value("manifest")) {
        (Some(_), Some(_)) => return Err("give either --dir or --manifest, not both".into()),
        (Some(dir), None) => {
            let mut v: Vec<PathBuf> = fs::read_dir(dir)
                .map_err(|e| io_error(format!("cannot read `{dir}`: {e}")))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|ext| ext == "net"))
                .collect();
            v.sort();
            v
        }
        (None, Some(manifest)) => {
            let text = fs::read_to_string(manifest)
                .map_err(|e| io_error(format!("cannot read `{manifest}`: {e}")))?;
            let base = Path::new(manifest).parent().unwrap_or(Path::new("."));
            text.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(|l| base.join(l))
                .collect()
        }
        (None, None) => return Err(format!("`batch` needs --dir or --manifest\n{USAGE}").into()),
    };
    if paths.is_empty() {
        return Err("no .net files found".into());
    }
    let mut names = Vec::with_capacity(paths.len());
    let mut nets = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path)
            .map_err(|e| io_error(format!("cannot read `{}`: {e}", path.display())))?;
        nets.push(netio::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?);
        names.push(path.display().to_string());
    }
    Ok((names, nets))
}

fn batch(argv: &[String]) -> Result<(), CliError> {
    let mut value_flags = vec![
        "dir",
        "manifest",
        "lib",
        "algo",
        "workers",
        "json",
        "slew-limit",
        "model",
    ];
    // `--check-fault N` is a testing hook: it perturbs net N's sequential
    // re-solve so the `--check` failure path can be exercised end to end.
    // Test builds only — the production binary rejects it as unknown.
    if cfg!(test) {
        value_flags.push("check-fault");
    }
    let flags = Flags::parse(
        argv,
        &value_flags,
        &["placements", "per-net", "check", "no-verify"],
    )?;
    let (names, nets) = load_batch_nets(&flags)?;
    let lib = load_lib(&flags)?;
    let algo: Algorithm = flags.value("algo").unwrap_or("lishi").parse()?;
    let model = load_model(&flags)?;
    let slew_limit = load_slew_limit(&flags)?;
    let check_fault: Option<usize> = match flags.value("check-fault") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| "bad --check-fault".to_string())?),
    };
    let mut solver = BatchSolver::new(&nets, &lib)
        .algorithm(algo)
        .delay_model(Arc::clone(&model));
    if let Some(limit) = slew_limit {
        solver = solver.slew_limit(limit);
    }
    if let Some(w) = flags.value("workers") {
        let w: usize = w.parse().map_err(|_| "bad --workers".to_string())?;
        if w == 0 {
            return Err("--workers must be at least 1".into());
        }
        solver = solver.workers(w);
    }
    let report = solver.solve();

    if !flags.switch("no-verify") {
        // Independent forward check of every reconstruction, under the
        // same delay model the batch solved with.
        for o in &report.outcomes {
            let measured = elmore::evaluate_with(
                &nets[o.index],
                &lib,
                &o.placements
                    .iter()
                    .map(|p| (p.node, p.buffer))
                    .collect::<Vec<_>>(),
                &*model,
            )
            .map_err(|e| format!("{}: {e}", names[o.index]))?;
            // Same relative tolerance as `Solution::verify` — one
            // definition of "verified" across the workspace.
            let (predicted, measured_v) = (o.slack.value(), measured.slack.value());
            let tol = 1e-9 * predicted.abs().max(measured_v.abs()).max(1e-12);
            if (measured_v - predicted).abs() > tol {
                return Err(format!(
                    "{}: batch predicted {} but forward evaluation measures {}",
                    names[o.index], o.slack, measured.slack
                )
                .into());
            }
            if let Some(limit) = slew_limit {
                if o.slew_ok && o.max_slew.value() > limit.value() * (1.0 + 1e-9) {
                    return Err(format!(
                        "{}: reported slew-feasible but measures {} over the {} limit",
                        names[o.index], o.max_slew, limit
                    )
                    .into());
                }
            }
        }
    }
    if flags.switch("check") {
        // Re-solve sequentially and demand bit-identical results.
        for o in &report.outcomes {
            let mut seq = Solver::new(&nets[o.index], &lib)
                .algorithm(algo)
                .delay_model(Arc::clone(&model));
            if let Some(limit) = slew_limit {
                seq = seq.slew_limit(limit);
            }
            let mut solo = seq.solve();
            if check_fault == Some(o.index) {
                solo.slack += Seconds::from_pico(1.0);
            }
            if solo.slack != o.slack || solo.placements != o.placements {
                return Err(format!(
                    "check failed: net {} (`{}`) diverges from its sequential \
                     solve: batch slack {} vs sequential {}",
                    o.index, names[o.index], o.slack, solo.slack
                )
                .into());
            }
        }
        println!(
            "check: all {} batch results identical to sequential solves",
            report.outcomes.len()
        );
    }

    if flags.switch("per-net") {
        for o in &report.outcomes {
            println!(
                "  {:<40} sinks {:>5} sites {:>6} slack {} -> {} buffers {:>4} slew {}{}",
                names[o.index],
                o.sinks,
                o.sites,
                o.slack_before,
                o.slack,
                o.placements.len(),
                o.max_slew,
                if o.slew_ok { "" } else { " [OVER LIMIT]" },
            );
        }
    }
    println!("{report}");
    if let Some(path) = flags.value("json") {
        let json = report.to_json(Some(&names), flags.switch("placements"));
        if path == "-" {
            print!("{json}");
        } else {
            fs::write(path, json).map_err(|e| io_error(format!("cannot write `{path}`: {e}")))?;
            println!("json report written to {path}");
        }
    }
    Ok(())
}

fn info(argv: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(argv, &["net"], &[])?;
    let tree = load_net(&flags)?;
    println!("{}", tree.stats());
    let report =
        elmore::evaluate(&tree, &BufferLibrary::empty(), &[]).map_err(|e| e.to_string())?;
    println!(
        "unbuffered slack: {} (critical sink {})",
        report.slack, report.critical_sink
    );
    Ok(())
}

fn solve(argv: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        argv,
        &[
            "net",
            "lib",
            "algo",
            "slew-limit",
            "model",
            "scenarios",
            "json",
            "variation",
            "samples",
            "quantile",
        ],
        &["placements", "stats", "no-verify"],
    )?;
    let net_path = flags.required("net")?.to_owned();
    let tree = load_net(&flags)?;
    let lib = load_lib(&flags)?;
    let algo: Algorithm = flags.value("algo").unwrap_or("lishi").parse()?;
    let model = load_model(&flags)?;
    let slew_limit = load_slew_limit(&flags)?;

    // Everything below goes through the unified request layer: one
    // session, one request, one scenario per corner.
    let session = Session::builder(lib)
        .delay_model(Arc::clone(&model))
        .build();
    let lib = session.library();

    let scenarios = match flags.value("scenarios") {
        None => {
            let mut scenario = Scenario::default().algorithm(algo);
            if let Some(limit) = slew_limit {
                scenario = scenario.slew_limit(limit);
            }
            vec![scenario]
        }
        Some(path) => {
            if slew_limit.is_some() {
                return Err(
                    "--slew-limit conflicts with --scenarios; put `slew-limit-ps=` on the \
                     scenario lines instead"
                        .into(),
                );
            }
            let text = fs::read_to_string(path)
                .map_err(|e| io_error(format!("cannot read `{path}`: {e}")))?;
            // The shared corner-file path (`api::parse_scenario_lines`):
            // the server's `scenarios` frames go through the same parser,
            // with --algo as the default for lines without their own
            // `algo=`.
            parse_scenario_lines(&text, Some(algo), None).map_err(|e| CliError {
                code: e.exit_code(),
                message: format!("{path}: {e}"),
            })?
        }
    };
    // Corner files get named, table-style output and `"scenario"` keys in
    // JSON — even when the file happens to contain a single corner, so
    // downstream tooling keyed on scenario names never breaks. (This also
    // keeps the anonymous branch's improvement-vs-unbuffered print sound:
    // flag-built scenarios always share the session model and derate 1.0.)
    let named = flags.value("scenarios").is_some();

    if flags.value("variation").is_some() {
        return solve_yield(&flags, &tree, &session, scenarios, named);
    }
    for conflicting in ["samples", "quantile"] {
        if flags.value(conflicting).is_some() {
            return Err(format!("--{conflicting} needs --variation").into());
        }
    }

    let unbuffered = elmore::evaluate_with(&tree, lib, &[], &*model).map_err(|e| e.to_string())?;
    let outcome = session.request(&tree).scenarios(scenarios).solve()?;

    if !flags.switch("no-verify") {
        // Each corner is re-measured under its own model and derate.
        outcome.verify(&tree, lib)?;
    }

    println!("unbuffered slack: {}", unbuffered.slack);
    let want_json = flags.value("json").is_some();
    let mut records = String::new();
    for (k, corner) in outcome.scenarios.iter().enumerate() {
        let solution = corner
            .solution()
            .expect("solve command always asks for max slack");
        let scenario = &corner.scenario;
        // The corner's record in the shared wire schema (`api::wire`) —
        // the exact serializer the server and `batch --json` go through.
        // It re-measures this corner under its own model and derate
        // (ground-truth worst slew, same definition as `batch`), so it is
        // only built when something consumes it: a slew limit to check,
        // or a JSON report to write.
        let record = if scenario.slew_limit.is_some() || want_json {
            Some(wire::scenario_record(
                &net_path,
                0,
                &tree,
                lib,
                corner,
                named,
                flags.switch("placements"),
            )?)
        } else {
            None
        };
        let measured_slew = record.as_ref().map(|r| r.max_slew);
        // The hard cross-check runs for *every* corner with a limit: a
        // corner reported feasible must measure within its limit.
        if let (Some(limit), Some(measured)) = (scenario.slew_limit, measured_slew) {
            if solution.slew_ok && measured.value() > limit.value() * (1.0 + 1e-9) {
                return Err(format!(
                    "scenario `{}`: slew check failed: measured {} over the {} limit",
                    scenario.name, measured, limit
                )
                .into());
            }
        }
        if named {
            println!(
                "scenario {:<12} algo {:<16} model {:<13} derate {:<5} slack {}  buffers {}{}",
                scenario.name,
                corner.algorithm,
                corner.model.name(),
                scenario.rat_derate,
                solution.slack,
                solution.placements.len(),
                if solution.slew_ok {
                    ""
                } else {
                    "  [SLEW INFEASIBLE]"
                },
            );
        } else {
            println!("algorithm:        {}", corner.algorithm);
            println!("delay model:      {}", corner.model.name());
            println!(
                "buffered slack:   {}  (improvement {})",
                solution.slack,
                solution.slack - unbuffered.slack
            );
            println!(
                "buffers inserted: {}  (total cost {:.0})",
                solution.placements.len(),
                solution.total_cost(lib)
            );
            if let (Some(limit), Some(measured)) = (scenario.slew_limit, measured_slew) {
                println!(
                    "slew:             worst {} against limit {}{}",
                    measured,
                    limit,
                    if solution.slew_ok {
                        ""
                    } else {
                        "  [INFEASIBLE: best effort]"
                    }
                );
            }
            if !flags.switch("no-verify") {
                println!("verified:         forward evaluation matches each corner");
            }
        }
        if flags.switch("placements") {
            for p in &solution.placements {
                println!("  {} {}", p.node, lib.get(p.buffer).name());
            }
        }
        if flags.switch("stats") {
            println!("stats: {}", solution.stats);
        }
        if want_json {
            // `record.slack_before` was re-measured under *this corner's*
            // model and derate, so `slack_after − slack_before` is the
            // buffering improvement in every corner, never a model/derate
            // artifact.
            let record = record.as_ref().expect("built whenever want_json");
            records.push_str("    ");
            records.push_str(&record.to_json());
            if k + 1 < outcome.scenarios.len() {
                records.push(',');
            }
            records.push('\n');
        }
    }
    if named {
        if let Some(worst) = outcome.worst_slack() {
            println!("worst corner slack: {worst}");
        }
    }
    if let Some(path) = flags.value("json") {
        let json = format!(
            "{{\n  \"nets\": 1,\n  \"scenarios\": {},\n  \"results\": [\n{}  ]\n}}\n",
            outcome.scenarios.len(),
            records
        );
        if path == "-" {
            print!("{json}");
        } else {
            fs::write(path, json).map_err(|e| io_error(format!("cannot write `{path}`: {e}")))?;
            println!("json report written to {path}");
        }
    }
    Ok(())
}

/// `fastbuf solve --variation FILE [--samples N] [--quantile Q]`: the
/// Monte-Carlo yield sweep. Each corner's samples are solved through
/// per-worker warm subtree caches (the same family-cache machinery the
/// differential harness certifies bit-identical to scratch solves), and
/// the slack distribution is reported instead of a single slack.
fn solve_yield(
    flags: &Flags,
    tree: &RoutingTree,
    session: &Session,
    scenarios: Vec<Scenario>,
    named: bool,
) -> Result<(), CliError> {
    if flags.switch("placements") {
        return Err(
            "--placements is not available with --variation (yield sweeps \
                    report slack statistics, not placements)"
                .into(),
        );
    }
    let vpath = flags.value("variation").expect("checked by the caller");
    let text =
        fs::read_to_string(vpath).map_err(|e| io_error(format!("cannot read `{vpath}`: {e}")))?;
    let spec = fastbuf_api::parse_variation_spec(&text).map_err(|e| CliError {
        code: e.exit_code(),
        message: format!("{vpath}: {e}"),
    })?;
    let samples: usize = flags.parsed_or("samples", 64)?;
    let quantile: f64 = flags.parsed_or("quantile", 0.5)?;

    let outcome = session
        .request(tree)
        .objective(Objective::YieldTarget { samples, quantile })
        .variation(spec)
        .scenarios(scenarios)
        .solve()?;

    let want_json = flags.value("json").is_some();
    let mut records = String::new();
    for (k, corner) in outcome.scenarios.iter().enumerate() {
        let v = corner
            .variation()
            .expect("yield objective produces variation outcomes");
        let s = &v.summary;
        let prefix = if named {
            format!("scenario {:<12} ", corner.scenario.name)
        } else {
            String::new()
        };
        println!(
            "{prefix}samples {:<5} yield {:>6.1}%  slack q{:.2} {}  min {}  mean {}  max {}",
            s.samples,
            s.yield_fraction * 100.0,
            s.quantile,
            s.quantile_slack,
            s.min_slack,
            s.mean_slack,
            s.max_slack,
        );
        if flags.switch("stats") {
            let total = s.nodes_recomputed + s.nodes_reused;
            println!(
                "{prefix}cache: {} subtrees recomputed, {} reused ({:.1}% reuse)",
                s.nodes_recomputed,
                s.nodes_reused,
                if total > 0 {
                    100.0 * s.nodes_reused as f64 / total as f64
                } else {
                    0.0
                },
            );
        }
        if want_json {
            records.push_str("    ");
            records.push_str(&wire::variation_record(corner, named, true)?);
            if k + 1 < outcome.scenarios.len() {
                records.push(',');
            }
            records.push('\n');
        }
    }
    if let Some(path) = flags.value("json") {
        let json = format!(
            "{{\n  \"nets\": 1,\n  \"scenarios\": {},\n  \"results\": [\n{}  ]\n}}\n",
            outcome.scenarios.len(),
            records
        );
        if path == "-" {
            print!("{json}");
        } else {
            fs::write(path, json).map_err(|e| io_error(format!("cannot write `{path}`: {e}")))?;
            println!("json report written to {path}");
        }
    }
    Ok(())
}

fn eco(argv: &[String]) -> Result<(), CliError> {
    use fastbuf_incremental::{parse_edits, write_edits, EditScriptSpec, IncrementalSolver};

    let flags = Flags::parse(
        argv,
        &[
            "net",
            "lib",
            "edits",
            "random",
            "locality",
            "seed",
            "algo",
            "model",
            "slew-limit",
            "json",
            "emit-edits",
        ],
        &["check", "per-edit"],
    )?;
    let tree = load_net(&flags)?;
    let lib = load_lib(&flags)?;
    let algo: Algorithm = flags.value("algo").unwrap_or("lishi").parse()?;
    let model = load_model(&flags)?;
    let slew_limit = load_slew_limit(&flags)?;

    let edits = match (flags.value("edits"), flags.value("random")) {
        (Some(_), Some(_)) => return Err("give either --edits or --random, not both".into()),
        (Some(path), None) => {
            let text = fs::read_to_string(path)
                .map_err(|e| io_error(format!("cannot read `{path}`: {e}")))?;
            parse_edits(&text).map_err(|e| format!("{path}: {e}"))?
        }
        (None, Some(n)) => {
            let n: usize = n.parse().map_err(|_| "bad --random".to_string())?;
            if n == 0 {
                return Err("--random must be at least 1".into());
            }
            let locality: f64 = flags.parsed_or("locality", 0.1f64)?;
            if !(locality > 0.0 && locality <= 1.0) {
                return Err("--locality must be in (0, 1]".into());
            }
            EditScriptSpec {
                edits: n,
                locality,
                seed: flags.parsed_or("seed", 1u64)?,
                swap_library_every: 0,
            }
            .generate(&tree)
        }
        (None, None) => return Err(format!("`eco` needs --edits or --random\n{USAGE}").into()),
    };
    if let Some(path) = flags.value("emit-edits") {
        fs::write(path, write_edits(&edits))
            .map_err(|e| io_error(format!("cannot write `{path}`: {e}")))?;
    }

    let mut options = fastbuf_core::SolverOptions::default();
    options.algorithm = algo;
    options.delay_model = Arc::clone(&model);
    options.slew_limit = slew_limit;
    let mut solver = IncrementalSolver::new(tree, lib).with_options(options);

    // Baseline solve populates the cache.
    let baseline = solver.solve();
    println!(
        "baseline: slack {} with {} buffers ({} nodes cached)",
        baseline.slack,
        baseline.placements.len(),
        solver.cache().cached_nodes()
    );

    let mut records = String::new();
    let mut total_recomputed = 0u64;
    let mut total_reused = 0u64;
    let mut incremental_time = std::time::Duration::ZERO;
    let mut scratch_time = std::time::Duration::ZERO;
    let want_json = flags.value("json").is_some();
    for (k, edit) in edits.iter().enumerate() {
        solver.apply(edit).map_err(|e| {
            let message = format!("edit {} (`{edit}`): {e}", k + 1);
            CliError {
                code: SolveError::Edit(e).exit_code(),
                message,
            }
        })?;
        let t0 = std::time::Instant::now();
        let sol = solver.solve();
        incremental_time += t0.elapsed();
        total_recomputed += sol.stats.nodes_recomputed;
        total_reused += sol.stats.nodes_reused;
        if flags.switch("check") {
            let t0 = std::time::Instant::now();
            let scratch = solver.solve_scratch();
            scratch_time += t0.elapsed();
            if sol.slack != scratch.slack
                || sol.placements != scratch.placements
                || sol.slew_ok != scratch.slew_ok
            {
                return Err(format!(
                    "check failed: edit {} (`{edit}`) diverges from scratch: \
                     incremental slack {} vs scratch {}",
                    k + 1,
                    sol.slack,
                    scratch.slack
                )
                .into());
            }
        }
        if flags.switch("per-edit") {
            println!(
                "  edit {:>4} {:<24} slack {}  buffers {:>3}  recomputed {:>5} reused {:>5}{}",
                k + 1,
                edit.to_string(),
                sol.slack,
                sol.placements.len(),
                sol.stats.nodes_recomputed,
                sol.stats.nodes_reused,
                if sol.slew_ok {
                    ""
                } else {
                    "  [SLEW INFEASIBLE]"
                },
            );
        }
        if want_json {
            records.push_str(&format!(
                "    {{\"edit\": \"{edit}\", \"slack_ps\": {:.6}, \"buffers\": {}, \
                 \"nodes_recomputed\": {}, \"nodes_reused\": {}, \"slew_ok\": {}}}{}\n",
                sol.slack.picos(),
                sol.placements.len(),
                sol.stats.nodes_recomputed,
                sol.stats.nodes_reused,
                sol.slew_ok,
                if k + 1 < edits.len() { "," } else { "" }
            ));
        }
    }

    let final_sol = solver.solve();
    let nodes = solver.tree().node_count() as u64;
    let touched = total_recomputed + total_reused;
    println!(
        "eco: {} edits on {} nodes | recomputed {} of {} node-solves ({:.1}% reused) | \
         incremental wall {:?}",
        edits.len(),
        nodes,
        total_recomputed,
        touched,
        100.0 * total_reused as f64 / touched.max(1) as f64,
        incremental_time,
    );
    if flags.switch("check") {
        println!(
            "check: all {} incremental results bit-identical to scratch (scratch wall {:?})",
            edits.len(),
            scratch_time
        );
    }
    println!(
        "final: slack {} with {} buffers{}",
        final_sol.slack,
        final_sol.placements.len(),
        if final_sol.slew_ok {
            ""
        } else {
            "  [SLEW INFEASIBLE]"
        }
    );

    if let Some(path) = flags.value("json") {
        let json = format!(
            "{{\n  \"edits\": {},\n  \"nodes\": {},\n  \"total_recomputed\": {},\n  \
             \"total_reused\": {},\n  \"final_slack_ps\": {:.6},\n  \"final_buffers\": {},\n  \
             \"checked\": {},\n  \"results\": [\n{}  ]\n}}\n",
            edits.len(),
            nodes,
            total_recomputed,
            total_reused,
            final_sol.slack.picos(),
            final_sol.placements.len(),
            flags.switch("check"),
            records
        );
        if path == "-" {
            print!("{json}");
        } else {
            fs::write(path, json).map_err(|e| io_error(format!("cannot write `{path}`: {e}")))?;
            println!("json report written to {path}");
        }
    }
    Ok(())
}

fn frontier(argv: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(argv, &["net", "lib", "max-cost"], &[])?;
    let tree = load_net(&flags)?;
    let lib = load_lib(&flags)?;
    let max_cost = flags.parsed_or("max-cost", 64u32)?;
    let frontier = CostSolver::new(&tree, &lib)
        .max_cost(max_cost)
        .solve()
        .map_err(|e| CliError::from(SolveError::Cost(e)))?;
    println!("{:>8} {:>9} {:>16}", "cost", "buffers", "slack");
    for p in &frontier.points {
        println!(
            "{:>8} {:>9} {:>16}",
            p.cost,
            p.placements.len(),
            p.slack.to_string()
        );
    }
    let base = frontier.points.first().expect("never empty");
    let best = frontier.points.last().expect("never empty");
    println!(
        "\nimprovement {} over unbuffered at cost {}",
        best.slack - base.slack,
        best.cost
    );
    Ok(())
}

fn serve(argv: &[String]) -> Result<(), CliError> {
    use fastbuf_server::{Server, ServerConfig};

    let flags = Flags::parse(
        argv,
        &[
            "port",
            "host",
            "workers",
            "max-designs",
            "max-inflight",
            "deadline-ms",
            "preload",
            "model",
        ],
        &["stdio"],
    )?;

    let mut config = ServerConfig::default();
    if let Some(w) = flags.value("workers") {
        let w: usize = w.parse().map_err(|_| "bad --workers".to_string())?;
        if w == 0 {
            return Err("--workers must be at least 1".into());
        }
        config.workers = w;
    }
    config.max_designs = flags.parsed_or("max-designs", config.max_designs)?;
    if config.max_designs == 0 {
        return Err("--max-designs must be at least 1".into());
    }
    config.max_inflight = flags.parsed_or("max-inflight", config.max_inflight)?;
    if config.max_inflight == 0 {
        return Err("--max-inflight must be at least 1".into());
    }
    if let Some(ms) = flags.value("deadline-ms") {
        let ms: u64 = ms.parse().map_err(|_| "bad --deadline-ms".to_string())?;
        config.default_deadline = Some(std::time::Duration::from_millis(ms));
    }

    let server = Server::new(config);
    if let Some(spec) = flags.value("preload") {
        // `--preload ID=NET,LIB`: make a design resident before the first
        // client connects (cold-load latency paid once, at startup).
        let (id, files) = spec.split_once('=').ok_or("--preload expects ID=NET,LIB")?;
        let (net_path, lib_path) = files
            .split_once(',')
            .ok_or("--preload expects ID=NET,LIB")?;
        let text = fs::read_to_string(net_path)
            .map_err(|e| io_error(format!("cannot read `{net_path}`: {e}")))?;
        let tree = netio::parse(&text).map_err(|e| format!("{net_path}: {e}"))?;
        let text = fs::read_to_string(lib_path)
            .map_err(|e| io_error(format!("cannot read `{lib_path}`: {e}")))?;
        let lib = BufferLibrary::from_text(&text).map_err(|e| format!("{lib_path}: {e}"))?;
        let model = load_model(&flags)?;
        let session = Session::builder(lib).delay_model(model).build();
        server.registry().load(id, session, tree);
        eprintln!("fastbuf serve: preloaded design `{id}`");
    }

    // Status lines go to stderr: in stdio mode stdout *is* the protocol
    // stream, and keeping TCP mode symmetric costs nothing.
    match (flags.switch("stdio"), flags.value("port")) {
        (true, Some(_)) => Err("give either --stdio or --port, not both".into()),
        (true, None) => {
            eprintln!("fastbuf serve: speaking v1 frames on stdin/stdout");
            server.serve_stdio();
            Ok(())
        }
        (false, Some(p)) => {
            let port: u16 = p.parse().map_err(|_| "bad --port".to_string())?;
            let host = flags.value("host").unwrap_or("127.0.0.1");
            let listener = std::net::TcpListener::bind((host, port))
                .map_err(|e| io_error(format!("cannot bind {host}:{port}: {e}")))?;
            if let Ok(addr) = listener.local_addr() {
                eprintln!("fastbuf serve: listening on {addr}");
            }
            server
                .serve_tcp(listener)
                .map_err(|e| io_error(format!("serve: {e}")))
        }
        (false, None) => Err(format!("`serve` needs --stdio or --port\n{USAGE}").into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_rejects_unknown() {
        let argv: Vec<String> = vec!["frobnicate".into()];
        assert!(run(&argv).is_err());
        let argv: Vec<String> = vec!["gen".into(), "nothing".into()];
        assert!(run(&argv).is_err());
    }

    #[test]
    fn help_is_ok() {
        assert!(run(&["--help".to_string()]).is_ok());
        assert!(run(&[]).is_ok());
    }

    #[test]
    fn end_to_end_via_tempdir() {
        let dir = std::env::temp_dir().join(format!("fastbuf-cli-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let net = dir.join("t.net");
        let lib = dir.join("t.lib");

        let argv: Vec<String> = [
            "gen",
            "net",
            "--kind",
            "line",
            "--length",
            "8000",
            "--sites",
            "7",
            "-o",
            net.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&argv).unwrap();

        let argv: Vec<String> = ["gen", "lib", "--size", "4", "-o", lib.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&argv).unwrap();

        let argv: Vec<String> = [
            "solve",
            "--net",
            net.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--placements",
            "--stats",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&argv).unwrap();

        let argv: Vec<String> = [
            "frontier",
            "--net",
            net.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--max-cost",
            "40",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&argv).unwrap();

        let argv: Vec<String> = ["info", "--net", net.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&argv).unwrap();

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn yield_solve_end_to_end() {
        let dir = std::env::temp_dir().join(format!("fastbuf-cli-yield-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let net = dir.join("y.net");
        let lib = dir.join("y.lib");
        let var = dir.join("y.var");
        let json = dir.join("y.json");

        let argv: Vec<String> = [
            "gen",
            "net",
            "--kind",
            "line",
            "--length",
            "8000",
            "--sites",
            "7",
            "-o",
            net.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&argv).unwrap();
        let argv: Vec<String> = ["gen", "lib", "--size", "4", "-o", lib.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&argv).unwrap();
        fs::write(
            &var,
            "wire-r normal 1.0 0.05\nwire-c normal 1.0 0.05\nlocality 0.5\nseed 7\n",
        )
        .unwrap();

        let argv: Vec<String> = [
            "solve",
            "--net",
            net.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--variation",
            var.to_str().unwrap(),
            "--samples",
            "8",
            "--quantile",
            "0.25",
            "--stats",
            "--json",
            json.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&argv).unwrap();
        let report = fs::read_to_string(&json).unwrap();
        for key in [
            "\"samples\": 8",
            "\"quantile\": 0.25",
            "\"quantile_slack_ps\"",
            "\"yield\"",
            "\"per_sample\"",
        ] {
            assert!(report.contains(key), "missing {key} in {report}");
        }

        // --samples / --quantile without --variation is a usage error, as
        // is --placements in yield mode (there are no placements to show).
        let argv: Vec<String> = [
            "solve",
            "--net",
            net.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--samples",
            "8",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(run(&argv)
            .unwrap_err()
            .contains("--samples needs --variation"));
        let argv: Vec<String> = [
            "solve",
            "--net",
            net.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--variation",
            var.to_str().unwrap(),
            "--placements",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(run(&argv).unwrap_err().contains("--placements"));

        // A malformed spec is rejected with its line number.
        fs::write(&var, "wire-r normal 1.0 -0.5\n").unwrap();
        let argv: Vec<String> = [
            "solve",
            "--net",
            net.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--variation",
            var.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(run(&argv).unwrap_err().contains("line 1"));

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gen_accepts_every_net_kind() {
        let dir = std::env::temp_dir().join(format!("fastbuf-cli-kinds-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        for (kind, extra) in [
            ("random", vec!["--sinks", "12", "--seed", "3"]),
            ("line", vec!["--length", "3000", "--sites", "4"]),
            ("htree", vec!["--levels", "2", "--pitch", "300"]),
            ("caterpillar", vec!["--sinks", "9", "--pitch", "250"]),
        ] {
            let net = dir.join(format!("{kind}.net"));
            let mut argv: Vec<String> = ["gen", "net", "--kind", kind]
                .iter()
                .map(|s| s.to_string())
                .collect();
            argv.extend(extra.iter().map(|s| s.to_string()));
            argv.push("-o".into());
            argv.push(net.to_str().unwrap().into());
            run(&argv).unwrap_or_else(|e| panic!("{kind}: {e}"));
            // Generated files parse and report.
            let argv: Vec<String> = ["info", "--net", net.to_str().unwrap()]
                .iter()
                .map(|s| s.to_string())
                .collect();
            run(&argv).unwrap_or_else(|e| panic!("{kind} info: {e}"));
        }
        let argv: Vec<String> = ["gen", "net", "--kind", "mystery"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&argv).unwrap_err().contains("unknown net kind"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suite_and_batch_end_to_end() {
        let dir = std::env::temp_dir().join(format!("fastbuf-cli-batch-{}", std::process::id()));
        let suite_dir = dir.join("suite");
        fs::create_dir_all(&dir).unwrap();
        let lib = dir.join("b.lib");
        let json = dir.join("report.json");

        let argv: Vec<String> = [
            "gen",
            "suite",
            "--nets",
            "12",
            "--max-sinks",
            "24",
            "--seed",
            "5",
            "--out-dir",
            suite_dir.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&argv).unwrap();
        assert_eq!(fs::read_dir(&suite_dir).unwrap().count(), 12);

        let argv: Vec<String> = ["gen", "lib", "--size", "4", "-o", lib.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&argv).unwrap();

        let argv: Vec<String> = [
            "batch",
            "--dir",
            suite_dir.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--workers",
            "3",
            "--check",
            "--per-net",
            "--json",
            json.to_str().unwrap(),
            "--placements",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&argv).unwrap();
        let report = fs::read_to_string(&json).unwrap();
        assert!(report.contains("\"nets\": 12"));
        assert!(report.contains("\"placements\""));

        // The same run through a manifest (with a comment line) works too.
        let manifest = dir.join("nets.txt");
        let mut listing = String::from("# three nets of the suite\n");
        for i in [0usize, 3, 7] {
            listing.push_str(&format!("suite/net{i:05}.net\n"));
        }
        fs::write(&manifest, listing).unwrap();
        let argv: Vec<String> = [
            "batch",
            "--manifest",
            manifest.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&argv).unwrap();

        fs::remove_dir_all(&dir).ok();
    }

    /// Satellite: the `--check` failure path must fail loudly, naming the
    /// offending net. `--check-fault N` (a testing hook) perturbs net N's
    /// sequential re-solve so the divergence branch actually runs; the
    /// binary's `main` maps the returned `Err` to a nonzero exit code.
    #[test]
    fn batch_check_failure_names_the_offending_net() {
        let dir = std::env::temp_dir().join(format!("fastbuf-cli-fault-{}", std::process::id()));
        let suite_dir = dir.join("suite");
        fs::create_dir_all(&dir).unwrap();
        let lib = dir.join("b.lib");
        let run_strs = |args: &[&str]| run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>());

        run_strs(&[
            "gen",
            "suite",
            "--nets",
            "5",
            "--max-sinks",
            "16",
            "--seed",
            "2",
            "--out-dir",
            suite_dir.to_str().unwrap(),
        ])
        .unwrap();
        run_strs(&["gen", "lib", "--size", "3", "-o", lib.to_str().unwrap()]).unwrap();

        // Sanity: without the fault the check passes.
        run_strs(&[
            "batch",
            "--dir",
            suite_dir.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--check",
        ])
        .unwrap();

        // Forced mismatch on net index 3: the error names it.
        let err = run_strs(&[
            "batch",
            "--dir",
            suite_dir.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--check",
            "--check-fault",
            "3",
        ])
        .unwrap_err();
        assert!(err.contains("check failed"), "{err}");
        assert!(err.contains("net 3"), "must name the net index: {err}");
        assert!(
            err.contains("net00003.net"),
            "must name the net file: {err}"
        );
        assert!(err.contains("diverges"), "{err}");

        // A fault index outside the batch changes nothing.
        run_strs(&[
            "batch",
            "--dir",
            suite_dir.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--check",
            "--check-fault",
            "99",
        ])
        .unwrap();

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn solve_and_batch_with_slew_limit_and_model() {
        let dir = std::env::temp_dir().join(format!("fastbuf-cli-slew-{}", std::process::id()));
        let suite_dir = dir.join("suite");
        fs::create_dir_all(&dir).unwrap();
        let net = dir.join("t.net");
        let lib = dir.join("t.lib");
        let json = dir.join("r.json");
        let run_strs = |args: &[&str]| run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>());

        run_strs(&[
            "gen",
            "net",
            "--kind",
            "line",
            "--length",
            "9000",
            "--sites",
            "8",
            "-o",
            net.to_str().unwrap(),
        ])
        .unwrap();
        run_strs(&["gen", "lib", "--size", "4", "-o", lib.to_str().unwrap()]).unwrap();

        for model in ["elmore", "scaled-elmore"] {
            run_strs(&[
                "solve",
                "--net",
                net.to_str().unwrap(),
                "--lib",
                lib.to_str().unwrap(),
                "--slew-limit",
                "300",
                "--model",
                model,
                "--placements",
            ])
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        }
        let err = run_strs(&[
            "solve",
            "--net",
            net.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--model",
            "spice",
        ])
        .unwrap_err();
        assert!(err.contains("unknown delay model"), "{err}");
        let err = run_strs(&[
            "solve",
            "--net",
            net.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--slew-limit",
            "-5",
        ])
        .unwrap_err();
        assert!(err.contains("--slew-limit"), "{err}");

        // Slew-stressed suite through the slew-constrained batch, with
        // check + JSON.
        run_strs(&[
            "gen",
            "suite",
            "--nets",
            "6",
            "--max-sinks",
            "16",
            "--seed",
            "3",
            "--slew-stress",
            "--out-dir",
            suite_dir.to_str().unwrap(),
        ])
        .unwrap();
        run_strs(&[
            "batch",
            "--dir",
            suite_dir.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--slew-limit",
            "400",
            "--check",
            "--per-net",
            "--json",
            json.to_str().unwrap(),
        ])
        .unwrap();
        let report = fs::read_to_string(&json).unwrap();
        assert!(report.contains("\"slew_limit_ps\": 400"), "{report}");
        assert!(report.contains("\"max_slew_ps\""));
        assert!(report.contains("\"slew_ok\""));

        fs::remove_dir_all(&dir).ok();
    }

    /// Satellite: `solve --json` emits the same per-net JSON schema as
    /// `batch --json` (shared `fastbuf_api::json::NetRecord` serializer),
    /// and `solve --scenarios FILE` runs multi-corner requests end to end.
    #[test]
    fn solve_json_and_scenarios_end_to_end() {
        let dir = std::env::temp_dir().join(format!("fastbuf-cli-scen-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let net = dir.join("t.net");
        let lib = dir.join("t.lib");
        let corners = dir.join("corners.txt");
        let solve_json = dir.join("solve.json");
        let batch_json = dir.join("batch.json");
        let run_strs = |args: &[&str]| run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>());

        run_strs(&[
            "gen",
            "net",
            "--kind",
            "line",
            "--length",
            "9000",
            "--sites",
            "8",
            "-o",
            net.to_str().unwrap(),
        ])
        .unwrap();
        run_strs(&["gen", "lib", "--size", "4", "-o", lib.to_str().unwrap()]).unwrap();

        // Single solve --json first: its record keys must be exactly the
        // batch per-net keys (shared serializer).
        run_strs(&[
            "solve",
            "--net",
            net.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--json",
            solve_json.to_str().unwrap(),
            "--placements",
        ])
        .unwrap();
        let single = fs::read_to_string(&solve_json).unwrap();
        let manifest = dir.join("one.txt");
        fs::write(&manifest, "t.net\n").unwrap();
        run_strs(&[
            "batch",
            "--manifest",
            manifest.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--json",
            batch_json.to_str().unwrap(),
            "--placements",
        ])
        .unwrap();
        let batch = fs::read_to_string(&batch_json).unwrap();
        for key in [
            "\"net\"",
            "\"index\"",
            "\"sinks\"",
            "\"sites\"",
            "\"slack_before_ps\"",
            "\"slack_after_ps\"",
            "\"slew_before_ps\"",
            "\"max_slew_ps\"",
            "\"slew_ok\"",
            "\"buffers\"",
            "\"cost\"",
            "\"elapsed_us\"",
            "\"placements\"",
        ] {
            assert!(batch.contains(key), "batch lost {key}: {batch}");
            assert!(single.contains(key), "solve missing {key}: {single}");
        }

        // Multi-corner run through a scenario file.
        fs::write(
            &corners,
            "# three corners\n\
             typical\n\
             slow derate=0.9 slew-limit-ps=350\n\
             fast model=scaled-elmore algo=lillis\n",
        )
        .unwrap();
        run_strs(&[
            "solve",
            "--net",
            net.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--scenarios",
            corners.to_str().unwrap(),
            "--json",
            solve_json.to_str().unwrap(),
        ])
        .unwrap();
        let multi = fs::read_to_string(&solve_json).unwrap();
        assert!(multi.contains("\"scenarios\": 3"), "{multi}");
        for name in ["typical", "slow", "fast"] {
            assert!(
                multi.contains(&format!("\"scenario\": \"{name}\"")),
                "{multi}"
            );
        }
        assert!(multi.contains("\"slack_after_ps\""));

        // A corner file with a single line keeps the named, scenario-keyed
        // output — downstream tooling keyed on scenario names must not
        // break when a file shrinks to one corner.
        fs::write(&corners, "signoff slew-limit-ps=350\n").unwrap();
        run_strs(&[
            "solve",
            "--net",
            net.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--scenarios",
            corners.to_str().unwrap(),
            "--json",
            solve_json.to_str().unwrap(),
        ])
        .unwrap();
        let single_corner = fs::read_to_string(&solve_json).unwrap();
        assert!(
            single_corner.contains("\"scenario\": \"signoff\""),
            "{single_corner}"
        );

        // Flag conflicts and file errors are reported, not panicked.
        let err = run_strs(&[
            "solve",
            "--net",
            net.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--scenarios",
            corners.to_str().unwrap(),
            "--slew-limit",
            "200",
        ])
        .unwrap_err();
        assert!(err.contains("conflicts"), "{err}");
        assert_eq!(err.code, 2, "flag conflicts are usage errors");
        fs::write(&corners, "bad line=").unwrap();
        let err = run_strs(&[
            "solve",
            "--net",
            net.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--scenarios",
            corners.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        // The distinct per-variant exit code of `SolveError::ScenarioParse`
        // (documented in --help).
        assert_eq!(err.code, 18, "scenario-parse exit code");

        fs::remove_dir_all(&dir).ok();
    }

    /// Satellite: every error family keeps its documented exit code —
    /// usage 2, I/O 3, typed solver errors their per-variant 10–20.
    #[test]
    fn exit_codes_follow_the_documented_mapping() {
        let run_strs = |args: &[&str]| run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        // Usage: unknown command.
        assert_eq!(run_strs(&["bogus"]).unwrap_err().code, 2);
        // I/O: unreadable net file.
        let err = run_strs(&["info", "--net", "/nonexistent/x.net"]).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
        assert_eq!(err.code, 3, "I/O errors exit 3");
        // The mapping itself is pinned distinct in `fastbuf-api`'s
        // `kinds_and_exit_codes_are_distinct`; here we pin that `--help`
        // documents every code the binary can exit with.
        for code in ["| 2 usage", "| 3 I/O", "10 no-scenarios", "20 edit"] {
            assert!(USAGE.contains(code), "--help must document `{code}`");
        }
    }

    /// Satellite: `fastbuf serve` flag validation (the server's behavior
    /// itself is covered by `fastbuf-server`'s tests).
    #[test]
    fn serve_validates_flags_before_binding() {
        let run_strs = |args: &[&str]| run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        let err = run_strs(&["serve"]).unwrap_err();
        assert!(err.contains("--stdio or --port"), "{err}");
        let err = run_strs(&["serve", "--stdio", "--port", "0"]).unwrap_err();
        assert!(err.contains("not both"), "{err}");
        let err = run_strs(&["serve", "--stdio", "--workers", "0"]).unwrap_err();
        assert!(err.contains("--workers"), "{err}");
        let err = run_strs(&["serve", "--stdio", "--preload", "busted"]).unwrap_err();
        assert!(err.contains("ID=NET,LIB"), "{err}");
        let err =
            run_strs(&["serve", "--stdio", "--preload", "d=/nonexistent.net,/x.lib"]).unwrap_err();
        assert_eq!(err.code, 3, "preload I/O failures exit 3: {err}");
    }

    /// Satellite: `fastbuf eco` end to end — random scripts, edit files,
    /// `--check` bit-identity, JSON output, and flag validation.
    #[test]
    fn eco_end_to_end() {
        let dir = std::env::temp_dir().join(format!("fastbuf-cli-eco-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let net = dir.join("t.net");
        let lib = dir.join("t.lib");
        let edits = dir.join("script.eco");
        let json = dir.join("eco.json");
        let run_strs = |args: &[&str]| run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>());

        run_strs(&[
            "gen",
            "net",
            "--kind",
            "random",
            "--sinks",
            "14",
            "--seed",
            "4",
            "-o",
            net.to_str().unwrap(),
        ])
        .unwrap();
        run_strs(&["gen", "lib", "--size", "4", "-o", lib.to_str().unwrap()]).unwrap();

        // Random script + check + emit + json, in one run.
        run_strs(&[
            "eco",
            "--net",
            net.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--random",
            "12",
            "--locality",
            "0.3",
            "--seed",
            "7",
            "--check",
            "--per-edit",
            "--emit-edits",
            edits.to_str().unwrap(),
            "--json",
            json.to_str().unwrap(),
        ])
        .unwrap();
        let report = fs::read_to_string(&json).unwrap();
        assert!(report.contains("\"edits\": 12"), "{report}");
        assert!(report.contains("\"nodes_recomputed\""));
        assert!(report.contains("\"checked\": true"));

        // The emitted script replays through --edits (with a slew limit
        // and a non-default model, still bit-identical under --check).
        assert!(fs::read_to_string(&edits).unwrap().lines().count() == 12);
        for model in ["elmore", "scaled-elmore"] {
            run_strs(&[
                "eco",
                "--net",
                net.to_str().unwrap(),
                "--lib",
                lib.to_str().unwrap(),
                "--edits",
                edits.to_str().unwrap(),
                "--model",
                model,
                "--slew-limit",
                "400",
                "--check",
            ])
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        }

        // Flag validation.
        let err = run_strs(&[
            "eco",
            "--net",
            net.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("--edits or --random"), "{err}");
        let err = run_strs(&[
            "eco",
            "--net",
            net.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--random",
            "5",
            "--locality",
            "1.5",
        ])
        .unwrap_err();
        assert!(err.contains("--locality"), "{err}");
        // A script naming a nonexistent node fails with the edit named.
        fs::write(&edits, "rat n9999 100\n").unwrap();
        let err = run_strs(&[
            "eco",
            "--net",
            net.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--edits",
            edits.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("edit 1"), "{err}");
        assert!(err.contains("n9999"), "{err}");
        // A malformed script reports its line.
        fs::write(&edits, "wire n1\n").unwrap();
        let err = run_strs(&[
            "eco",
            "--net",
            net.to_str().unwrap(),
            "--lib",
            lib.to_str().unwrap(),
            "--edits",
            edits.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("line 1"), "{err}");

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_flag_validation() {
        let run_strs = |args: &[&str]| run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        let err = run_strs(&["batch", "--lib", "/nonexistent.lib"]).unwrap_err();
        assert!(err.contains("--dir or --manifest"), "{err}");
        let err = run_strs(&[
            "batch",
            "--dir",
            "/nonexistent-dir",
            "--manifest",
            "/nonexistent.txt",
            "--lib",
            "x",
        ])
        .unwrap_err();
        assert!(err.contains("not both"), "{err}");
        let err = run_strs(&["batch", "--dir", "/nonexistent-dir", "--lib", "x"]).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
        // Suite bounds are CLI errors, not netgen panics.
        let err = run_strs(&["gen", "suite", "--out-dir", "/tmp/x", "--nets", "0"]).unwrap_err();
        assert!(err.contains("--nets"), "{err}");
        let err =
            run_strs(&["gen", "suite", "--out-dir", "/tmp/x", "--max-sinks", "4"]).unwrap_err();
        assert!(err.contains("--max-sinks"), "{err}");
    }

    #[test]
    fn gen_lib_with_jitter_roundtrips() {
        let dir = std::env::temp_dir().join(format!("fastbuf-cli-lib-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let lib = dir.join("j.lib");
        let argv: Vec<String> = [
            "gen",
            "lib",
            "--size",
            "6",
            "--jitter",
            "11",
            "-o",
            lib.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&argv).unwrap();
        let parsed = BufferLibrary::from_text(&fs::read_to_string(&lib).unwrap()).unwrap();
        assert_eq!(parsed.len(), 6);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn solve_reports_missing_files() {
        let argv: Vec<String> = [
            "solve",
            "--net",
            "/nonexistent.net",
            "--lib",
            "/nonexistent.lib",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let err = run(&argv).unwrap_err();
        assert!(err.contains("cannot read"));
    }
}
