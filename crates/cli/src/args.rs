//! Tiny flag parser (the workspace deliberately avoids external CLI
//! dependencies).

use std::collections::BTreeMap;

/// Parsed flags: `--key value` pairs plus bare `--switch`es.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Flags {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses `argv` given the sets of value-taking flags and switches.
    ///
    /// # Errors
    ///
    /// Unknown flags, missing values, and duplicate flags are reported as
    /// strings ready for the user.
    pub fn parse(
        argv: &[String],
        value_flags: &[&str],
        switch_flags: &[&str],
    ) -> Result<Flags, String> {
        let mut flags = Flags::default();
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            let name = arg
                .strip_prefix("--")
                .or_else(|| arg.strip_prefix('-'))
                .ok_or_else(|| format!("unexpected argument `{arg}`"))?;
            if value_flags.contains(&name) {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag `--{name}` needs a value"))?;
                if flags
                    .values
                    .insert(name.to_owned(), value.clone())
                    .is_some()
                {
                    return Err(format!("flag `--{name}` given twice"));
                }
            } else if switch_flags.contains(&name) {
                flags.switches.push(name.to_owned());
            } else {
                return Err(format!("unknown flag `--{name}`"));
            }
        }
        Ok(flags)
    }

    /// The raw value of `--name`, if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// The value of `--name` parsed as `T`, or `default`.
    ///
    /// # Errors
    ///
    /// Reports unparseable values.
    pub fn parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag `--{name}`: cannot parse `{v}`")),
        }
    }

    /// Required value of `--name`.
    ///
    /// # Errors
    ///
    /// Reports the missing flag.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.value(name)
            .ok_or_else(|| format!("flag `--{name}` is required"))
    }

    /// `true` if the switch `--name` was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let f = Flags::parse(
            &argv(&["--sinks", "40", "--stats", "-o", "out.net"]),
            &["sinks", "o"],
            &["stats"],
        )
        .unwrap();
        assert_eq!(f.value("sinks"), Some("40"));
        assert_eq!(f.value("o"), Some("out.net"));
        assert!(f.switch("stats"));
        assert!(!f.switch("placements"));
        assert_eq!(f.parsed_or("sinks", 0usize).unwrap(), 40);
        assert_eq!(f.parsed_or("seed", 9u64).unwrap(), 9);
    }

    #[test]
    fn rejects_unknown_missing_and_duplicates() {
        assert!(Flags::parse(&argv(&["--nope"]), &[], &[]).is_err());
        assert!(Flags::parse(&argv(&["--sinks"]), &["sinks"], &[]).is_err());
        assert!(Flags::parse(&argv(&["--sinks", "1", "--sinks", "2"]), &["sinks"], &[]).is_err());
        assert!(Flags::parse(&argv(&["stray"]), &[], &[]).is_err());
    }

    #[test]
    fn required_and_bad_parse() {
        let f = Flags::parse(&argv(&["--size", "abc"]), &["size"], &[]).unwrap();
        assert!(f.required("net").is_err());
        assert!(f.parsed_or("size", 1usize).is_err());
    }
}
