//! Solver output: slack, placements, verification.

use std::error::Error;
use std::fmt;

use fastbuf_buflib::units::{Farads, Seconds};
use fastbuf_buflib::{BufferLibrary, BufferTypeId};
use fastbuf_rctree::{elmore, NodeId, RoutingTree, TreeError};

use crate::buffering::Algorithm;
use crate::stats::SolveStats;

/// One inserted buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Placement {
    /// The buffer position.
    pub node: NodeId,
    /// The inserted buffer type.
    pub buffer: BufferTypeId,
}

impl From<(NodeId, BufferTypeId)> for Placement {
    fn from((node, buffer): (NodeId, BufferTypeId)) -> Self {
        Placement { node, buffer }
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.buffer, self.node)
    }
}

/// The result of a [`Solver::solve`](crate::Solver::solve).
///
/// # Example
///
/// ```
/// use fastbuf_buflib::units::Microns;
/// use fastbuf_buflib::BufferLibrary;
/// use fastbuf_core::Solver;
///
/// let lib = BufferLibrary::paper_synthetic(8)?;
/// let tree = fastbuf_netgen::line_net(Microns::new(10_000.0), 9);
/// let solution = Solver::new(&tree, &lib).solve();
///
/// // The DP's slack prediction, the reconstructed buffer placements, and
/// // their total library cost:
/// assert!(!solution.placements.is_empty());
/// assert!(solution.total_cost(&lib) > 0.0);
/// // `verify` re-measures the placements with the independent forward
/// // Elmore evaluator and errors on any mismatch:
/// let measured = solution.verify(&tree, &lib)?;
/// assert!((measured.picos() - solution.slack.picos()).abs() < 1e-6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Solution {
    /// Slack at the source including the driver delay:
    /// `max_a (Q(a) − K_d − R_d·C(a))`.
    pub slack: Seconds,
    /// `Q` of the chosen root candidate (before the driver charge).
    pub root_q: Seconds,
    /// Capacitive load of the chosen root candidate.
    pub root_load: Farads,
    /// The buffers to insert. Empty when predecessor tracking was disabled
    /// (see [`Solution::tracked`]).
    pub placements: Vec<Placement>,
    /// Which algorithm produced this solution.
    pub algorithm: Algorithm,
    /// Whether placements were reconstructed.
    pub tracked: bool,
    /// Output slew the source driver produces at the worst endpoint of its
    /// root stage (the unbuffered region below the source), under the
    /// solve's delay model. When a slew limit was active and
    /// [`Solution::slew_ok`] is `true`, every deeper stage met the limit at
    /// construction time, so this is also a certificate for the whole net.
    pub root_slew: Seconds,
    /// `true` when no slew limit was set, or when the chosen solution
    /// satisfies it. `false` means the net is infeasible under the limit
    /// (e.g. no buffer sites on an over-long wire) and the returned
    /// solution is best-effort.
    pub slew_ok: bool,
    /// Operation counters and timing.
    pub stats: SolveStats,
}

impl Solution {
    /// Placements as `(node, buffer)` pairs, the form the
    /// [`elmore::evaluate`] oracle takes.
    pub fn placement_pairs(&self) -> Vec<(NodeId, BufferTypeId)> {
        self.placements.iter().map(|p| (p.node, p.buffer)).collect()
    }

    /// Re-evaluates the reconstructed placements with the independent
    /// forward Elmore analysis of `fastbuf-rctree` and checks that the
    /// measured slack equals the slack this solution predicts (to a relative
    /// tolerance of 1e-9). Returns the measured slack.
    ///
    /// **Warning — this legacy shim always measures with
    /// [`ElmoreModel`](crate::ElmoreModel), whatever model the solve
    /// actually used.** A solution produced under any other
    /// [`delay_model`](crate::SolverOptions::delay_model) will report a
    /// spurious [`VerifyError::SlackMismatch`] here; use
    /// [`Solution::verify_with`] with the solve's model, or the
    /// `fastbuf-api` request layer, whose `Outcome::verify` remembers the
    /// model each scenario solved with and cross-checks with the right
    /// arithmetic automatically.
    ///
    /// # Errors
    ///
    /// [`VerifyError::NotTracked`] if the solver ran with predecessor
    /// tracking disabled; [`VerifyError::Tree`] if the placements are
    /// illegal for `tree` (should be impossible); and
    /// [`VerifyError::SlackMismatch`] if prediction and measurement differ
    /// beyond the tolerance — i.e. a solver bug.
    pub fn verify(
        &self,
        tree: &RoutingTree,
        library: &BufferLibrary,
    ) -> Result<Seconds, VerifyError> {
        self.verify_with(tree, library, &fastbuf_rctree::ElmoreModel)
    }

    /// [`Solution::verify`] under an arbitrary delay model — required when
    /// the solution was produced with a non-Elmore
    /// [`delay_model`](crate::SolverOptions::delay_model), since the
    /// forward measurement must use the same arithmetic the DP predicted
    /// with.
    ///
    /// # Errors
    ///
    /// Same as [`Solution::verify`].
    pub fn verify_with(
        &self,
        tree: &RoutingTree,
        library: &BufferLibrary,
        model: &dyn fastbuf_rctree::DelayModel,
    ) -> Result<Seconds, VerifyError> {
        if !self.tracked {
            return Err(VerifyError::NotTracked);
        }
        let report = elmore::evaluate_with(tree, library, &self.placement_pairs(), model)
            .map_err(VerifyError::Tree)?;
        let predicted = self.slack.value();
        let measured = report.slack.value();
        let tol = 1e-9 * predicted.abs().max(measured.abs()).max(1e-12);
        if (predicted - measured).abs() > tol {
            return Err(VerifyError::SlackMismatch {
                predicted: self.slack,
                measured: report.slack,
            });
        }
        Ok(report.slack)
    }

    /// Total cost of the inserted buffers under `library`'s cost model.
    pub fn total_cost(&self, library: &BufferLibrary) -> f64 {
        self.placements
            .iter()
            .map(|p| library.get(p.buffer).cost())
            .sum()
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slack {} with {} buffers [{}]",
            self.slack,
            self.placements.len(),
            self.algorithm
        )
    }
}

/// Errors from [`Solution::verify`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The solution was produced without predecessor tracking, so there are
    /// no placements to verify.
    NotTracked,
    /// The placements are not legal on the given tree.
    Tree(TreeError),
    /// The forward evaluation disagrees with the DP's prediction.
    SlackMismatch {
        /// Slack the DP predicted.
        predicted: Seconds,
        /// Slack the forward Elmore evaluation measured.
        measured: Seconds,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::NotTracked => {
                write!(f, "solution has no placements (tracking was disabled)")
            }
            VerifyError::Tree(e) => write!(f, "placements are illegal: {e}"),
            VerifyError::SlackMismatch {
                predicted,
                measured,
            } => write!(
                f,
                "predicted slack {predicted} but forward evaluation measured {measured}"
            ),
        }
    }
}

impl Error for VerifyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VerifyError::Tree(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_display_and_conversion() {
        let p: Placement = (NodeId::new(4), BufferTypeId::new(2)).into();
        assert_eq!(p.to_string(), "B2@n4");
    }

    #[test]
    fn verify_error_display() {
        let e = VerifyError::NotTracked;
        assert!(e.to_string().contains("tracking"));
        let e = VerifyError::SlackMismatch {
            predicted: Seconds::from_pico(10.0),
            measured: Seconds::from_pico(20.0),
        };
        assert!(e.to_string().contains("predicted"));
        let e = VerifyError::Tree(TreeError::NoSource);
        assert!(e.to_string().contains("illegal"));
        assert!(e.source().is_some());
    }
}
