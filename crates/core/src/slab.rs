//! Struct-of-arrays candidate storage — the slab kernel.
//!
//! The reference DP chases `Vec<Candidate>` structs with `q`/`c`/`s`/`pred`
//! interleaved (32 bytes per candidate) through its innermost loops. The
//! [`CandidateSlab`] stores the same data as four parallel columns, so the
//! hot operations become linear column sweeps:
//!
//! * **wire propagation** shears all three lanes in one memory pass
//!   through the delay model's batched
//!   [`wire_shear`](DelayModel::wire_shear) hook (one virtual dispatch per
//!   wire instead of one per candidate), then re-prunes with the same
//!   monotone in-place pass as the reference;
//! * **dominance pruning** (the merge's monotone stack and the wire
//!   re-prune) compares plain `f64` lanes instead of struct fields;
//! * **`AddBuffer`** scans and hull walks run over the `q`/`c` columns
//!   directly (see [`crate::buffering`]'s slab variants).
//!
//! Lists are identified by [`SlabList`] handles (u32 indices into a pool of
//! column slots with a freelist); [`SlabView`] borrows the columns of one
//! list. `Candidate`/`CandidateList` remain the boundary types: the cache
//! seam, `PredArena` reconstruction, and all public APIs keep their shapes,
//! converting at the edges via [`CandidateSlab::load_list`] /
//! [`CandidateSlab::to_candidate_list`].
//!
//! **Every operation replicates the reference arithmetic expression by
//! expression, in the same order**, so results are bit-identical to the
//! `CandidateList` path — asserted by the golden-bit anchors, the
//! exhaustive oracles, and `tests/kernel_equivalence.rs`.

use fastbuf_rctree::delay::DelayModel;

use crate::arena::{PredArena, PredEntry, PredRef};
use crate::candidate::{Candidate, CandidateList};
use crate::hull::prunes_middle_vals;
use crate::stats::SolveStats;

/// Bytes of column storage per candidate (three `f64` lanes + one `u32`
/// pred lane) — the unit of [`CandidateSlab::peak_bytes`].
const BYTES_PER_CANDIDATE: usize = 8 * 3 + 4;

/// Handle to one candidate list inside a [`CandidateSlab`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct SlabList(u32);

impl SlabList {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Borrowed columns of one slab list, in nonredundant `(Q, C)` order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlabView<'a> {
    /// Slack column (seconds).
    pub q: &'a [f64],
    /// Downstream-capacitance column (farads).
    pub c: &'a [f64],
    /// Stage-wire-delay column (seconds).
    pub s: &'a [f64],
    /// Predecessor-reference column.
    pub pred: &'a [PredRef],
}

impl SlabView<'_> {
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.q.len()
    }

    /// Materializes candidate `i` (for boundary code and `make_beta`).
    #[inline]
    pub(crate) fn get(&self, i: usize) -> Candidate {
        Candidate {
            q: self.q[i],
            c: self.c[i],
            s: self.s[i],
            pred: self.pred[i],
        }
    }
}

/// One slot of parallel candidate columns.
#[derive(Debug, Default)]
struct Columns {
    q: Vec<f64>,
    c: Vec<f64>,
    s: Vec<f64>,
    pred: Vec<PredRef>,
}

/// First index in `from..to` where `pred(xs[i])` stops holding, assuming
/// `pred` is monotone (true-prefix) over the ascending lane `xs` —
/// equivalent to `from + xs[from..to].partition_point(|&x| pred(x))`. Runs
/// in the merge/merge-insert walks are usually a handful of elements, so a
/// short linear probe beats a binary search; long tails fall back to it.
#[inline]
fn run_split(xs: &[f64], from: usize, to: usize, pred: impl Fn(f64) -> bool) -> usize {
    let stop = (from + 8).min(to);
    let mut i = from;
    while i < stop && pred(xs[i]) {
        i += 1;
    }
    if i == stop && stop < to {
        i = stop + xs[stop..to].partition_point(|&x| pred(x));
    }
    i
}

impl Columns {
    #[inline]
    fn len(&self) -> usize {
        self.q.len()
    }

    #[inline]
    fn clear(&mut self) {
        self.q.clear();
        self.c.clear();
        self.s.clear();
        self.pred.clear();
    }

    #[inline]
    fn push(&mut self, q: f64, c: f64, s: f64, pred: PredRef) {
        self.q.push(q);
        self.c.push(c);
        self.s.push(s);
        self.pred.push(pred);
    }

    #[inline]
    fn reserve(&mut self, n: usize) {
        self.q.reserve(n);
        self.c.reserve(n);
        self.s.reserve(n);
        self.pred.reserve(n);
    }

    #[inline]
    fn truncate(&mut self, n: usize) {
        self.q.truncate(n);
        self.c.truncate(n);
        self.s.truncate(n);
        self.pred.truncate(n);
    }

    /// Copies lane `from` over lane `to` (compaction step).
    #[inline]
    fn copy_lane(&mut self, from: usize, to: usize) {
        self.q[to] = self.q[from];
        self.c[to] = self.c[from];
        self.s[to] = self.s[from];
        self.pred[to] = self.pred[from];
    }

    /// Writes lane `i`, which must be at most the current length: an
    /// in-place overwrite below it, a plain push exactly at it. The
    /// top-pointer loops below use this so a logical "pop" is just a
    /// cursor decrement — the lanes keep their stale tail until the final
    /// [`Columns::truncate`].
    #[inline]
    fn set(&mut self, i: usize, q: f64, c: f64, s: f64, pred: PredRef) {
        if i == self.q.len() {
            self.push(q, c, s, pred);
        } else {
            self.q[i] = q;
            self.c[i] = c;
            self.s[i] = s;
            self.pred[i] = pred;
        }
    }

    /// Bulk-copies `src[from..to]` onto the stack at height `top` and
    /// returns the new height: lane-wise `memcpy` over the region below the
    /// current length, lane-wise extend past it.
    #[inline]
    fn write_run(&mut self, top: usize, src: &Columns, from: usize, to: usize) -> usize {
        let n = to - from;
        if n <= 4 {
            // Tiny run: the eight slice ops below cost more than they
            // save; copy element-wise instead.
            for (k, i) in (from..to).enumerate() {
                self.set(top + k, src.q[i], src.c[i], src.s[i], src.pred[i]);
            }
            return top + n;
        }
        let overlap = n.min(self.q.len() - top);
        let split = from + overlap;
        self.q[top..top + overlap].copy_from_slice(&src.q[from..split]);
        self.c[top..top + overlap].copy_from_slice(&src.c[from..split]);
        self.s[top..top + overlap].copy_from_slice(&src.s[from..split]);
        self.pred[top..top + overlap].copy_from_slice(&src.pred[from..split]);
        self.q.extend_from_slice(&src.q[split..to]);
        self.c.extend_from_slice(&src.c[split..to]);
        self.s.extend_from_slice(&src.s[split..to]);
        self.pred.extend_from_slice(&src.pred[split..to]);
        top + n
    }

    /// Column replica of `candidate::push_pruned_c_order` against a
    /// top-pointer stack of height `top` (lanes above `top` are stale):
    /// same dominance checks against the current top, same equal-`c`
    /// replacement. Returns the new stack height.
    #[inline]
    fn push_pruned_c_order(&mut self, top: usize, q: f64, c: f64, s: f64, pred: PredRef) -> usize {
        if let Some(last) = top.checked_sub(1) {
            debug_assert!(
                c >= self.c[last],
                "push_pruned_c_order requires c-sorted input"
            );
            if q <= self.q[last] {
                return top; // dominated: no better slack at no smaller load
            }
            if c == self.c[last] {
                self.q[last] = q;
                self.c[last] = c;
                self.s[last] = s;
                self.pred[last] = pred;
                return top;
            }
        }
        self.set(top, q, c, s, pred);
        top + 1
    }

    /// Replaces the first `tail_start` elements with `head[..top]` while
    /// keeping the tail `[tail_start..]`: the tail moves as one `memmove`
    /// per lane when the head differs in length from the span it replaces,
    /// and does not move at all when the lengths match.
    fn splice_head(&mut self, head: &Columns, top: usize, tail_start: usize) {
        debug_assert!(tail_start <= self.len() && top <= head.len());
        let old_len = self.len();
        let new_len = top + (old_len - tail_start);
        if top > tail_start {
            self.q.resize(new_len, 0.0);
            self.c.resize(new_len, 0.0);
            self.s.resize(new_len, 0.0);
            self.pred.resize(new_len, PredRef::NONE);
        }
        if top != tail_start {
            self.q.copy_within(tail_start..old_len, top);
            self.c.copy_within(tail_start..old_len, top);
            self.s.copy_within(tail_start..old_len, top);
            self.pred.copy_within(tail_start..old_len, top);
            self.truncate(new_len);
        }
        self.q[..top].copy_from_slice(&head.q[..top]);
        self.c[..top].copy_from_slice(&head.c[..top]);
        self.s[..top].copy_from_slice(&head.s[..top]);
        self.pred[..top].copy_from_slice(&head.pred[..top]);
    }
}

/// Pool of struct-of-arrays candidate lists with recycled column storage.
///
/// One slab lives per solve context (inside
/// [`SolveWorkspace`](crate::SolveWorkspace), or per subtree task in
/// intra-net parallel mode). Handles freed back to the slab keep their
/// column capacity, so a warm slab performs no steady-state allocation —
/// the struct-of-arrays analogue of [`crate::pool::CandidatePool`].
#[derive(Debug, Default)]
pub(crate) struct CandidateSlab {
    slots: Vec<Columns>,
    free: Vec<u32>,
    /// Staging columns for merge/merge-insert rebuilds.
    raw: Columns,
    /// Candidates currently live across all allocated lists.
    live: usize,
    /// High-water mark of `live` since the last [`CandidateSlab::reset`].
    peak: usize,
}

impl CandidateSlab {
    /// Frees every list and zeroes the live/peak accounting (column and
    /// slot allocations are retained). Called at the start of each solve.
    pub(crate) fn reset(&mut self) {
        self.free.clear();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            slot.clear();
            self.free.push(i as u32);
        }
        self.live = 0;
        self.peak = 0;
    }

    /// Peak bytes of live candidate columns since the last reset.
    pub(crate) fn peak_bytes(&self) -> usize {
        self.peak * BYTES_PER_CANDIDATE
    }

    #[inline]
    fn note(&mut self, old_len: usize, new_len: usize) {
        self.live = self.live + new_len - old_len;
        self.peak = self.peak.max(self.live);
    }

    /// Allocates an empty list.
    pub(crate) fn alloc(&mut self) -> SlabList {
        match self.free.pop() {
            Some(i) => SlabList(i),
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(Columns::default());
                SlabList(i)
            }
        }
    }

    /// Frees `list`, recycling its column storage.
    pub(crate) fn free(&mut self, list: SlabList) {
        let n = self.slots[list.index()].len();
        self.note(n, 0);
        self.slots[list.index()].clear();
        self.free.push(list.0);
    }

    /// Number of candidates in `list`.
    #[inline]
    pub(crate) fn len(&self, list: SlabList) -> usize {
        self.slots[list.index()].len()
    }

    /// Borrows the columns of `list`.
    #[inline]
    pub(crate) fn view(&self, list: SlabList) -> SlabView<'_> {
        let cols = &self.slots[list.index()];
        SlabView {
            q: &cols.q,
            c: &cols.c,
            s: &cols.s,
            pred: &cols.pred,
        }
    }

    /// The singleton list of a sink: `Q = RAT`, `C = c_sink`, `s = 0`.
    pub(crate) fn sink(&mut self, q: f64, c: f64) -> SlabList {
        let list = self.alloc();
        self.slots[list.index()].push(q, c, 0.0, PredRef::NONE);
        self.note(0, 1);
        list
    }

    /// Loads a boundary [`CandidateList`] (cache snapshot, parallel-task
    /// result) into slab columns.
    pub(crate) fn load_list(&mut self, src: &CandidateList) -> SlabList {
        let list = self.alloc();
        let cols = &mut self.slots[list.index()];
        cols.q.extend(src.iter().map(|cand| cand.q));
        cols.c.extend(src.iter().map(|cand| cand.c));
        cols.s.extend(src.iter().map(|cand| cand.s));
        cols.pred.extend(src.iter().map(|cand| cand.pred));
        self.note(0, src.len());
        list
    }

    /// Copies `list` out to a boundary [`CandidateList`] (the columns stay
    /// allocated; free the handle separately).
    pub(crate) fn to_candidate_list(&self, list: SlabList) -> CandidateList {
        let view = self.view(list);
        let mut out = Vec::with_capacity(view.len());
        for i in 0..view.len() {
            out.push(view.get(i));
        }
        CandidateList::from_sorted(out)
    }

    /// Wire propagation — the column replica of
    /// [`CandidateList::add_wire_model`]. The whole shear runs through one
    /// batched [`DelayModel::wire_shear`] call (delay from the *pre-shear*
    /// capacitance, exactly what the scalar loop feeds `wire_delay`
    /// candidate by candidate — one virtual dispatch per wire, one memory
    /// pass over the three lanes), then the same in-place monotone pass
    /// restores the nonredundant invariant.
    pub(crate) fn add_wire(
        &mut self,
        list: SlabList,
        model: &dyn DelayModel,
        r: f64,
        cw: f64,
        stats: &mut SolveStats,
    ) {
        if r == 0.0 && cw == 0.0 {
            return;
        }
        let cols = &mut self.slots[list.index()];
        let n = cols.len();
        model.wire_shear(r, cw, &mut cols.q, &mut cols.s, &mut cols.c);
        // The shear preserves c order (strictly increasing stays strictly
        // increasing under `+ cw`), so only the q invariant can break. In
        // the common case q stays strictly increasing and the list is
        // untouched; otherwise compact from the first violation with the
        // same checks as the reference (the kept prefix is exactly what
        // the reference's single pass would have written there).
        let write = match cols.q.windows(2).position(|w| w[1] <= w[0]) {
            None => n,
            Some(v) => {
                let mut write = v + 1;
                for read in v + 1..n {
                    let (q, c) = (cols.q[read], cols.c[read]);
                    if q <= cols.q[write - 1] {
                        continue;
                    }
                    if c == cols.c[write - 1] {
                        cols.copy_lane(read, write - 1);
                        continue;
                    }
                    cols.copy_lane(read, write);
                    write += 1;
                }
                cols.truncate(write);
                write
            }
        };
        stats.slab_candidates_scanned += n as u64;
        stats.slab_candidates_pruned += (n - write) as u64;
        self.note(n, write);
    }

    /// Column replica of `CandidateList::prune_slew`: drops candidates
    /// whose stage delay exceeds `cap`, keeping the single least-bad one
    /// when all violate. Returns the number removed.
    pub(crate) fn prune_slew(&mut self, list: SlabList, cap: f64) -> usize {
        let cols = &mut self.slots[list.index()];
        if !cap.is_finite() || cols.len() == 0 {
            return 0;
        }
        let before = cols.len();
        if cols.s.iter().all(|&s| s > cap) {
            // First-minimum by total order, matching the reference's
            // `min_by(total_cmp)` (which keeps the earliest minimum).
            let mut best = 0usize;
            for i in 1..before {
                if cols.s[i].total_cmp(&cols.s[best]) == std::cmp::Ordering::Less {
                    best = i;
                }
            }
            cols.copy_lane(best, 0);
            cols.truncate(1);
            self.note(before, 1);
            return before - 1;
        }
        let mut write = 0usize;
        for read in 0..before {
            if cols.s[read] <= cap {
                if write != read {
                    cols.copy_lane(read, write);
                }
                write += 1;
            }
        }
        cols.truncate(write);
        self.note(before, write);
        before - write
    }

    /// Branch merge — the column replica of `merge_branches_pooled`.
    /// Consumes `left` and `right` (their handles are freed) and returns
    /// the merged list: the same two-pointer walk, the same monotone-stack
    /// prune, the same final slew prune, pushing the same
    /// [`PredEntry::Merge`] records in the same order.
    pub(crate) fn merge(
        &mut self,
        left: SlabList,
        right: SlabList,
        arena: &mut PredArena,
        track: bool,
        slew_cap: f64,
        stats: &mut SolveStats,
    ) -> SlabList {
        self.merge_impl(left, right, arena, track, slew_cap, stats, true)
    }

    /// [`CandidateSlab::merge`] that leaves both inputs allocated and
    /// untouched. Because the staging pass reads the inputs through views
    /// (no drain), keeping them costs nothing — this is what lets the cost
    /// solver's level convolution reuse one list across many merges where
    /// the reference had to `clone()` per pair.
    pub(crate) fn merge_keep(
        &mut self,
        left: SlabList,
        right: SlabList,
        arena: &mut PredArena,
        track: bool,
        stats: &mut SolveStats,
    ) -> SlabList {
        self.merge_impl(left, right, arena, track, f64::INFINITY, stats, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn merge_impl(
        &mut self,
        left: SlabList,
        right: SlabList,
        arena: &mut PredArena,
        track: bool,
        slew_cap: f64,
        stats: &mut SolveStats,
        consume: bool,
    ) -> SlabList {
        if self.len(left) == 0 {
            if consume {
                self.free(left);
                return right;
            }
            return self.copy_list(right);
        }
        if self.len(right) == 0 {
            if consume {
                self.free(right);
                return left;
            }
            return self.copy_list(left);
        }
        let out = self.alloc();
        let mut emitted = 0usize;
        let mut top = 0usize;
        {
            // Disjoint field borrows: the staging columns are written while
            // the two input slots are read.
            let raw = &mut self.raw;
            raw.clear();
            let l = &self.slots[left.index()];
            let r = &self.slots[right.index()];
            let (ln, rn) = (l.len(), r.len());
            raw.reserve(ln + rn);
            let (lq, lc, ls, lp) = (&l.q[..ln], &l.c[..ln], &l.s[..ln], &l.pred[..ln]);
            let (rq, rc, rs, rp) = (&r.q[..rn], &r.c[..rn], &r.s[..rn], &r.pred[..rn]);
            let (mut i, mut j) = (0usize, 0usize);
            // Invariant as in the reference: the partner on the other side
            // is the cheapest candidate not capping the emitted one. Each
            // step advances at least one pointer and both inputs are strict
            // (Q, C) staircases, so the emitted `c = l.c[i] + r.c[j]` is
            // *strictly increasing* across the walk — the reference's
            // monotone-stack prune (applied with the same checks in the
            // same emission order at every run boundary below) can only
            // fire on a boundary element. The tail of a run — one side
            // advancing against a fixed partner — is emitted verbatim as
            // three lane sweeps: a `q` memcpy, a `c` shift by the partner's
            // load, an `s` max against the partner's stage delay (operand
            // order preserved, so every value is bit-identical).
            while i < ln && j < rn {
                let (aq, bq) = (lq[i], rq[j]);
                let q = aq.min(bq);
                let c = lc[i] + rc[j];
                let s = ls[i].max(rs[j]);
                let pred = if track {
                    arena.push(PredEntry::Merge {
                        left: lp[i],
                        right: rp[j],
                    })
                } else {
                    PredRef::NONE
                };
                emitted += 1;
                let dominated = top > 0 && q == raw.q[top - 1] && c >= raw.c[top - 1];
                if !dominated {
                    while top > 0 && raw.c[top - 1] >= c {
                        top -= 1; // new candidate dominates the stack top
                    }
                    raw.set(top, q, c, s, pred);
                    top += 1;
                }
                if aq < bq {
                    i += 1;
                    let end = run_split(lq, i, ln, |x| x < bq);
                    if i < end {
                        let (cj, sj, pj) = (rc[j], rs[j], rp[j]);
                        if end - i <= 8 {
                            // Sibling lists of similar size interleave in
                            // runs of one or two; the lane sweeps below
                            // cost more than they save there.
                            for x in i..end {
                                let pred = if track {
                                    arena.push(PredEntry::Merge {
                                        left: lp[x],
                                        right: pj,
                                    })
                                } else {
                                    PredRef::NONE
                                };
                                raw.set(top, lq[x], lc[x] + cj, ls[x].max(sj), pred);
                                top += 1;
                            }
                        } else {
                            raw.truncate(top);
                            raw.q.extend_from_slice(&lq[i..end]);
                            raw.c.extend(lc[i..end].iter().map(|&x| x + cj));
                            raw.s.extend(ls[i..end].iter().map(|&x| x.max(sj)));
                            if track {
                                for &p in &lp[i..end] {
                                    raw.pred
                                        .push(arena.push(PredEntry::Merge { left: p, right: pj }));
                                }
                            } else {
                                raw.pred.resize(raw.pred.len() + (end - i), PredRef::NONE);
                            }
                            top += end - i;
                        }
                        emitted += end - i;
                        i = end;
                    }
                } else if bq < aq {
                    j += 1;
                    let end = run_split(rq, j, rn, |x| x < aq);
                    if j < end {
                        let (ci, si, pi) = (lc[i], ls[i], lp[i]);
                        if end - j <= 8 {
                            for x in j..end {
                                let pred = if track {
                                    arena.push(PredEntry::Merge {
                                        left: pi,
                                        right: rp[x],
                                    })
                                } else {
                                    PredRef::NONE
                                };
                                raw.set(top, rq[x], ci + rc[x], ls[i].max(rs[x]), pred);
                                top += 1;
                            }
                        } else {
                            raw.truncate(top);
                            raw.q.extend_from_slice(&rq[j..end]);
                            raw.c.extend(rc[j..end].iter().map(|&x| ci + x));
                            raw.s.extend(rs[j..end].iter().map(|&x| si.max(x)));
                            if track {
                                for &p in &rp[j..end] {
                                    raw.pred
                                        .push(arena.push(PredEntry::Merge { left: pi, right: p }));
                                }
                            } else {
                                raw.pred.resize(raw.pred.len() + (end - j), PredRef::NONE);
                            }
                            top += end - j;
                        }
                        emitted += end - j;
                        j = end;
                    }
                } else {
                    i += 1;
                    j += 1;
                }
            }
        }
        // Once one side is exhausted, every remaining pair is dominated.
        self.raw.truncate(top);
        let spent = std::mem::replace(&mut self.slots[out.index()], std::mem::take(&mut self.raw));
        self.raw = spent;
        stats.slab_candidates_pruned += (emitted - top) as u64;
        if consume {
            self.free(left);
            self.free(right);
        }
        self.note(0, top);
        self.prune_slew(out, slew_cap);
        out
    }

    /// Borrows two distinct slots, the first read-only and the second
    /// mutably.
    fn slot_pair(&mut self, read: SlabList, write: SlabList) -> (&Columns, &mut Columns) {
        let (ri, wi) = (read.index(), write.index());
        assert_ne!(ri, wi, "slot_pair requires distinct lists");
        if ri < wi {
            let (a, b) = self.slots.split_at_mut(wi);
            (&a[ri], &mut b[0])
        } else {
            let (a, b) = self.slots.split_at_mut(ri);
            (&b[0], &mut a[wi])
        }
    }

    /// Allocates a fresh list holding a copy of `src`'s candidates.
    pub(crate) fn copy_list(&mut self, src: SlabList) -> SlabList {
        let dst = self.alloc();
        debug_assert_ne!(dst, src);
        let (s, d) = self.slot_pair(src, dst);
        d.q.extend_from_slice(&s.q);
        d.c.extend_from_slice(&s.c);
        d.s.extend_from_slice(&s.s);
        d.pred.extend_from_slice(&s.pred);
        let n = self.slots[dst.index()].len();
        self.note(0, n);
        dst
    }

    /// [`CandidateSlab::merge_insert`] where the incoming candidates are
    /// another slab list: merges `src` into `dst` (in place), leaving `src`
    /// untouched. Same two-pointer union, same equal-`c` tie rule.
    pub(crate) fn merge_insert_list(&mut self, dst: SlabList, src: SlabList) {
        debug_assert_ne!(dst, src);
        if self.len(src) == 0 {
            return;
        }
        let mut top = 0usize;
        {
            let out = &mut self.raw;
            let old = &self.slots[dst.index()];
            let inc = &self.slots[src.index()];
            let (mut i, mut j) = (0usize, 0usize);
            // Both sides are strict (Q, C)-staircases, so the element-wise
            // union-with-pruning decomposes into alternating runs: within a
            // run no element dominates another, domination by the stack top
            // cuts a prefix (binary-searchable on the ascending q lane),
            // and the equal-c tie always feeds the better-q element first
            // so the survivor is a clean append. Each run is then one
            // bulk lane copy — same output as the scalar walk.
            while i < old.len() || j < inc.len() {
                let take_old = if i < old.len() && j < inc.len() {
                    let (ac, bc) = (old.c[i], inc.c[j]);
                    if ac < bc {
                        true
                    } else if ac > bc {
                        false
                    } else {
                        old.q[i] >= inc.q[j]
                    }
                } else {
                    i < old.len()
                };
                let (side, pos, other_head) = if take_old {
                    (old, &mut i, (j < inc.len()).then(|| (inc.c[j], inc.q[j])))
                } else {
                    (inc, &mut j, (i < old.len()).then(|| (old.c[i], old.q[i])))
                };
                // End of this side's run: its elements with c below the
                // other side's head, plus an equal-c boundary element when
                // it wins the tie (the old side wins on q >= , mirroring
                // the element-wise rule above).
                let end = match other_head {
                    Some((bc, bq)) => {
                        let n = run_split(&side.c, *pos + 1, side.len(), |x| x < bc);
                        let tie_wins = n < side.len()
                            && side.c[n] == bc
                            && if take_old {
                                side.q[n] >= bq
                            } else {
                                side.q[n] > bq
                            };
                        if tie_wins {
                            n + 1
                        } else {
                            n
                        }
                    }
                    None => side.len(),
                };
                debug_assert!(end > *pos);
                let start = if top > 0 {
                    let tq = out.q[top - 1];
                    run_split(&side.q, *pos, end, |x| x <= tq)
                } else {
                    *pos
                };
                top = out.write_run(top, side, start, end);
                *pos = end;
            }
        }
        self.raw.truncate(top);
        let old_len = self.slots[dst.index()].len();
        let mut spent =
            std::mem::replace(&mut self.slots[dst.index()], std::mem::take(&mut self.raw));
        spent.clear();
        self.raw = spent;
        self.note(old_len, top);
    }

    /// Removes from `level` every candidate dominated by some `frontier`
    /// candidate at equal-or-smaller load (`f.c <= cand.c && f.q >= cand.q`)
    /// — the cost solver's three-dimensional dominance check. Both lists
    /// are `c`-ascending, so one linear sweep with a shared frontier cursor
    /// replaces the reference's per-candidate binary search: the cursor
    /// only ever advances, and `frontier.q` ascends with `frontier.c`, so
    /// the entry just below the cursor is the best potential dominator.
    /// Returns the number removed.
    pub(crate) fn retain_undominated(
        &mut self,
        level: SlabList,
        frontier: SlabList,
        stats: &mut SolveStats,
    ) -> usize {
        let (f, l) = self.slot_pair(frontier, level);
        let n = l.len();
        let (mut fj, mut write) = (0usize, 0usize);
        for read in 0..n {
            let (q, c) = (l.q[read], l.c[read]);
            while fj < f.len() && f.c[fj] <= c {
                fj += 1;
            }
            let dominated = fj > 0 && f.q[fj - 1] >= q;
            if !dominated {
                if write != read {
                    l.copy_lane(read, write);
                }
                write += 1;
            }
        }
        l.truncate(write);
        stats.slab_candidates_scanned += n as u64;
        stats.slab_candidates_pruned += (n - write) as u64;
        self.note(n, write);
        n - write
    }

    /// Merges `incoming` (sorted by strictly increasing `C` — the `β_i` of
    /// `AddBuffer`) into `list` — the column replica of
    /// `CandidateList::merge_insert`, including the equal-`c`
    /// better-`q`-first tie rule.
    pub(crate) fn merge_insert(&mut self, list: SlabList, incoming: &[Candidate]) {
        if incoming.is_empty() {
            return;
        }
        debug_assert!(incoming.windows(2).all(|w| w[0].c < w[1].c));
        let mut top = 0usize;
        let tail_start;
        {
            let out = &mut self.raw;
            out.clear();
            let old = &self.slots[list.index()];
            let (mut i, mut j) = (0usize, 0usize);
            // Runs of the old staircase between consecutive betas are
            // bulk-copied (see `merge_insert_list` for why the element-wise
            // pruning walk degenerates to prefix-skip + append within a
            // run); the handful of betas go through the scalar push. Only
            // the head — up to the last beta's landing point plus the
            // dominated prefix behind it — is staged in `raw`: β
            // capacitances are buffer input caps, which sit near the front
            // of the staircase, so the (usually much longer) tail past the
            // last insertion is left in place and spliced below.
            if old.len() <= 48 {
                // Short list: the run machinery below costs more than it
                // saves; replicate the reference's element-wise walk (every
                // element through `push_pruned_c_order`, old side first on
                // equal c) and splice the whole rebuilt list back.
                while i < old.len() || j < incoming.len() {
                    let take_old = match incoming.get(j) {
                        Some(b) if i < old.len() => {
                            let (ac, bc) = (old.c[i], b.c);
                            if ac < bc {
                                true
                            } else if ac > bc {
                                false
                            } else {
                                old.q[i] >= b.q
                            }
                        }
                        _ => i < old.len(),
                    };
                    if take_old {
                        top =
                            out.push_pruned_c_order(top, old.q[i], old.c[i], old.s[i], old.pred[i]);
                        i += 1;
                    } else {
                        let b = &incoming[j];
                        top = out.push_pruned_c_order(top, b.q, b.c, b.s, b.pred);
                        j += 1;
                    }
                }
                tail_start = i;
            } else {
                tail_start = Self::merge_insert_runs(out, old, incoming, &mut top);
            }
        }
        self.raw.truncate(top);
        let old_len = self.slots[list.index()].len();
        if tail_start >= old_len {
            // No shared tail — the whole list was rebuilt in `raw`
            // (always the case on the short-list path), so swap the
            // buffers instead of copying four lanes back.
            std::mem::swap(&mut self.slots[list.index()], &mut self.raw);
        } else {
            let raw = std::mem::take(&mut self.raw);
            self.slots[list.index()].splice_head(&raw, top, tail_start);
            self.raw = raw;
        }
        self.note(old_len, top + (old_len - tail_start));
    }

    /// The run-based walk of [`CandidateSlab::merge_insert`] for long
    /// lists: returns the index where the shared old tail starts, having
    /// staged the rebuilt head in `out[..top]`.
    fn merge_insert_runs(
        out: &mut Columns,
        old: &Columns,
        incoming: &[Candidate],
        top: &mut usize,
    ) -> usize {
        let (mut i, mut j) = (0usize, 0usize);
        let mut t = *top;
        loop {
            let Some(b) = incoming.get(j) else {
                // All betas placed: skip old elements dominated by the
                // new top; the remaining tail is shared verbatim.
                if t > 0 {
                    let tq = out.q[t - 1];
                    i = run_split(&old.q, i, old.len(), |x| x <= tq);
                }
                break;
            };
            let take_old = if i < old.len() {
                // On equal c, feed the better-q one first; the other is
                // then dropped by push_pruned_c_order.
                let (ac, bc) = (old.c[i], b.c);
                if ac < bc {
                    true
                } else if ac > bc {
                    false
                } else {
                    old.q[i] >= b.q
                }
            } else {
                false
            };
            if take_old {
                let n = run_split(&old.c, i + 1, old.len(), |x| x < b.c);
                let end = if n < old.len() && old.c[n] == b.c && old.q[n] >= b.q {
                    n + 1 // equal c, better q: still old's turn
                } else {
                    n
                };
                let start = if t > 0 {
                    let tq = out.q[t - 1];
                    run_split(&old.q, i, end, |x| x <= tq)
                } else {
                    i
                };
                t = out.write_run(t, old, start, end);
                i = end;
            } else {
                t = out.push_pruned_c_order(t, b.q, b.c, b.s, b.pred);
                j += 1;
            }
        }
        *top = t;
        i
    }

    /// The candidate index maximizing `Q − (k + r·C)` (ties to minimum
    /// `C`), or `None` on an empty list — the column replica of
    /// [`CandidateList::best_driven`].
    pub(crate) fn best_driven(&self, list: SlabList, r: f64, k: f64) -> Option<usize> {
        let cols = &self.slots[list.index()];
        let mut best: Option<usize> = None;
        for i in 0..cols.len() {
            match best {
                None => best = Some(i),
                Some(b) => {
                    if cols.q[i] - k - r * cols.c[i] > cols.q[b] - k - r * cols.c[b] {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    /// Convex-prunes `list` in place, keeping only upper-hull candidates —
    /// the column replica of [`crate::hull::convex_prune_in_place`].
    /// Returns the number removed.
    pub(crate) fn convex_prune(&mut self, list: SlabList) -> usize {
        let cols = &mut self.slots[list.index()];
        let before = cols.len();
        let mut top = 0usize; // hull size; lanes [..top] are the hull so far
        for i in 0..before {
            let (q, c, s, pred) = (cols.q[i], cols.c[i], cols.s[i], cols.pred[i]);
            while top >= 2
                && prunes_middle_vals(
                    cols.q[top - 2],
                    cols.c[top - 2],
                    cols.q[top - 1],
                    cols.c[top - 1],
                    q,
                    c,
                )
            {
                top -= 1;
            }
            cols.q[top] = q;
            cols.c[top] = c;
            cols.s[top] = s;
            cols.pred[top] = pred;
            top += 1;
        }
        cols.truncate(top);
        self.note(before, top);
        before - top
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::CandidateList;
    use crate::hull::convex_prune_in_place;
    use crate::merge::merge_branches;
    use fastbuf_rctree::delay::ElmoreModel;

    fn cand(q: f64, c: f64) -> Candidate {
        Candidate::new(q, c, PredRef::NONE)
    }

    fn list(points: &[(f64, f64)]) -> CandidateList {
        CandidateList::from_candidates(points.iter().map(|&(q, c)| cand(q, c)).collect())
    }

    /// Deterministic pseudo-random staircase generator shared by the
    /// differential tests below.
    fn staircase(seed: u64, n: usize) -> CandidateList {
        let mut state = seed;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let mut q = 0.0;
        let mut c = 0.0;
        let mut pts = Vec::new();
        for _ in 0..n {
            q += rnd() + 0.01;
            c += rnd() + 0.01;
            pts.push((q, c));
        }
        list(&pts)
    }

    fn bits(l: &CandidateList) -> Vec<(u64, u64, u64)> {
        l.iter()
            .map(|c| (c.q.to_bits(), c.c.to_bits(), c.s.to_bits()))
            .collect()
    }

    #[test]
    fn roundtrip_preserves_bits() {
        let src = staircase(7, 17);
        let mut slab = CandidateSlab::default();
        let h = slab.load_list(&src);
        assert_eq!(slab.len(h), src.len());
        let back = slab.to_candidate_list(h);
        assert_eq!(bits(&back), bits(&src));
    }

    #[test]
    fn add_wire_matches_reference_bits() {
        let mut stats = SolveStats::default();
        for seed in 1u64..20 {
            let mut reference = staircase(seed, 12);
            let mut slab = CandidateSlab::default();
            let h = slab.load_list(&reference);
            let (r, cw) = (0.5 + seed as f64, 0.25 * seed as f64);
            reference.add_wire_model(&ElmoreModel, r, cw);
            slab.add_wire(h, &ElmoreModel, r, cw, &mut stats);
            assert_eq!(
                bits(&slab.to_candidate_list(h)),
                bits(&reference),
                "seed {seed}"
            );
        }
        assert!(stats.slab_candidates_scanned > 0);
    }

    #[test]
    fn merge_matches_reference_bits() {
        for seed in 1u64..20 {
            let l = staircase(seed, 1 + (seed % 9) as usize);
            let r = staircase(seed.wrapping_mul(31), 1 + (seed % 7) as usize);
            let mut arena = PredArena::new();
            let reference = merge_branches(l.clone(), r.clone(), &mut arena, false);

            let mut slab = CandidateSlab::default();
            let mut stats = SolveStats::default();
            let mut arena2 = PredArena::new();
            let hl = slab.load_list(&l);
            let hr = slab.load_list(&r);
            let hm = slab.merge(hl, hr, &mut arena2, false, f64::INFINITY, &mut stats);
            assert_eq!(
                bits(&slab.to_candidate_list(hm)),
                bits(&reference),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn merge_insert_matches_reference_bits() {
        for seed in 1u64..20 {
            let mut reference = staircase(seed, 10);
            let betas: Vec<Candidate> = staircase(seed ^ 0xABCD, 5).iter().copied().collect();
            let mut slab = CandidateSlab::default();
            let h = slab.load_list(&reference);
            reference.merge_insert(&betas);
            slab.merge_insert(h, &betas);
            assert_eq!(
                bits(&slab.to_candidate_list(h)),
                bits(&reference),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn prune_slew_matches_reference() {
        let mk = || {
            CandidateList::from_sorted(vec![
                cand(1.0, 1.0).with_stage_delay(5.0),
                cand(2.0, 2.0).with_stage_delay(1.0),
                cand(3.0, 3.0).with_stage_delay(9.0),
            ])
        };
        for cap in [2.0, 0.5, f64::INFINITY] {
            let mut reference = mk();
            let removed_ref = reference.prune_slew(cap);
            let mut slab = CandidateSlab::default();
            let h = slab.load_list(&mk());
            let removed = slab.prune_slew(h, cap);
            assert_eq!(removed, removed_ref, "cap {cap}");
            assert_eq!(
                bits(&slab.to_candidate_list(h)),
                bits(&reference),
                "cap {cap}"
            );
        }
    }

    #[test]
    fn convex_prune_matches_reference() {
        for seed in 1u64..15 {
            let mut reference = staircase(seed, 20);
            let mut slab = CandidateSlab::default();
            let h = slab.load_list(&reference);
            let removed_ref = convex_prune_in_place(&mut reference);
            let removed = slab.convex_prune(h);
            assert_eq!(removed, removed_ref, "seed {seed}");
            assert_eq!(
                bits(&slab.to_candidate_list(h)),
                bits(&reference),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn best_driven_matches_reference() {
        let l = staircase(3, 15);
        let mut slab = CandidateSlab::default();
        let h = slab.load_list(&l);
        for r_tenth in 0..40 {
            let r = r_tenth as f64 * 0.1;
            let reference = l.best_driven(r, 0.3).unwrap();
            let idx = slab.best_driven(h, r, 0.3).unwrap();
            let got = slab.view(h).get(idx);
            assert_eq!(got.q.to_bits(), reference.q.to_bits());
            assert_eq!(got.c.to_bits(), reference.c.to_bits());
        }
    }

    #[test]
    fn free_and_reset_recycle_storage_and_track_peak() {
        let mut slab = CandidateSlab::default();
        let a = slab.load_list(&staircase(1, 10));
        let b = slab.load_list(&staircase(2, 6));
        assert_eq!(slab.peak_bytes(), 16 * BYTES_PER_CANDIDATE);
        slab.free(a);
        slab.free(b);
        // Peak is sticky until reset; live storage is back to zero.
        assert_eq!(slab.peak_bytes(), 16 * BYTES_PER_CANDIDATE);
        let c = slab.alloc();
        assert_eq!(slab.len(c), 0);
        slab.reset();
        assert_eq!(slab.peak_bytes(), 0);
    }

    #[test]
    fn merge_keep_matches_merge_and_preserves_inputs() {
        for seed in 1u64..12 {
            let l = staircase(seed, 1 + (seed % 8) as usize);
            let r = staircase(seed.wrapping_mul(17), 1 + (seed % 5) as usize);
            let mut arena = PredArena::new();
            let reference = merge_branches(l.clone(), r.clone(), &mut arena, false);

            let mut slab = CandidateSlab::default();
            let mut stats = SolveStats::default();
            let mut arena2 = PredArena::new();
            let hl = slab.load_list(&l);
            let hr = slab.load_list(&r);
            let hm = slab.merge_keep(hl, hr, &mut arena2, false, &mut stats);
            assert_eq!(
                bits(&slab.to_candidate_list(hm)),
                bits(&reference),
                "seed {seed}"
            );
            // Inputs survive with their contents intact.
            assert_eq!(bits(&slab.to_candidate_list(hl)), bits(&l), "seed {seed}");
            assert_eq!(bits(&slab.to_candidate_list(hr)), bits(&r), "seed {seed}");
        }
    }

    #[test]
    fn merge_insert_list_matches_merge_insert() {
        for seed in 1u64..12 {
            let mut reference = staircase(seed, 9);
            let incoming = staircase(seed ^ 0x5117, 6);
            let mut slab = CandidateSlab::default();
            let dst = slab.load_list(&reference);
            let src = slab.load_list(&incoming);
            let inc: Vec<Candidate> = incoming.iter().copied().collect();
            reference.merge_insert(&inc);
            slab.merge_insert_list(dst, src);
            assert_eq!(
                bits(&slab.to_candidate_list(dst)),
                bits(&reference),
                "seed {seed}"
            );
            // Source untouched.
            assert_eq!(
                bits(&slab.to_candidate_list(src)),
                bits(&incoming),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn copy_list_preserves_bits_and_counts_live() {
        let src_list = staircase(9, 11);
        let mut slab = CandidateSlab::default();
        let a = slab.load_list(&src_list);
        let b = slab.copy_list(a);
        assert_ne!(a, b);
        assert_eq!(bits(&slab.to_candidate_list(b)), bits(&src_list));
        assert_eq!(slab.peak_bytes(), 22 * BYTES_PER_CANDIDATE);
    }

    #[test]
    fn retain_undominated_matches_partition_point_filter() {
        for seed in 1u64..15 {
            let frontier = staircase(seed, 8);
            let level = staircase(seed.wrapping_mul(101), 10);
            // Reference semantics: binary search for the best frontier
            // candidate at c <= cand.c (as in the AoS `prune_levels`).
            let expect: Vec<Candidate> = level
                .iter()
                .filter(|cand| {
                    let below = frontier.as_slice().partition_point(|f| f.c <= cand.c);
                    !(below > 0 && frontier.as_slice()[below - 1].q >= cand.q)
                })
                .copied()
                .collect();

            let mut slab = CandidateSlab::default();
            let mut stats = SolveStats::default();
            let hf = slab.load_list(&frontier);
            let hl = slab.load_list(&level);
            let removed = slab.retain_undominated(hl, hf, &mut stats);
            assert_eq!(removed, level.len() - expect.len(), "seed {seed}");
            assert_eq!(
                bits(&slab.to_candidate_list(hl)),
                bits(&CandidateList::from_sorted(expect)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn empty_side_merge_passthrough() {
        let mut slab = CandidateSlab::default();
        let mut arena = PredArena::new();
        let mut stats = SolveStats::default();
        let l = slab.load_list(&staircase(5, 4));
        let e = slab.alloc();
        let out = slab.merge(l, e, &mut arena, false, f64::INFINITY, &mut stats);
        assert_eq!(out, l);
        assert_eq!(slab.len(out), 4);
    }

    /// Times `a` and `b` interleaved in blocks (A/B/A/B…), reporting each
    /// side's fastest block scaled back to `iters` iterations. Machine
    /// drift (frequency ramps, co-tenant load) hits both sides evenly
    /// instead of flattering whichever side runs later.
    fn ab_time(
        iters: u32,
        mut a: impl FnMut(u32),
        mut b: impl FnMut(u32),
    ) -> (std::time::Duration, std::time::Duration) {
        use std::time::Instant;
        const BLOCKS: u32 = 8;
        let per = (iters / BLOCKS).max(1);
        let (mut best_a, mut best_b) = (std::time::Duration::MAX, std::time::Duration::MAX);
        for _ in 0..BLOCKS {
            let t0 = Instant::now();
            a(per);
            best_a = best_a.min(t0.elapsed());
            let t0 = Instant::now();
            b(per);
            best_b = best_b.min(t0.elapsed());
        }
        (best_a * BLOCKS, best_b * BLOCKS)
    }

    #[test]
    #[ignore = "microbenchmark; run with --release --ignored"]
    fn op_microbench() {
        use crate::merge::merge_branches_pooled;
        use crate::pool::CandidatePool;
        let iters = 20_000u32;
        for k in [16usize, 64, 256, 1024] {
            let src = staircase(42, k);
            let betas: Vec<Candidate> = staircase(9, 12).iter().copied().collect();
            let right = staircase(77, k);
            let mut pool = CandidatePool::default();
            let mut slab = CandidateSlab::default();
            let mut stats = SolveStats::default();
            let mut arena = PredArena::new();
            let mut arena2 = PredArena::new();

            // --- add_wire ---
            // Small shear, like a single routing segment: compaction after
            // a wire is rare in real solves (~0.2% of scanned candidates),
            // so the wire timing must not be dominated by it.
            let (wr, wc) = (1e-3, 1e-4);
            let (ref_wire, slab_wire) = ab_time(
                iters,
                |n| {
                    for _ in 0..n {
                        let mut l = clone_pooled(&src, &mut pool);
                        l.add_wire_model(&ElmoreModel, wr, wc);
                        pool.recycle(l);
                    }
                },
                |n| {
                    for _ in 0..n {
                        let h = slab.load_list(&src);
                        slab.add_wire(h, &ElmoreModel, wr, wc, &mut stats);
                        slab.free(h);
                    }
                },
            );

            // --- merge ---
            let (ref_merge, slab_merge) = ab_time(
                iters,
                |n| {
                    for _ in 0..n {
                        let l = clone_pooled(&src, &mut pool);
                        let r = clone_pooled(&right, &mut pool);
                        let m = merge_branches_pooled(
                            l,
                            r,
                            &mut arena,
                            false,
                            &mut pool,
                            f64::INFINITY,
                        );
                        pool.recycle(m);
                    }
                },
                |n| {
                    for _ in 0..n {
                        let l = slab.load_list(&src);
                        let r = slab.load_list(&right);
                        let m = slab.merge(l, r, &mut arena2, false, f64::INFINITY, &mut stats);
                        slab.free(m);
                    }
                },
            );

            // --- merge_insert ---
            let (ref_mi, slab_mi) = ab_time(
                iters,
                |n| {
                    for _ in 0..n {
                        let mut l = clone_pooled(&src, &mut pool);
                        l.merge_insert_pooled(&betas, &mut pool);
                        pool.recycle(l);
                    }
                },
                |n| {
                    for _ in 0..n {
                        let h = slab.load_list(&src);
                        slab.merge_insert(h, &betas);
                        slab.free(h);
                    }
                },
            );

            // --- hull build ---
            let mut hull = Vec::new();
            let mut hull2 = Vec::new();
            let loaded = slab.load_list(&src);
            let (ref_hull, slab_hull) = ab_time(
                iters,
                |n| {
                    for _ in 0..n {
                        crate::hull::upper_hull_into(src.as_slice(), &mut hull);
                        std::hint::black_box(hull.len());
                    }
                },
                |n| {
                    for _ in 0..n {
                        let v = slab.view(loaded);
                        crate::hull::upper_hull_cols(v.q, v.c, &mut hull2);
                        std::hint::black_box(hull2.len());
                    }
                },
            );
            slab.free(loaded);

            // --- load/clone overhead baseline ---
            let (ref_clone, slab_clone) = ab_time(
                iters,
                |n| {
                    for _ in 0..n {
                        let l = clone_pooled(&src, &mut pool);
                        pool.recycle(l);
                    }
                },
                |n| {
                    for _ in 0..n {
                        let h = slab.load_list(&src);
                        slab.free(h);
                    }
                },
            );

            eprintln!(
                "k={k:5}  wire {:>8.1?}/{:>8.1?}  merge {:>8.1?}/{:>8.1?}  mi {:>8.1?}/{:>8.1?}  hull {:>8.1?}/{:>8.1?}  clone {:>8.1?}/{:>8.1?}  (ref/slab)",
                ref_wire,
                slab_wire,
                ref_merge,
                slab_merge,
                ref_mi,
                slab_mi,
                ref_hull,
                slab_hull,
                ref_clone,
                slab_clone
            );
        }
    }

    fn clone_pooled(src: &CandidateList, pool: &mut crate::pool::CandidatePool) -> CandidateList {
        let mut v = pool.take();
        v.extend_from_slice(src.as_slice());
        CandidateList::from_sorted(v)
    }
}
