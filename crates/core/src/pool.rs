//! Recycling pool for candidate vectors.
//!
//! Every DP operation that produces a *new* candidate list (sink
//! initialization, branch merging, beta insertion) needs a fresh
//! `Vec<Candidate>`. A single solve allocates O(n) of them; a batch run over
//! thousands of nets would hammer the allocator with short-lived vectors of
//! nearly identical size. [`CandidatePool`] is a trivial freelist: spent
//! vectors go back in, new lists draw capacity out, and after the first net
//! warms a worker up, subsequent solves run allocation-free in the steady
//! state. The pool lives inside
//! [`SolveWorkspace`](crate::SolveWorkspace), one per batch worker.

use crate::candidate::{Candidate, CandidateList};

/// A freelist of `Vec<Candidate>` allocations, reused across DP operations
/// and across solves.
///
/// Vectors handed out by [`CandidatePool::take`] are always empty but keep
/// the capacity of their previous life, so a solver that repeatedly builds
/// lists of similar size stops allocating once warm.
#[derive(Debug, Default)]
pub(crate) struct CandidatePool {
    free: Vec<Vec<Candidate>>,
}

impl CandidatePool {
    /// Takes an empty vector, reusing a recycled allocation when available.
    #[inline]
    pub(crate) fn take(&mut self) -> Vec<Candidate> {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a spent vector to the pool. Zero-capacity vectors are
    /// dropped — they carry no allocation worth keeping.
    #[inline]
    pub(crate) fn put(&mut self, mut v: Vec<Candidate>) {
        if v.capacity() > 0 {
            v.clear();
            self.free.push(v);
        }
    }

    /// Recycles a whole candidate list's backing storage.
    #[inline]
    pub(crate) fn recycle(&mut self, list: CandidateList) {
        self.put(list.into_vec());
    }

    /// Number of vectors currently parked in the pool (test hook).
    #[cfg(test)]
    pub(crate) fn parked(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::PredRef;

    #[test]
    fn take_reuses_capacity() {
        let mut pool = CandidatePool::default();
        let mut v = pool.take();
        assert_eq!(v.capacity(), 0);
        v.reserve(64);
        let cap = v.capacity();
        v.push(Candidate::new(1.0, 1.0, PredRef::NONE));
        pool.put(v);
        assert_eq!(pool.parked(), 1);
        let v2 = pool.take();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn zero_capacity_vectors_are_dropped() {
        let mut pool = CandidatePool::default();
        pool.put(Vec::new());
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn recycle_extracts_list_storage() {
        let mut pool = CandidatePool::default();
        let list = CandidateList::sink(1.0, 2.0, PredRef::NONE);
        pool.recycle(list);
        assert_eq!(pool.parked(), 1);
    }
}
