//! Machine-independent operation counters.
//!
//! Wall-clock comparisons of the algorithms depend on hardware; the counters
//! here measure the *work* each DP operation performs (candidates visited,
//! hull steps, betas emitted), giving clean evidence of the O(k·b) vs
//! O(k + b) `AddBuffer` behaviour that Figures 3 and 4 of the paper show as
//! running time. The `ablation_counters` bench harness prints them.

use std::fmt;
use std::time::Duration;

/// Counters collected during one [`Solver::solve`](crate::Solver::solve).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Number of "add wire" operations performed.
    pub wire_ops: u64,
    /// Number of branch merges performed.
    pub merge_ops: u64,
    /// Number of `AddBuffer` invocations (buffer positions reached with a
    /// non-empty library).
    pub addbuffer_ops: u64,
    /// Candidates inspected by full scans (all of Lillis' work; only the
    /// load-limited fallback for Li–Shi).
    pub scan_candidate_visits: u64,
    /// Hull constructions performed (one per `AddBuffer` for Li–Shi).
    pub hull_builds: u64,
    /// Total candidates fed to hull constructions (Σ k).
    pub hull_input_candidates: u64,
    /// Forward steps of the monotone hull walk (bounded by hull size + b
    /// per position).
    pub hull_walk_steps: u64,
    /// Buffered candidates (β) generated.
    pub betas_generated: u64,
    /// Candidates removed by *permanent* convex pruning
    /// ([`Algorithm::LiShiPermanent`](crate::Algorithm) only).
    pub convex_pruned: u64,
    /// Candidates removed because their stage wire delay already violated
    /// the slew limit (0 in unconstrained solves; wire steps only — merge
    /// prunes are enforced but not counted).
    pub slew_pruned: u64,
    /// Nodes whose candidate lists were recomputed by a cached solve
    /// ([`Solver::solve_cached`](crate::Solver::solve_cached)); `0` for
    /// ordinary from-scratch solves, which do not report the split.
    pub nodes_recomputed: u64,
    /// Nodes whose cached candidate lists were reused unchanged by a
    /// cached solve (`nodes_recomputed + nodes_reused` = node count there);
    /// `0` for ordinary solves.
    pub nodes_reused: u64,
    /// Candidates swept by the struct-of-arrays kernel's wire-propagation
    /// columns (`0` under [`Kernel::Reference`](crate::Kernel)).
    pub slab_candidates_scanned: u64,
    /// Candidates removed by dominance pruning inside the slab kernel's
    /// linear column sweeps (wire re-prune and branch-merge monotone stack).
    pub slab_candidates_pruned: u64,
    /// Peak bytes of live candidate columns held by the slab during the
    /// solve. Under intra-net parallelism this is the largest peak of any
    /// participating slab (main or task), not their sum.
    pub slab_bytes_peak: usize,
    /// Independent sibling subtrees solved on worker threads by intra-net
    /// parallel mode (`0` for sequential solves).
    pub parallel_subtrees: u64,
    /// Largest candidate list seen at any node.
    pub max_list_len: usize,
    /// Candidate list length at the root.
    pub root_list_len: usize,
    /// Entries recorded in the predecessor arena (0 when tracking is off).
    pub arena_entries: usize,
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
}

impl SolveStats {
    /// The machine-independent cost of all `AddBuffer` operations: scan
    /// visits plus hull construction and walk work. This is the quantity
    /// the paper's complexity claims bound — O(k·b) per position for
    /// Lillis vs O(k + b) for Li–Shi.
    pub fn addbuffer_work(&self) -> u64 {
        self.scan_candidate_visits
            + self.hull_input_candidates
            + self.hull_walk_steps
            + self.betas_generated
    }

    /// Folds the counters of a parallel shard (one subtree task of
    /// intra-net parallel solving) into this total: additive counters sum,
    /// high-water marks take the maximum. `elapsed`, `root_list_len`, and
    /// `arena_entries` are whole-solve quantities the coordinator sets at
    /// the end and are left untouched.
    pub fn merge_shard(&mut self, shard: &SolveStats) {
        self.wire_ops += shard.wire_ops;
        self.merge_ops += shard.merge_ops;
        self.addbuffer_ops += shard.addbuffer_ops;
        self.scan_candidate_visits += shard.scan_candidate_visits;
        self.hull_builds += shard.hull_builds;
        self.hull_input_candidates += shard.hull_input_candidates;
        self.hull_walk_steps += shard.hull_walk_steps;
        self.betas_generated += shard.betas_generated;
        self.convex_pruned += shard.convex_pruned;
        self.slew_pruned += shard.slew_pruned;
        self.nodes_recomputed += shard.nodes_recomputed;
        self.nodes_reused += shard.nodes_reused;
        self.slab_candidates_scanned += shard.slab_candidates_scanned;
        self.slab_candidates_pruned += shard.slab_candidates_pruned;
        self.slab_bytes_peak = self.slab_bytes_peak.max(shard.slab_bytes_peak);
        self.parallel_subtrees += shard.parallel_subtrees;
        self.max_list_len = self.max_list_len.max(shard.max_list_len);
    }
}

impl fmt::Display for SolveStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ops: wire={} merge={} addbuf={} | addbuf work: scans={} hull_in={} walk={} betas={} | lists: max={} root={} | pruned={} slew_pruned={} arena={} | eco: recomputed={} reused={} | slab: scanned={} pruned={} peak_bytes={} par_subtrees={} | {:?}",
            self.wire_ops,
            self.merge_ops,
            self.addbuffer_ops,
            self.scan_candidate_visits,
            self.hull_input_candidates,
            self.hull_walk_steps,
            self.betas_generated,
            self.max_list_len,
            self.root_list_len,
            self.convex_pruned,
            self.slew_pruned,
            self.arena_entries,
            self.nodes_recomputed,
            self.nodes_reused,
            self.slab_candidates_scanned,
            self.slab_candidates_pruned,
            self.slab_bytes_peak,
            self.parallel_subtrees,
            self.elapsed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addbuffer_work_sums_components() {
        let stats = SolveStats {
            scan_candidate_visits: 10,
            hull_input_candidates: 20,
            hull_walk_steps: 5,
            betas_generated: 3,
            ..SolveStats::default()
        };
        assert_eq!(stats.addbuffer_work(), 38);
    }

    #[test]
    fn display_mentions_counters() {
        let s = SolveStats::default().to_string();
        assert!(s.contains("wire=0"));
        assert!(s.contains("max=0"));
    }
}
