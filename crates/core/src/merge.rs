//! Branch merging — the paper's third major operation.
//!
//! At a Steiner point the candidate lists of the two branches combine: a
//! merged candidate pairs one candidate from each side with
//!
//! ```text
//! Q = min(Q_left, Q_right)        C = C_left + C_right
//! ```
//!
//! Only `k₁ + k₂ − 1` of the `k₁·k₂` pairs can be nonredundant: the merged
//! slack is capped by the weaker side, so each candidate of one list is only
//! worth pairing with the *cheapest* (minimum-`C`) candidate of the other
//! list whose `Q` does not cap it. The classic two-pointer walk below
//! produces exactly those pairs in `O(k₁ + k₂)` (Lillis et al. 1996; van
//! Ginneken 1990 for the one-type case).

use crate::arena::{PredArena, PredEntry};
use crate::candidate::{Candidate, CandidateList};
use crate::pool::CandidatePool;

/// Merges two branch candidate lists. `arena` receives one
/// [`PredEntry::Merge`] per emitted candidate when `track` is set.
pub fn merge_branches(
    left: CandidateList,
    right: CandidateList,
    arena: &mut PredArena,
    track: bool,
) -> CandidateList {
    let mut pool = CandidatePool::default();
    merge_branches_pooled(left, right, arena, track, &mut pool, f64::INFINITY)
}

/// [`merge_branches`] with recycled storage: scratch and output vectors are
/// drawn from `pool`, and the spent input lists are returned to it.
///
/// `slew_cap` enforces the per-net slew constraint at branch points: the
/// merged stage delay is the worse of the two sides (`s = max(s₁, s₂)` —
/// both branches' endpoints now share one stage), and candidates whose `s`
/// exceeds the cap are pruned, since no upstream driver could close their
/// stage legally (`∞` disables the check).
pub(crate) fn merge_branches_pooled(
    left: CandidateList,
    right: CandidateList,
    arena: &mut PredArena,
    track: bool,
    pool: &mut CandidatePool,
    slew_cap: f64,
) -> CandidateList {
    let l = left.as_slice();
    let r = right.as_slice();
    if l.is_empty() {
        pool.recycle(left);
        return right;
    }
    if r.is_empty() {
        pool.recycle(right);
        return left;
    }
    let mut raw: Vec<Candidate> = pool.take();
    raw.reserve(l.len() + r.len());
    let (mut i, mut j) = (0usize, 0usize);
    // Invariant: all of l[..i] have q < r[j].q and all of r[..j] have
    // q < l[i].q, i.e. the current partner on the other side is the
    // cheapest candidate not capping the emitted one.
    while i < l.len() && j < r.len() {
        let (a, b) = (&l[i], &r[j]);
        let q = a.q.min(b.q);
        let c = a.c + b.c;
        let pred = if track {
            arena.push(PredEntry::Merge {
                left: a.pred,
                right: b.pred,
            })
        } else {
            crate::arena::PredRef::NONE
        };
        raw.push(Candidate::new(q, c, pred).with_stage_delay(a.s.max(b.s)));
        // Advance the capping side; on ties advance both (their pair was
        // just emitted; either alone would only add a dominated candidate).
        if a.q <= b.q {
            i += 1;
        }
        if b.q <= a.q {
            j += 1;
        }
    }
    // Once one side is exhausted, every remaining pair is capped at the
    // exhausted side's maximum q but costs strictly more c — dominated.

    // The raw sequence is q-nondecreasing with arbitrary c; prune with a
    // monotone stack.
    let mut out: Vec<Candidate> = pool.take();
    out.reserve(raw.len());
    for &cand in &raw {
        if let Some(top) = out.last() {
            if cand.q == top.q && cand.c >= top.c {
                continue; // dominated by the stack top
            }
        }
        while out.last().is_some_and(|t| t.c >= cand.c) {
            out.pop(); // cand dominates the top (q ≥, c ≤)
        }
        out.push(cand);
    }
    pool.put(raw);
    pool.recycle(left);
    pool.recycle(right);
    let mut merged = CandidateList::from_sorted(out);
    merged.prune_slew(slew_cap);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::PredRef;

    fn cand(q: f64, c: f64) -> Candidate {
        Candidate::new(q, c, PredRef::NONE)
    }

    fn list(points: &[(f64, f64)]) -> CandidateList {
        CandidateList::from_candidates(points.iter().map(|&(q, c)| cand(q, c)).collect())
    }

    fn merged(lp: &[(f64, f64)], rp: &[(f64, f64)]) -> Vec<(f64, f64)> {
        let mut arena = PredArena::new();
        merge_branches(list(lp), list(rp), &mut arena, false)
            .iter()
            .map(|c| (c.q, c.c))
            .collect()
    }

    /// Oracle: all pairs, then prune dominated.
    fn brute(lp: &[(f64, f64)], rp: &[(f64, f64)]) -> Vec<(f64, f64)> {
        let mut all = Vec::new();
        for &(ql, cl) in lp {
            for &(qr, cr) in rp {
                all.push(cand(ql.min(qr), cl + cr));
            }
        }
        CandidateList::from_candidates(all)
            .iter()
            .map(|c| (c.q, c.c))
            .collect()
    }

    #[test]
    fn single_pair() {
        assert_eq!(merged(&[(5.0, 1.0)], &[(3.0, 2.0)]), vec![(3.0, 3.0)]);
    }

    #[test]
    fn classic_interleave_matches_bruteforce() {
        let lp = [(1.0, 1.0), (5.0, 3.0), (9.0, 7.0)];
        let rp = [(2.0, 2.0), (6.0, 4.0)];
        assert_eq!(merged(&lp, &rp), brute(&lp, &rp));
    }

    #[test]
    fn equal_q_ties_match_bruteforce() {
        let lp = [(1.0, 1.0), (3.0, 2.0), (5.0, 4.0)];
        let rp = [(3.0, 1.5), (5.0, 3.0)];
        assert_eq!(merged(&lp, &rp), brute(&lp, &rp));
    }

    #[test]
    fn empty_side_passthrough() {
        let mut arena = PredArena::new();
        let l = list(&[(1.0, 1.0)]);
        let out = merge_branches(l.clone(), CandidateList::new(), &mut arena, false);
        assert_eq!(out, l);
        let out = merge_branches(CandidateList::new(), l.clone(), &mut arena, false);
        assert_eq!(out, l);
    }

    #[test]
    fn commutative() {
        let lp = [(1.0, 2.0), (4.0, 5.0), (8.0, 9.0)];
        let rp = [(0.5, 1.0), (3.0, 3.0), (7.0, 8.0), (10.0, 12.0)];
        assert_eq!(merged(&lp, &rp), merged(&rp, &lp));
    }

    #[test]
    fn randomized_against_bruteforce() {
        let mut state = 0xDEADBEEFu64;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for _ in 0..50 {
            let mk = |rnd: &mut dyn FnMut() -> f64| {
                let n = 1 + (rnd() * 6.0) as usize;
                let mut q = 0.0;
                let mut c = 0.0;
                let mut v = Vec::new();
                for _ in 0..n {
                    q += rnd() + 0.01;
                    c += rnd() + 0.01;
                    v.push((q, c));
                }
                v
            };
            let lp = mk(&mut rnd);
            let rp = mk(&mut rnd);
            assert_eq!(merged(&lp, &rp), brute(&lp, &rp), "L={lp:?} R={rp:?}");
        }
    }

    #[test]
    fn merged_stage_delay_is_the_worse_side() {
        let mut arena = PredArena::new();
        let l = CandidateList::from_sorted(vec![cand(1.0, 1.0).with_stage_delay(3.0)]);
        let r = CandidateList::from_sorted(vec![cand(2.0, 2.0).with_stage_delay(7.0)]);
        let out = merge_branches(l, r, &mut arena, false);
        assert_eq!(out.len(), 1);
        assert_eq!(out.as_slice()[0].s, 7.0);
    }

    #[test]
    fn slew_cap_prunes_merged_candidates() {
        let mut arena = PredArena::new();
        let mut pool = CandidatePool::default();
        let l = CandidateList::from_sorted(vec![
            cand(1.0, 1.0).with_stage_delay(0.5),
            cand(5.0, 3.0).with_stage_delay(9.0), // will violate after merge
        ]);
        let r = CandidateList::from_sorted(vec![cand(2.0, 2.0).with_stage_delay(1.0)]);
        let out = merge_branches_pooled(l, r, &mut arena, false, &mut pool, 2.0);
        // Pairs: (1, 3, s=1) kept; (2, 5, s=9) pruned by the cap.
        assert_eq!(out.len(), 1);
        assert_eq!(out.as_slice()[0].s, 1.0);
        assert_eq!((out.as_slice()[0].q, out.as_slice()[0].c), (1.0, 3.0));
    }

    #[test]
    fn predecessors_recorded_when_tracking() {
        let mut arena = PredArena::new();
        let out = merge_branches(
            list(&[(1.0, 1.0), (5.0, 3.0)]),
            list(&[(2.0, 2.0)]),
            &mut arena,
            true,
        );
        assert!(!arena.is_empty());
        for c in out.iter() {
            assert!(arena.get(c.pred).is_some());
            assert!(matches!(arena.get(c.pred), Some(PredEntry::Merge { .. })));
        }
    }

    #[test]
    fn no_arena_growth_when_untracked() {
        let mut arena = PredArena::new();
        let _ = merge_branches(
            list(&[(1.0, 1.0), (5.0, 3.0)]),
            list(&[(2.0, 2.0), (6.0, 4.0)]),
            &mut arena,
            false,
        );
        assert!(arena.is_empty());
    }
}
