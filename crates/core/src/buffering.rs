//! The `AddBuffer` operation — where the three algorithms differ.
//!
//! At a buffer position `v` the DP may insert any allowed buffer type
//! `B_i`, producing for each type one new candidate
//!
//! ```text
//! β_i = ( Q(α_i) − K(B_i) − R(B_i)·C(α_i),   C(B_i) )
//! ```
//!
//! where `α_i` is the *best candidate* for `B_i`: the one maximizing
//! `Q − R(B_i)·C` (ties to minimum `C`). The unbuffered candidates survive
//! alongside the `β_i`.
//!
//! | strategy | find all `α_i` | total per position |
//! |---|---|---|
//! | [`Algorithm::Lillis`] | one O(k) scan per type | O(k·b) |
//! | [`Algorithm::LiShi`] | Graham scan + monotone hull walk | O(k + b) |
//! | [`Algorithm::LiShiPermanent`] | same, but the hull *replaces* the list | O(k + b) |
//!
//! All strategies then emit the `β_i` in precomputed input-capacitance order
//! and merge them into the list in O(k + b) (Theorem 2 of the paper).

use fastbuf_buflib::{BufferLibrary, BufferTypeId};
use fastbuf_rctree::{NodeId, SiteConstraint, SiteVariation};

use crate::arena::{PredArena, PredEntry, PredRef};
use crate::candidate::{push_pruned_c_order, Candidate, CandidateList};
use crate::hull::{convex_prune_in_place, upper_hull_cols, upper_hull_into};
use crate::pool::CandidatePool;
use crate::slab::{CandidateSlab, SlabList, SlabView};
use crate::slew::SlewPolicy;
use crate::stats::SolveStats;

/// Which buffer-insertion algorithm the [`Solver`](crate::Solver) runs.
///
/// All three produce the same optimal slack except
/// [`Algorithm::LiShiPermanent`], which reproduces the paper's published
/// pseudo-code verbatim and can be (slightly) sub-optimal on multi-pin nets
/// — see `DESIGN.md` §2.1 and the `convex_permanent_gap` integration test.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Lillis, Cheng & Lin (TCAS 1996): scan every candidate for every
    /// buffer type; O(b²n²) overall. The baseline the paper compares
    /// against, and the algorithm van Ginneken's original reduces to when
    /// `b = 1`.
    Lillis,
    /// Li & Shi (DATE 2005): convex-hull `AddBuffer` in O(k + b), O(bn²)
    /// overall. The hull is computed in scratch space; the propagated list
    /// keeps all nonredundant candidates, so optimality is preserved on
    /// every topology.
    #[default]
    LiShi,
    /// Li & Shi exactly as published: convex pruning permanently removes
    /// interior candidates from the propagated list (the C code frees
    /// them). Fastest, provably exact on 2-pin nets, heuristic on
    /// multi-pin nets.
    LiShiPermanent,
}

impl Algorithm {
    /// All implemented algorithms, for parametrized tests and benches.
    pub const ALL: [Algorithm; 3] = [
        Algorithm::Lillis,
        Algorithm::LiShi,
        Algorithm::LiShiPermanent,
    ];

    /// `true` for the algorithms guaranteed to return the optimal slack on
    /// every routing tree.
    pub fn is_exact(self) -> bool {
        !matches!(self, Algorithm::LiShiPermanent)
    }

    /// Short stable name (used by benches and the CLI).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Lillis => "lillis",
            Algorithm::LiShi => "lishi",
            Algorithm::LiShiPermanent => "lishi-permanent",
        }
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "lillis" => Ok(Algorithm::Lillis),
            "lishi" => Ok(Algorithm::LiShi),
            "lishi-permanent" => Ok(Algorithm::LiShiPermanent),
            other => Err(format!(
                "unknown algorithm `{other}` (expected lillis, lishi, or lishi-permanent)"
            )),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Reusable scratch buffers so `AddBuffer` performs no per-node allocation
/// after warm-up.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    hull: Vec<u32>,
    /// Best buffered candidate per library type index, or `None`.
    pub(crate) beta_slots: Vec<Option<Candidate>>,
    betas: Vec<Candidate>,
    /// Freelist of candidate vectors shared by every list-producing DP
    /// operation of the owning solve (and, through
    /// [`SolveWorkspace`](crate::SolveWorkspace), across solves).
    pub(crate) pool: CandidatePool,
}

/// Per-buffer-type parameters hoisted out of the walk loops, with the
/// node's local process variation already folded in: `r` is scaled by
/// `drive_scale`, `k` by `delay_scale` (input capacitance and load limit
/// are unaffected by variation). The nominal `×1.0` is bit-exact, so a
/// variation-free solve computes the historical values exactly.
///
/// Both scales apply uniformly across the library at one node, so the
/// `by_resistance_desc` order the hull walk's Lemma 1 relies on is the
/// same ordering after scaling.
#[inline]
pub(crate) fn params(
    lib: &BufferLibrary,
    id: BufferTypeId,
    variation: SiteVariation,
) -> (f64, f64, f64, f64) {
    let b = lib.get(id);
    (
        b.driving_resistance().value() * variation.drive_scale(),
        b.intrinsic_delay().value() * variation.delay_scale(),
        b.input_capacitance().value(),
        b.max_load().map_or(f64::INFINITY, |m| m.value()),
    )
}

/// Runs the `AddBuffer` operation for `algo` on `list` at `node`.
///
/// `price` is the node's usage price in seconds (zero when unpriced): every
/// buffered candidate `β_i` pays it as extra intrinsic delay, which keeps
/// the priced subproblem exact — the α selection maximizes `Q − R·C` and a
/// constant subtraction from every `β_i` at one node changes neither the
/// argmax nor the hull-walk order (Lemmas 1/4). Subtracting `0.0` is
/// bit-exact, so unpriced solves reproduce the historical values.
#[allow(clippy::too_many_arguments)]
pub(crate) fn add_buffers(
    algo: Algorithm,
    list: &mut CandidateList,
    lib: &BufferLibrary,
    constraint: &SiteConstraint,
    node: NodeId,
    variation: SiteVariation,
    price: f64,
    arena: &mut PredArena,
    track: bool,
    scratch: &mut Scratch,
    slew: &SlewPolicy,
    stats: &mut SolveStats,
) {
    if !find_betas(
        algo, list, lib, constraint, node, variation, price, arena, track, scratch, slew, stats,
    ) {
        return;
    }
    // Emit the β_i in non-decreasing input-capacitance order (precomputed
    // on the library — Theorem 2), pruning betas dominated among themselves.
    scratch.betas.clear();
    for &id in lib.by_input_cap_asc() {
        if let Some(beta) = scratch.beta_slots[id.index()].take() {
            push_pruned_c_order(&mut scratch.betas, beta);
        }
    }
    stats.betas_generated += scratch.betas.len() as u64;
    let Scratch { betas, pool, .. } = scratch;
    list.merge_insert_pooled(betas, pool);
}

/// Computes the best buffered candidate `β_i` for every allowed type into
/// `scratch.beta_slots`, without inserting them. Returns `false` when the
/// operation is a no-op (empty list / library / not a site).
///
/// [`Algorithm::LiShiPermanent`] additionally convex-prunes `list` in place,
/// exactly as the paper's published `AddBuffer` does.
///
/// With an active slew constraint every algorithm takes the exact per-type
/// scan: the feasibility predicate `R·C + s ≤ budget` is not monotone along
/// the list (like a load limit, but per-type), so the hull walk's
/// Lemma 1/4 shortcut does not apply — see `docs/ALGORITHM.md`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn find_betas(
    algo: Algorithm,
    list: &mut CandidateList,
    lib: &BufferLibrary,
    constraint: &SiteConstraint,
    node: NodeId,
    variation: SiteVariation,
    price: f64,
    arena: &mut PredArena,
    track: bool,
    scratch: &mut Scratch,
    slew: &SlewPolicy,
    stats: &mut SolveStats,
) -> bool {
    if list.is_empty() || lib.is_empty() || !constraint.is_site() {
        return false;
    }
    stats.addbuffer_ops += 1;
    scratch.beta_slots.clear();
    scratch.beta_slots.resize(lib.len(), None);

    match algo {
        Algorithm::Lillis => {
            find_alphas_scan(
                list, lib, constraint, node, variation, price, arena, track, scratch, slew, stats,
            );
        }
        Algorithm::LiShi => {
            if slew.active() {
                find_alphas_scan(
                    list, lib, constraint, node, variation, price, arena, track, scratch, slew,
                    stats,
                );
            } else {
                upper_hull_into(list.as_slice(), &mut scratch.hull);
                stats.hull_builds += 1;
                stats.hull_input_candidates += list.len() as u64;
                find_alphas_walk(
                    list, lib, constraint, node, variation, price, arena, track, scratch, stats,
                );
            }
        }
        Algorithm::LiShiPermanent => {
            // Paper-as-written: prune the propagated list itself, then the
            // hull *is* the list.
            stats.convex_pruned += convex_prune_in_place(list) as u64;
            if slew.active() {
                find_alphas_scan(
                    list, lib, constraint, node, variation, price, arena, track, scratch, slew,
                    stats,
                );
            } else {
                stats.hull_builds += 1;
                stats.hull_input_candidates += list.len() as u64;
                scratch.hull.clear();
                scratch.hull.extend(0..list.len() as u32);
                find_alphas_walk(
                    list, lib, constraint, node, variation, price, arena, track, scratch, stats,
                );
            }
        }
    }
    true
}

/// Lillis et al.: independent O(k) scan per allowed buffer type. Also the
/// path every algorithm takes under an active slew constraint, where the
/// per-type feasibility filter `R·C + s ≤ budget` rules out the hull walk.
#[allow(clippy::too_many_arguments)]
fn find_alphas_scan(
    list: &CandidateList,
    lib: &BufferLibrary,
    constraint: &SiteConstraint,
    node: NodeId,
    variation: SiteVariation,
    price: f64,
    arena: &mut PredArena,
    track: bool,
    scratch: &mut Scratch,
    slew: &SlewPolicy,
    stats: &mut SolveStats,
) {
    for (id, _) in lib.iter() {
        if !constraint.allows(id) {
            continue;
        }
        let (r, k, c_in, max_load) = params(lib, id, variation);
        let slew_cap = slew.type_cap(id);
        let mut best: Option<&Candidate> = None;
        for cand in list.iter() {
            stats.scan_candidate_visits += 1;
            if cand.c > max_load {
                break; // c is sorted ascending; nothing further fits
            }
            if r * cand.c + cand.s > slew_cap {
                continue; // closing this stage with B_i would violate slew
            }
            match best {
                None => best = Some(cand),
                Some(b) => {
                    if cand.driven_q(r, 0.0) > b.driven_q(r, 0.0) {
                        best = Some(cand);
                    }
                }
            }
        }
        if let Some(alpha) = best {
            scratch.beta_slots[id.index()] =
                Some(make_beta(alpha, id, r, k, c_in, price, node, arena, track));
        }
    }
}

/// Li & Shi: one monotone walk along the hull finds every unconstrained
/// `α_i`; types with a load limit fall back to an exact scan (see
/// `DESIGN.md`: the limit can make an interior, off-hull candidate optimal,
/// so the hull alone is insufficient for them).
#[allow(clippy::too_many_arguments)]
fn find_alphas_walk(
    list: &CandidateList,
    lib: &BufferLibrary,
    constraint: &SiteConstraint,
    node: NodeId,
    variation: SiteVariation,
    price: f64,
    arena: &mut PredArena,
    track: bool,
    scratch: &mut Scratch,
    stats: &mut SolveStats,
) {
    let cands = list.as_slice();
    let hull = &scratch.hull;
    let mut ptr = 0usize;
    // Lemma 1 order: non-increasing driving resistance (scaling all types
    // by one node-local factor preserves this order).
    for &id in lib.by_resistance_desc() {
        if !constraint.allows(id) {
            continue;
        }
        let (r, k, c_in, max_load) = params(lib, id, variation);
        let alpha = if max_load.is_finite() {
            // Exact constrained scan (rare path).
            let mut best: Option<&Candidate> = None;
            for cand in cands {
                stats.scan_candidate_visits += 1;
                if cand.c > max_load {
                    break;
                }
                if best.is_none_or(|b| cand.driven_q(r, 0.0) > b.driven_q(r, 0.0)) {
                    best = Some(cand);
                }
            }
            match best {
                Some(a) => a,
                None => continue, // no candidate satisfies the load limit
            }
        } else {
            // Lemma 4: Q − R·C is unimodal along the hull; Lemma 1: the
            // peak only ever moves rightward as R decreases, so the pointer
            // never retreats across buffer types.
            while ptr + 1 < hull.len() {
                let cur = &cands[hull[ptr] as usize];
                let nxt = &cands[hull[ptr + 1] as usize];
                if nxt.driven_q(r, 0.0) > cur.driven_q(r, 0.0) {
                    ptr += 1;
                    stats.hull_walk_steps += 1;
                } else {
                    break;
                }
            }
            &cands[hull[ptr] as usize]
        };
        scratch.beta_slots[id.index()] =
            Some(make_beta(alpha, id, r, k, c_in, price, node, arena, track));
    }
}

/// [`add_buffers`] over the struct-of-arrays kernel: identical algorithm on
/// a [`SlabList`]. The β generation (library order, per-type best
/// candidate, dominance pruning among betas, counters) replicates the
/// reference expression by expression; only the final insertion uses
/// [`CandidateSlab::merge_insert`] instead of the pooled AoS merge.
#[allow(clippy::too_many_arguments)]
pub(crate) fn add_buffers_slab(
    algo: Algorithm,
    slab: &mut CandidateSlab,
    list: SlabList,
    lib: &BufferLibrary,
    constraint: &SiteConstraint,
    node: NodeId,
    variation: SiteVariation,
    price: f64,
    arena: &mut PredArena,
    track: bool,
    scratch: &mut Scratch,
    slew: &SlewPolicy,
    stats: &mut SolveStats,
) {
    if !find_betas_slab(
        algo, slab, list, lib, constraint, node, variation, price, arena, track, scratch, slew,
        stats,
    ) {
        return;
    }
    scratch.betas.clear();
    for &id in lib.by_input_cap_asc() {
        if let Some(beta) = scratch.beta_slots[id.index()].take() {
            push_pruned_c_order(&mut scratch.betas, beta);
        }
    }
    stats.betas_generated += scratch.betas.len() as u64;
    slab.merge_insert(list, &scratch.betas);
}

/// [`find_betas`] over the slab: fills `scratch.beta_slots` from the
/// columns of `list`. [`Algorithm::LiShiPermanent`] convex-prunes the slab
/// list in place via [`CandidateSlab::convex_prune`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn find_betas_slab(
    algo: Algorithm,
    slab: &mut CandidateSlab,
    list: SlabList,
    lib: &BufferLibrary,
    constraint: &SiteConstraint,
    node: NodeId,
    variation: SiteVariation,
    price: f64,
    arena: &mut PredArena,
    track: bool,
    scratch: &mut Scratch,
    slew: &SlewPolicy,
    stats: &mut SolveStats,
) -> bool {
    if slab.len(list) == 0 || lib.is_empty() || !constraint.is_site() {
        return false;
    }
    stats.addbuffer_ops += 1;
    scratch.beta_slots.clear();
    scratch.beta_slots.resize(lib.len(), None);

    match algo {
        Algorithm::Lillis => {
            find_alphas_scan_slab(
                slab.view(list),
                lib,
                constraint,
                node,
                variation,
                price,
                arena,
                track,
                scratch,
                slew,
                stats,
            );
        }
        Algorithm::LiShi => {
            if slew.active() {
                find_alphas_scan_slab(
                    slab.view(list),
                    lib,
                    constraint,
                    node,
                    variation,
                    price,
                    arena,
                    track,
                    scratch,
                    slew,
                    stats,
                );
            } else {
                let view = slab.view(list);
                upper_hull_cols(view.q, view.c, &mut scratch.hull);
                stats.hull_builds += 1;
                stats.hull_input_candidates += view.len() as u64;
                find_alphas_walk_slab(
                    view, lib, constraint, node, variation, price, arena, track, scratch, stats,
                );
            }
        }
        Algorithm::LiShiPermanent => {
            stats.convex_pruned += slab.convex_prune(list) as u64;
            if slew.active() {
                find_alphas_scan_slab(
                    slab.view(list),
                    lib,
                    constraint,
                    node,
                    variation,
                    price,
                    arena,
                    track,
                    scratch,
                    slew,
                    stats,
                );
            } else {
                let view = slab.view(list);
                stats.hull_builds += 1;
                stats.hull_input_candidates += view.len() as u64;
                scratch.hull.clear();
                scratch.hull.extend(0..view.len() as u32);
                find_alphas_walk_slab(
                    view, lib, constraint, node, variation, price, arena, track, scratch, stats,
                );
            }
        }
    }
    true
}

/// [`find_alphas_scan`] over slab columns — same per-type scans, same
/// early-exit and feasibility checks, same counters.
#[allow(clippy::too_many_arguments)]
fn find_alphas_scan_slab(
    view: SlabView<'_>,
    lib: &BufferLibrary,
    constraint: &SiteConstraint,
    node: NodeId,
    variation: SiteVariation,
    price: f64,
    arena: &mut PredArena,
    track: bool,
    scratch: &mut Scratch,
    slew: &SlewPolicy,
    stats: &mut SolveStats,
) {
    let n = view.len();
    let (qs, cs, ss) = (&view.q[..n], &view.c[..n], &view.s[..n]);
    for (id, _) in lib.iter() {
        if !constraint.allows(id) {
            continue;
        }
        let (r, k, c_in, max_load) = params(lib, id, variation);
        let slew_cap = slew.type_cap(id);
        let mut best: Option<usize> = None;
        let mut visits = 0u64;
        for i in 0..n {
            visits += 1;
            if cs[i] > max_load {
                break; // c is sorted ascending; nothing further fits
            }
            if r * cs[i] + ss[i] > slew_cap {
                continue; // closing this stage with B_i would violate slew
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    if qs[i] - r * cs[i] > qs[b] - r * cs[b] {
                        best = Some(i);
                    }
                }
            }
        }
        stats.scan_candidate_visits += visits;
        if let Some(i) = best {
            let alpha = view.get(i);
            scratch.beta_slots[id.index()] =
                Some(make_beta(&alpha, id, r, k, c_in, price, node, arena, track));
        }
    }
}

/// [`find_alphas_walk`] over slab columns: the same monotone hull walk with
/// the same load-limited exact-scan fallback.
#[allow(clippy::too_many_arguments)]
fn find_alphas_walk_slab(
    view: SlabView<'_>,
    lib: &BufferLibrary,
    constraint: &SiteConstraint,
    node: NodeId,
    variation: SiteVariation,
    price: f64,
    arena: &mut PredArena,
    track: bool,
    scratch: &mut Scratch,
    stats: &mut SolveStats,
) {
    let Scratch {
        hull, beta_slots, ..
    } = scratch;
    let hull = &hull[..];
    let n = view.len();
    let (qs, cs) = (&view.q[..n], &view.c[..n]);
    let mut ptr = 0usize;
    let mut walk_steps = 0u64;
    for &id in lib.by_resistance_desc() {
        if !constraint.allows(id) {
            continue;
        }
        let (r, k, c_in, max_load) = params(lib, id, variation);
        let alpha = if max_load.is_finite() {
            // Exact constrained scan (rare path).
            let mut best: Option<usize> = None;
            for i in 0..n {
                stats.scan_candidate_visits += 1;
                if cs[i] > max_load {
                    break;
                }
                if best.is_none_or(|b| qs[i] - r * cs[i] > qs[b] - r * cs[b]) {
                    best = Some(i);
                }
            }
            match best {
                Some(i) => view.get(i),
                None => continue, // no candidate satisfies the load limit
            }
        } else {
            // The walk carries the current vertex's objective in a
            // register: a vertex's `q − r·c` is the same bits whether kept
            // from the step that advanced onto it or recomputed, since `r`
            // is fixed within one buffer type.
            let cur = hull[ptr] as usize;
            let mut cur_v = qs[cur] - r * cs[cur];
            while ptr + 1 < hull.len() {
                let nxt = hull[ptr + 1] as usize;
                let nxt_v = qs[nxt] - r * cs[nxt];
                if nxt_v > cur_v {
                    ptr += 1;
                    cur_v = nxt_v;
                    walk_steps += 1;
                } else {
                    break;
                }
            }
            view.get(hull[ptr] as usize)
        };
        beta_slots[id.index()] = Some(make_beta(&alpha, id, r, k, c_in, price, node, arena, track));
    }
    stats.hull_walk_steps += walk_steps;
}

/// Builds `β_i` from its best candidate `α_i`. The node's usage `price`
/// is charged like extra intrinsic delay; `x − 0.0` is bit-exact for every
/// finite `x`, so unpriced solves are unchanged.
#[allow(clippy::too_many_arguments)]
#[inline]
fn make_beta(
    alpha: &Candidate,
    id: BufferTypeId,
    r: f64,
    k: f64,
    c_in: f64,
    price: f64,
    node: NodeId,
    arena: &mut PredArena,
    track: bool,
) -> Candidate {
    let pred = if track {
        arena.push(PredEntry::Buffer {
            node,
            buffer: id,
            prev: alpha.pred,
        })
    } else {
        PredRef::NONE
    };
    Candidate::new(alpha.driven_q(r, k) - price, c_in, pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbuf_buflib::units::{Farads, Ohms, Seconds};
    use fastbuf_buflib::BufferType;

    fn cand(q: f64, c: f64) -> Candidate {
        Candidate::new(q, c, PredRef::NONE)
    }

    fn list(points: &[(f64, f64)]) -> CandidateList {
        CandidateList::from_candidates(points.iter().map(|&(q, c)| cand(q, c)).collect())
    }

    fn lib(buffers: &[(f64, f64, f64)]) -> BufferLibrary {
        BufferLibrary::new(
            buffers
                .iter()
                .enumerate()
                .map(|(i, &(r, c, k))| {
                    BufferType::new(
                        format!("b{i}"),
                        Ohms::new(r),
                        Farads::new(c),
                        Seconds::new(k),
                    )
                })
                .collect(),
        )
        .unwrap()
    }

    fn run(algo: Algorithm, l: &CandidateList, library: &BufferLibrary) -> CandidateList {
        let mut out = l.clone();
        let mut arena = PredArena::new();
        let mut scratch = Scratch::default();
        let mut stats = SolveStats::default();
        add_buffers(
            algo,
            &mut out,
            library,
            &SiteConstraint::AnyBuffer,
            NodeId::new(0),
            SiteVariation::NOMINAL,
            0.0,
            &mut arena,
            false,
            &mut scratch,
            &SlewPolicy::unlimited(),
            &mut stats,
        );
        out
    }

    /// The three strategies agree on the final list whenever no merge
    /// follows (single AddBuffer call).
    #[test]
    fn strategies_agree_on_single_position() {
        let l = list(&[
            (1.0, 0.5),
            (2.0, 1.0),
            (2.5, 2.0), // interior
            (4.0, 3.0),
            (4.2, 5.0), // interior
            (6.0, 8.0),
        ]);
        let library = lib(&[(3.0, 0.1, 0.0), (1.0, 0.4, 0.1), (0.5, 0.9, 0.2)]);
        let a = run(Algorithm::Lillis, &l, &library);
        let b = run(Algorithm::LiShi, &l, &library);
        // Lillis and LiShi keep the full unbuffered set -> identical lists.
        assert_eq!(a, b);
        // The permanent variant loses interior unbuffered candidates but
        // must produce the same betas: compare the buffered subset (the
        // candidates whose c equals a library input capacitance and q
        // matches).
        let c = run(Algorithm::LiShiPermanent, &l, &library);
        for beta in c.iter() {
            assert!(
                a.iter().any(|x| x.q == beta.q && x.c == beta.c),
                "beta {beta:?} missing from exact list"
            );
        }
    }

    #[test]
    fn beta_values_hand_computed() {
        // One buffer: R=2, C_in=0.25, K=0.5.
        let l = list(&[(1.0, 1.0), (4.0, 2.0), (5.0, 4.0)]);
        let library = lib(&[(2.0, 0.25, 0.5)]);
        // Q - R*C: -1, 0, -3 -> alpha = (4,2). beta q = 4 - 0.5 - 2*2 = -0.5.
        let out = run(Algorithm::LiShi, &l, &library);
        assert!(
            out.iter()
                .any(|c| (c.q - (-0.5)).abs() < 1e-12 && (c.c - 0.25).abs() < 1e-12),
            "expected beta in {out:?}"
        );
    }

    #[test]
    fn walk_and_scan_agree_on_random_lists() {
        let mut state = 7u64;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for round in 0..100 {
            let n = 1 + (rnd() * 20.0) as usize;
            let mut q = 0.0;
            let mut c = 0.0;
            let mut pts = Vec::new();
            for _ in 0..n {
                q += rnd() + 0.001;
                c += rnd() + 0.001;
                pts.push((q, c));
            }
            let l = list(&pts);
            let nb = 1 + (rnd() * 6.0) as usize;
            let mut bufs: Vec<(f64, f64, f64)> = Vec::new();
            for _ in 0..nb {
                bufs.push((0.1 + rnd() * 5.0, 0.01 + rnd(), rnd()));
            }
            let library = lib(&bufs);
            let a = run(Algorithm::Lillis, &l, &library);
            let b = run(Algorithm::LiShi, &l, &library);
            assert_eq!(a, b, "round {round}: lists diverge\nL={pts:?}\nB={bufs:?}");
        }
    }

    #[test]
    fn respects_subset_constraint() {
        use fastbuf_buflib::BufferSet;
        use std::sync::Arc;
        let l = list(&[(1.0, 1.0), (4.0, 2.0)]);
        let library = lib(&[(2.0, 0.25, 0.0), (1.0, 0.3, 0.0)]);
        let mut only1 = BufferSet::empty(2);
        only1.insert(BufferTypeId::new(1));
        let constraint = SiteConstraint::Subset(Arc::new(only1));

        let mut out = l.clone();
        let mut arena = PredArena::new();
        let mut scratch = Scratch::default();
        let mut stats = SolveStats::default();
        add_buffers(
            Algorithm::LiShi,
            &mut out,
            &library,
            &constraint,
            NodeId::new(0),
            SiteVariation::NOMINAL,
            0.0,
            &mut arena,
            false,
            &mut scratch,
            &SlewPolicy::unlimited(),
            &mut stats,
        );
        // Only one beta may appear (c = 0.3); type 0's c_in 0.25 must not.
        assert!(out.iter().all(|c| (c.c - 0.25).abs() > 1e-12));
        assert_eq!(stats.betas_generated, 1);
    }

    #[test]
    fn not_a_site_is_noop() {
        let l = list(&[(1.0, 1.0)]);
        let library = lib(&[(2.0, 0.25, 0.0)]);
        let mut out = l.clone();
        let mut arena = PredArena::new();
        let mut scratch = Scratch::default();
        let mut stats = SolveStats::default();
        add_buffers(
            Algorithm::LiShi,
            &mut out,
            &library,
            &SiteConstraint::NotASite,
            NodeId::new(0),
            SiteVariation::NOMINAL,
            0.0,
            &mut arena,
            false,
            &mut scratch,
            &SlewPolicy::unlimited(),
            &mut stats,
        );
        assert_eq!(out, l);
        assert_eq!(stats.addbuffer_ops, 0);
    }

    #[test]
    fn max_load_limits_alpha_choice() {
        // Unconstrained alpha would be (10, 100); with max_load 5 only
        // (1,1) and (4,3) qualify.
        let l = list(&[(1.0, 1.0), (4.0, 3.0), (10.0, 100.0)]);
        let limited = BufferLibrary::new(vec![BufferType::new(
            "b0",
            Ohms::new(0.001),
            Farads::new(0.2),
            Seconds::new(0.0),
        )
        .with_max_load(Farads::new(5.0))])
        .unwrap();
        for algo in Algorithm::ALL {
            let out = run(algo, &l, &limited);
            // alpha = (4,3): beta q = 4 - 0.001*3 = 3.997.
            assert!(
                out.iter().any(|c| (c.q - 3.997).abs() < 1e-12),
                "{algo}: {out:?}"
            );
            assert!(
                out.iter().all(|c| (c.q - 9.9).abs() > 1e-3),
                "{algo} must not use the over-limit candidate: {out:?}"
            );
        }
    }

    #[test]
    fn max_load_with_no_feasible_candidate_emits_nothing() {
        let l = list(&[(10.0, 100.0)]);
        let limited = BufferLibrary::new(vec![BufferType::new(
            "b0",
            Ohms::new(1.0),
            Farads::new(0.2),
            Seconds::new(0.0),
        )
        .with_max_load(Farads::new(5.0))])
        .unwrap();
        let out = run(Algorithm::LiShi, &l, &limited);
        assert_eq!(out, l);
    }

    /// With an active slew budget, a type only closes stages it can drive
    /// legally: infeasible alphas are skipped, and a type with no feasible
    /// alpha emits no beta.
    #[test]
    fn slew_budget_filters_alphas_per_type() {
        use fastbuf_buflib::units::Seconds as S;
        use fastbuf_rctree::delay::{ElmoreModel, LN9};
        // Two candidates; the better one (for any r) carries a large stage
        // delay.
        let l = CandidateList::from_sorted(vec![
            cand(1.0, 1.0).with_stage_delay(0.0),
            cand(10.0, 2.0).with_stage_delay(5.0),
        ]);
        // One buffer: R = 1, C_in = 0.5, K = 0.
        let library = lib(&[(1.0, 0.5, 0.0)]);
        // Budget r*c + s <= 4: only (1,1,s=0) qualifies (1*2+5 = 7 > 4).
        let slew = SlewPolicy::new(&ElmoreModel, &library, 4.0 * LN9);
        assert!((slew.cap - 4.0).abs() < 1e-12);
        for algo in Algorithm::ALL {
            let mut out = l.clone();
            let mut arena = PredArena::new();
            let mut scratch = Scratch::default();
            let mut stats = SolveStats::default();
            add_buffers(
                algo,
                &mut out,
                &library,
                &SiteConstraint::AnyBuffer,
                NodeId::new(0),
                SiteVariation::NOMINAL,
                0.0,
                &mut arena,
                false,
                &mut scratch,
                &slew,
                &mut stats,
            );
            // Beta from alpha (1,1): q = 1 - 1*1 = 0, c = 0.5 — not from
            // the infeasible (10,2).
            assert!(
                out.iter().any(|c| c.c == 0.5 && c.q == 0.0),
                "{algo}: {out:?}"
            );
            assert!(
                out.iter().all(|c| c.c != 0.5 || c.q == 0.0),
                "{algo} used the slew-infeasible alpha: {out:?}"
            );
        }
        // A budget nothing satisfies emits no betas at all.
        let strict = SlewPolicy::new(&ElmoreModel, &library, S::from_pico(0.0).value());
        let mut out = l.clone();
        let mut arena = PredArena::new();
        let mut scratch = Scratch::default();
        let mut stats = SolveStats::default();
        add_buffers(
            Algorithm::LiShi,
            &mut out,
            &library,
            &SiteConstraint::AnyBuffer,
            NodeId::new(0),
            SiteVariation::NOMINAL,
            0.0,
            &mut arena,
            false,
            &mut scratch,
            &strict,
            &mut stats,
        );
        assert_eq!(out, l);
        assert_eq!(stats.betas_generated, 0);
    }

    #[test]
    fn lillis_visits_k_times_b_and_lishi_does_not() {
        let points: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64;
                // Strictly concave staircase: all points on the hull.
                (100.0 * x - 0.4 * x * x, x + 1.0)
            })
            .collect();
        let l = list(&points);
        assert_eq!(l.len(), 100);
        let library = lib(&[
            (80.0, 0.1, 0.0),
            (40.0, 0.2, 0.0),
            (20.0, 0.3, 0.0),
            (10.0, 0.4, 0.0),
        ]);

        let run_stats = |algo: Algorithm| {
            let mut out = l.clone();
            let mut arena = PredArena::new();
            let mut scratch = Scratch::default();
            let mut stats = SolveStats::default();
            add_buffers(
                algo,
                &mut out,
                &library,
                &SiteConstraint::AnyBuffer,
                NodeId::new(0),
                SiteVariation::NOMINAL,
                0.0,
                &mut arena,
                false,
                &mut scratch,
                &SlewPolicy::unlimited(),
                &mut stats,
            );
            stats
        };
        let lillis = run_stats(Algorithm::Lillis);
        let lishi = run_stats(Algorithm::LiShi);
        assert_eq!(lillis.scan_candidate_visits, 400); // k*b
        assert_eq!(lishi.scan_candidate_visits, 0);
        // Hull walk is bounded by k + b, not k*b.
        assert!(lishi.hull_walk_steps <= 100 + 4);
        assert_eq!(lishi.hull_input_candidates, 100);
    }

    /// Lemma 1 of the paper: with buffers sorted by non-increasing
    /// resistance, the best candidates' capacitances are non-decreasing.
    #[test]
    fn lemma1_best_candidates_monotone_in_c() {
        let mut state = 99u64;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for _ in 0..50 {
            let n = 2 + (rnd() * 30.0) as usize;
            let mut q = 0.0;
            let mut c = 0.0;
            let mut pts = Vec::new();
            for _ in 0..n {
                q += rnd() + 0.001;
                c += rnd() + 0.001;
                pts.push((q, c));
            }
            let l = list(&pts);
            let mut bufs: Vec<(f64, f64, f64)> = Vec::new();
            for _ in 0..6 {
                bufs.push((0.05 + rnd() * 8.0, 0.1, 0.0));
            }
            let library = lib(&bufs);
            // For each type in non-increasing-R order, find the best
            // candidate by exhaustive scan; its C must never decrease.
            let mut last_c = f64::NEG_INFINITY;
            for &id in library.by_resistance_desc() {
                let r = library.get(id).driving_resistance().value();
                let best = l
                    .iter()
                    .max_by(|a, b| {
                        // `total_cmp`: the ordering must stay total even on
                        // degenerate (NaN-producing) inputs — see the NaN
                        // rejection tests in `fastbuf-buflib`.
                        a.driven_q(r, 0.0)
                            .total_cmp(&b.driven_q(r, 0.0))
                            // min-C tiebreak: prefer the earlier (smaller C).
                            .then(b.c.total_cmp(&a.c))
                    })
                    .unwrap();
                assert!(
                    best.c >= last_c - 1e-15,
                    "Lemma 1 violated: C decreased from {last_c} to {}",
                    best.c
                );
                last_c = best.c;
            }
        }
    }

    /// Lemma 3: the best candidate for any resistance survives convex
    /// pruning.
    #[test]
    fn lemma3_best_candidate_on_hull() {
        let l = list(&[
            (1.0, 0.5),
            (2.0, 1.0),
            (2.5, 2.0),
            (4.0, 3.0),
            (4.2, 5.0),
            (6.0, 8.0),
        ]);
        let mut pruned = l.clone();
        crate::hull::convex_prune_in_place(&mut pruned);
        for r_tenth in 0..100 {
            let r = r_tenth as f64 * 0.1;
            let best_full = l.best_driven(r, 0.0).unwrap();
            assert!(
                pruned
                    .iter()
                    .any(|c| c.q == best_full.q && c.c == best_full.c),
                "r={r}: best candidate {best_full:?} was pruned"
            );
        }
    }

    #[test]
    fn algorithm_parsing_and_display() {
        assert_eq!("lishi".parse::<Algorithm>().unwrap(), Algorithm::LiShi);
        assert_eq!("lillis".parse::<Algorithm>().unwrap(), Algorithm::Lillis);
        assert_eq!(
            "lishi-permanent".parse::<Algorithm>().unwrap(),
            Algorithm::LiShiPermanent
        );
        assert!("nope".parse::<Algorithm>().is_err());
        for a in Algorithm::ALL {
            assert_eq!(a.name().parse::<Algorithm>().unwrap(), a);
            assert_eq!(a.to_string(), a.name());
        }
        assert!(Algorithm::LiShi.is_exact());
        assert!(Algorithm::Lillis.is_exact());
        assert!(!Algorithm::LiShiPermanent.is_exact());
        assert_eq!(Algorithm::default(), Algorithm::LiShi);
    }
}
