//! Predecessor tracking for solution reconstruction.
//!
//! Every candidate carries a 4-byte [`PredRef`] into an append-only arena.
//! The DP only ever *adds* decisions (a buffer inserted at a node, or two
//! branch solutions merged), so the arena entries form a DAG whose leaves
//! are sinks. After the root candidate is chosen, walking its predecessor
//! DAG yields the buffer placements in O(solution size).
//!
//! Tracking can be disabled (see
//! [`SolverOptions::track_predecessors`](crate::SolverOptions)) for
//! benchmarking runs that only need the slack, in which case every candidate
//! carries [`PredRef::NONE`] and no arena memory is spent — this mirrors how
//! the paper's experiments time the algorithms.

use fastbuf_buflib::BufferTypeId;
use fastbuf_rctree::NodeId;

/// Reference to a [`PredEntry`] in a [`PredArena`] (or
/// [`PredRef::NONE`] for sink candidates / untracked runs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PredRef(u32);

impl PredRef {
    /// The null reference: no predecessor (sink candidates, or tracking
    /// disabled).
    pub const NONE: PredRef = PredRef(u32::MAX);

    /// `true` if this is [`PredRef::NONE`].
    #[inline]
    pub fn is_none(self) -> bool {
        self == PredRef::NONE
    }

    /// Shifts the reference by `offset` entries ([`PredRef::NONE`] is a
    /// fixed point). Used when splicing one arena's entries onto the end of
    /// another — see [`PredArena::append_remapped`].
    #[inline]
    pub(crate) fn offset_by(self, offset: u32) -> PredRef {
        if self.is_none() {
            self
        } else {
            PredRef(self.0 + offset)
        }
    }
}

/// A reconstruction decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredEntry {
    /// A buffer of `buffer` type was inserted at `node`; the downstream
    /// solution is `prev`.
    Buffer {
        /// Node where the buffer sits.
        node: NodeId,
        /// Inserted buffer type.
        buffer: BufferTypeId,
        /// Downstream decision chain.
        prev: PredRef,
    },
    /// Two branch solutions were merged.
    Merge {
        /// Decision chain of the first branch.
        left: PredRef,
        /// Decision chain of the second branch.
        right: PredRef,
    },
}

/// Append-only arena of reconstruction decisions.
#[derive(Clone, Debug, Default)]
pub struct PredArena {
    entries: Vec<PredEntry>,
}

impl PredArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        PredArena::default()
    }

    /// Appends an entry and returns its reference.
    #[inline]
    pub fn push(&mut self, entry: PredEntry) -> PredRef {
        let r = PredRef(self.entries.len() as u32);
        self.entries.push(entry);
        r
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Removes all entries while keeping the allocation, so the arena can be
    /// reused across solves (see
    /// [`SolveWorkspace`](crate::SolveWorkspace)). All previously issued
    /// [`PredRef`]s are invalidated.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// `true` if no entries have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resolves a reference (`None` for [`PredRef::NONE`]).
    #[inline]
    pub fn get(&self, r: PredRef) -> Option<&PredEntry> {
        if r.is_none() {
            None
        } else {
            self.entries.get(r.0 as usize)
        }
    }

    /// Appends every entry of `other` to this arena, shifting the internal
    /// references of the copied entries so they keep pointing at their
    /// (now relocated) predecessors. Returns the offset a caller must add
    /// to `other`-relative [`PredRef`]s to resolve them here.
    ///
    /// Sound because arenas are append-only: an entry's references always
    /// point strictly *backwards*, so a uniform shift preserves the DAG.
    /// This is the join step of intra-net parallel solving — each subtree
    /// task records decisions in a private arena, and the main thread
    /// splices them in deterministic (topology) order.
    pub(crate) fn append_remapped(&mut self, other: &PredArena) -> u32 {
        let offset = self.entries.len() as u32;
        self.entries.reserve(other.entries.len());
        for entry in &other.entries {
            let remapped = match *entry {
                PredEntry::Buffer { node, buffer, prev } => PredEntry::Buffer {
                    node,
                    buffer,
                    prev: prev.offset_by(offset),
                },
                PredEntry::Merge { left, right } => PredEntry::Merge {
                    left: left.offset_by(offset),
                    right: right.offset_by(offset),
                },
            };
            self.entries.push(remapped);
        }
        offset
    }

    /// Collects every buffer placement reachable from `root`, sorted by node
    /// index (deterministic output order).
    pub fn collect_placements(&self, root: PredRef) -> Vec<(NodeId, BufferTypeId)> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(r) = stack.pop() {
            match self.get(r) {
                None => {}
                Some(PredEntry::Buffer { node, buffer, prev }) => {
                    out.push((*node, *buffer));
                    stack.push(*prev);
                }
                Some(PredEntry::Merge { left, right }) => {
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
        out.sort_by_key(|&(n, b)| (n, b));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none() {
        assert!(PredRef::NONE.is_none());
        let arena = PredArena::new();
        assert!(arena.get(PredRef::NONE).is_none());
        assert!(arena.is_empty());
    }

    #[test]
    fn push_and_get() {
        let mut arena = PredArena::new();
        let e = PredEntry::Buffer {
            node: NodeId::new(3),
            buffer: BufferTypeId::new(1),
            prev: PredRef::NONE,
        };
        let r = arena.push(e);
        assert!(!r.is_none());
        assert_eq!(arena.get(r), Some(&e));
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn collect_walks_merges_and_buffers() {
        let mut arena = PredArena::new();
        // Branch A: buffer B1 at n5.
        let a = arena.push(PredEntry::Buffer {
            node: NodeId::new(5),
            buffer: BufferTypeId::new(1),
            prev: PredRef::NONE,
        });
        // Branch B: buffer B0 at n2 then B2 at n7 upstream of it.
        let b1 = arena.push(PredEntry::Buffer {
            node: NodeId::new(2),
            buffer: BufferTypeId::new(0),
            prev: PredRef::NONE,
        });
        let b2 = arena.push(PredEntry::Buffer {
            node: NodeId::new(7),
            buffer: BufferTypeId::new(2),
            prev: b1,
        });
        let m = arena.push(PredEntry::Merge { left: a, right: b2 });
        let got = arena.collect_placements(m);
        assert_eq!(
            got,
            vec![
                (NodeId::new(2), BufferTypeId::new(0)),
                (NodeId::new(5), BufferTypeId::new(1)),
                (NodeId::new(7), BufferTypeId::new(2)),
            ]
        );
    }

    #[test]
    fn collect_from_none_is_empty() {
        let arena = PredArena::new();
        assert!(arena.collect_placements(PredRef::NONE).is_empty());
    }
}
