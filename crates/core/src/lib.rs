//! Optimal buffer insertion for interconnect delay.
//!
//! This crate implements the dynamic-programming buffer-insertion family on
//! RC routing trees under the Elmore / linear-buffer delay model:
//!
//! * **van Ginneken (ISCAS 1990)** — the classic O(n²) algorithm for one
//!   buffer type (the `b = 1` case of the solvers here);
//! * **Lillis, Cheng & Lin (JSSC 1996)** — the multi-type extension whose
//!   `AddBuffer` scans all `k` candidates for each of the `b` types:
//!   O(b²n²) total ([`Algorithm::Lillis`]);
//! * **Li & Shi (DATE 2005)** — the paper this workspace reproduces: the
//!   candidates that generate new buffered candidates lie on the convex
//!   hull of the `(Q, C)` set, so one Graham scan plus one monotone walk
//!   finds all of them in O(k + b), for O(bn²) total
//!   ([`Algorithm::LiShi`], the default; [`Algorithm::LiShiPermanent`] for
//!   the paper's exact published pruning).
//!
//! The solvers share one DP engine ([`Solver`]) and differ only in the
//! `AddBuffer` operation, so runtime comparisons measure exactly the
//! paper's contribution. A [`CostSolver`](cost::CostSolver) extends the DP
//! to the slack-vs-cost frontier (the "reduce buffer cost" application the
//! paper's conclusion mentions).
//!
//! # Quick start
//!
//! ```
//! use fastbuf_buflib::{BufferLibrary, Driver, Technology};
//! use fastbuf_buflib::units::{Farads, Microns, Ohms, Seconds};
//! use fastbuf_rctree::{TreeBuilder, Wire};
//! use fastbuf_core::Solver;
//!
//! let tech = Technology::tsmc180_like();
//! let lib = BufferLibrary::paper_synthetic(16)?;
//!
//! let mut b = TreeBuilder::new();
//! let src = b.source(Driver::new(Ohms::new(180.0)));
//! let site = b.buffer_site();
//! let sink = b.sink(Farads::from_femto(12.0), Seconds::from_pico(900.0));
//! b.connect(src, site, Wire::from_length(&tech, Microns::new(4000.0)))?;
//! b.connect(site, sink, Wire::from_length(&tech, Microns::new(4000.0)))?;
//! let tree = b.build()?;
//!
//! let solution = Solver::new(&tree, &lib).solve();
//! println!("slack {} using {} buffers", solution.slack, solution.placements.len());
//! solution.verify(&tree, &lib)?; // cross-check against forward Elmore analysis
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod arena;
mod buffering;
mod cache;
mod candidate;
pub mod cost;
mod engine;
mod hull;
mod merge;
pub mod polarity;
mod pool;
pub mod skew;
mod slab;
mod slew;
mod solution;
mod stats;

pub use arena::{PredArena, PredEntry, PredRef};
pub use buffering::Algorithm;
pub use cache::SubtreeCache;
pub use candidate::{Candidate, CandidateList};
pub use engine::{Kernel, SolveWorkspace, Solver, SolverOptions};
// Re-exported so solver users can configure `SolverOptions::delay_model`
// without importing `fastbuf-rctree` directly.
pub use fastbuf_rctree::delay::{DelayModel, ElmoreModel, ScaledElmoreModel};
pub use hull::{convex_prune_in_place, prunes_middle, upper_hull_into};
pub use merge::merge_branches;
pub use skew::{SkewSolution, SkewSolver, WindowCandidate};
pub use solution::{Placement, Solution, VerifyError};
pub use stats::SolveStats;
