//! Convex pruning — the geometric heart of the O(bn²) algorithm.
//!
//! View each candidate as the point `(C, Q)` in the plane. The paper's
//! *convex pruning* (its Eq. (2) and `Convexpruning` function) removes every
//! candidate lying on or below the segment between its neighbours, leaving
//! the **upper convex hull**: the sequence with strictly decreasing slopes
//!
//! ```text
//! (Q₂−Q₁)/(C₂−C₁) > (Q₃−Q₂)/(C₃−C₂) > ...
//! ```
//!
//! Three facts make this useful (Lemmas 1, 3 and 4 of the paper):
//!
//! * the candidate maximizing the buffered slack `Q − R·C` for **any**
//!   resistance `R` lies on the hull (a linear functional is maximized at a
//!   vertex);
//! * along the hull, `Q − R·C` is unimodal, so a local maximum is global;
//! * as `R` decreases, the maximizing vertex moves toward larger `C`.
//!
//! Together they let `AddBuffer` find the best candidate for all `b` buffer
//! types with one O(k) hull construction (Graham's scan over the already
//! sorted list — Lemma 2) plus one O(k + b) monotone walk, instead of the
//! O(k·b) full scans of Lillis, Cheng & Lin.

use crate::candidate::{Candidate, CandidateList};

/// The paper's Eq. (2) predicate: `true` when `a2` must be pruned, i.e.
/// when `slope(a1→a2) ≤ slope(a2→a3)` and `a2` therefore lies on or below
/// the chord `a1→a3`.
///
/// Written with cross-multiplication so no division is involved; the inputs
/// must satisfy `c1 < c2 < c3` (or at least be non-decreasing in `c`).
#[inline]
pub fn prunes_middle(a1: &Candidate, a2: &Candidate, a3: &Candidate) -> bool {
    // (q2-q1)·(c3-c2) ≤ (q3-q2)·(c2-c1)
    (a2.q - a1.q) * (a3.c - a2.c) <= (a3.q - a2.q) * (a2.c - a1.c)
}

/// [`prunes_middle`] on raw coordinates — the same cross-multiplied
/// predicate, for callers that hold candidates as separate `q`/`c` columns
/// (the struct-of-arrays kernel). Bit-identical by construction: it is the
/// identical expression on the identical values.
#[inline]
pub(crate) fn prunes_middle_vals(q1: f64, c1: f64, q2: f64, c2: f64, q3: f64, c3: f64) -> bool {
    (q2 - q1) * (c3 - c2) <= (q3 - q2) * (c2 - c1)
}

/// [`upper_hull_into`] over separate `q`/`c` columns: appends the indices
/// of the upper-hull vertices to `hull` (cleared first). Same Graham scan
/// with the same comparisons in the same order, but the top two hull
/// vertices are carried in registers so the common no-pop iteration does
/// no indirect `hull[...]` loads.
pub(crate) fn upper_hull_cols(qs: &[f64], cs: &[f64], hull: &mut Vec<u32>) {
    debug_assert_eq!(qs.len(), cs.len());
    hull.clear();
    let n = qs.len();
    if n == 0 {
        return;
    }
    hull.push(0);
    // (q1, c1) is the vertex below the top — meaningful once len >= 2.
    let (mut q1, mut c1) = (0.0f64, 0.0f64);
    let (mut q2, mut c2) = (qs[0], cs[0]);
    for i in 1..n {
        let (q3, c3) = (qs[i], cs[i]);
        while hull.len() >= 2 && prunes_middle_vals(q1, c1, q2, c2, q3, c3) {
            hull.pop();
            q2 = q1;
            c2 = c1;
            if hull.len() >= 2 {
                let i1 = hull[hull.len() - 2] as usize;
                q1 = qs[i1];
                c1 = cs[i1];
            }
        }
        hull.push(i as u32);
        (q1, c1) = (q2, c2);
        (q2, c2) = (q3, c3);
    }
}

/// Appends the indices of the upper-hull vertices of `list` to `hull`
/// (cleared first). Graham's scan on the pre-sorted list: O(k).
///
/// The first candidate (minimum `C`) and the last (maximum `Q`) are always
/// kept, matching the paper's `N'(T)` which anchors the hull at the
/// minimum-capacitance candidate.
pub fn upper_hull_into(list: &[Candidate], hull: &mut Vec<u32>) {
    hull.clear();
    for (i, cand) in list.iter().enumerate() {
        while hull.len() >= 2 {
            let a1 = &list[hull[hull.len() - 2] as usize];
            let a2 = &list[hull[hull.len() - 1] as usize];
            if prunes_middle(a1, a2, cand) {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(i as u32);
    }
}

/// Convex-prunes `list` **in place**, keeping only hull candidates.
///
/// This reproduces the paper's `Convexpruning` exactly as published (the C
/// code frees pruned candidates from the propagated list). See
/// `DESIGN.md` §2.1: on multi-pin nets this is a lossy transformation —
/// a pruned interior candidate can become optimal after a branch merge — so
/// the default solver only prunes a scratch copy. The permanent variant is
/// kept for fidelity and for the ablation experiments.
///
/// Returns the number of candidates removed.
pub fn convex_prune_in_place(list: &mut CandidateList) -> usize {
    let v = list.as_mut_vec();
    let before = v.len();
    let mut top = 0usize; // hull size; v[..top] is the hull so far
    for i in 0..v.len() {
        let cand = v[i];
        while top >= 2 && prunes_middle(&v[top - 2], &v[top - 1], &cand) {
            top -= 1;
        }
        v[top] = cand;
        top += 1;
    }
    v.truncate(top);
    list.debug_validate();
    before - top
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::PredRef;

    fn cand(q: f64, c: f64) -> Candidate {
        Candidate::new(q, c, PredRef::NONE)
    }

    fn list(points: &[(f64, f64)]) -> CandidateList {
        CandidateList::from_candidates(points.iter().map(|&(q, c)| cand(q, c)).collect())
    }

    #[test]
    fn interior_point_is_pruned() {
        // (4.9, 1) lies below the chord (0,0)-(10,2).
        let mut l = list(&[(0.0, 0.0), (4.9, 1.0), (10.0, 2.0)]);
        assert_eq!(l.len(), 3);
        let removed = convex_prune_in_place(&mut l);
        assert_eq!(removed, 1);
        let cs: Vec<f64> = l.iter().map(|c| c.c).collect();
        assert_eq!(cs, vec![0.0, 2.0]);
    }

    #[test]
    fn hull_point_above_chord_is_kept() {
        let mut l = list(&[(0.0, 0.0), (5.1, 1.0), (10.0, 2.0)]);
        assert_eq!(convex_prune_in_place(&mut l), 0);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn collinear_points_are_pruned() {
        let mut l = list(&[(0.0, 0.0), (5.0, 1.0), (10.0, 2.0)]);
        assert_eq!(convex_prune_in_place(&mut l), 1);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn slopes_strictly_decrease_after_pruning() {
        let mut l = list(&[
            (0.0, 0.0),
            (3.0, 1.0),
            (5.0, 2.0),
            (9.0, 3.0), // slope up again -> (5,2) and maybe (3,1) pruned
            (10.0, 5.0),
        ]);
        convex_prune_in_place(&mut l);
        let pts: Vec<(f64, f64)> = l.iter().map(|c| (c.q, c.c)).collect();
        for w in pts.windows(3) {
            let s1 = (w[1].0 - w[0].0) / (w[1].1 - w[0].1);
            let s2 = (w[2].0 - w[1].0) / (w[2].1 - w[1].1);
            assert!(s1 > s2, "slopes must strictly decrease: {pts:?}");
        }
        // Extremes always survive.
        assert_eq!(pts.first().unwrap().1, 0.0);
        assert_eq!(pts.last().unwrap().0, 10.0);
    }

    #[test]
    fn small_lists_untouched() {
        let mut l = list(&[(1.0, 1.0)]);
        assert_eq!(convex_prune_in_place(&mut l), 0);
        assert_eq!(l.len(), 1);
        let mut l = list(&[(1.0, 1.0), (2.0, 2.0)]);
        assert_eq!(convex_prune_in_place(&mut l), 0);
        assert_eq!(l.len(), 2);
        let mut l = CandidateList::new();
        assert_eq!(convex_prune_in_place(&mut l), 0);
    }

    #[test]
    fn upper_hull_into_matches_in_place() {
        let points = [
            (0.0, 0.0),
            (1.0, 0.5),
            (4.0, 1.0),
            (4.5, 2.0),
            (6.0, 3.0),
            (6.2, 4.0),
            (7.0, 6.0),
        ];
        let l = list(&points);
        let mut hull = vec![99u32]; // stale content must be cleared
        upper_hull_into(l.as_slice(), &mut hull);
        let mut l2 = l.clone();
        convex_prune_in_place(&mut l2);
        let via_indices: Vec<(f64, f64)> = hull
            .iter()
            .map(|&i| {
                let c = l.as_slice()[i as usize];
                (c.q, c.c)
            })
            .collect();
        let via_inplace: Vec<(f64, f64)> = l2.iter().map(|c| (c.q, c.c)).collect();
        assert_eq!(via_indices, via_inplace);
    }

    /// Brute-force cross-check on a pseudo-random staircase: every pruned
    /// point lies on/below a chord of kept points, every kept point above
    /// all chords of its neighbours.
    #[test]
    fn hull_is_exactly_the_non_dominated_by_chords_set() {
        // Deterministic pseudo-random staircase.
        let mut q = 0.0f64;
        let mut c = 0.0f64;
        let mut pts = Vec::new();
        let mut state = 0x12345678u64;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for _ in 0..60 {
            q += rnd() + 0.01;
            c += rnd() + 0.01;
            pts.push((q, c));
        }
        let l = list(&pts);
        let mut hull = Vec::new();
        upper_hull_into(l.as_slice(), &mut hull);
        let hull_pts: Vec<Candidate> = hull.iter().map(|&i| l.as_slice()[i as usize]).collect();

        // For every linear objective r >= 0, the hull must contain the
        // argmax of q - r*c over the full list.
        for r_mil in 0..50 {
            let r = r_mil as f64 * 0.1;
            let full_best = l
                .iter()
                .map(|cd| cd.q - r * cd.c)
                .fold(f64::NEG_INFINITY, f64::max);
            let hull_best = hull_pts
                .iter()
                .map(|cd| cd.q - r * cd.c)
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(
                (full_best - hull_best).abs() <= 1e-12 * full_best.abs().max(1.0),
                "hull missed optimum for r={r}: {full_best} vs {hull_best}"
            );
        }
    }
}
