//! Polarity-aware buffer insertion with inverters.
//!
//! Real repeater libraries are dominated by *inverters* — they are smaller
//! and faster than two-stage buffers — but an inverter flips signal
//! polarity, so placements must deliver the right parity of inversions to
//! every sink. Lillis, Cheng & Lin's original multi-type formulation (the
//! paper's reference \[7\]) already handled this by keeping **two**
//! nonredundant candidate lists per node, one per required arriving
//! polarity; the Li–Shi convex-hull `AddBuffer` applies to each list
//! unchanged, preserving the O(bn²) bound.
//!
//! DP semantics: a candidate in the *positive* list of `T_v` is a buffering
//! of the subtree that meets all its sinks' polarity requirements **if the
//! signal arriving at `v` is positive** (even number of upstream
//! inversions); likewise for the *negative* list. Wires shear both lists;
//! branch merges combine like-polarity lists; a non-inverting buffer maps a
//! list to itself while an inverter maps it to the opposite list. The
//! source drives positive polarity, so the answer is read from the root's
//! positive list — if it is empty (e.g. a negated sink but no inverter in
//! the library), the instance is infeasible.
//!
//! # Example
//!
//! ```
//! use fastbuf_buflib::BufferLibrary;
//! use fastbuf_buflib::units::Microns;
//! use fastbuf_core::polarity::PolaritySolver;
//! # use fastbuf_buflib::{Driver, Technology};
//! # use fastbuf_buflib::units::{Farads, Ohms, Seconds};
//! # use fastbuf_rctree::{TreeBuilder, Wire};
//!
//! let lib = BufferLibrary::paper_synthetic_mixed(8)?; // buffers + inverters
//! # let tech = Technology::tsmc180_like();
//! # let mut b = TreeBuilder::new();
//! # let src = b.source(Driver::new(Ohms::new(180.0)));
//! # let site = b.buffer_site();
//! # let sink = b.sink(Farads::from_femto(10.0), Seconds::from_pico(1000.0));
//! # b.connect(src, site, Wire::from_length(&tech, Microns::new(3000.0)))?;
//! # b.connect(site, sink, Wire::from_length(&tech, Microns::new(3000.0)))?;
//! # let tree = b.build()?;
//! let solution = PolaritySolver::new(&tree, &lib).solve()?;
//! // Inverters used along any source->sink path always come in pairs
//! // unless the sink itself is negated.
//! solution.verify(&tree, &lib)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::error::Error;
use std::fmt;
use std::time::Instant;

use fastbuf_buflib::units::Seconds;
use fastbuf_buflib::BufferLibrary;
use fastbuf_rctree::{NodeId, NodeKind, RoutingTree};

use fastbuf_rctree::delay::ElmoreModel;

use crate::arena::PredArena;
use crate::buffering::{find_betas_slab, Algorithm, Scratch};
use crate::candidate::{push_pruned_c_order, Candidate};
use crate::slab::{CandidateSlab, SlabList};
use crate::slew::SlewPolicy;
use crate::solution::Placement;
use crate::stats::SolveStats;

/// Signal polarity relative to the source.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// Same polarity as the source output.
    #[default]
    Positive,
    /// Inverted relative to the source output.
    Negative,
}

impl Polarity {
    /// The opposite polarity.
    #[must_use]
    pub fn flipped(self) -> Polarity {
        match self {
            Polarity::Positive => Polarity::Negative,
            Polarity::Negative => Polarity::Positive,
        }
    }
}

/// Errors from [`PolaritySolver::solve`] and
/// [`PolaritySolution::verify`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum PolarityError {
    /// No assignment can satisfy every sink's polarity requirement (e.g. a
    /// negated sink with no inverter in the library).
    Infeasible,
    /// A node passed to [`PolaritySolver::require`] is not a sink.
    NotASink(NodeId),
    /// Verification found a sink receiving the wrong polarity.
    WrongPolarity(NodeId),
    /// Verification measured a different slack than predicted.
    SlackMismatch {
        /// Slack the DP predicted.
        predicted: Seconds,
        /// Slack the forward evaluation measured.
        measured: Seconds,
    },
    /// A requested solve configuration the polarity DP does not implement
    /// (non-Elmore delay models, slew limits). Without this typed refusal
    /// the solver would silently compute Elmore/unconstrained answers for
    /// a caller who asked for something else — the same hazard
    /// `Solution::verify` had before PR 4.
    Unsupported {
        /// What was requested, human-readable.
        what: String,
    },
}

impl fmt::Display for PolarityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolarityError::Infeasible => {
                write!(
                    f,
                    "no buffer assignment satisfies the polarity requirements"
                )
            }
            PolarityError::NotASink(n) => write!(f, "{n} is not a sink"),
            PolarityError::WrongPolarity(n) => {
                write!(f, "sink {n} receives the wrong polarity")
            }
            PolarityError::SlackMismatch {
                predicted,
                measured,
            } => write!(
                f,
                "predicted slack {predicted} but forward evaluation measured {measured}"
            ),
            PolarityError::Unsupported { what } => {
                write!(f, "the polarity solver does not support {what}")
            }
        }
    }
}

impl Error for PolarityError {}

/// Result of a polarity-aware solve.
#[derive(Clone, Debug)]
pub struct PolaritySolution {
    /// Optimal slack at the source (driver delay included).
    pub slack: Seconds,
    /// Inserted repeaters (buffers and inverters).
    pub placements: Vec<Placement>,
    /// How many of the placements are inverters.
    pub inverter_count: usize,
    /// Operation counters (both polarity lists contribute).
    pub stats: SolveStats,
}

impl PolaritySolution {
    /// Checks the solution against the independent forward Elmore engine
    /// *and* the polarity requirements; returns the measured slack.
    ///
    /// # Errors
    ///
    /// [`PolarityError::WrongPolarity`] if any sink sees the wrong parity of
    /// inversions; [`PolarityError::SlackMismatch`] if the measured slack
    /// deviates from the prediction.
    pub fn verify(
        &self,
        tree: &RoutingTree,
        library: &BufferLibrary,
    ) -> Result<Seconds, PolarityError> {
        self.verify_with(tree, library, &[])
    }

    /// Like [`PolaritySolution::verify`] for instances with negated sinks.
    ///
    /// # Errors
    ///
    /// See [`PolaritySolution::verify`].
    pub fn verify_with(
        &self,
        tree: &RoutingTree,
        library: &BufferLibrary,
        negated_sinks: &[NodeId],
    ) -> Result<Seconds, PolarityError> {
        let pairs: Vec<_> = self.placements.iter().map(|p| (p.node, p.buffer)).collect();
        check_polarity(tree, library, &pairs, negated_sinks)?;
        let report = fastbuf_rctree::elmore::evaluate(tree, library, &pairs)
            .expect("reconstructed placements are legal");
        let tol = 1e-9 * self.slack.value().abs().max(1e-12);
        if (report.slack.value() - self.slack.value()).abs() > tol {
            return Err(PolarityError::SlackMismatch {
                predicted: self.slack,
                measured: report.slack,
            });
        }
        Ok(report.slack)
    }
}

/// Checks that `placements` deliver the required polarity to every sink.
///
/// Purely topological — it counts inversions along each source→sink path
/// and never evaluates delay, so it is valid under *any* delay model
/// (unlike [`PolaritySolver::solve`], which is Elmore-only).
///
/// # Errors
///
/// [`PolarityError::WrongPolarity`] naming the first offending sink.
pub fn check_polarity(
    tree: &RoutingTree,
    library: &BufferLibrary,
    placements: &[(NodeId, fastbuf_buflib::BufferTypeId)],
    negated_sinks: &[NodeId],
) -> Result<(), PolarityError> {
    let mut inverts = vec![false; tree.node_count()];
    for &(node, buf) in placements {
        if library.get(buf).is_inverting() {
            inverts[node.index()] = true;
        }
    }
    // Parity of inversions from the source to each node, top-down.
    let mut parity = vec![Polarity::Positive; tree.node_count()];
    for &node in tree.postorder().iter().rev() {
        let from_parent = match tree.parent(node) {
            None => Polarity::Positive,
            Some(p) => parity[p.index()],
        };
        parity[node.index()] = if inverts[node.index()] {
            from_parent.flipped()
        } else {
            from_parent
        };
    }
    for sink in tree.sinks() {
        let required = if negated_sinks.contains(&sink) {
            Polarity::Negative
        } else {
            Polarity::Positive
        };
        if parity[sink.index()] != required {
            return Err(PolarityError::WrongPolarity(sink));
        }
    }
    Ok(())
}

/// Branch merge for polarity lists. Unlike the plain branch merge — which
/// passes a non-empty side through when the other is empty, correct when
/// lists are never empty — an empty side here means "this branch cannot be
/// satisfied with this arriving polarity", so the merged list must be empty
/// too: the same wire feeds both branches.
fn merge_polarized(
    slab: &mut CandidateSlab,
    left: SlabList,
    right: SlabList,
    arena: &mut PredArena,
    stats: &mut SolveStats,
) -> SlabList {
    if slab.len(left) == 0 || slab.len(right) == 0 {
        slab.free(left);
        slab.free(right);
        return slab.alloc();
    }
    slab.merge(left, right, arena, true, f64::INFINITY, stats)
}

/// Merges two c-sorted beta groups into one nonredundant c-sorted vector.
fn merge_sorted_betas(a: Vec<Candidate>, b: Vec<Candidate>) -> Vec<Candidate> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let take_a = match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => x.c < y.c || (x.c == y.c && x.q >= y.q),
            (Some(_), None) => true,
            _ => false,
        };
        let cand = if take_a {
            i += 1;
            a[i - 1]
        } else {
            j += 1;
            b[j - 1]
        };
        push_pruned_c_order(&mut out, cand);
    }
    out
}

/// Per-node DP state: one nonredundant slab list per required arriving
/// polarity.
#[derive(Clone, Copy, Debug)]
struct PolarityLists {
    pos: SlabList,
    neg: SlabList,
}

/// Polarity-aware optimal buffer insertion; see the [module docs](self).
#[derive(Debug)]
pub struct PolaritySolver<'a> {
    tree: &'a RoutingTree,
    library: &'a BufferLibrary,
    algorithm: Algorithm,
    negated: Vec<bool>,
    delay_model: Option<std::sync::Arc<dyn fastbuf_rctree::DelayModel>>,
    slew_limit: Option<Seconds>,
}

impl<'a> PolaritySolver<'a> {
    /// Creates a solver; all sinks initially require positive polarity.
    pub fn new(tree: &'a RoutingTree, library: &'a BufferLibrary) -> Self {
        PolaritySolver {
            tree,
            library,
            algorithm: Algorithm::LiShi,
            negated: vec![false; tree.node_count()],
            delay_model: None,
            slew_limit: None,
        }
    }

    /// Selects the `AddBuffer` algorithm (applied per polarity list).
    #[must_use]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Requests a delay model for the solve. The polarity DP is hard-wired
    /// to Elmore arithmetic, so anything else makes
    /// [`PolaritySolver::solve`] return a typed
    /// [`PolarityError::Unsupported`] instead of silently computing Elmore
    /// answers under the wrong name.
    #[must_use]
    pub fn delay_model(mut self, model: std::sync::Arc<dyn fastbuf_rctree::DelayModel>) -> Self {
        self.delay_model = Some(model);
        self
    }

    /// Requests a maximum output slew. The polarity DP solves
    /// unconstrained; a limit makes [`PolaritySolver::solve`] return a
    /// typed [`PolarityError::Unsupported`].
    #[must_use]
    pub fn slew_limit(mut self, limit: Option<Seconds>) -> Self {
        self.slew_limit = limit;
        self
    }

    /// Requires `sink` to receive the given polarity.
    ///
    /// # Errors
    ///
    /// [`PolarityError::NotASink`] if `sink` is not a sink of the tree.
    pub fn require(&mut self, sink: NodeId, polarity: Polarity) -> Result<(), PolarityError> {
        if sink.index() >= self.tree.node_count() || !self.tree.kind(sink).is_sink() {
            return Err(PolarityError::NotASink(sink));
        }
        self.negated[sink.index()] = polarity == Polarity::Negative;
        Ok(())
    }

    /// The sinks currently required to receive negative polarity.
    pub fn negated_sinks(&self) -> Vec<NodeId> {
        self.tree
            .node_ids()
            .filter(|n| self.negated[n.index()])
            .collect()
    }

    /// Runs the two-list dynamic program.
    ///
    /// # Errors
    ///
    /// [`PolarityError::Infeasible`] when no assignment can satisfy the
    /// polarity requirements (the root's positive list comes out empty).
    pub fn solve(&self) -> Result<PolaritySolution, PolarityError> {
        if let Some(model) = &self.delay_model {
            if model.name() != "elmore" {
                return Err(PolarityError::Unsupported {
                    what: format!(
                        "delay model `{}` (the polarity DP is Elmore-only)",
                        model.name()
                    ),
                });
            }
        }
        if self.slew_limit.is_some() {
            return Err(PolarityError::Unsupported {
                what: "slew limits (the polarity DP solves unconstrained)".to_owned(),
            });
        }
        let start = Instant::now();
        let tree = self.tree;
        let lib = self.library;
        let mut stats = SolveStats::default();
        let mut arena = PredArena::new();
        let mut scratch = Scratch::default();
        let mut slab = CandidateSlab::default();
        let mut lists: Vec<Option<PolarityLists>> = vec![None; tree.node_count()];

        for &node in tree.postorder() {
            let state = match tree.kind(node) {
                NodeKind::Sink {
                    capacitance,
                    required_arrival,
                } => {
                    let single = slab.sink(required_arrival.value(), capacitance.value());
                    let empty = slab.alloc();
                    if self.negated[node.index()] {
                        PolarityLists {
                            pos: empty,
                            neg: single,
                        }
                    } else {
                        PolarityLists {
                            pos: single,
                            neg: empty,
                        }
                    }
                }
                NodeKind::Internal | NodeKind::Source { .. } => {
                    let mut acc: Option<PolarityLists> = None;
                    for &child in tree.children(node) {
                        let cl = lists[child.index()]
                            .take()
                            .expect("post-order guarantees children are done");
                        let wire = tree.wire_to_parent(child).expect("child wire");
                        let (r, cw) = (wire.resistance().value(), wire.capacitance().value());
                        slab.add_wire(cl.pos, &ElmoreModel, r, cw, &mut stats);
                        slab.add_wire(cl.neg, &ElmoreModel, r, cw, &mut stats);
                        stats.wire_ops += 1;
                        acc = Some(match acc {
                            None => cl,
                            Some(prev) => {
                                stats.merge_ops += 1;
                                PolarityLists {
                                    pos: merge_polarized(
                                        &mut slab, prev.pos, cl.pos, &mut arena, &mut stats,
                                    ),
                                    neg: merge_polarized(
                                        &mut slab, prev.neg, cl.neg, &mut arena, &mut stats,
                                    ),
                                }
                            }
                        });
                    }
                    let state = acc.expect("internal nodes have children");
                    if tree.is_buffer_site(node) && !lib.is_empty() {
                        self.add_repeaters(
                            state,
                            node,
                            &mut slab,
                            &mut arena,
                            &mut scratch,
                            &mut stats,
                        );
                    }
                    state
                }
            };
            stats.max_list_len = stats
                .max_list_len
                .max(slab.len(state.pos).max(slab.len(state.neg)));
            lists[node.index()] = Some(state);
        }

        let root = lists[tree.root().index()].take().expect("root processed");
        stats.root_list_len = slab.len(root.pos);
        let driver = tree.driver();
        let (dr, dk) = (
            driver.resistance().value(),
            driver.intrinsic_delay().value(),
        );
        let best = slab
            .best_driven(root.pos, dr, dk)
            .map(|i| slab.view(root.pos).get(i))
            .ok_or(PolarityError::Infeasible)?;

        let placements: Vec<Placement> = arena
            .collect_placements(best.pred)
            .into_iter()
            .map(Placement::from)
            .collect();
        let inverter_count = placements
            .iter()
            .filter(|p| lib.get(p.buffer).is_inverting())
            .count();
        stats.arena_entries = arena.len();
        stats.slab_bytes_peak = slab.peak_bytes();
        stats.elapsed = start.elapsed();
        Ok(PolaritySolution {
            slack: Seconds::new(best.q - dk - dr * best.c),
            placements,
            inverter_count,
            stats,
        })
    }

    /// `AddBuffer` across both polarity lists: betas are generated from each
    /// source list first (so one node never hosts two repeaters), then
    /// routed to the target list its type's polarity dictates.
    fn add_repeaters(
        &self,
        state: PolarityLists,
        node: NodeId,
        slab: &mut CandidateSlab,
        arena: &mut PredArena,
        scratch: &mut Scratch,
        stats: &mut SolveStats,
    ) {
        let lib = self.library;
        let constraint = self.tree.site_constraint(node);
        // Betas destined for each target list, one c-sorted group per
        // (source list, target list) combination.
        let mut groups: [[Vec<Candidate>; 2]; 2] = Default::default();

        for (si, source_positive) in [true, false].into_iter().enumerate() {
            let source = if source_positive {
                state.pos
            } else {
                state.neg
            };
            if !find_betas_slab(
                self.algorithm,
                slab,
                source,
                lib,
                constraint,
                node,
                self.tree.site_variation(node),
                0.0,
                arena,
                true,
                scratch,
                &SlewPolicy::unlimited(),
                stats,
            ) {
                continue;
            }
            for &id in lib.by_input_cap_asc() {
                if let Some(beta) = scratch.beta_slots[id.index()].take() {
                    // An inverter feeding a positive-requiring subtree needs
                    // a negative arriving signal, and vice versa.
                    let target_positive = source_positive ^ lib.get(id).is_inverting();
                    let out = &mut groups[si][if target_positive { 0 } else { 1 }];
                    push_pruned_c_order(out, beta);
                }
            }
        }
        let [[pos_a, neg_a], [pos_b, neg_b]] = groups;
        let to_pos = merge_sorted_betas(pos_a, pos_b);
        let to_neg = merge_sorted_betas(neg_a, neg_b);
        stats.betas_generated += (to_pos.len() + to_neg.len()) as u64;
        slab.merge_insert(state.pos, &to_pos);
        slab.merge_insert(state.neg, &to_neg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Solver;
    use fastbuf_buflib::units::{Farads, Microns, Ohms};
    use fastbuf_buflib::{BufferType, Driver, Technology};
    use fastbuf_rctree::{TreeBuilder, Wire};

    fn line(sites: usize, seg_um: f64) -> (RoutingTree, NodeId) {
        let tech = Technology::tsmc180_like();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(180.0)));
        let mut prev = src;
        for _ in 0..sites {
            let s = b.buffer_site();
            b.connect(prev, s, Wire::from_length(&tech, Microns::new(seg_um)))
                .unwrap();
            prev = s;
        }
        let snk = b.sink(Farads::from_femto(15.0), Seconds::from_pico(2000.0));
        b.connect(prev, snk, Wire::from_length(&tech, Microns::new(seg_um)))
            .unwrap();
        (b.build().unwrap(), snk)
    }

    #[test]
    fn without_inverters_matches_plain_solver() {
        let (tree, _) = line(8, 1200.0);
        let lib = BufferLibrary::paper_synthetic(8).unwrap();
        let plain = Solver::new(&tree, &lib).solve();
        let pol = PolaritySolver::new(&tree, &lib).solve().unwrap();
        assert!((plain.slack.picos() - pol.slack.picos()).abs() < 1e-9);
        assert_eq!(pol.inverter_count, 0);
        pol.verify(&tree, &lib).unwrap();
    }

    #[test]
    fn inverters_come_in_pairs_on_positive_sinks() {
        let (tree, _) = line(9, 1100.0);
        let lib = BufferLibrary::paper_synthetic_mixed(8).unwrap();
        let sol = PolaritySolver::new(&tree, &lib).solve().unwrap();
        assert_eq!(sol.inverter_count % 2, 0, "{:?}", sol.placements);
        sol.verify(&tree, &lib).unwrap();
    }

    #[test]
    fn negated_sink_forces_odd_inverter_count() {
        let (tree, sink) = line(9, 1100.0);
        let lib = BufferLibrary::paper_synthetic_mixed(8).unwrap();
        let mut solver = PolaritySolver::new(&tree, &lib);
        solver.require(sink, Polarity::Negative).unwrap();
        let sol = solver.solve().unwrap();
        assert_eq!(sol.inverter_count % 2, 1, "{:?}", sol.placements);
        sol.verify_with(&tree, &lib, &[sink]).unwrap();
    }

    #[test]
    fn negated_sink_without_inverters_is_infeasible() {
        let (tree, sink) = line(5, 1000.0);
        let lib = BufferLibrary::paper_synthetic(4).unwrap(); // no inverters
        let mut solver = PolaritySolver::new(&tree, &lib);
        solver.require(sink, Polarity::Negative).unwrap();
        assert_eq!(solver.solve().unwrap_err(), PolarityError::Infeasible);
    }

    #[test]
    fn non_elmore_model_is_rejected_typed() {
        use fastbuf_rctree::{DelayModel, ScaledElmoreModel};
        let (tree, _) = line(5, 1000.0);
        let lib = BufferLibrary::paper_synthetic_mixed(4).unwrap();
        let scaled: std::sync::Arc<dyn DelayModel> =
            std::sync::Arc::new(ScaledElmoreModel::new(1.1));
        let err = PolaritySolver::new(&tree, &lib)
            .delay_model(scaled)
            .solve()
            .unwrap_err();
        assert!(
            matches!(&err, PolarityError::Unsupported { what } if what.contains("scaled-elmore")),
            "{err:?}"
        );
        // Explicitly asking for Elmore is fine: identical to the default.
        let elmore: std::sync::Arc<dyn DelayModel> = std::sync::Arc::new(ElmoreModel);
        let base = PolaritySolver::new(&tree, &lib).solve().unwrap();
        let explicit = PolaritySolver::new(&tree, &lib)
            .delay_model(elmore)
            .solve()
            .unwrap();
        assert_eq!(
            base.slack.value().to_bits(),
            explicit.slack.value().to_bits()
        );
    }

    #[test]
    fn slew_limit_is_rejected_typed() {
        let (tree, _) = line(5, 1000.0);
        let lib = BufferLibrary::paper_synthetic_mixed(4).unwrap();
        let err = PolaritySolver::new(&tree, &lib)
            .slew_limit(Some(Seconds::from_pico(80.0)))
            .solve()
            .unwrap_err();
        assert!(
            matches!(&err, PolarityError::Unsupported { what } if what.contains("slew")),
            "{err:?}"
        );
        assert!(err.to_string().contains("does not support"));
        // `None` is the default: no refusal.
        PolaritySolver::new(&tree, &lib)
            .slew_limit(None)
            .solve()
            .unwrap();
    }

    #[test]
    fn require_rejects_non_sinks() {
        let (tree, _) = line(3, 800.0);
        let lib = BufferLibrary::paper_synthetic(2).unwrap();
        let mut solver = PolaritySolver::new(&tree, &lib);
        let err = solver.require(tree.root(), Polarity::Negative).unwrap_err();
        assert_eq!(err, PolarityError::NotASink(tree.root()));
        assert!(solver.negated_sinks().is_empty());
    }

    #[test]
    fn inverters_help_when_they_are_faster() {
        // Library where the inverter is strictly better than the buffer of
        // the same strength: the polarity solver should exploit pairs.
        let lib = BufferLibrary::new(vec![
            BufferType::new(
                "buf",
                Ohms::new(400.0),
                Farads::from_femto(8.0),
                Seconds::from_pico(40.0),
            ),
            BufferType::new(
                "inv",
                Ohms::new(400.0),
                Farads::from_femto(8.0),
                Seconds::from_pico(12.0),
            )
            .with_inverting(true),
        ])
        .unwrap();
        let (tree, _) = line(12, 1500.0);
        let plain_lib = lib.subset(&[fastbuf_buflib::BufferTypeId::new(0)]).unwrap();
        let buf_only = Solver::new(&tree, &plain_lib).solve();
        let with_inv = PolaritySolver::new(&tree, &lib).solve().unwrap();
        assert!(
            with_inv.slack.picos() > buf_only.slack.picos() + 1.0,
            "inverter pairs should win: {} vs {}",
            with_inv.slack,
            buf_only.slack
        );
        assert!(with_inv.inverter_count >= 2);
        with_inv.verify(&tree, &lib).unwrap();
    }

    #[test]
    fn lillis_and_lishi_agree_with_polarity() {
        let lib = BufferLibrary::paper_synthetic_mixed(12).unwrap();
        for sites in [4usize, 10, 20] {
            let (tree, sink) = line(sites, 900.0);
            for negate in [false, true] {
                let mut a = PolaritySolver::new(&tree, &lib).algorithm(Algorithm::Lillis);
                let mut b = PolaritySolver::new(&tree, &lib).algorithm(Algorithm::LiShi);
                if negate {
                    a.require(sink, Polarity::Negative).unwrap();
                    b.require(sink, Polarity::Negative).unwrap();
                }
                let sa = a.solve().unwrap();
                let sb = b.solve().unwrap();
                assert!(
                    (sa.slack.picos() - sb.slack.picos()).abs() < 1e-6,
                    "sites={sites} negate={negate}: {} vs {}",
                    sa.slack,
                    sb.slack
                );
            }
        }
    }

    #[test]
    fn multi_pin_mixed_polarity() {
        let tech = Technology::tsmc180_like();
        let lib = BufferLibrary::paper_synthetic_mixed(8).unwrap();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(250.0)));
        let s0 = b.buffer_site();
        let tee = b.internal();
        let s1 = b.buffer_site();
        let s2 = b.buffer_site();
        let k_pos = b.sink(Farads::from_femto(10.0), Seconds::from_pico(900.0));
        let k_neg = b.sink(Farads::from_femto(12.0), Seconds::from_pico(950.0));
        b.connect(src, s0, Wire::from_length(&tech, Microns::new(1500.0)))
            .unwrap();
        b.connect(s0, tee, Wire::from_length(&tech, Microns::new(600.0)))
            .unwrap();
        b.connect(tee, s1, Wire::from_length(&tech, Microns::new(1800.0)))
            .unwrap();
        b.connect(s1, k_pos, Wire::from_length(&tech, Microns::new(300.0)))
            .unwrap();
        b.connect(tee, s2, Wire::from_length(&tech, Microns::new(2200.0)))
            .unwrap();
        b.connect(s2, k_neg, Wire::from_length(&tech, Microns::new(300.0)))
            .unwrap();
        let tree = b.build().unwrap();

        let mut solver = PolaritySolver::new(&tree, &lib);
        solver.require(k_neg, Polarity::Negative).unwrap();
        let sol = solver.solve().unwrap();
        sol.verify_with(&tree, &lib, &[k_neg]).unwrap();
        assert!(sol.inverter_count >= 1);
    }

    #[test]
    fn polarity_flip_and_error_display() {
        assert_eq!(Polarity::Positive.flipped(), Polarity::Negative);
        assert_eq!(Polarity::Negative.flipped(), Polarity::Positive);
        assert_eq!(Polarity::default(), Polarity::Positive);
        assert!(PolarityError::Infeasible.to_string().contains("polarity"));
        assert!(PolarityError::WrongPolarity(NodeId::new(3))
            .to_string()
            .contains("n3"));
    }

    #[test]
    fn check_polarity_detects_violations() {
        let (tree, sink) = line(2, 500.0);
        let lib = BufferLibrary::paper_synthetic_mixed(4).unwrap();
        // One inverter alone violates a positive sink.
        let inv = lib
            .iter()
            .find(|(_, b)| b.is_inverting())
            .map(|(id, _)| id)
            .unwrap();
        let site = tree.buffer_sites().next().unwrap();
        assert_eq!(
            check_polarity(&tree, &lib, &[(site, inv)], &[]),
            Err(PolarityError::WrongPolarity(sink))
        );
        // ...but satisfies a negated sink.
        assert_eq!(check_polarity(&tree, &lib, &[(site, inv)], &[sink]), Ok(()));
    }
}
