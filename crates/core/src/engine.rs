//! The shared dynamic-programming engine.
//!
//! All algorithms perform the same bottom-up pass over the routing tree —
//! initialize a candidate at each sink, propagate lists through wires,
//! merge at branch points, and finish by charging the source driver — and
//! differ **only** in the `AddBuffer` operation at buffer positions (see
//! [`crate::buffering`]). This mirrors the paper's decomposition into
//! "three major operations" and guarantees that runtime differences between
//! [`Algorithm`]s measure exactly the operation the paper improves.

use std::sync::Arc;
use std::time::Instant;

use fastbuf_buflib::units::{Farads, Seconds};
use fastbuf_buflib::BufferLibrary;
use fastbuf_rctree::delay::{DelayModel, ElmoreModel};
use fastbuf_rctree::{NodeKind, RoutingTree};

use crate::arena::{PredArena, PredRef};
use crate::buffering::{add_buffers, Algorithm, Scratch};
use crate::cache::{clone_list_pooled, store_snapshot, CacheFingerprint, SubtreeCache};
use crate::candidate::{Candidate, CandidateList};
use crate::merge::merge_branches_pooled;
use crate::slew::SlewPolicy;
use crate::solution::Solution;
use crate::stats::SolveStats;

/// Reusable solver state: every allocation a solve needs, kept alive
/// between solves.
///
/// A single [`Solver::solve`] call allocates a predecessor arena, per-node
/// candidate-list slots, and O(n) short-lived candidate vectors. Solving
/// *many* nets — the batch workload of `fastbuf-batch` — would repeat those
/// allocations per net. A `SolveWorkspace` owns all of them and recycles
/// them: pass the same workspace to [`Solver::solve_with`] repeatedly (one
/// workspace per worker thread) and, once warm, each solve runs with no
/// steady-state heap traffic.
///
/// Results are bit-identical to [`Solver::solve`]: the workspace only
/// changes *where* vectors come from, never the arithmetic or its order.
///
/// # Example
///
/// ```
/// use fastbuf_buflib::units::Microns;
/// use fastbuf_buflib::BufferLibrary;
/// use fastbuf_core::{Solver, SolveWorkspace};
///
/// let lib = BufferLibrary::paper_synthetic(8)?;
/// let mut ws = SolveWorkspace::new();
/// for sites in [5usize, 9, 13] {
///     let tree = fastbuf_netgen::line_net(Microns::new(8000.0), sites);
///     let reused = Solver::new(&tree, &lib).solve_with(&mut ws);
///     let fresh = Solver::new(&tree, &lib).solve();
///     assert_eq!(reused.slack, fresh.slack);
///     assert_eq!(reused.placements, fresh.placements);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct SolveWorkspace {
    arena: PredArena,
    scratch: Scratch,
    lists: Vec<Option<CandidateList>>,
}

impl SolveWorkspace {
    /// Creates an empty workspace. Allocations grow on first use and are
    /// retained afterwards.
    pub fn new() -> Self {
        SolveWorkspace::default()
    }
}

/// Configuration of a [`Solver`].
///
/// `#[non_exhaustive]`: construct via [`SolverOptions::default`] and set
/// fields (or use the [`Solver`] builder methods) so new knobs can be
/// added without breaking downstream crates.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct SolverOptions {
    /// Which `AddBuffer` implementation to run. Default:
    /// [`Algorithm::LiShi`].
    pub algorithm: Algorithm,
    /// Record predecessor information so buffer placements can be
    /// reconstructed (default `true`). Disable for timing runs that only
    /// need the slack — the paper's experiments time the DP this way.
    pub track_predecessors: bool,
    /// The wire-delay/slew model (default [`ElmoreModel`], which is
    /// bit-identical to the historical hard-coded arithmetic). See
    /// `fastbuf_rctree::delay`.
    pub delay_model: Arc<dyn DelayModel>,
    /// Optional per-net maximum output slew at every buffer input and sink
    /// (default `None` = unconstrained). With a finite limit, candidates
    /// whose stage would violate it are pruned; whether the returned
    /// solution meets the limit is reported in
    /// [`Solution::slew_ok`](crate::Solution::slew_ok). A non-finite limit
    /// behaves exactly like `None`.
    pub slew_limit: Option<Seconds>,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            algorithm: Algorithm::default(),
            track_predecessors: true,
            delay_model: Arc::new(ElmoreModel),
            slew_limit: None,
        }
    }
}

/// Optimal buffer insertion on one routing tree.
///
/// # Example
///
/// ```
/// use fastbuf_buflib::{BufferLibrary, Driver, Technology};
/// use fastbuf_buflib::units::{Farads, Microns, Ohms, Seconds};
/// use fastbuf_rctree::{TreeBuilder, Wire};
/// use fastbuf_core::{Algorithm, Solver};
///
/// // 10 mm two-pin line with 9 buffer sites.
/// let tech = Technology::tsmc180_like();
/// let lib = BufferLibrary::paper_synthetic(8)?;
/// let mut b = TreeBuilder::new();
/// let src = b.source(Driver::new(Ohms::new(180.0)));
/// let mut prev = src;
/// for _ in 0..9 {
///     let site = b.buffer_site();
///     b.connect(prev, site, Wire::from_length(&tech, Microns::new(1000.0)))?;
///     prev = site;
/// }
/// let snk = b.sink(Farads::from_femto(20.0), Seconds::from_pico(2000.0));
/// b.connect(prev, snk, Wire::from_length(&tech, Microns::new(1000.0)))?;
/// let tree = b.build()?;
///
/// let solution = Solver::new(&tree, &lib).solve();
/// assert!(!solution.placements.is_empty(), "long line wants buffers");
/// // The slack the DP predicts is exactly what a forward Elmore
/// // evaluation of the placements measures:
/// solution.verify(&tree, &lib)?;
///
/// // The O(b^2 n^2) baseline finds the same optimum.
/// let baseline = Solver::new(&tree, &lib)
///     .algorithm(Algorithm::Lillis)
///     .solve();
/// assert!((baseline.slack.picos() - solution.slack.picos()).abs() < 1e-6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Solver<'a> {
    tree: &'a RoutingTree,
    library: &'a BufferLibrary,
    options: SolverOptions,
}

impl<'a> Solver<'a> {
    /// Creates a solver with default options ([`Algorithm::LiShi`],
    /// predecessor tracking on).
    pub fn new(tree: &'a RoutingTree, library: &'a BufferLibrary) -> Self {
        Solver {
            tree,
            library,
            options: SolverOptions::default(),
        }
    }

    /// Replaces all options.
    #[must_use]
    pub fn with_options(mut self, options: SolverOptions) -> Self {
        self.options = options;
        self
    }

    /// Selects the algorithm.
    #[must_use]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.options.algorithm = algorithm;
        self
    }

    /// Enables or disables predecessor tracking.
    #[must_use]
    pub fn track_predecessors(mut self, track: bool) -> Self {
        self.options.track_predecessors = track;
        self
    }

    /// Selects the wire-delay/slew model (default
    /// [`ElmoreModel`]).
    #[must_use]
    pub fn delay_model(mut self, model: Arc<dyn DelayModel>) -> Self {
        self.options.delay_model = model;
        self
    }

    /// Sets (or, with a non-finite value, clears) the per-net maximum
    /// output slew.
    #[must_use]
    pub fn slew_limit(mut self, limit: Seconds) -> Self {
        self.options.slew_limit = limit.is_finite().then_some(limit);
        self
    }

    /// Runs the dynamic program and returns the best solution found.
    ///
    /// For [`Algorithm::Lillis`] and [`Algorithm::LiShi`] the result is the
    /// provably optimal slack; for [`Algorithm::LiShiPermanent`] it may be
    /// slightly below optimal on multi-pin nets (see `DESIGN.md` §2.1 and
    /// `docs/ALGORITHM.md`).
    pub fn solve(&self) -> Solution {
        self.solve_with(&mut SolveWorkspace::new())
    }

    /// [`Solver::solve`] with caller-provided reusable state.
    ///
    /// Identical output to [`Solver::solve`]; the workspace only recycles
    /// allocations between calls. Use one [`SolveWorkspace`] per thread and
    /// pass it to every solve on that thread — this is how the batch
    /// subsystem (`fastbuf-batch`) eliminates per-net allocation churn.
    pub fn solve_with(&self, workspace: &mut SolveWorkspace) -> Solution {
        self.solve_impl(workspace, None)
    }

    /// [`Solver::solve_with`] through a persistent [`SubtreeCache`]: only
    /// nodes the cache marks dirty are recomputed; every clean node's
    /// candidate list is spliced into merges straight from the cache.
    ///
    /// The result is **bit-identical** to a from-scratch solve of the same
    /// tree under the same options — cached lists hold exactly the values a
    /// fresh bottom-up pass would recompute (`N(T_v)` depends only on the
    /// subtree below `v` and the solve configuration), so the arithmetic
    /// and its order never change; only redundant recomputation is skipped.
    /// The differential harness `tests/incremental_equivalence.rs` asserts
    /// this across random edit scripts, algorithms, and slew modes.
    ///
    /// On any configuration mismatch (algorithm, tracking, slew limit,
    /// delay-model identity, library content, node count) the cache flushes
    /// itself and the solve runs cold — a stale-config reuse is structurally
    /// impossible, not a caller obligation. Dirtiness for *tree edits* is
    /// the caller's obligation (see [`SubtreeCache::mark_path_dirty`]);
    /// `fastbuf-incremental`'s `IncrementalSolver` wraps tree, cache, and
    /// solver so the two can never drift apart.
    ///
    /// [`SolveStats::nodes_recomputed`] / [`SolveStats::nodes_reused`]
    /// report the split; `arena_entries` reports the cache arena's
    /// cumulative size (it is append-only across cached solves).
    pub fn solve_cached(
        &self,
        workspace: &mut SolveWorkspace,
        cache: &mut SubtreeCache,
    ) -> Solution {
        cache.prepare(CacheFingerprint::of(
            &self.options,
            self.library,
            self.tree.node_count(),
        ));
        self.solve_impl(workspace, Some(cache))
    }

    /// The shared DP loop. With `cache = None` this is the historical
    /// from-scratch pass (arena cleared per solve); with a cache, clean
    /// nodes are skipped, their lists cloned from the cache at the parent's
    /// merge, recomputed lists snapshotted back, and the *cache's* arena
    /// used append-only so cached `PredRef`s stay valid across solves.
    fn solve_impl(
        &self,
        workspace: &mut SolveWorkspace,
        cache: Option<&mut SubtreeCache>,
    ) -> Solution {
        let start = Instant::now();
        let tree = self.tree;
        let lib = self.library;
        let track = self.options.track_predecessors;
        let algo = self.options.algorithm;
        let model: &dyn DelayModel = &*self.options.delay_model;
        let limit = self.options.slew_limit.map_or(f64::INFINITY, |s| s.value());
        let slew = SlewPolicy::new(model, lib, limit);

        let mut stats = SolveStats::default();
        let SolveWorkspace {
            arena: ws_arena,
            scratch,
            lists,
        } = workspace;
        // Cached mode borrows the cache's lists/dirty bits and *its* arena
        // (append-only); scratch mode clears and reuses the workspace arena.
        let (mut cache_state, arena) = match cache {
            Some(c) => {
                let (cached_lists, dirty, cache_arena) = c.parts_mut();
                (Some((cached_lists, dirty)), cache_arena)
            }
            None => {
                ws_arena.clear();
                (None, &mut *ws_arena)
            }
        };
        lists.clear();
        lists.resize(tree.node_count(), None);
        let mut recomputed = 0u64;

        for &node in tree.postorder() {
            if let Some((_, dirty)) = &cache_state {
                if !dirty[node.index()] {
                    continue; // clean subtree: its cached list is reused
                }
            }
            let list = match tree.kind(node) {
                NodeKind::Sink {
                    capacitance,
                    required_arrival,
                } => {
                    let mut v = scratch.pool.take();
                    v.push(Candidate::new(
                        required_arrival.value(),
                        capacitance.value(),
                        PredRef::NONE,
                    ));
                    CandidateList::from_sorted(v)
                }
                NodeKind::Internal | NodeKind::Source { .. } => {
                    let mut acc: Option<CandidateList> = None;
                    for &child in tree.children(node) {
                        let mut cl = match lists[child.index()].take() {
                            Some(cl) => cl,
                            None => {
                                let (cached_lists, _) = cache_state
                                    .as_ref()
                                    .expect("only clean cached children are skipped");
                                clone_list_pooled(
                                    cached_lists[child.index()]
                                        .as_ref()
                                        .expect("clean children are always cached"),
                                    &mut scratch.pool,
                                )
                            }
                        };
                        let wire = tree
                            .wire_to_parent(child)
                            .expect("non-root child has a wire");
                        cl.add_wire_model(
                            model,
                            wire.resistance().value(),
                            wire.capacitance().value(),
                        );
                        if slew.active() {
                            stats.slew_pruned += cl.prune_slew(slew.cap) as u64;
                        }
                        stats.wire_ops += 1;
                        acc = Some(match acc {
                            None => cl,
                            Some(prev) => {
                                stats.merge_ops += 1;
                                merge_branches_pooled(
                                    prev,
                                    cl,
                                    arena,
                                    track,
                                    &mut scratch.pool,
                                    slew.cap,
                                )
                            }
                        });
                    }
                    let mut list = acc.expect("internal nodes have children");
                    if tree.is_buffer_site(node) {
                        add_buffers(
                            algo,
                            &mut list,
                            lib,
                            tree.site_constraint(node),
                            node,
                            tree.site_variation(node),
                            arena,
                            track,
                            scratch,
                            &slew,
                            &mut stats,
                        );
                    }
                    list
                }
            };
            stats.max_list_len = stats.max_list_len.max(list.len());
            if let Some((cached_lists, dirty)) = &mut cache_state {
                store_snapshot(&mut cached_lists[node.index()], &list);
                dirty[node.index()] = false;
                recomputed += 1;
            }
            lists[node.index()] = Some(list);
        }

        let root_list = match lists[tree.root().index()].take() {
            Some(list) => list,
            None => {
                // Every node was clean (a re-solve with no edits): the root
                // list comes straight from the cache.
                let (cached_lists, _) = cache_state
                    .as_ref()
                    .expect("the root is only skipped in cached mode");
                clone_list_pooled(
                    cached_lists[tree.root().index()]
                        .as_ref()
                        .expect("clean root is cached"),
                    &mut scratch.pool,
                )
            }
        };
        if cache_state.is_some() {
            stats.nodes_recomputed = recomputed;
            stats.nodes_reused = tree.node_count() as u64 - recomputed;
        }
        stats.root_list_len = root_list.len();
        let driver = tree.driver();
        let (dr, dk) = (
            driver.resistance().value(),
            driver.intrinsic_delay().value(),
        );
        // With an active slew limit the driver closes the final stage, so
        // only candidates it can drive legally are eligible; if none is
        // (the net is infeasible under the limit), fall back to the
        // least-bad candidate and report `slew_ok = false`.
        let feasible = |c: &Candidate| dr * c.c + c.s <= slew.cap;
        let (best, slew_ok) = if !slew.active() {
            (
                *root_list
                    .best_driven(dr, dk)
                    .expect("candidate lists are never empty"),
                true,
            )
        } else {
            let mut choice: Option<&Candidate> = None;
            for cand in root_list.iter().filter(|c| feasible(c)) {
                if choice.is_none_or(|b| cand.driven_q(dr, dk) > b.driven_q(dr, dk)) {
                    choice = Some(cand);
                }
            }
            match choice {
                Some(c) => (*c, true),
                None => (
                    *root_list
                        .iter()
                        .min_by(|a, b| (dr * a.c + a.s).total_cmp(&(dr * b.c + b.s)))
                        .expect("candidate lists are never empty"),
                    false,
                ),
            }
        };
        let root_slew = Seconds::new(model.slew(0.0, dr, best.c, best.s));
        scratch.pool.recycle(root_list);

        let placements = if track {
            arena
                .collect_placements(best.pred)
                .into_iter()
                .map(Into::into)
                .collect()
        } else {
            Vec::new()
        };
        stats.arena_entries = arena.len();
        stats.elapsed = start.elapsed();

        Solution {
            slack: Seconds::new(best.q - dk - dr * best.c),
            root_q: Seconds::new(best.q),
            root_load: Farads::new(best.c),
            placements,
            algorithm: algo,
            tracked: track,
            root_slew,
            slew_ok,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbuf_buflib::units::{Microns, Ohms};
    use fastbuf_buflib::{BufferType, Driver, Technology};
    use fastbuf_rctree::elmore;
    use fastbuf_rctree::{TreeBuilder, Wire};

    fn paper_lib(b: usize) -> BufferLibrary {
        BufferLibrary::paper_synthetic(b).unwrap()
    }

    fn two_pin_line(len_mm: f64, sites: usize, rat_ps: f64) -> fastbuf_rctree::RoutingTree {
        let tech = Technology::tsmc180_like();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(180.0)));
        let mut prev = src;
        let seg = Microns::new(len_mm * 1000.0 / (sites + 1) as f64);
        for _ in 0..sites {
            let s = b.buffer_site();
            b.connect(prev, s, Wire::from_length(&tech, seg)).unwrap();
            prev = s;
        }
        let snk = b.sink(Farads::from_femto(20.0), Seconds::from_pico(rat_ps));
        b.connect(prev, snk, Wire::from_length(&tech, seg)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn unbuffered_matches_elmore_evaluator() {
        let tree = two_pin_line(2.0, 0, 1000.0);
        let lib = BufferLibrary::empty();
        let sol = Solver::new(&tree, &lib).solve();
        let eval = elmore::evaluate(&tree, &lib, &[]).unwrap();
        assert!((sol.slack.picos() - eval.slack.picos()).abs() < 1e-9);
        assert!(sol.placements.is_empty());
    }

    #[test]
    fn buffering_beats_unbuffered_on_long_line() {
        let tree = two_pin_line(10.0, 9, 2000.0);
        let lib = paper_lib(8);
        let unbuffered = Solver::new(&tree, &BufferLibrary::empty()).solve();
        let buffered = Solver::new(&tree, &lib).solve();
        assert!(buffered.slack > unbuffered.slack + Seconds::from_pico(50.0));
        assert!(!buffered.placements.is_empty());
    }

    #[test]
    fn predicted_slack_matches_forward_evaluation() {
        let tree = two_pin_line(10.0, 9, 2000.0);
        let lib = paper_lib(8);
        for algo in Algorithm::ALL {
            let sol = Solver::new(&tree, &lib).algorithm(algo).solve();
            let placements: Vec<_> = sol.placements.iter().map(|p| (p.node, p.buffer)).collect();
            let eval = elmore::evaluate(&tree, &lib, &placements).unwrap();
            assert!(
                (sol.slack.picos() - eval.slack.picos()).abs() < 1e-6,
                "{algo}: predicted {} vs measured {}",
                sol.slack,
                eval.slack
            );
        }
    }

    #[test]
    fn all_algorithms_agree_on_two_pin_nets() {
        for sites in [1usize, 3, 10, 40] {
            let tree = two_pin_line(8.0, sites, 1500.0);
            let lib = paper_lib(16);
            let slacks: Vec<f64> = Algorithm::ALL
                .iter()
                .map(|&a| Solver::new(&tree, &lib).algorithm(a).solve().slack.picos())
                .collect();
            // Permanent pruning is exact on 2-pin nets.
            for s in &slacks {
                assert!((s - slacks[0]).abs() < 1e-6, "sites={sites}: {slacks:?}");
            }
        }
    }

    #[test]
    fn untracked_solve_matches_tracked_slack() {
        let tree = two_pin_line(6.0, 12, 1500.0);
        let lib = paper_lib(8);
        let tracked = Solver::new(&tree, &lib).solve();
        let untracked = Solver::new(&tree, &lib).track_predecessors(false).solve();
        assert_eq!(tracked.slack, untracked.slack);
        assert!(untracked.placements.is_empty());
        assert!(!untracked.tracked);
        assert_eq!(untracked.stats.arena_entries, 0);
        assert!(tracked.stats.arena_entries > 0);
    }

    #[test]
    fn multi_pin_tee_all_exact_algorithms_agree() {
        let tech = Technology::tsmc180_like();
        let lib = paper_lib(8);
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(300.0)));
        let s1 = b.buffer_site();
        let tee = b.internal();
        let s2 = b.buffer_site();
        let s3 = b.buffer_site();
        let k1 = b.sink(Farads::from_femto(12.0), Seconds::from_pico(600.0));
        let k2 = b.sink(Farads::from_femto(30.0), Seconds::from_pico(900.0));
        b.connect(src, s1, Wire::from_length(&tech, Microns::new(1200.0)))
            .unwrap();
        b.connect(s1, tee, Wire::from_length(&tech, Microns::new(800.0)))
            .unwrap();
        b.connect(tee, s2, Wire::from_length(&tech, Microns::new(1500.0)))
            .unwrap();
        b.connect(s2, k1, Wire::from_length(&tech, Microns::new(500.0)))
            .unwrap();
        b.connect(tee, s3, Wire::from_length(&tech, Microns::new(2500.0)))
            .unwrap();
        b.connect(s3, k2, Wire::from_length(&tech, Microns::new(700.0)))
            .unwrap();
        let tree = b.build().unwrap();

        let a = Solver::new(&tree, &lib)
            .algorithm(Algorithm::Lillis)
            .solve();
        let c = Solver::new(&tree, &lib).algorithm(Algorithm::LiShi).solve();
        assert!((a.slack.picos() - c.slack.picos()).abs() < 1e-6);
        // Verify both against the forward evaluator.
        a.verify(&tree, &lib).unwrap();
        c.verify(&tree, &lib).unwrap();
        // Permanent pruning may or may not match here; it must never win.
        let p = Solver::new(&tree, &lib)
            .algorithm(Algorithm::LiShiPermanent)
            .solve();
        assert!(p.slack.picos() <= a.slack.picos() + 1e-6);
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let lib = paper_lib(8);
        let mut ws = SolveWorkspace::new();
        // Mixed shapes and sizes through one workspace, interleaved with
        // fresh solves: every pair must agree exactly, including the
        // reconstruction (PredRefs are arena-relative and the arena is
        // cleared per solve).
        for (mm, sites, rat) in [(10.0, 9, 2000.0), (3.0, 2, 700.0), (6.0, 25, 1500.0)] {
            let tree = two_pin_line(mm, sites, rat);
            let reused = Solver::new(&tree, &lib).solve_with(&mut ws);
            let fresh = Solver::new(&tree, &lib).solve();
            assert_eq!(reused.slack, fresh.slack);
            assert_eq!(reused.placements, fresh.placements);
            assert_eq!(reused.stats.arena_entries, fresh.stats.arena_entries);
            reused.verify(&tree, &lib).unwrap();
        }
    }

    #[test]
    fn workspace_reuse_matches_on_branchy_nets() {
        let lib = paper_lib(16);
        let mut ws = SolveWorkspace::new();
        for seed in 1u64..5 {
            let tree = fastbuf_netgen::RandomNetSpec {
                sinks: 24,
                seed,
                ..fastbuf_netgen::RandomNetSpec::default()
            }
            .build();
            for algo in Algorithm::ALL {
                let reused = Solver::new(&tree, &lib).algorithm(algo).solve_with(&mut ws);
                let fresh = Solver::new(&tree, &lib).algorithm(algo).solve();
                assert_eq!(reused.slack, fresh.slack, "{algo} seed {seed}");
                assert_eq!(reused.placements, fresh.placements, "{algo} seed {seed}");
            }
        }
    }

    #[test]
    fn stats_are_populated() {
        let tree = two_pin_line(5.0, 20, 1000.0);
        let lib = paper_lib(8);
        let sol = Solver::new(&tree, &lib).solve();
        let s = &sol.stats;
        assert_eq!(s.wire_ops, 21); // 20 sites + sink wires
        assert_eq!(s.addbuffer_ops, 20);
        assert_eq!(s.merge_ops, 0);
        assert!(s.hull_builds == 20);
        assert!(s.max_list_len >= s.root_list_len);
        assert!(s.root_list_len > 0);
        assert!(s.betas_generated > 0);

        let lillis = Solver::new(&tree, &lib)
            .algorithm(Algorithm::Lillis)
            .solve();
        assert!(lillis.stats.scan_candidate_visits > 0);
        assert_eq!(lillis.stats.hull_builds, 0);
    }

    #[test]
    fn zero_resistance_driver_picks_max_q() {
        let tech = Technology::tsmc180_like();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::default()); // ideal driver
        let site = b.buffer_site();
        let snk = b.sink(Farads::from_femto(10.0), Seconds::from_pico(800.0));
        b.connect(src, site, Wire::from_length(&tech, Microns::new(2000.0)))
            .unwrap();
        b.connect(site, snk, Wire::from_length(&tech, Microns::new(2000.0)))
            .unwrap();
        let tree = b.build().unwrap();
        let lib = paper_lib(4);
        let sol = Solver::new(&tree, &lib).solve();
        assert_eq!(sol.slack, sol.root_q); // no driver penalty
    }

    /// Acceptance anchor: with `slew_limit = ∞` and the Elmore backend the
    /// solver output is bit-identical to pre-seam behavior — asserted
    /// against slack bit patterns recorded from the code before the
    /// `DelayModel` refactor, and against an explicitly-optioned solve.
    #[test]
    fn infinite_slew_limit_elmore_is_bit_identical_to_pre_seam_golden() {
        use std::sync::Arc;
        let lib = paper_lib(8);
        let tree = fastbuf_netgen::line_net(Microns::new(10_000.0), 9);
        let default = Solver::new(&tree, &lib).solve();
        assert_eq!(
            default.slack.value().to_bits(),
            0x3e1a5a255d0ebf4c,
            "slack drifted from pre-refactor golden: {}",
            default.slack
        );
        assert_eq!(default.placements.len(), 2);
        assert!(default.slew_ok);

        // Explicit options: Elmore model + infinite limit must take the
        // same path bit for bit (a non-finite limit means "no limit").
        let explicit = Solver::new(&tree, &lib)
            .delay_model(Arc::new(ElmoreModel))
            .slew_limit(Seconds::new(f64::INFINITY))
            .solve();
        assert_eq!(
            explicit.slack.value().to_bits(),
            default.slack.value().to_bits()
        );
        assert_eq!(explicit.placements, default.placements);

        let lib16 = fastbuf_buflib::BufferLibrary::paper_synthetic_jittered(16, 7).unwrap();
        let tree2 = fastbuf_netgen::RandomNetSpec {
            sinks: 24,
            seed: 3,
            ..fastbuf_netgen::RandomNetSpec::default()
        }
        .build();
        for algo in Algorithm::ALL {
            let s = Solver::new(&tree2, &lib16).algorithm(algo).solve();
            assert_eq!(
                s.slack.value().to_bits(),
                0x3e0969bfd7419c0c,
                "{algo} drifted from pre-refactor golden"
            );
            assert_eq!(s.placements.len(), 24, "{algo}");
        }
    }

    #[test]
    fn finite_slew_limit_yields_feasible_placements() {
        use fastbuf_rctree::elmore::evaluate_with;
        let lib = paper_lib(8);
        let tree = two_pin_line(10.0, 9, 2000.0);
        let unconstrained = Solver::new(&tree, &lib).solve();
        let unc_eval =
            fastbuf_rctree::elmore::evaluate(&tree, &lib, &unconstrained.placement_pairs())
                .unwrap();
        // Pick a limit tighter than the unconstrained solution's worst slew
        // but loose enough that buffering can meet it.
        let limit = unc_eval.max_slew * 0.8;
        let sol = Solver::new(&tree, &lib).slew_limit(limit).solve();
        assert!(sol.slew_ok, "line with 9 sites must be feasible");
        let eval = evaluate_with(&tree, &lib, &sol.placement_pairs(), &ElmoreModel).unwrap();
        assert!(
            eval.max_slew.value() <= limit.value() * (1.0 + 1e-9),
            "forward slew {} exceeds limit {}",
            eval.max_slew,
            limit
        );
        // Tightening a constraint can only cost slack.
        assert!(sol.slack.value() <= unconstrained.slack.value() + 1e-15);
        sol.verify(&tree, &lib).unwrap();
    }

    #[test]
    fn tighter_limits_need_at_least_as_many_buffers() {
        let lib = paper_lib(8);
        let tree = two_pin_line(12.0, 11, 3000.0);
        let loose = Solver::new(&tree, &lib)
            .slew_limit(Seconds::from_pico(400.0))
            .solve();
        let tight = Solver::new(&tree, &lib)
            .slew_limit(Seconds::from_pico(120.0))
            .solve();
        assert!(loose.slew_ok && tight.slew_ok);
        assert!(tight.placements.len() >= loose.placements.len());
        assert!(tight.slack.value() <= loose.slack.value() + 1e-15);
    }

    #[test]
    fn infeasible_slew_limit_is_flagged_not_panicked() {
        // No buffer sites on a long wire: nothing can fix the slew.
        let tree = two_pin_line(10.0, 0, 2000.0);
        let lib = paper_lib(4);
        let sol = Solver::new(&tree, &lib)
            .slew_limit(Seconds::from_pico(1.0))
            .solve();
        assert!(!sol.slew_ok);
        assert!(sol.root_slew > Seconds::from_pico(1.0));
        // Best-effort solution still verifies as a timing solution.
        sol.verify(&tree, &lib).unwrap();
    }

    #[test]
    fn scaled_elmore_backend_solves_and_verifies() {
        use fastbuf_rctree::ScaledElmoreModel;
        use std::sync::Arc;
        let lib = paper_lib(8);
        let tree = two_pin_line(10.0, 9, 2000.0);
        let model = Arc::new(ScaledElmoreModel::default());
        let sol = Solver::new(&tree, &lib).delay_model(model.clone()).solve();
        // Predicted slack must match a forward evaluation under the same
        // model (and differ from the Elmore prediction on this wire-heavy
        // net).
        sol.verify_with(&tree, &lib, &*model).unwrap();
        let elmore = Solver::new(&tree, &lib).solve();
        assert!(
            (sol.slack.value() - elmore.slack.value()).abs() > 1e-15,
            "scaled model should change the optimum on a wire-dominated net"
        );
        assert!(sol.slack > elmore.slack, "less wire delay -> more slack");
        // And the scaled backend honours slew limits too.
        let constrained = Solver::new(&tree, &lib)
            .delay_model(model.clone())
            .slew_limit(Seconds::from_pico(150.0))
            .solve();
        assert!(constrained.slew_ok);
        let eval = fastbuf_rctree::elmore::evaluate_with(
            &tree,
            &lib,
            &constrained.placement_pairs(),
            &*model,
        )
        .unwrap();
        assert!(eval.max_slew.picos() <= 150.0 * (1.0 + 1e-9));
    }

    #[test]
    fn workspace_reuse_is_bit_identical_in_slew_mode() {
        let lib = paper_lib(8);
        let mut ws = SolveWorkspace::new();
        for (mm, sites) in [(10.0, 9), (6.0, 25)] {
            let tree = two_pin_line(mm, sites, 2000.0);
            let mk = || Solver::new(&tree, &lib).slew_limit(Seconds::from_pico(200.0));
            let reused = mk().solve_with(&mut ws);
            let fresh = mk().solve();
            assert_eq!(reused.slack, fresh.slack);
            assert_eq!(reused.placements, fresh.placements);
            assert_eq!(reused.slew_ok, fresh.slew_ok);
        }
    }

    #[test]
    fn cached_solve_is_bit_identical_and_reuses_on_resolve() {
        use crate::cache::SubtreeCache;
        let lib = paper_lib(8);
        let mut tree = two_pin_line(10.0, 9, 2000.0);
        let mut ws = SolveWorkspace::new();
        let mut cache = SubtreeCache::new();

        // Cold cached solve == scratch solve, bit for bit.
        let cold = Solver::new(&tree, &lib).solve_cached(&mut ws, &mut cache);
        let scratch = Solver::new(&tree, &lib).solve();
        assert_eq!(
            cold.slack.value().to_bits(),
            scratch.slack.value().to_bits()
        );
        assert_eq!(cold.placements, scratch.placements);
        assert_eq!(cold.stats.nodes_recomputed, tree.node_count() as u64);
        assert_eq!(cold.stats.nodes_reused, 0);
        assert_eq!(cache.cached_nodes(), tree.node_count());

        // Re-solve with no edits: everything is reused, same answer.
        let warm = Solver::new(&tree, &lib).solve_cached(&mut ws, &mut cache);
        assert_eq!(
            warm.slack.value().to_bits(),
            scratch.slack.value().to_bits()
        );
        assert_eq!(warm.placements, scratch.placements);
        assert_eq!(warm.stats.nodes_recomputed, 0);
        assert_eq!(warm.stats.nodes_reused, tree.node_count() as u64);

        // On a line net the sink's root path *is* the whole tree; an edit
        // still goes through the cached path and stays bit-identical.
        let sink = tree.sinks().next().unwrap();
        tree.set_sink_rat(sink, Seconds::from_pico(1500.0)).unwrap();
        cache.mark_path_dirty(&tree, sink);
        let eco = Solver::new(&tree, &lib).solve_cached(&mut ws, &mut cache);
        let fresh = Solver::new(&tree, &lib).solve();
        assert_eq!(eco.slack.value().to_bits(), fresh.slack.value().to_bits());
        assert_eq!(eco.placements, fresh.placements);
        assert!(eco.stats.nodes_recomputed > 0);

        // On a branchy net a single-leaf edit recomputes only its root
        // path — strictly fewer nodes than the tree holds.
        let mut branchy = fastbuf_netgen::RandomNetSpec {
            sinks: 24,
            seed: 7,
            ..fastbuf_netgen::RandomNetSpec::default()
        }
        .build();
        let mut cache2 = SubtreeCache::new();
        let _ = Solver::new(&branchy, &lib).solve_cached(&mut ws, &mut cache2);
        let sink = branchy.sinks().last().unwrap();
        branchy
            .set_sink_rat(sink, Seconds::from_pico(900.0))
            .unwrap();
        cache2.mark_path_dirty(&branchy, sink);
        let eco = Solver::new(&branchy, &lib).solve_cached(&mut ws, &mut cache2);
        let fresh = Solver::new(&branchy, &lib).solve();
        assert_eq!(eco.slack.value().to_bits(), fresh.slack.value().to_bits());
        assert_eq!(eco.placements, fresh.placements);
        assert!(eco.stats.nodes_recomputed > 0);
        assert!(
            eco.stats.nodes_recomputed < branchy.node_count() as u64,
            "a single-leaf edit must not recompute the whole tree: {} of {}",
            eco.stats.nodes_recomputed,
            branchy.node_count()
        );
        assert_eq!(
            eco.stats.nodes_recomputed + eco.stats.nodes_reused,
            branchy.node_count() as u64
        );
    }

    #[test]
    fn cached_solve_flushes_on_config_change() {
        use crate::cache::SubtreeCache;
        let lib = paper_lib(8);
        let tree = two_pin_line(8.0, 7, 1800.0);
        let n = tree.node_count() as u64;
        let mut ws = SolveWorkspace::new();
        let mut cache = SubtreeCache::new();
        let _ = Solver::new(&tree, &lib).solve_cached(&mut ws, &mut cache);

        // Changing the slew limit must flush: reusing would be silently
        // wrong. The flushed solve still matches scratch bit for bit.
        let limited = Solver::new(&tree, &lib)
            .slew_limit(Seconds::from_pico(250.0))
            .solve_cached(&mut ws, &mut cache);
        assert_eq!(limited.stats.nodes_recomputed, n);
        let scratch = Solver::new(&tree, &lib)
            .slew_limit(Seconds::from_pico(250.0))
            .solve();
        assert_eq!(
            limited.slack.value().to_bits(),
            scratch.slack.value().to_bits()
        );
        assert_eq!(limited.placements, scratch.placements);
        assert_eq!(limited.slew_ok, scratch.slew_ok);

        // Interleaving two configs through one cache flushes every time —
        // correct (if slow), never stale.
        for _ in 0..2 {
            let a = Solver::new(&tree, &lib).solve_cached(&mut ws, &mut cache);
            assert_eq!(a.stats.nodes_recomputed, n);
            let b = Solver::new(&tree, &lib)
                .slew_limit(Seconds::from_pico(250.0))
                .solve_cached(&mut ws, &mut cache);
            assert_eq!(b.stats.nodes_recomputed, n);
            assert_eq!(b.slack.value().to_bits(), scratch.slack.value().to_bits());
        }

        // A different library (even same size) flushes too.
        let lib2 = fastbuf_buflib::BufferLibrary::paper_synthetic_jittered(8, 5).unwrap();
        let swapped = Solver::new(&tree, &lib2).solve_cached(&mut ws, &mut cache);
        assert_eq!(swapped.stats.nodes_recomputed, n);
        let swapped_scratch = Solver::new(&tree, &lib2).solve();
        assert_eq!(
            swapped.slack.value().to_bits(),
            swapped_scratch.slack.value().to_bits()
        );
    }

    #[test]
    fn cached_solve_handles_branchy_nets_and_all_algorithms() {
        use crate::cache::SubtreeCache;
        let lib = paper_lib(16);
        for algo in Algorithm::ALL {
            let mut tree = fastbuf_netgen::RandomNetSpec {
                sinks: 18,
                seed: 11,
                ..fastbuf_netgen::RandomNetSpec::default()
            }
            .build();
            let mut ws = SolveWorkspace::new();
            let mut cache = SubtreeCache::new();
            let _ = Solver::new(&tree, &lib)
                .algorithm(algo)
                .solve_cached(&mut ws, &mut cache);
            // Edit two different sinks and a wire, re-solving between edits.
            let sinks: Vec<_> = tree.sinks().collect();
            for (i, &s) in sinks.iter().take(3).enumerate() {
                tree.set_sink_cap(s, Farads::from_femto(5.0 + i as f64))
                    .unwrap();
                cache.mark_path_dirty(&tree, s);
                let eco = Solver::new(&tree, &lib)
                    .algorithm(algo)
                    .solve_cached(&mut ws, &mut cache);
                let fresh = Solver::new(&tree, &lib).algorithm(algo).solve();
                assert_eq!(
                    eco.slack.value().to_bits(),
                    fresh.slack.value().to_bits(),
                    "{algo} edit {i}"
                );
                assert_eq!(eco.placements, fresh.placements, "{algo} edit {i}");
            }
        }
    }

    #[test]
    fn single_buffer_type_reduces_to_van_ginneken() {
        // b = 1: Lillis degenerates to van Ginneken's original algorithm;
        // all strategies must agree exactly even on branchy nets.
        let tech = Technology::tsmc180_like();
        let lib = BufferLibrary::new(vec![BufferType::new(
            "only",
            Ohms::new(500.0),
            Farads::from_femto(8.0),
            Seconds::from_pico(25.0),
        )])
        .unwrap();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(250.0)));
        let a1 = b.buffer_site();
        let k1 = b.sink(Farads::from_femto(15.0), Seconds::from_pico(700.0));
        let k2 = b.sink(Farads::from_femto(9.0), Seconds::from_pico(650.0));
        b.connect(src, a1, Wire::from_length(&tech, Microns::new(3000.0)))
            .unwrap();
        b.connect(a1, k1, Wire::from_length(&tech, Microns::new(2000.0)))
            .unwrap();
        b.connect(a1, k2, Wire::from_length(&tech, Microns::new(1000.0)))
            .unwrap();
        let tree = b.build().unwrap();
        let slacks: Vec<f64> = Algorithm::ALL
            .iter()
            .map(|&a| Solver::new(&tree, &lib).algorithm(a).solve().slack.picos())
            .collect();
        assert!((slacks[0] - slacks[1]).abs() < 1e-9);
        // With one buffer type every candidate list is small and permanent
        // pruning keeps at least the extremes; still compare:
        assert!(slacks[2] <= slacks[0] + 1e-9);
    }
}
