//! The shared dynamic-programming engine.
//!
//! All algorithms perform the same bottom-up pass over the routing tree —
//! initialize a candidate at each sink, propagate lists through wires,
//! merge at branch points, and finish by charging the source driver — and
//! differ **only** in the `AddBuffer` operation at buffer positions (see
//! [`crate::buffering`]). This mirrors the paper's decomposition into
//! "three major operations" and guarantees that runtime differences between
//! [`Algorithm`]s measure exactly the operation the paper improves.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use fastbuf_buflib::units::{Farads, Seconds};
use fastbuf_buflib::BufferLibrary;
use fastbuf_rctree::delay::{DelayModel, ElmoreModel};
use fastbuf_rctree::{NodeId, NodeKind, RoutingTree};

use crate::arena::{PredArena, PredRef};
use crate::buffering::{add_buffers, add_buffers_slab, Algorithm, Scratch};
use crate::cache::{
    clone_list_pooled, store_snapshot, store_snapshot_view, CacheFingerprint, SubtreeCache,
};
use crate::candidate::{Candidate, CandidateList};
use crate::merge::merge_branches_pooled;
use crate::slab::{CandidateSlab, SlabList};
use crate::slew::SlewPolicy;
use crate::solution::Solution;
use crate::stats::SolveStats;

/// Which candidate-kernel implementation the DP engine runs.
///
/// Both kernels execute the identical algorithm — same operations, same
/// expressions, same evaluation order — and produce **bit-identical**
/// results (asserted by `tests/kernel_equivalence.rs` and the golden-bit
/// anchors). They differ only in data layout:
///
/// * [`Kernel::Slab`] (the default) stores candidates as
///   struct-of-arrays columns, turning dominance pruning, wire propagation,
///   and `AddBuffer` scans into linear column sweeps, and enables the
///   intra-net parallelism knob
///   ([`SolverOptions::intra_net_workers`]);
/// * [`Kernel::Reference`] is the historical `Vec<Candidate>`
///   (array-of-structs) path, kept as the differential baseline and for
///   apples-to-apples benchmarking (`BENCH_kernel.json` records both).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Array-of-structs `Vec<Candidate>` reference path.
    Reference,
    /// Struct-of-arrays column kernel (default).
    #[default]
    Slab,
}

impl Kernel {
    /// Both kernels, for parametrized tests and benches.
    pub const ALL: [Kernel; 2] = [Kernel::Reference, Kernel::Slab];

    /// Short stable name (used by benches and the CLI).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Reference => "reference",
            Kernel::Slab => "slab",
        }
    }
}

impl std::str::FromStr for Kernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reference" => Ok(Kernel::Reference),
            "slab" => Ok(Kernel::Slab),
            other => Err(format!(
                "unknown kernel `{other}` (expected reference or slab)"
            )),
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Reusable solver state: every allocation a solve needs, kept alive
/// between solves.
///
/// A single [`Solver::solve`] call allocates a predecessor arena, per-node
/// candidate-list slots, and O(n) short-lived candidate vectors. Solving
/// *many* nets — the batch workload of `fastbuf-batch` — would repeat those
/// allocations per net. A `SolveWorkspace` owns all of them and recycles
/// them: pass the same workspace to [`Solver::solve_with`] repeatedly (one
/// workspace per worker thread) and, once warm, each solve runs with no
/// steady-state heap traffic.
///
/// Results are bit-identical to [`Solver::solve`]: the workspace only
/// changes *where* vectors come from, never the arithmetic or its order.
///
/// # Example
///
/// ```
/// use fastbuf_buflib::units::Microns;
/// use fastbuf_buflib::BufferLibrary;
/// use fastbuf_core::{Solver, SolveWorkspace};
///
/// let lib = BufferLibrary::paper_synthetic(8)?;
/// let mut ws = SolveWorkspace::new();
/// for sites in [5usize, 9, 13] {
///     let tree = fastbuf_netgen::line_net(Microns::new(8000.0), sites);
///     let reused = Solver::new(&tree, &lib).solve_with(&mut ws);
///     let fresh = Solver::new(&tree, &lib).solve();
///     assert_eq!(reused.slack, fresh.slack);
///     assert_eq!(reused.placements, fresh.placements);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct SolveWorkspace {
    arena: PredArena,
    scratch: Scratch,
    lists: Vec<Option<CandidateList>>,
    slab: CandidateSlab,
    slab_lists: Vec<Option<SlabList>>,
}

impl SolveWorkspace {
    /// Creates an empty workspace. Allocations grow on first use and are
    /// retained afterwards.
    pub fn new() -> Self {
        SolveWorkspace::default()
    }
}

/// Configuration of a [`Solver`].
///
/// `#[non_exhaustive]`: construct via [`SolverOptions::default`] and set
/// fields (or use the [`Solver`] builder methods) so new knobs can be
/// added without breaking downstream crates.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct SolverOptions {
    /// Which `AddBuffer` implementation to run. Default:
    /// [`Algorithm::LiShi`].
    pub algorithm: Algorithm,
    /// Record predecessor information so buffer placements can be
    /// reconstructed (default `true`). Disable for timing runs that only
    /// need the slack — the paper's experiments time the DP this way.
    pub track_predecessors: bool,
    /// The wire-delay/slew model (default [`ElmoreModel`], which is
    /// bit-identical to the historical hard-coded arithmetic). See
    /// `fastbuf_rctree::delay`.
    pub delay_model: Arc<dyn DelayModel>,
    /// Optional per-net maximum output slew at every buffer input and sink
    /// (default `None` = unconstrained). With a finite limit, candidates
    /// whose stage would violate it are pruned; whether the returned
    /// solution meets the limit is reported in
    /// [`Solution::slew_ok`](crate::Solution::slew_ok). A non-finite limit
    /// behaves exactly like `None`.
    pub slew_limit: Option<Seconds>,
    /// Which candidate-kernel data layout the DP runs on (default
    /// [`Kernel::Slab`]). Both kernels are bit-identical; see [`Kernel`].
    /// Deliberately **not** part of the [`SubtreeCache`] fingerprint:
    /// snapshots written by one kernel are valid for the other.
    pub kernel: Kernel,
    /// Number of worker threads for *intra-net* sibling-subtree
    /// parallelism (default 1 = sequential). With `n > 1`, the slab kernel
    /// solves independent subtrees of a single net concurrently and joins
    /// them in an order fixed by the tree topology (never completion
    /// order), so results stay bit-identical at every worker count.
    /// Ignored by [`Kernel::Reference`] and by
    /// [`Solver::solve_cached`] (incremental solves recompute sparse root
    /// paths, which have no sibling-subtree work worth forking for), and a
    /// no-op on small nets. Also not part of the cache fingerprint.
    pub intra_net_workers: usize,
    /// Optional per-node buffer-usage prices in seconds, indexed by
    /// [`NodeId::index`] (default `None` = all zero). Inserting any buffer
    /// at node `v` charges `site_prices[v]` like extra intrinsic delay, so
    /// the DP solves the Lagrangian-priced subproblem *exactly* — a
    /// constant subtraction at one node changes neither the α argmax nor
    /// the hull-walk order (see `docs/ALGORITHM.md` §10). Nodes past the
    /// end of the slice (and a `None` slice) are unpriced; subtracting
    /// `0.0` is bit-exact, so unpriced solves are unchanged.
    ///
    /// Deliberately **not** part of the [`SubtreeCache`] fingerprint:
    /// re-pricing is a localized edit, and dirtying the affected root
    /// paths is the caller's obligation, exactly like tree edits
    /// (`fastbuf-incremental`'s `IncrementalSolver::set_site_price` wraps
    /// price update + path dirtying so they can never drift apart).
    pub site_prices: Option<Arc<[f64]>>,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            algorithm: Algorithm::default(),
            track_predecessors: true,
            delay_model: Arc::new(ElmoreModel),
            slew_limit: None,
            kernel: Kernel::default(),
            intra_net_workers: 1,
            site_prices: None,
        }
    }
}

/// Optimal buffer insertion on one routing tree.
///
/// # Example
///
/// ```
/// use fastbuf_buflib::{BufferLibrary, Driver, Technology};
/// use fastbuf_buflib::units::{Farads, Microns, Ohms, Seconds};
/// use fastbuf_rctree::{TreeBuilder, Wire};
/// use fastbuf_core::{Algorithm, Solver};
///
/// // 10 mm two-pin line with 9 buffer sites.
/// let tech = Technology::tsmc180_like();
/// let lib = BufferLibrary::paper_synthetic(8)?;
/// let mut b = TreeBuilder::new();
/// let src = b.source(Driver::new(Ohms::new(180.0)));
/// let mut prev = src;
/// for _ in 0..9 {
///     let site = b.buffer_site();
///     b.connect(prev, site, Wire::from_length(&tech, Microns::new(1000.0)))?;
///     prev = site;
/// }
/// let snk = b.sink(Farads::from_femto(20.0), Seconds::from_pico(2000.0));
/// b.connect(prev, snk, Wire::from_length(&tech, Microns::new(1000.0)))?;
/// let tree = b.build()?;
///
/// let solution = Solver::new(&tree, &lib).solve();
/// assert!(!solution.placements.is_empty(), "long line wants buffers");
/// // The slack the DP predicts is exactly what a forward Elmore
/// // evaluation of the placements measures:
/// solution.verify(&tree, &lib)?;
///
/// // The O(b^2 n^2) baseline finds the same optimum.
/// let baseline = Solver::new(&tree, &lib)
///     .algorithm(Algorithm::Lillis)
///     .solve();
/// assert!((baseline.slack.picos() - solution.slack.picos()).abs() < 1e-6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Solver<'a> {
    tree: &'a RoutingTree,
    library: &'a BufferLibrary,
    options: SolverOptions,
}

impl<'a> Solver<'a> {
    /// Creates a solver with default options ([`Algorithm::LiShi`],
    /// predecessor tracking on).
    pub fn new(tree: &'a RoutingTree, library: &'a BufferLibrary) -> Self {
        Solver {
            tree,
            library,
            options: SolverOptions::default(),
        }
    }

    /// Replaces all options.
    #[must_use]
    pub fn with_options(mut self, options: SolverOptions) -> Self {
        self.options = options;
        self
    }

    /// Selects the algorithm.
    #[must_use]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.options.algorithm = algorithm;
        self
    }

    /// Enables or disables predecessor tracking.
    #[must_use]
    pub fn track_predecessors(mut self, track: bool) -> Self {
        self.options.track_predecessors = track;
        self
    }

    /// Selects the wire-delay/slew model (default
    /// [`ElmoreModel`]).
    #[must_use]
    pub fn delay_model(mut self, model: Arc<dyn DelayModel>) -> Self {
        self.options.delay_model = model;
        self
    }

    /// Sets (or, with a non-finite value, clears) the per-net maximum
    /// output slew.
    #[must_use]
    pub fn slew_limit(mut self, limit: Seconds) -> Self {
        self.options.slew_limit = limit.is_finite().then_some(limit);
        self
    }

    /// Selects the candidate-kernel data layout (default
    /// [`Kernel::Slab`]; both are bit-identical).
    #[must_use]
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.options.kernel = kernel;
        self
    }

    /// Sets the intra-net worker count (see
    /// [`SolverOptions::intra_net_workers`]). Values `<= 1` mean
    /// sequential.
    #[must_use]
    pub fn intra_net_workers(mut self, workers: usize) -> Self {
        self.options.intra_net_workers = workers;
        self
    }

    /// Sets (or, with `None`, clears) the per-node buffer-usage prices
    /// (see [`SolverOptions::site_prices`]).
    #[must_use]
    pub fn site_prices(mut self, prices: Option<Arc<[f64]>>) -> Self {
        self.options.site_prices = prices;
        self
    }

    /// Runs the dynamic program and returns the best solution found.
    ///
    /// For [`Algorithm::Lillis`] and [`Algorithm::LiShi`] the result is the
    /// provably optimal slack; for [`Algorithm::LiShiPermanent`] it may be
    /// slightly below optimal on multi-pin nets (see `DESIGN.md` §2.1 and
    /// `docs/ALGORITHM.md`).
    pub fn solve(&self) -> Solution {
        self.solve_with(&mut SolveWorkspace::new())
    }

    /// [`Solver::solve`] with caller-provided reusable state.
    ///
    /// Identical output to [`Solver::solve`]; the workspace only recycles
    /// allocations between calls. Use one [`SolveWorkspace`] per thread and
    /// pass it to every solve on that thread — this is how the batch
    /// subsystem (`fastbuf-batch`) eliminates per-net allocation churn.
    pub fn solve_with(&self, workspace: &mut SolveWorkspace) -> Solution {
        self.solve_impl(workspace, None)
    }

    /// [`Solver::solve_with`] through a persistent [`SubtreeCache`]: only
    /// nodes the cache marks dirty are recomputed; every clean node's
    /// candidate list is spliced into merges straight from the cache.
    ///
    /// The result is **bit-identical** to a from-scratch solve of the same
    /// tree under the same options — cached lists hold exactly the values a
    /// fresh bottom-up pass would recompute (`N(T_v)` depends only on the
    /// subtree below `v` and the solve configuration), so the arithmetic
    /// and its order never change; only redundant recomputation is skipped.
    /// The differential harness `tests/incremental_equivalence.rs` asserts
    /// this across random edit scripts, algorithms, and slew modes.
    ///
    /// On any configuration mismatch (algorithm, tracking, slew limit,
    /// delay-model identity, library content, node count) the cache flushes
    /// itself and the solve runs cold — a stale-config reuse is structurally
    /// impossible, not a caller obligation. Dirtiness for *tree edits* is
    /// the caller's obligation (see [`SubtreeCache::mark_path_dirty`]);
    /// `fastbuf-incremental`'s `IncrementalSolver` wraps tree, cache, and
    /// solver so the two can never drift apart.
    ///
    /// [`SolveStats::nodes_recomputed`] / [`SolveStats::nodes_reused`]
    /// report the split; `arena_entries` reports the cache arena's
    /// cumulative size (it is append-only across cached solves).
    pub fn solve_cached(
        &self,
        workspace: &mut SolveWorkspace,
        cache: &mut SubtreeCache,
    ) -> Solution {
        cache.prepare(CacheFingerprint::of(
            &self.options,
            self.library,
            self.tree.node_count(),
        ));
        self.solve_impl(workspace, Some(cache))
    }

    /// Kernel dispatch: both paths execute the identical algorithm and
    /// return bit-identical solutions; they differ only in candidate data
    /// layout (and the slab path's optional intra-net parallelism).
    fn solve_impl(
        &self,
        workspace: &mut SolveWorkspace,
        cache: Option<&mut SubtreeCache>,
    ) -> Solution {
        match self.options.kernel {
            Kernel::Reference => self.solve_impl_reference(workspace, cache),
            Kernel::Slab => self.solve_impl_slab(workspace, cache),
        }
    }

    /// The reference DP loop on `Vec<Candidate>` lists. With `cache = None`
    /// this is the historical from-scratch pass (arena cleared per solve);
    /// with a cache, clean nodes are skipped, their lists cloned from the
    /// cache at the parent's merge, recomputed lists snapshotted back, and
    /// the *cache's* arena used append-only so cached `PredRef`s stay valid
    /// across solves.
    fn solve_impl_reference(
        &self,
        workspace: &mut SolveWorkspace,
        cache: Option<&mut SubtreeCache>,
    ) -> Solution {
        let start = Instant::now();
        let tree = self.tree;
        let lib = self.library;
        let track = self.options.track_predecessors;
        let algo = self.options.algorithm;
        let model: &dyn DelayModel = &*self.options.delay_model;
        let limit = self.options.slew_limit.map_or(f64::INFINITY, |s| s.value());
        let slew = SlewPolicy::new(model, lib, limit);
        let prices = self.options.site_prices.as_deref();

        let mut stats = SolveStats::default();
        let SolveWorkspace {
            arena: ws_arena,
            scratch,
            lists,
            ..
        } = workspace;
        // Cached mode borrows the cache's lists/dirty bits and *its* arena
        // (append-only); scratch mode clears and reuses the workspace arena.
        let (mut cache_state, arena) = match cache {
            Some(c) => {
                let (cached_lists, dirty, cache_arena) = c.parts_mut();
                (Some((cached_lists, dirty)), cache_arena)
            }
            None => {
                ws_arena.clear();
                (None, &mut *ws_arena)
            }
        };
        lists.clear();
        lists.resize(tree.node_count(), None);
        let mut recomputed = 0u64;

        for &node in tree.postorder() {
            if let Some((_, dirty)) = &cache_state {
                if !dirty[node.index()] {
                    continue; // clean subtree: its cached list is reused
                }
            }
            let list = match tree.kind(node) {
                NodeKind::Sink {
                    capacitance,
                    required_arrival,
                } => {
                    let mut v = scratch.pool.take();
                    v.push(Candidate::new(
                        required_arrival.value(),
                        capacitance.value(),
                        PredRef::NONE,
                    ));
                    CandidateList::from_sorted(v)
                }
                NodeKind::Internal | NodeKind::Source { .. } => {
                    let mut acc: Option<CandidateList> = None;
                    for &child in tree.children(node) {
                        let mut cl = match lists[child.index()].take() {
                            Some(cl) => cl,
                            None => {
                                let (cached_lists, _) = cache_state
                                    .as_ref()
                                    .expect("only clean cached children are skipped");
                                clone_list_pooled(
                                    cached_lists[child.index()]
                                        .as_ref()
                                        .expect("clean children are always cached"),
                                    &mut scratch.pool,
                                )
                            }
                        };
                        let wire = tree
                            .wire_to_parent(child)
                            .expect("non-root child has a wire");
                        cl.add_wire_model(
                            model,
                            wire.resistance().value(),
                            wire.capacitance().value(),
                        );
                        if slew.active() {
                            stats.slew_pruned += cl.prune_slew(slew.cap) as u64;
                        }
                        stats.wire_ops += 1;
                        acc = Some(match acc {
                            None => cl,
                            Some(prev) => {
                                stats.merge_ops += 1;
                                merge_branches_pooled(
                                    prev,
                                    cl,
                                    arena,
                                    track,
                                    &mut scratch.pool,
                                    slew.cap,
                                )
                            }
                        });
                    }
                    let mut list = acc.expect("internal nodes have children");
                    if tree.is_buffer_site(node) {
                        add_buffers(
                            algo,
                            &mut list,
                            lib,
                            tree.site_constraint(node),
                            node,
                            tree.site_variation(node),
                            node_price(prices, node),
                            arena,
                            track,
                            scratch,
                            &slew,
                            &mut stats,
                        );
                    }
                    list
                }
            };
            stats.max_list_len = stats.max_list_len.max(list.len());
            if let Some((cached_lists, dirty)) = &mut cache_state {
                store_snapshot(&mut cached_lists[node.index()], &list);
                dirty[node.index()] = false;
                recomputed += 1;
            }
            lists[node.index()] = Some(list);
        }

        let root_list = match lists[tree.root().index()].take() {
            Some(list) => list,
            None => {
                // Every node was clean (a re-solve with no edits): the root
                // list comes straight from the cache.
                let (cached_lists, _) = cache_state
                    .as_ref()
                    .expect("the root is only skipped in cached mode");
                clone_list_pooled(
                    cached_lists[tree.root().index()]
                        .as_ref()
                        .expect("clean root is cached"),
                    &mut scratch.pool,
                )
            }
        };
        if cache_state.is_some() {
            stats.nodes_recomputed = recomputed;
            stats.nodes_reused = tree.node_count() as u64 - recomputed;
        }
        stats.root_list_len = root_list.len();
        let driver = tree.driver();
        let (dr, dk) = (
            driver.resistance().value(),
            driver.intrinsic_delay().value(),
        );
        // With an active slew limit the driver closes the final stage, so
        // only candidates it can drive legally are eligible; if none is
        // (the net is infeasible under the limit), fall back to the
        // least-bad candidate and report `slew_ok = false`.
        let feasible = |c: &Candidate| dr * c.c + c.s <= slew.cap;
        let (best, slew_ok) = if !slew.active() {
            (
                *root_list
                    .best_driven(dr, dk)
                    .expect("candidate lists are never empty"),
                true,
            )
        } else {
            let mut choice: Option<&Candidate> = None;
            for cand in root_list.iter().filter(|c| feasible(c)) {
                if choice.is_none_or(|b| cand.driven_q(dr, dk) > b.driven_q(dr, dk)) {
                    choice = Some(cand);
                }
            }
            match choice {
                Some(c) => (*c, true),
                None => (
                    *root_list
                        .iter()
                        .min_by(|a, b| (dr * a.c + a.s).total_cmp(&(dr * b.c + b.s)))
                        .expect("candidate lists are never empty"),
                    false,
                ),
            }
        };
        let root_slew = Seconds::new(model.slew(0.0, dr, best.c, best.s));
        scratch.pool.recycle(root_list);

        let placements = if track {
            arena
                .collect_placements(best.pred)
                .into_iter()
                .map(Into::into)
                .collect()
        } else {
            Vec::new()
        };
        stats.arena_entries = arena.len();
        stats.elapsed = start.elapsed();

        Solution {
            slack: Seconds::new(best.q - dk - dr * best.c),
            root_q: Seconds::new(best.q),
            root_load: Farads::new(best.c),
            placements,
            algorithm: algo,
            tracked: track,
            root_slew,
            slew_ok,
            stats,
        }
    }

    /// The DP loop on the struct-of-arrays [`CandidateSlab`] kernel — the
    /// same algorithm as [`Solver::solve_impl_reference`] with candidates
    /// held as columns, plus the optional intra-net parallel phase.
    fn solve_impl_slab(
        &self,
        workspace: &mut SolveWorkspace,
        cache: Option<&mut SubtreeCache>,
    ) -> Solution {
        let start = Instant::now();
        let tree = self.tree;
        let lib = self.library;
        let track = self.options.track_predecessors;
        let algo = self.options.algorithm;
        let model: &dyn DelayModel = &*self.options.delay_model;
        let limit = self.options.slew_limit.map_or(f64::INFINITY, |s| s.value());
        let slew = SlewPolicy::new(model, lib, limit);

        let mut stats = SolveStats::default();
        let SolveWorkspace {
            arena: ws_arena,
            scratch,
            slab,
            slab_lists,
            ..
        } = workspace;
        let (mut cache_state, arena) = match cache {
            Some(c) => {
                let (cached_lists, dirty, cache_arena) = c.parts_mut();
                (Some((cached_lists, dirty)), cache_arena)
            }
            None => {
                ws_arena.clear();
                (None, &mut *ws_arena)
            }
        };
        slab.reset();
        slab_lists.clear();
        slab_lists.resize(tree.node_count(), None);
        let mut recomputed = 0u64;

        let ctx = SlabCtx {
            tree,
            lib,
            algo,
            track,
            model,
            slew: &slew,
            prices: self.options.site_prices.as_deref(),
        };

        // Intra-net parallel phase: fork bounded sibling subtrees to worker
        // threads, join in topology order. Scratch solves only — cached
        // solves recompute sparse root paths with no subtree fan-out worth
        // forking for.
        let workers = self.options.intra_net_workers;
        let covered: Option<Vec<bool>> = if workers > 1 && cache_state.is_none() {
            solve_subtrees_parallel(&ctx, workers, slab, slab_lists, arena, &mut stats)
        } else {
            None
        };

        slab_process_nodes(
            &ctx,
            tree.postorder(),
            covered.as_deref(),
            cache_state.as_mut().map(|(l, d)| (&mut **l, &mut **d)),
            &mut recomputed,
            slab,
            slab_lists,
            arena,
            scratch,
            &mut stats,
        );

        let root_handle = match slab_lists[tree.root().index()].take() {
            Some(handle) => handle,
            None => {
                // Every node was clean (a re-solve with no edits): the root
                // list comes straight from the cache.
                let (cached_lists, _) = cache_state
                    .as_ref()
                    .expect("the root is only skipped in cached mode");
                slab.load_list(
                    cached_lists[tree.root().index()]
                        .as_ref()
                        .expect("clean root is cached"),
                )
            }
        };
        if cache_state.is_some() {
            stats.nodes_recomputed = recomputed;
            stats.nodes_reused = tree.node_count() as u64 - recomputed;
        }
        stats.root_list_len = slab.len(root_handle);
        let driver = tree.driver();
        let (dr, dk) = (
            driver.resistance().value(),
            driver.intrinsic_delay().value(),
        );
        let view = slab.view(root_handle);
        // Root selection replicates the reference path: unconstrained
        // argmax, else feasible-filtered argmax with a least-bad fallback.
        let (best, slew_ok) = if !slew.active() {
            let i = slab
                .best_driven(root_handle, dr, dk)
                .expect("candidate lists are never empty");
            (view.get(i), true)
        } else {
            let mut choice: Option<usize> = None;
            for i in 0..view.len() {
                // `<=` then negate: a NaN stage is infeasible, same as the
                // reference's `feasible` closure.
                let feasible = dr * view.c[i] + view.s[i] <= slew.cap;
                if !feasible {
                    continue;
                }
                let better = match choice {
                    None => true,
                    Some(b) => view.get(i).driven_q(dr, dk) > view.get(b).driven_q(dr, dk),
                };
                if better {
                    choice = Some(i);
                }
            }
            match choice {
                Some(i) => (view.get(i), true),
                None => {
                    // First minimum by total order — the reference's
                    // `min_by(total_cmp)` keeps the earliest minimum.
                    let mut least = 0usize;
                    for i in 1..view.len() {
                        let vi = dr * view.c[i] + view.s[i];
                        let vl = dr * view.c[least] + view.s[least];
                        if vi.total_cmp(&vl) == std::cmp::Ordering::Less {
                            least = i;
                        }
                    }
                    (view.get(least), false)
                }
            }
        };
        let root_slew = Seconds::new(model.slew(0.0, dr, best.c, best.s));

        let placements = if track {
            arena
                .collect_placements(best.pred)
                .into_iter()
                .map(Into::into)
                .collect()
        } else {
            Vec::new()
        };
        stats.arena_entries = arena.len();
        stats.slab_bytes_peak = stats.slab_bytes_peak.max(slab.peak_bytes());
        stats.elapsed = start.elapsed();

        Solution {
            slack: Seconds::new(best.q - dk - dr * best.c),
            root_q: Seconds::new(best.q),
            root_load: Farads::new(best.c),
            placements,
            algorithm: algo,
            tracked: track,
            root_slew,
            slew_ok,
            stats,
        }
    }
}

/// Shared read-only context of one slab-kernel solve, threaded through the
/// node-processing loop and the parallel subtree tasks.
#[derive(Clone, Copy)]
struct SlabCtx<'a> {
    tree: &'a RoutingTree,
    lib: &'a BufferLibrary,
    algo: Algorithm,
    track: bool,
    model: &'a dyn DelayModel,
    slew: &'a SlewPolicy,
    /// Per-node usage prices ([`SolverOptions::site_prices`]); `Copy`
    /// through the ctx so parallel subtree tasks price identically.
    prices: Option<&'a [f64]>,
}

/// The usage price charged at `node`: entries past the end of the slice
/// (and a `None` slice) are unpriced.
#[inline]
fn node_price(prices: Option<&[f64]>, node: NodeId) -> f64 {
    prices.map_or(0.0, |p| p.get(node.index()).copied().unwrap_or(0.0))
}

/// Runs the bottom-up DP body over `nodes` (a postorder sequence) on the
/// slab kernel. `covered` nodes are skipped (they were solved by a parallel
/// task whose root list is already in `slab_lists`); in cached mode, clean
/// nodes are skipped and recomputed lists are snapshotted back.
///
/// This is the single implementation the sequential pass, the cached pass,
/// and every parallel subtree task execute — which is what makes the
/// parallel mode trivially bit-identical: the same code runs the same
/// per-node arithmetic regardless of which thread hosts it.
#[allow(clippy::too_many_arguments)]
fn slab_process_nodes(
    ctx: &SlabCtx<'_>,
    nodes: &[NodeId],
    covered: Option<&[bool]>,
    mut cache_state: Option<(&mut Vec<Option<CandidateList>>, &mut Vec<bool>)>,
    recomputed: &mut u64,
    slab: &mut CandidateSlab,
    slab_lists: &mut [Option<SlabList>],
    arena: &mut PredArena,
    scratch: &mut Scratch,
    stats: &mut SolveStats,
) {
    for &node in nodes {
        if covered.is_some_and(|cov| cov[node.index()]) {
            continue; // solved by a parallel subtree task
        }
        if let Some((_, dirty)) = cache_state.as_ref() {
            if !dirty[node.index()] {
                continue; // clean subtree: its cached list is reused
            }
        }
        let list = match ctx.tree.kind(node) {
            NodeKind::Sink {
                capacitance,
                required_arrival,
            } => slab.sink(required_arrival.value(), capacitance.value()),
            NodeKind::Internal | NodeKind::Source { .. } => {
                let mut acc: Option<SlabList> = None;
                for &child in ctx.tree.children(node) {
                    let cl = match slab_lists[child.index()].take() {
                        Some(cl) => cl,
                        None => {
                            let (cached_lists, _) = cache_state
                                .as_ref()
                                .expect("only clean cached children are skipped");
                            slab.load_list(
                                cached_lists[child.index()]
                                    .as_ref()
                                    .expect("clean children are always cached"),
                            )
                        }
                    };
                    let wire = ctx
                        .tree
                        .wire_to_parent(child)
                        .expect("non-root child has a wire");
                    slab.add_wire(
                        cl,
                        ctx.model,
                        wire.resistance().value(),
                        wire.capacitance().value(),
                        stats,
                    );
                    if ctx.slew.active() {
                        stats.slew_pruned += slab.prune_slew(cl, ctx.slew.cap) as u64;
                    }
                    stats.wire_ops += 1;
                    acc = Some(match acc {
                        None => cl,
                        Some(prev) => {
                            stats.merge_ops += 1;
                            slab.merge(prev, cl, arena, ctx.track, ctx.slew.cap, stats)
                        }
                    });
                }
                let list = acc.expect("internal nodes have children");
                if ctx.tree.is_buffer_site(node) {
                    add_buffers_slab(
                        ctx.algo,
                        slab,
                        list,
                        ctx.lib,
                        ctx.tree.site_constraint(node),
                        node,
                        ctx.tree.site_variation(node),
                        node_price(ctx.prices, node),
                        arena,
                        ctx.track,
                        scratch,
                        ctx.slew,
                        stats,
                    );
                }
                list
            }
        };
        stats.max_list_len = stats.max_list_len.max(slab.len(list));
        if let Some((cached_lists, dirty)) = cache_state.as_mut() {
            store_snapshot_view(&mut cached_lists[node.index()], slab.view(list));
            dirty[node.index()] = false;
            *recomputed += 1;
        }
        slab_lists[node.index()] = Some(list);
    }
}

/// Minimum subtree size worth forking to a worker thread.
const MIN_TASK_NODES: usize = 8;
/// Minimum net size for the intra-net parallel phase to engage at all.
const MIN_PARALLEL_NODES: usize = 64;

/// What one parallel subtree task hands back to the coordinator: its root
/// candidate list (at the AoS boundary), the private arena its `PredRef`s
/// index, and its operation counters.
struct TaskResult {
    list: CandidateList,
    arena: PredArena,
    stats: SolveStats,
}

/// Solves bounded sibling subtrees of the net on `workers` threads and
/// splices the results back in **topology order** (ascending postorder
/// position of the task roots — never completion order), so the main pass
/// observes exactly the lists and arena layout determinism requires.
///
/// Returns the cover mask (`true` = node handled by a task) for the main
/// pass to skip, or `None` when the net is too small to partition.
///
/// Partition: the iterative-DFS postorder makes every subtree a contiguous
/// range `post[pos(v)-size(v)+1 ..= pos(v)]`, so a task is just a slice of
/// the postorder. A top-down sweep (reverse postorder) marks the highest
/// subtrees whose size fits under the grain as task roots; everything
/// below them is covered. The tree root is never a task root, so the main
/// pass always has work left to join the pieces.
fn solve_subtrees_parallel(
    ctx: &SlabCtx<'_>,
    workers: usize,
    slab: &mut CandidateSlab,
    slab_lists: &mut [Option<SlabList>],
    arena: &mut PredArena,
    stats: &mut SolveStats,
) -> Option<Vec<bool>> {
    let tree = ctx.tree;
    let post = tree.postorder();
    let n = post.len();
    if n < MIN_PARALLEL_NODES {
        return None;
    }
    let mut pos = vec![0usize; tree.node_count()];
    let mut size = vec![1usize; tree.node_count()];
    for (i, &node) in post.iter().enumerate() {
        pos[node.index()] = i;
        // Children precede their parent in postorder: their sizes are final.
        for &child in tree.children(node) {
            size[node.index()] += size[child.index()];
        }
    }
    // Aim for ~4 tasks per worker, but keep the acceptance band
    // `[MIN_TASK_NODES, grain]` wide enough that bushy trees always shatter
    // into several tasks.
    let grain = (n / (workers * 4)).max(4 * MIN_TASK_NODES);
    let mut covered = vec![false; tree.node_count()];
    let mut task_roots: Vec<NodeId> = Vec::new();
    for &node in post.iter().rev() {
        if let Some(parent) = tree.parent(node) {
            if covered[parent.index()] {
                covered[node.index()] = true;
                continue;
            }
            let sz = size[node.index()];
            if sz >= MIN_TASK_NODES && sz <= grain {
                covered[node.index()] = true;
                task_roots.push(node);
            }
        }
    }
    if task_roots.len() < 2 {
        // Nothing to overlap: run fully sequential rather than paying the
        // fork/join overhead for one task.
        for &node in &task_roots {
            covered[node.index()] = false;
        }
        return None;
    }
    task_roots.sort_by_key(|t| pos[t.index()]);

    let results: Vec<Mutex<Option<TaskResult>>> =
        (0..task_roots.len()).map(|_| Mutex::new(None)).collect();
    let (tx, rx) = crossbeam::channel::unbounded::<usize>();
    for i in 0..task_roots.len() {
        tx.send(i).expect("receiver is alive");
    }
    drop(tx);
    let threads = workers.min(task_roots.len());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let rx = rx.clone();
            let results = &results;
            let task_roots = &task_roots;
            let pos = &pos;
            let size = &size;
            scope.spawn(move || {
                // Per-worker state, reused across this worker's tasks. The
                // lists vector returns to all-`None` after each task: every
                // interior list is consumed by its parent and the task
                // root's is taken below.
                let mut slab = CandidateSlab::default();
                let mut scratch = Scratch::default();
                let mut lists: Vec<Option<SlabList>> = vec![None; ctx.tree.node_count()];
                while let Ok(ti) = rx.recv() {
                    let troot = task_roots[ti];
                    let (p, sz) = (pos[troot.index()], size[troot.index()]);
                    let range = &post[p + 1 - sz..=p];
                    let mut task_arena = PredArena::new();
                    let mut task_stats = SolveStats::default();
                    slab.reset();
                    slab_process_nodes(
                        ctx,
                        range,
                        None,
                        None,
                        &mut 0,
                        &mut slab,
                        &mut lists,
                        &mut task_arena,
                        &mut scratch,
                        &mut task_stats,
                    );
                    let handle = lists[troot.index()].take().expect("task root was computed");
                    task_stats.slab_bytes_peak = slab.peak_bytes();
                    let list = slab.to_candidate_list(handle);
                    *results[ti].lock().expect("task slot lock") = Some(TaskResult {
                        list,
                        arena: task_arena,
                        stats: task_stats,
                    });
                }
            });
        }
    });

    // Join in task-root topology order: splice each private arena onto the
    // shared one (uniform backward-reference shift — see
    // `PredArena::append_remapped`), remap the boundary list's refs, and
    // load it into the slab for the main pass to consume.
    for (ti, &troot) in task_roots.iter().enumerate() {
        let result = results[ti]
            .lock()
            .expect("task slot lock")
            .take()
            .expect("every task completed");
        let offset = arena.append_remapped(&result.arena);
        let mut list = result.list;
        if ctx.track {
            for cand in list.as_mut_vec() {
                cand.pred = cand.pred.offset_by(offset);
            }
        }
        slab_lists[troot.index()] = Some(slab.load_list(&list));
        stats.merge_shard(&result.stats);
        stats.parallel_subtrees += 1;
    }
    Some(covered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbuf_buflib::units::{Microns, Ohms};
    use fastbuf_buflib::{BufferType, Driver, Technology};
    use fastbuf_rctree::elmore;
    use fastbuf_rctree::{TreeBuilder, Wire};

    fn paper_lib(b: usize) -> BufferLibrary {
        BufferLibrary::paper_synthetic(b).unwrap()
    }

    fn two_pin_line(len_mm: f64, sites: usize, rat_ps: f64) -> fastbuf_rctree::RoutingTree {
        let tech = Technology::tsmc180_like();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(180.0)));
        let mut prev = src;
        let seg = Microns::new(len_mm * 1000.0 / (sites + 1) as f64);
        for _ in 0..sites {
            let s = b.buffer_site();
            b.connect(prev, s, Wire::from_length(&tech, seg)).unwrap();
            prev = s;
        }
        let snk = b.sink(Farads::from_femto(20.0), Seconds::from_pico(rat_ps));
        b.connect(prev, snk, Wire::from_length(&tech, seg)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn unbuffered_matches_elmore_evaluator() {
        let tree = two_pin_line(2.0, 0, 1000.0);
        let lib = BufferLibrary::empty();
        let sol = Solver::new(&tree, &lib).solve();
        let eval = elmore::evaluate(&tree, &lib, &[]).unwrap();
        assert!((sol.slack.picos() - eval.slack.picos()).abs() < 1e-9);
        assert!(sol.placements.is_empty());
    }

    #[test]
    fn buffering_beats_unbuffered_on_long_line() {
        let tree = two_pin_line(10.0, 9, 2000.0);
        let lib = paper_lib(8);
        let unbuffered = Solver::new(&tree, &BufferLibrary::empty()).solve();
        let buffered = Solver::new(&tree, &lib).solve();
        assert!(buffered.slack > unbuffered.slack + Seconds::from_pico(50.0));
        assert!(!buffered.placements.is_empty());
    }

    #[test]
    fn predicted_slack_matches_forward_evaluation() {
        let tree = two_pin_line(10.0, 9, 2000.0);
        let lib = paper_lib(8);
        for algo in Algorithm::ALL {
            let sol = Solver::new(&tree, &lib).algorithm(algo).solve();
            let placements: Vec<_> = sol.placements.iter().map(|p| (p.node, p.buffer)).collect();
            let eval = elmore::evaluate(&tree, &lib, &placements).unwrap();
            assert!(
                (sol.slack.picos() - eval.slack.picos()).abs() < 1e-6,
                "{algo}: predicted {} vs measured {}",
                sol.slack,
                eval.slack
            );
        }
    }

    #[test]
    fn all_algorithms_agree_on_two_pin_nets() {
        for sites in [1usize, 3, 10, 40] {
            let tree = two_pin_line(8.0, sites, 1500.0);
            let lib = paper_lib(16);
            let slacks: Vec<f64> = Algorithm::ALL
                .iter()
                .map(|&a| Solver::new(&tree, &lib).algorithm(a).solve().slack.picos())
                .collect();
            // Permanent pruning is exact on 2-pin nets.
            for s in &slacks {
                assert!((s - slacks[0]).abs() < 1e-6, "sites={sites}: {slacks:?}");
            }
        }
    }

    #[test]
    fn untracked_solve_matches_tracked_slack() {
        let tree = two_pin_line(6.0, 12, 1500.0);
        let lib = paper_lib(8);
        let tracked = Solver::new(&tree, &lib).solve();
        let untracked = Solver::new(&tree, &lib).track_predecessors(false).solve();
        assert_eq!(tracked.slack, untracked.slack);
        assert!(untracked.placements.is_empty());
        assert!(!untracked.tracked);
        assert_eq!(untracked.stats.arena_entries, 0);
        assert!(tracked.stats.arena_entries > 0);
    }

    #[test]
    fn multi_pin_tee_all_exact_algorithms_agree() {
        let tech = Technology::tsmc180_like();
        let lib = paper_lib(8);
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(300.0)));
        let s1 = b.buffer_site();
        let tee = b.internal();
        let s2 = b.buffer_site();
        let s3 = b.buffer_site();
        let k1 = b.sink(Farads::from_femto(12.0), Seconds::from_pico(600.0));
        let k2 = b.sink(Farads::from_femto(30.0), Seconds::from_pico(900.0));
        b.connect(src, s1, Wire::from_length(&tech, Microns::new(1200.0)))
            .unwrap();
        b.connect(s1, tee, Wire::from_length(&tech, Microns::new(800.0)))
            .unwrap();
        b.connect(tee, s2, Wire::from_length(&tech, Microns::new(1500.0)))
            .unwrap();
        b.connect(s2, k1, Wire::from_length(&tech, Microns::new(500.0)))
            .unwrap();
        b.connect(tee, s3, Wire::from_length(&tech, Microns::new(2500.0)))
            .unwrap();
        b.connect(s3, k2, Wire::from_length(&tech, Microns::new(700.0)))
            .unwrap();
        let tree = b.build().unwrap();

        let a = Solver::new(&tree, &lib)
            .algorithm(Algorithm::Lillis)
            .solve();
        let c = Solver::new(&tree, &lib).algorithm(Algorithm::LiShi).solve();
        assert!((a.slack.picos() - c.slack.picos()).abs() < 1e-6);
        // Verify both against the forward evaluator.
        a.verify(&tree, &lib).unwrap();
        c.verify(&tree, &lib).unwrap();
        // Permanent pruning may or may not match here; it must never win.
        let p = Solver::new(&tree, &lib)
            .algorithm(Algorithm::LiShiPermanent)
            .solve();
        assert!(p.slack.picos() <= a.slack.picos() + 1e-6);
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let lib = paper_lib(8);
        let mut ws = SolveWorkspace::new();
        // Mixed shapes and sizes through one workspace, interleaved with
        // fresh solves: every pair must agree exactly, including the
        // reconstruction (PredRefs are arena-relative and the arena is
        // cleared per solve).
        for (mm, sites, rat) in [(10.0, 9, 2000.0), (3.0, 2, 700.0), (6.0, 25, 1500.0)] {
            let tree = two_pin_line(mm, sites, rat);
            let reused = Solver::new(&tree, &lib).solve_with(&mut ws);
            let fresh = Solver::new(&tree, &lib).solve();
            assert_eq!(reused.slack, fresh.slack);
            assert_eq!(reused.placements, fresh.placements);
            assert_eq!(reused.stats.arena_entries, fresh.stats.arena_entries);
            reused.verify(&tree, &lib).unwrap();
        }
    }

    #[test]
    fn workspace_reuse_matches_on_branchy_nets() {
        let lib = paper_lib(16);
        let mut ws = SolveWorkspace::new();
        for seed in 1u64..5 {
            let tree = fastbuf_netgen::RandomNetSpec {
                sinks: 24,
                seed,
                ..fastbuf_netgen::RandomNetSpec::default()
            }
            .build();
            for algo in Algorithm::ALL {
                let reused = Solver::new(&tree, &lib).algorithm(algo).solve_with(&mut ws);
                let fresh = Solver::new(&tree, &lib).algorithm(algo).solve();
                assert_eq!(reused.slack, fresh.slack, "{algo} seed {seed}");
                assert_eq!(reused.placements, fresh.placements, "{algo} seed {seed}");
            }
        }
    }

    #[test]
    fn stats_are_populated() {
        let tree = two_pin_line(5.0, 20, 1000.0);
        let lib = paper_lib(8);
        let sol = Solver::new(&tree, &lib).solve();
        let s = &sol.stats;
        assert_eq!(s.wire_ops, 21); // 20 sites + sink wires
        assert_eq!(s.addbuffer_ops, 20);
        assert_eq!(s.merge_ops, 0);
        assert!(s.hull_builds == 20);
        assert!(s.max_list_len >= s.root_list_len);
        assert!(s.root_list_len > 0);
        assert!(s.betas_generated > 0);

        let lillis = Solver::new(&tree, &lib)
            .algorithm(Algorithm::Lillis)
            .solve();
        assert!(lillis.stats.scan_candidate_visits > 0);
        assert_eq!(lillis.stats.hull_builds, 0);
    }

    #[test]
    fn zero_resistance_driver_picks_max_q() {
        let tech = Technology::tsmc180_like();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::default()); // ideal driver
        let site = b.buffer_site();
        let snk = b.sink(Farads::from_femto(10.0), Seconds::from_pico(800.0));
        b.connect(src, site, Wire::from_length(&tech, Microns::new(2000.0)))
            .unwrap();
        b.connect(site, snk, Wire::from_length(&tech, Microns::new(2000.0)))
            .unwrap();
        let tree = b.build().unwrap();
        let lib = paper_lib(4);
        let sol = Solver::new(&tree, &lib).solve();
        assert_eq!(sol.slack, sol.root_q); // no driver penalty
    }

    /// Acceptance anchor: with `slew_limit = ∞` and the Elmore backend the
    /// solver output is bit-identical to pre-seam behavior — asserted
    /// against slack bit patterns recorded from the code before the
    /// `DelayModel` refactor, and against an explicitly-optioned solve.
    #[test]
    fn infinite_slew_limit_elmore_is_bit_identical_to_pre_seam_golden() {
        use std::sync::Arc;
        let lib = paper_lib(8);
        let tree = fastbuf_netgen::line_net(Microns::new(10_000.0), 9);
        let default = Solver::new(&tree, &lib).solve();
        assert_eq!(
            default.slack.value().to_bits(),
            0x3e1a5a255d0ebf4c,
            "slack drifted from pre-refactor golden: {}",
            default.slack
        );
        assert_eq!(default.placements.len(), 2);
        assert!(default.slew_ok);

        // Explicit options: Elmore model + infinite limit must take the
        // same path bit for bit (a non-finite limit means "no limit").
        let explicit = Solver::new(&tree, &lib)
            .delay_model(Arc::new(ElmoreModel))
            .slew_limit(Seconds::new(f64::INFINITY))
            .solve();
        assert_eq!(
            explicit.slack.value().to_bits(),
            default.slack.value().to_bits()
        );
        assert_eq!(explicit.placements, default.placements);

        let lib16 = fastbuf_buflib::BufferLibrary::paper_synthetic_jittered(16, 7).unwrap();
        let tree2 = fastbuf_netgen::RandomNetSpec {
            sinks: 24,
            seed: 3,
            ..fastbuf_netgen::RandomNetSpec::default()
        }
        .build();
        for algo in Algorithm::ALL {
            let s = Solver::new(&tree2, &lib16).algorithm(algo).solve();
            assert_eq!(
                s.slack.value().to_bits(),
                0x3e0969bfd7419c0c,
                "{algo} drifted from pre-refactor golden"
            );
            assert_eq!(s.placements.len(), 24, "{algo}");
        }
    }

    #[test]
    fn finite_slew_limit_yields_feasible_placements() {
        use fastbuf_rctree::elmore::evaluate_with;
        let lib = paper_lib(8);
        let tree = two_pin_line(10.0, 9, 2000.0);
        let unconstrained = Solver::new(&tree, &lib).solve();
        let unc_eval =
            fastbuf_rctree::elmore::evaluate(&tree, &lib, &unconstrained.placement_pairs())
                .unwrap();
        // Pick a limit tighter than the unconstrained solution's worst slew
        // but loose enough that buffering can meet it.
        let limit = unc_eval.max_slew * 0.8;
        let sol = Solver::new(&tree, &lib).slew_limit(limit).solve();
        assert!(sol.slew_ok, "line with 9 sites must be feasible");
        let eval = evaluate_with(&tree, &lib, &sol.placement_pairs(), &ElmoreModel).unwrap();
        assert!(
            eval.max_slew.value() <= limit.value() * (1.0 + 1e-9),
            "forward slew {} exceeds limit {}",
            eval.max_slew,
            limit
        );
        // Tightening a constraint can only cost slack.
        assert!(sol.slack.value() <= unconstrained.slack.value() + 1e-15);
        sol.verify(&tree, &lib).unwrap();
    }

    #[test]
    fn tighter_limits_need_at_least_as_many_buffers() {
        let lib = paper_lib(8);
        let tree = two_pin_line(12.0, 11, 3000.0);
        let loose = Solver::new(&tree, &lib)
            .slew_limit(Seconds::from_pico(400.0))
            .solve();
        let tight = Solver::new(&tree, &lib)
            .slew_limit(Seconds::from_pico(120.0))
            .solve();
        assert!(loose.slew_ok && tight.slew_ok);
        assert!(tight.placements.len() >= loose.placements.len());
        assert!(tight.slack.value() <= loose.slack.value() + 1e-15);
    }

    #[test]
    fn infeasible_slew_limit_is_flagged_not_panicked() {
        // No buffer sites on a long wire: nothing can fix the slew.
        let tree = two_pin_line(10.0, 0, 2000.0);
        let lib = paper_lib(4);
        let sol = Solver::new(&tree, &lib)
            .slew_limit(Seconds::from_pico(1.0))
            .solve();
        assert!(!sol.slew_ok);
        assert!(sol.root_slew > Seconds::from_pico(1.0));
        // Best-effort solution still verifies as a timing solution.
        sol.verify(&tree, &lib).unwrap();
    }

    #[test]
    fn scaled_elmore_backend_solves_and_verifies() {
        use fastbuf_rctree::ScaledElmoreModel;
        use std::sync::Arc;
        let lib = paper_lib(8);
        let tree = two_pin_line(10.0, 9, 2000.0);
        let model = Arc::new(ScaledElmoreModel::default());
        let sol = Solver::new(&tree, &lib).delay_model(model.clone()).solve();
        // Predicted slack must match a forward evaluation under the same
        // model (and differ from the Elmore prediction on this wire-heavy
        // net).
        sol.verify_with(&tree, &lib, &*model).unwrap();
        let elmore = Solver::new(&tree, &lib).solve();
        assert!(
            (sol.slack.value() - elmore.slack.value()).abs() > 1e-15,
            "scaled model should change the optimum on a wire-dominated net"
        );
        assert!(sol.slack > elmore.slack, "less wire delay -> more slack");
        // And the scaled backend honours slew limits too.
        let constrained = Solver::new(&tree, &lib)
            .delay_model(model.clone())
            .slew_limit(Seconds::from_pico(150.0))
            .solve();
        assert!(constrained.slew_ok);
        let eval = fastbuf_rctree::elmore::evaluate_with(
            &tree,
            &lib,
            &constrained.placement_pairs(),
            &*model,
        )
        .unwrap();
        assert!(eval.max_slew.picos() <= 150.0 * (1.0 + 1e-9));
    }

    #[test]
    fn workspace_reuse_is_bit_identical_in_slew_mode() {
        let lib = paper_lib(8);
        let mut ws = SolveWorkspace::new();
        for (mm, sites) in [(10.0, 9), (6.0, 25)] {
            let tree = two_pin_line(mm, sites, 2000.0);
            let mk = || Solver::new(&tree, &lib).slew_limit(Seconds::from_pico(200.0));
            let reused = mk().solve_with(&mut ws);
            let fresh = mk().solve();
            assert_eq!(reused.slack, fresh.slack);
            assert_eq!(reused.placements, fresh.placements);
            assert_eq!(reused.slew_ok, fresh.slew_ok);
        }
    }

    #[test]
    fn cached_solve_is_bit_identical_and_reuses_on_resolve() {
        use crate::cache::SubtreeCache;
        let lib = paper_lib(8);
        let mut tree = two_pin_line(10.0, 9, 2000.0);
        let mut ws = SolveWorkspace::new();
        let mut cache = SubtreeCache::new();

        // Cold cached solve == scratch solve, bit for bit.
        let cold = Solver::new(&tree, &lib).solve_cached(&mut ws, &mut cache);
        let scratch = Solver::new(&tree, &lib).solve();
        assert_eq!(
            cold.slack.value().to_bits(),
            scratch.slack.value().to_bits()
        );
        assert_eq!(cold.placements, scratch.placements);
        assert_eq!(cold.stats.nodes_recomputed, tree.node_count() as u64);
        assert_eq!(cold.stats.nodes_reused, 0);
        assert_eq!(cache.cached_nodes(), tree.node_count());

        // Re-solve with no edits: everything is reused, same answer.
        let warm = Solver::new(&tree, &lib).solve_cached(&mut ws, &mut cache);
        assert_eq!(
            warm.slack.value().to_bits(),
            scratch.slack.value().to_bits()
        );
        assert_eq!(warm.placements, scratch.placements);
        assert_eq!(warm.stats.nodes_recomputed, 0);
        assert_eq!(warm.stats.nodes_reused, tree.node_count() as u64);

        // On a line net the sink's root path *is* the whole tree; an edit
        // still goes through the cached path and stays bit-identical.
        let sink = tree.sinks().next().unwrap();
        tree.set_sink_rat(sink, Seconds::from_pico(1500.0)).unwrap();
        cache.mark_path_dirty(&tree, sink);
        let eco = Solver::new(&tree, &lib).solve_cached(&mut ws, &mut cache);
        let fresh = Solver::new(&tree, &lib).solve();
        assert_eq!(eco.slack.value().to_bits(), fresh.slack.value().to_bits());
        assert_eq!(eco.placements, fresh.placements);
        assert!(eco.stats.nodes_recomputed > 0);

        // On a branchy net a single-leaf edit recomputes only its root
        // path — strictly fewer nodes than the tree holds.
        let mut branchy = fastbuf_netgen::RandomNetSpec {
            sinks: 24,
            seed: 7,
            ..fastbuf_netgen::RandomNetSpec::default()
        }
        .build();
        let mut cache2 = SubtreeCache::new();
        let _ = Solver::new(&branchy, &lib).solve_cached(&mut ws, &mut cache2);
        let sink = branchy.sinks().last().unwrap();
        branchy
            .set_sink_rat(sink, Seconds::from_pico(900.0))
            .unwrap();
        cache2.mark_path_dirty(&branchy, sink);
        let eco = Solver::new(&branchy, &lib).solve_cached(&mut ws, &mut cache2);
        let fresh = Solver::new(&branchy, &lib).solve();
        assert_eq!(eco.slack.value().to_bits(), fresh.slack.value().to_bits());
        assert_eq!(eco.placements, fresh.placements);
        assert!(eco.stats.nodes_recomputed > 0);
        assert!(
            eco.stats.nodes_recomputed < branchy.node_count() as u64,
            "a single-leaf edit must not recompute the whole tree: {} of {}",
            eco.stats.nodes_recomputed,
            branchy.node_count()
        );
        assert_eq!(
            eco.stats.nodes_recomputed + eco.stats.nodes_reused,
            branchy.node_count() as u64
        );
    }

    #[test]
    fn cached_solve_flushes_on_config_change() {
        use crate::cache::SubtreeCache;
        let lib = paper_lib(8);
        let tree = two_pin_line(8.0, 7, 1800.0);
        let n = tree.node_count() as u64;
        let mut ws = SolveWorkspace::new();
        let mut cache = SubtreeCache::new();
        let _ = Solver::new(&tree, &lib).solve_cached(&mut ws, &mut cache);

        // Changing the slew limit must flush: reusing would be silently
        // wrong. The flushed solve still matches scratch bit for bit.
        let limited = Solver::new(&tree, &lib)
            .slew_limit(Seconds::from_pico(250.0))
            .solve_cached(&mut ws, &mut cache);
        assert_eq!(limited.stats.nodes_recomputed, n);
        let scratch = Solver::new(&tree, &lib)
            .slew_limit(Seconds::from_pico(250.0))
            .solve();
        assert_eq!(
            limited.slack.value().to_bits(),
            scratch.slack.value().to_bits()
        );
        assert_eq!(limited.placements, scratch.placements);
        assert_eq!(limited.slew_ok, scratch.slew_ok);

        // Interleaving two configs through one cache flushes every time —
        // correct (if slow), never stale.
        for _ in 0..2 {
            let a = Solver::new(&tree, &lib).solve_cached(&mut ws, &mut cache);
            assert_eq!(a.stats.nodes_recomputed, n);
            let b = Solver::new(&tree, &lib)
                .slew_limit(Seconds::from_pico(250.0))
                .solve_cached(&mut ws, &mut cache);
            assert_eq!(b.stats.nodes_recomputed, n);
            assert_eq!(b.slack.value().to_bits(), scratch.slack.value().to_bits());
        }

        // A different library (even same size) flushes too.
        let lib2 = fastbuf_buflib::BufferLibrary::paper_synthetic_jittered(8, 5).unwrap();
        let swapped = Solver::new(&tree, &lib2).solve_cached(&mut ws, &mut cache);
        assert_eq!(swapped.stats.nodes_recomputed, n);
        let swapped_scratch = Solver::new(&tree, &lib2).solve();
        assert_eq!(
            swapped.slack.value().to_bits(),
            swapped_scratch.slack.value().to_bits()
        );
    }

    #[test]
    fn cached_solve_handles_branchy_nets_and_all_algorithms() {
        use crate::cache::SubtreeCache;
        let lib = paper_lib(16);
        for algo in Algorithm::ALL {
            let mut tree = fastbuf_netgen::RandomNetSpec {
                sinks: 18,
                seed: 11,
                ..fastbuf_netgen::RandomNetSpec::default()
            }
            .build();
            let mut ws = SolveWorkspace::new();
            let mut cache = SubtreeCache::new();
            let _ = Solver::new(&tree, &lib)
                .algorithm(algo)
                .solve_cached(&mut ws, &mut cache);
            // Edit two different sinks and a wire, re-solving between edits.
            let sinks: Vec<_> = tree.sinks().collect();
            for (i, &s) in sinks.iter().take(3).enumerate() {
                tree.set_sink_cap(s, Farads::from_femto(5.0 + i as f64))
                    .unwrap();
                cache.mark_path_dirty(&tree, s);
                let eco = Solver::new(&tree, &lib)
                    .algorithm(algo)
                    .solve_cached(&mut ws, &mut cache);
                let fresh = Solver::new(&tree, &lib).algorithm(algo).solve();
                assert_eq!(
                    eco.slack.value().to_bits(),
                    fresh.slack.value().to_bits(),
                    "{algo} edit {i}"
                );
                assert_eq!(eco.placements, fresh.placements, "{algo} edit {i}");
            }
        }
    }

    #[test]
    fn slab_kernel_is_bit_identical_to_reference_kernel() {
        let lib = paper_lib(16);
        for seed in 1u64..6 {
            let tree = fastbuf_netgen::RandomNetSpec {
                sinks: 20,
                seed,
                ..fastbuf_netgen::RandomNetSpec::default()
            }
            .build();
            for algo in Algorithm::ALL {
                for slew in [None, Some(Seconds::from_pico(200.0))] {
                    let mk = |kernel: Kernel| {
                        let mut s = Solver::new(&tree, &lib).algorithm(algo).kernel(kernel);
                        if let Some(limit) = slew {
                            s = s.slew_limit(limit);
                        }
                        s.solve()
                    };
                    let reference = mk(Kernel::Reference);
                    let slab = mk(Kernel::Slab);
                    assert_eq!(
                        reference.slack.value().to_bits(),
                        slab.slack.value().to_bits(),
                        "{algo} seed {seed} slew {slew:?}"
                    );
                    assert_eq!(reference.placements, slab.placements);
                    assert_eq!(reference.root_q, slab.root_q);
                    assert_eq!(reference.root_load, slab.root_load);
                    assert_eq!(reference.slew_ok, slab.slew_ok);
                    assert_eq!(reference.root_slew, slab.root_slew);
                    // Shared DP counters agree exactly; only the slab-only
                    // counters may differ (zero on the reference path).
                    assert_eq!(reference.stats.wire_ops, slab.stats.wire_ops);
                    assert_eq!(reference.stats.merge_ops, slab.stats.merge_ops);
                    assert_eq!(reference.stats.addbuffer_ops, slab.stats.addbuffer_ops);
                    assert_eq!(reference.stats.betas_generated, slab.stats.betas_generated);
                    assert_eq!(reference.stats.hull_builds, slab.stats.hull_builds);
                    assert_eq!(reference.stats.hull_walk_steps, slab.stats.hull_walk_steps);
                    assert_eq!(
                        reference.stats.scan_candidate_visits,
                        slab.stats.scan_candidate_visits
                    );
                    assert_eq!(reference.stats.max_list_len, slab.stats.max_list_len);
                    assert_eq!(reference.stats.arena_entries, slab.stats.arena_entries);
                    assert_eq!(reference.stats.slab_candidates_scanned, 0);
                    assert!(slab.stats.slab_bytes_peak > 0);
                }
            }
        }
    }

    #[test]
    fn intra_net_parallel_is_bit_identical_at_every_worker_count() {
        let lib = paper_lib(16);
        for sinks in [24usize, 48] {
            let tree = fastbuf_netgen::RandomNetSpec {
                sinks,
                seed: 5,
                ..fastbuf_netgen::RandomNetSpec::default()
            }
            .build();
            let sequential = Solver::new(&tree, &lib).solve();
            for workers in [2usize, 4, 8] {
                let parallel = Solver::new(&tree, &lib).intra_net_workers(workers).solve();
                assert_eq!(
                    sequential.slack.value().to_bits(),
                    parallel.slack.value().to_bits(),
                    "sinks {sinks} workers {workers}"
                );
                assert_eq!(sequential.placements, parallel.placements);
                assert_eq!(sequential.stats.arena_entries, parallel.stats.arena_entries);
                assert_eq!(sequential.stats.wire_ops, parallel.stats.wire_ops);
                assert_eq!(sequential.stats.merge_ops, parallel.stats.merge_ops);
                assert_eq!(sequential.stats.addbuffer_ops, parallel.stats.addbuffer_ops);
                assert_eq!(sequential.stats.max_list_len, parallel.stats.max_list_len);
                if tree.node_count() >= 64 {
                    assert!(
                        parallel.stats.parallel_subtrees > 0,
                        "sinks {sinks} workers {workers}: expected forked subtrees"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_parsing_and_display() {
        assert_eq!("slab".parse::<Kernel>().unwrap(), Kernel::Slab);
        assert_eq!("reference".parse::<Kernel>().unwrap(), Kernel::Reference);
        assert!("nope".parse::<Kernel>().is_err());
        for k in Kernel::ALL {
            assert_eq!(k.name().parse::<Kernel>().unwrap(), k);
            assert_eq!(k.to_string(), k.name());
        }
        assert_eq!(Kernel::default(), Kernel::Slab);
    }

    #[test]
    fn single_buffer_type_reduces_to_van_ginneken() {
        // b = 1: Lillis degenerates to van Ginneken's original algorithm;
        // all strategies must agree exactly even on branchy nets.
        let tech = Technology::tsmc180_like();
        let lib = BufferLibrary::new(vec![BufferType::new(
            "only",
            Ohms::new(500.0),
            Farads::from_femto(8.0),
            Seconds::from_pico(25.0),
        )])
        .unwrap();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(250.0)));
        let a1 = b.buffer_site();
        let k1 = b.sink(Farads::from_femto(15.0), Seconds::from_pico(700.0));
        let k2 = b.sink(Farads::from_femto(9.0), Seconds::from_pico(650.0));
        b.connect(src, a1, Wire::from_length(&tech, Microns::new(3000.0)))
            .unwrap();
        b.connect(a1, k1, Wire::from_length(&tech, Microns::new(2000.0)))
            .unwrap();
        b.connect(a1, k2, Wire::from_length(&tech, Microns::new(1000.0)))
            .unwrap();
        let tree = b.build().unwrap();
        let slacks: Vec<f64> = Algorithm::ALL
            .iter()
            .map(|&a| Solver::new(&tree, &lib).algorithm(a).solve().slack.picos())
            .collect();
        assert!((slacks[0] - slacks[1]).abs() < 1e-9);
        // With one buffer type every candidate list is small and permanent
        // pruning keeps at least the extremes; still compare:
        assert!(slacks[2] <= slacks[0] + 1e-9);
    }
}
