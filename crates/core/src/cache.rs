//! Per-subtree candidate-list caching — the seam behind incremental (ECO)
//! re-solving.
//!
//! The DP computes, for every node `v`, the nonredundant candidate set
//! `N(T_v)` of the subtree below `v`. That set depends only on (a) the tree
//! parameters *inside* `T_v` and (b) the solve configuration (algorithm,
//! delay model, slew limit, library, predecessor tracking) — never on
//! anything upstream of `v`. A [`SubtreeCache`] exploits this: it
//! checkpoints every node's finished list during a solve, and a later
//! solve of the *same tree with localized edits* recomputes only the nodes
//! marked dirty (the edited nodes' root paths), splicing cached sibling
//! lists into merges unchanged. Results are bit-identical to a from-scratch
//! solve of the edited tree — the cache only changes *which* computations
//! run, never their arithmetic (asserted exhaustively by
//! `tests/incremental_equivalence.rs`).
//!
//! # Ownership and invalidation invariants
//!
//! * The cache owns the predecessor [`PredArena`] of every candidate it
//!   retains: cached `PredRef`s index into it, so it is **append-only
//!   across solves** and cleared only by [`SubtreeCache::flush`] (which
//!   invalidates every cached list at the same time).
//! * A [config fingerprint](SolverOptions) — algorithm, tracking flag,
//!   slew-limit bits, the delay model's content fingerprint, and a content
//!   hash of the buffer library — is recorded at solve time. Any mismatch on a later
//!   solve flushes everything: a stale-fingerprint reuse would be a silent
//!   wrong answer, so the check is structural, not caller-discipline.
//! * Dirtiness is the caller's contract: whoever mutates the tree must call
//!   [`SubtreeCache::mark_path_dirty`] (or [`SubtreeCache::flush`]) before
//!   the next cached solve. `fastbuf-incremental`'s `IncrementalSolver` is
//!   the safe wrapper that owns both the tree and the cache and keeps them
//!   in sync; use it unless you are building such a wrapper yourself.
//! * [`SolverOptions::site_prices`] is deliberately **excluded** from the
//!   fingerprint: re-pricing a node is a localized edit (only that node's
//!   root path changes), and fingerprint-flushing on every price update
//!   would defeat the warm iterations of the Lagrangian global loop.
//!   Whoever changes a price therefore owes the same
//!   [`SubtreeCache::mark_path_dirty`] call a tree edit does —
//!   `IncrementalSolver::set_site_price` is the safe wrapper.
//! * The cache is keyed by node id and assumes edits are **topology
//!   preserving** (same node count, parents, and post-order). The
//!   fingerprint includes the node count as a backstop, but reusing one
//!   cache across structurally different trees of equal size is undefined
//!   *results* (never unsafety) — again, `IncrementalSolver` makes this
//!   impossible by construction.

use fastbuf_buflib::BufferLibrary;
use fastbuf_rctree::{NodeId, RoutingTree};

use crate::arena::PredArena;
use crate::candidate::CandidateList;
use crate::engine::SolverOptions;
use crate::pool::CandidatePool;

/// The solve configuration a cache's contents were computed under.
///
/// The delay model is identified by [`DelayModel::fingerprint`] — a
/// content hash every implementation must keep faithful to its arithmetic
/// (parametrized models fold their parameters in), so two distinct `Arc`s
/// to equal models match while a re-parametrized model never does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct CacheFingerprint {
    algorithm: crate::Algorithm,
    track: bool,
    slew_bits: u64,
    model_fingerprint: u64,
    lib_hash: u64,
    nodes: usize,
}

/// FNV-1a over the library's solve-relevant content (built on the shared
/// fingerprint primitive of `fastbuf_rctree::delay`): any change to any
/// buffer parameter changes the hash and flushes dependent caches.
fn library_hash(lib: &BufferLibrary) -> u64 {
    use fastbuf_rctree::delay::{fingerprint_extend, fingerprint_name};
    let mut h = fingerprint_name("buffer-library");
    h = fingerprint_extend(h, lib.len() as u64);
    for (_, b) in lib.iter() {
        for v in [
            b.driving_resistance().value().to_bits(),
            b.input_capacitance().value().to_bits(),
            b.intrinsic_delay().value().to_bits(),
            b.output_slew().value().to_bits(),
            b.cost().to_bits(),
            b.max_load().map_or(u64::MAX, |m| m.value().to_bits()),
            b.is_inverting() as u64,
        ] {
            h = fingerprint_extend(h, v);
        }
    }
    h
}

impl CacheFingerprint {
    pub(crate) fn of(options: &SolverOptions, lib: &BufferLibrary, nodes: usize) -> Self {
        CacheFingerprint {
            algorithm: options.algorithm,
            track: options.track_predecessors,
            slew_bits: options.slew_limit.map_or(u64::MAX, |s| s.value().to_bits()),
            model_fingerprint: options.delay_model.fingerprint(),
            lib_hash: library_hash(lib),
            nodes,
        }
    }

    fn matches(&self, other: &CacheFingerprint) -> bool {
        self == other
    }
}

/// Checkpointed per-node candidate lists of one `(tree, config)` pair, plus
/// the predecessor arena those lists reference. See the module docs for the
/// ownership and invalidation invariants.
///
/// Drive it through
/// [`Solver::solve_cached`](crate::Solver::solve_cached) — or, almost
/// always, through `fastbuf-incremental`'s `IncrementalSolver`, which owns
/// the tree and keeps dirtiness in sync with edits automatically.
#[derive(Debug, Default)]
pub struct SubtreeCache {
    lists: Vec<Option<CandidateList>>,
    dirty: Vec<bool>,
    arena: PredArena,
    fingerprint: Option<CacheFingerprint>,
    flushes: u64,
}

impl SubtreeCache {
    /// Creates an empty (cold) cache.
    pub fn new() -> Self {
        SubtreeCache::default()
    }

    /// Drops every cached list, clears the predecessor arena, and forgets
    /// the fingerprint: the next cached solve recomputes everything.
    /// Allocations are retained for reuse.
    pub fn flush(&mut self) {
        for slot in &mut self.lists {
            *slot = None;
        }
        self.dirty.iter_mut().for_each(|d| *d = true);
        self.arena.clear();
        self.fingerprint = None;
        self.flushes += 1;
    }

    /// Marks one node's cached list stale. No-op on a cold cache (where
    /// everything is already due for recomputation) or out-of-range ids.
    ///
    /// Deliberately not public: a node marked dirty without its ancestors
    /// would let a clean parent reuse a list computed from the node's old
    /// value — a silently wrong result. The public dirtying primitives
    /// are [`SubtreeCache::mark_path_dirty`] (an edit's exact footprint)
    /// and [`SubtreeCache::flush`].
    pub(crate) fn mark_dirty(&mut self, node: NodeId) {
        if let Some(d) = self.dirty.get_mut(node.index()) {
            *d = true;
        }
    }

    /// Marks `node` and every ancestor up to the root stale — the exact
    /// invalidation footprint of an edit inside `node` (for an edit to the
    /// wire *above* `node`, start from the parent instead: the node's own
    /// subtree list is unaffected).
    pub fn mark_path_dirty(&mut self, tree: &RoutingTree, node: NodeId) {
        let mut cur = Some(node);
        while let Some(n) = cur {
            self.mark_dirty(n);
            cur = tree.parent(n);
        }
    }

    /// `true` once a cached solve has populated the cache (and no flush or
    /// fingerprint change has invalidated it since).
    pub fn is_warm(&self) -> bool {
        self.fingerprint.is_some()
    }

    /// Number of nodes currently holding a cached candidate list.
    pub fn cached_nodes(&self) -> usize {
        self.lists.iter().filter(|l| l.is_some()).count()
    }

    /// Entries in the cache-owned predecessor arena. Grows monotonically
    /// across cached solves (the arena is append-only while cached lists
    /// reference it); [`SubtreeCache::flush`] resets it. Wrappers bound
    /// memory by flushing when this exceeds their budget.
    pub fn arena_entries(&self) -> usize {
        self.arena.len()
    }

    /// How many times the cache has been flushed (explicitly or by a
    /// fingerprint mismatch) — the observable proof that configuration
    /// changes invalidate instead of silently reusing.
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    /// Readies the cache for a solve under `fingerprint`: on any mismatch
    /// (different config, different library content, different node count,
    /// or a cold cache) everything is flushed and marked dirty.
    pub(crate) fn prepare(&mut self, fingerprint: CacheFingerprint) {
        let n = fingerprint.nodes;
        let matches = self
            .fingerprint
            .as_ref()
            .is_some_and(|old| old.matches(&fingerprint));
        if !matches {
            self.flush();
            self.lists.resize_with(n, || None);
            self.lists.truncate(n);
            self.dirty.clear();
            self.dirty.resize(n, true);
        }
        self.fingerprint = Some(fingerprint);
    }

    /// Splits the cache into the parts the engine loop needs with disjoint
    /// borrows: cached lists, dirty bits, and the arena.
    pub(crate) fn parts_mut(
        &mut self,
    ) -> (
        &mut Vec<Option<CandidateList>>,
        &mut Vec<bool>,
        &mut PredArena,
    ) {
        (&mut self.lists, &mut self.dirty, &mut self.arena)
    }
}

/// Clones a cached list into pool-backed storage (the engine mutates its
/// working copy through wire propagation; the cache keeps the original).
pub(crate) fn clone_list_pooled(list: &CandidateList, pool: &mut CandidatePool) -> CandidateList {
    let mut v = pool.take();
    v.extend_from_slice(list.as_slice());
    CandidateList::from_sorted(v)
}

/// [`store_snapshot`] from slab columns: materializes the candidates of a
/// [`SlabView`](crate::slab::SlabView) into the boundary `CandidateList`
/// snapshot, reusing the previous snapshot's allocation when present.
/// Snapshots are kernel-agnostic — either kernel can read either's.
pub(crate) fn store_snapshot_view(
    slot: &mut Option<CandidateList>,
    view: crate::slab::SlabView<'_>,
) {
    let mut v = match slot.take() {
        Some(old) => {
            let mut v = old.into_vec();
            v.clear();
            v
        }
        None => Vec::with_capacity(view.len()),
    };
    for i in 0..view.len() {
        v.push(view.get(i));
    }
    *slot = Some(CandidateList::from_sorted(v));
}

/// Stores a snapshot of `list` into `slot`, reusing the previous
/// snapshot's allocation when present.
pub(crate) fn store_snapshot(slot: &mut Option<CandidateList>, list: &CandidateList) {
    let mut v = match slot.take() {
        Some(old) => {
            let mut v = old.into_vec();
            v.clear();
            v
        }
        None => Vec::with_capacity(list.len()),
    };
    v.extend_from_slice(list.as_slice());
    *slot = Some(CandidateList::from_sorted(v));
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbuf_buflib::units::{Farads, Ohms, Seconds};
    use fastbuf_buflib::BufferType;
    use fastbuf_rctree::ElmoreModel;
    use std::sync::Arc;

    fn fp(options: &SolverOptions, lib: &BufferLibrary) -> CacheFingerprint {
        CacheFingerprint::of(options, lib, 10)
    }

    #[test]
    fn fingerprint_matches_itself_and_rejects_config_changes() {
        let lib = BufferLibrary::paper_synthetic(4).unwrap();
        let base = SolverOptions::default();
        assert!(fp(&base, &lib).matches(&fp(&base, &lib)));

        let mut algo = base.clone();
        algo.algorithm = crate::Algorithm::Lillis;
        assert!(!fp(&algo, &lib).matches(&fp(&base, &lib)));

        let mut track = base.clone();
        track.track_predecessors = false;
        assert!(!fp(&track, &lib).matches(&fp(&base, &lib)));

        let mut slew = base.clone();
        slew.slew_limit = Some(Seconds::from_pico(200.0));
        assert!(!fp(&slew, &lib).matches(&fp(&base, &lib)));

        // Model identity is by content fingerprint: a fresh Arc to an
        // identical model matches, a re-parametrized model never does.
        let mut same = base.clone();
        same.delay_model = Arc::new(ElmoreModel);
        assert!(fp(&same, &lib).matches(&fp(&base, &lib)));
        let mut scaled_a = base.clone();
        scaled_a.delay_model = Arc::new(fastbuf_rctree::ScaledElmoreModel::new(0.5));
        let mut scaled_b = base.clone();
        scaled_b.delay_model = Arc::new(fastbuf_rctree::ScaledElmoreModel::new(0.7));
        assert!(!fp(&scaled_a, &lib).matches(&fp(&base, &lib)));
        assert!(!fp(&scaled_a, &lib).matches(&fp(&scaled_b, &lib)));

        // Library content is hashed: any parameter change mismatches.
        let lib2 = BufferLibrary::new(vec![BufferType::new(
            "b",
            Ohms::new(123.0),
            Farads::from_femto(5.0),
            Seconds::from_pico(20.0),
        )])
        .unwrap();
        assert!(!fp(&base, &lib2).matches(&fp(&base, &lib)));

        // Node count is part of the key.
        assert!(!CacheFingerprint::of(&base, &lib, 11).matches(&fp(&base, &lib)));
    }

    #[test]
    fn library_hash_is_content_sensitive() {
        let a = BufferLibrary::paper_synthetic(4).unwrap();
        let b = BufferLibrary::paper_synthetic(4).unwrap();
        assert_eq!(library_hash(&a), library_hash(&b));
        let c = BufferLibrary::paper_synthetic(5).unwrap();
        assert_ne!(library_hash(&a), library_hash(&c));
        let d = BufferLibrary::paper_synthetic_jittered(4, 3).unwrap();
        assert_ne!(library_hash(&a), library_hash(&d));
    }

    #[test]
    fn prepare_flushes_on_mismatch_and_keeps_state_on_match() {
        let lib = BufferLibrary::paper_synthetic(2).unwrap();
        let opts = SolverOptions::default();
        let mut cache = SubtreeCache::new();
        assert!(!cache.is_warm());
        cache.prepare(CacheFingerprint::of(&opts, &lib, 3));
        assert!(cache.is_warm());
        assert_eq!(cache.dirty, vec![true; 3]);
        let flushes = cache.flush_count();

        // Same fingerprint: nothing is invalidated.
        cache.dirty = vec![false; 3];
        cache.prepare(CacheFingerprint::of(&opts, &lib, 3));
        assert_eq!(cache.dirty, vec![false; 3]);
        assert_eq!(cache.flush_count(), flushes);

        // Config change: full flush.
        let mut other = opts.clone();
        other.slew_limit = Some(Seconds::from_pico(100.0));
        cache.prepare(CacheFingerprint::of(&other, &lib, 3));
        assert_eq!(cache.dirty, vec![true; 3]);
        assert_eq!(cache.flush_count(), flushes + 1);
    }

    #[test]
    fn mark_dirty_is_bounds_safe() {
        let mut cache = SubtreeCache::new();
        cache.mark_dirty(NodeId::new(5)); // cold cache: no-op, no panic
        assert!(!cache.is_warm());
    }
}
