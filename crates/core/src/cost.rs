//! Cost-bounded buffer insertion: the slack-vs-cost Pareto frontier.
//!
//! The paper closes with *"Our algorithm can also be applied to reduce
//! buffer cost. We leave the details to the journal version."* This module
//! implements that application in the style of Lillis, Cheng & Lin's
//! power-optimal extension: the DP state is `(Q, C, W)` where `W` is the
//! accumulated buffer cost (an integer — e.g. area units; the synthetic
//! libraries derive it from drive strength). Per cost level the candidates
//! form an ordinary nonredundant `(Q, C)` list, so every level reuses the
//! O(k + b) convex-hull `AddBuffer` of the main solver; levels interact
//! through buffer insertion (level `w` feeds `w + cost(B_i)`), branch
//! merging (levels convolve) and three-dimensional dominance pruning (a
//! candidate beaten in both `Q` and `C` by a *cheaper* candidate dies).
//!
//! The cost dimension is capped by [`CostSolver::max_cost`]; the result is
//! exact for every budget up to the cap.
//!
//! # Example
//!
//! ```
//! use fastbuf_buflib::{BufferLibrary, Driver, Technology};
//! use fastbuf_buflib::units::{Farads, Microns, Ohms, Seconds};
//! use fastbuf_rctree::{TreeBuilder, Wire};
//! use fastbuf_core::cost::CostSolver;
//!
//! let tech = Technology::tsmc180_like();
//! let lib = BufferLibrary::paper_synthetic(8)?;
//! let mut b = TreeBuilder::new();
//! let src = b.source(Driver::new(Ohms::new(180.0)));
//! let mut prev = src;
//! for _ in 0..6 {
//!     let s = b.buffer_site();
//!     b.connect(prev, s, Wire::from_length(&tech, Microns::new(1500.0)))?;
//!     prev = s;
//! }
//! let snk = b.sink(Farads::from_femto(15.0), Seconds::from_pico(2500.0));
//! b.connect(prev, snk, Wire::from_length(&tech, Microns::new(1500.0)))?;
//! let tree = b.build()?;
//!
//! let frontier = CostSolver::new(&tree, &lib).max_cost(60).solve()?;
//! // Spending more can only help, and the frontier is strictly improving.
//! for w in frontier.points.windows(2) {
//!     assert!(w[1].cost > w[0].cost && w[1].slack > w[0].slack);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::error::Error;
use std::fmt;
use std::time::Instant;

use fastbuf_buflib::units::Seconds;
use fastbuf_buflib::BufferLibrary;
use fastbuf_rctree::{NodeKind, RoutingTree};

use fastbuf_rctree::delay::ElmoreModel;

use crate::arena::PredArena;
use crate::buffering::{find_betas_slab, Algorithm, Scratch};
use crate::candidate::{Candidate, CandidateList};
use crate::slab::{CandidateSlab, SlabList};
use crate::slew::SlewPolicy;
use crate::solution::Placement;
use crate::stats::SolveStats;

/// Errors from [`CostSolver::solve`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CostError {
    /// A buffer's cost is not a non-negative integer (within 1e-6); the
    /// cost DP requires discrete levels.
    NonIntegerCost {
        /// Name of the offending buffer type.
        buffer: String,
    },
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::NonIntegerCost { buffer } => {
                write!(
                    f,
                    "buffer `{buffer}` has a non-integer cost; the cost DP needs integer levels"
                )
            }
        }
    }
}

impl Error for CostError {}

/// One point of the slack-vs-cost frontier.
#[derive(Clone, Debug)]
pub struct FrontierPoint {
    /// Total buffer cost spent.
    pub cost: u32,
    /// Best achievable slack at that cost.
    pub slack: Seconds,
    /// The placements achieving it.
    pub placements: Vec<Placement>,
}

/// The Pareto frontier returned by [`CostSolver::solve`]: points sorted by
/// strictly increasing cost *and* strictly increasing slack (non-improving
/// budgets are omitted).
#[derive(Clone, Debug)]
pub struct CostFrontier {
    /// The frontier points, cheapest first. The first point is the
    /// unbuffered solution (cost 0).
    pub points: Vec<FrontierPoint>,
    /// Aggregated operation counters across all cost levels.
    pub stats: SolveStats,
}

impl CostFrontier {
    /// The best slack achievable within `budget`.
    pub fn best_within(&self, budget: u32) -> Option<&FrontierPoint> {
        self.points.iter().rev().find(|p| p.cost <= budget)
    }
}

/// Cost-bounded solver; see the [module docs](self).
#[derive(Debug)]
pub struct CostSolver<'a> {
    tree: &'a RoutingTree,
    library: &'a BufferLibrary,
    max_cost: u32,
    algorithm: Algorithm,
    site_prices: Option<std::sync::Arc<[f64]>>,
}

impl<'a> CostSolver<'a> {
    /// Creates a cost solver with a default budget cap of 64 cost units and
    /// the [`Algorithm::LiShi`] `AddBuffer`.
    pub fn new(tree: &'a RoutingTree, library: &'a BufferLibrary) -> Self {
        CostSolver {
            tree,
            library,
            max_cost: 64,
            algorithm: Algorithm::LiShi,
            site_prices: None,
        }
    }

    /// Sets the largest total buffer cost explored.
    #[must_use]
    pub fn max_cost(mut self, max_cost: u32) -> Self {
        self.max_cost = max_cost;
        self
    }

    /// Selects the `AddBuffer` algorithm used within each cost level.
    #[must_use]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets (or, with `None`, clears) per-node buffer-usage prices in
    /// seconds, indexed by node — the same Lagrangian cost term as
    /// [`SolverOptions::site_prices`](crate::SolverOptions::site_prices):
    /// every beta at a priced node is charged the price like extra
    /// intrinsic delay, at every cost level of the frontier.
    #[must_use]
    pub fn site_prices(mut self, prices: Option<std::sync::Arc<[f64]>>) -> Self {
        self.site_prices = prices;
        self
    }

    /// Runs the three-dimensional DP and returns the frontier.
    ///
    /// # Errors
    ///
    /// [`CostError::NonIntegerCost`] if any library cost is not an integer.
    pub fn solve(&self) -> Result<CostFrontier, CostError> {
        let start = Instant::now();
        let tree = self.tree;
        let lib = self.library;
        let w_max = self.max_cost as usize;

        // Integer costs per type, validated.
        let mut costs = Vec::with_capacity(lib.len());
        for (_, b) in lib.iter() {
            let rounded = b.cost().round();
            if (b.cost() - rounded).abs() > 1e-6 || rounded < 0.0 {
                return Err(CostError::NonIntegerCost {
                    buffer: b.name().to_owned(),
                });
            }
            costs.push(rounded as usize);
        }

        let prices = self.site_prices.as_deref();
        let mut stats = SolveStats::default();
        let mut arena = PredArena::new();
        let mut scratch = Scratch::default();
        let mut slab = CandidateSlab::default();
        // Per node, one slab handle per cost level; `None` is an empty
        // level (most levels are), so no columns are allocated for them.
        let mut levels: Vec<Option<Vec<Option<SlabList>>>> = vec![None; tree.node_count()];

        for &node in tree.postorder() {
            let node_levels = match tree.kind(node) {
                NodeKind::Sink {
                    capacitance,
                    required_arrival,
                } => {
                    let mut lv: Vec<Option<SlabList>> = vec![None; w_max + 1];
                    lv[0] = Some(slab.sink(required_arrival.value(), capacitance.value()));
                    lv
                }
                NodeKind::Internal | NodeKind::Source { .. } => {
                    let mut acc: Option<Vec<Option<SlabList>>> = None;
                    for &child in tree.children(node) {
                        let cl = levels[child.index()]
                            .take()
                            .expect("post-order guarantees children are done");
                        let wire = tree.wire_to_parent(child).expect("child wire");
                        let (r, cw) = (wire.resistance().value(), wire.capacitance().value());
                        for level in cl.iter().copied().flatten() {
                            slab.add_wire(level, &ElmoreModel, r, cw, &mut stats);
                            stats.wire_ops += 1;
                        }
                        acc = Some(match acc {
                            None => cl,
                            Some(prev) => {
                                stats.merge_ops += 1;
                                merge_levels(&mut slab, prev, cl, &mut arena, &mut stats)
                            }
                        });
                    }
                    let mut lv = acc.expect("internal nodes have children");
                    if tree.is_buffer_site(node) && !lib.is_empty() {
                        // Snapshot betas from every level first, then insert,
                        // so a single node never hosts two buffers.
                        let mut pending: Vec<Vec<Candidate>> = vec![Vec::new(); w_max + 1];
                        for (w, level) in lv.iter().enumerate() {
                            let Some(level) = *level else { continue };
                            // The cost DP stays slew-unconstrained; pair it
                            // with `Solver::slew_limit` if both axes are
                            // needed (see docs/ALGORITHM.md).
                            if !find_betas_slab(
                                self.algorithm,
                                &mut slab,
                                level,
                                lib,
                                tree.site_constraint(node),
                                node,
                                tree.site_variation(node),
                                prices.map_or(0.0, |p| p.get(node.index()).copied().unwrap_or(0.0)),
                                &mut arena,
                                true,
                                &mut scratch,
                                &SlewPolicy::unlimited(),
                                &mut stats,
                            ) {
                                continue;
                            }
                            for (id, _) in lib.iter() {
                                if let Some(beta) = scratch.beta_slots[id.index()].take() {
                                    let target = w + costs[id.index()];
                                    if target <= w_max {
                                        pending[target].push(beta);
                                    }
                                }
                            }
                        }
                        for (w, group) in pending.into_iter().enumerate() {
                            if group.is_empty() {
                                continue;
                            }
                            stats.betas_generated += group.len() as u64;
                            let sorted = CandidateList::from_candidates(group);
                            match lv[w] {
                                Some(list) => slab.merge_insert(list, sorted.as_slice()),
                                None => lv[w] = Some(slab.load_list(&sorted)),
                            }
                        }
                        prune_levels(&mut slab, &mut lv, &mut stats);
                    }
                    lv
                }
            };
            for level in node_levels.iter().copied().flatten() {
                stats.max_list_len = stats.max_list_len.max(slab.len(level));
            }
            levels[node.index()] = Some(node_levels);
        }

        let root_levels = levels[tree.root().index()].take().expect("root processed");
        let driver = tree.driver();
        let (dr, dk) = (
            driver.resistance().value(),
            driver.intrinsic_delay().value(),
        );
        let mut points = Vec::new();
        let mut best = f64::NEG_INFINITY;
        for (w, level) in root_levels.iter().enumerate() {
            let Some(level) = *level else { continue };
            stats.root_list_len = stats.root_list_len.max(slab.len(level));
            if let Some(i) = slab.best_driven(level, dr, dk) {
                let cand = slab.view(level).get(i);
                let slack = cand.q - dk - dr * cand.c;
                if slack > best {
                    best = slack;
                    points.push(FrontierPoint {
                        cost: w as u32,
                        slack: Seconds::new(slack),
                        placements: arena
                            .collect_placements(cand.pred)
                            .into_iter()
                            .map(Into::into)
                            .collect(),
                    });
                }
            }
        }
        stats.arena_entries = arena.len();
        stats.slab_bytes_peak = slab.peak_bytes();
        stats.elapsed = start.elapsed();
        Ok(CostFrontier { points, stats })
    }
}

/// Convolves two per-level lists: `out[w] = nondominated union over
/// w₁+w₂=w of merge(left[w₁], right[w₂])`.
///
/// Each input level takes part in up to `w_max + 1` merges; the slab's
/// non-consuming [`CandidateSlab::merge_keep`] reads it in place each time,
/// where the reference convolution cloned both sides per pair.
fn merge_levels(
    slab: &mut CandidateSlab,
    left: Vec<Option<SlabList>>,
    right: Vec<Option<SlabList>>,
    arena: &mut PredArena,
    stats: &mut SolveStats,
) -> Vec<Option<SlabList>> {
    let w_max = left.len() - 1;
    let mut out: Vec<Option<SlabList>> = vec![None; w_max + 1];
    for (w1, l) in left.iter().enumerate() {
        let Some(l) = *l else { continue };
        for (w2, r) in right.iter().enumerate() {
            if w1 + w2 > w_max {
                continue;
            }
            let Some(r) = *r else { continue };
            let merged = slab.merge_keep(l, r, arena, true, stats);
            match out[w1 + w2] {
                None => out[w1 + w2] = Some(merged),
                Some(dst) => {
                    slab.merge_insert_list(dst, merged);
                    slab.free(merged);
                }
            }
        }
    }
    for spent in left.into_iter().chain(right).flatten() {
        slab.free(spent);
    }
    prune_levels(slab, &mut out, stats);
    out
}

/// Three-dimensional dominance: removes candidates beaten in `(Q, C)` by a
/// candidate at an equal-or-cheaper level. The running cheaper-or-equal
/// frontier is itself a slab list; each level is filtered against it by one
/// linear sweep ([`CandidateSlab::retain_undominated`]) and then unioned
/// into it in place.
fn prune_levels(slab: &mut CandidateSlab, levels: &mut [Option<SlabList>], stats: &mut SolveStats) {
    let mut frontier: Option<SlabList> = None;
    for slot in levels.iter_mut() {
        let Some(level) = *slot else { continue };
        if slab.len(level) == 0 {
            slab.free(level);
            *slot = None;
            continue;
        }
        if let Some(f) = frontier {
            slab.retain_undominated(level, f, stats);
            if slab.len(level) == 0 {
                slab.free(level);
                *slot = None;
                continue;
            }
        }
        match frontier {
            None => frontier = Some(slab.copy_list(level)),
            Some(f) => slab.merge_insert_list(f, level),
        }
    }
    if let Some(f) = frontier {
        slab.free(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Solver;
    use fastbuf_buflib::units::{Farads, Microns, Ohms};
    use fastbuf_buflib::{BufferType, Driver, Technology};
    use fastbuf_rctree::elmore;
    use fastbuf_rctree::{TreeBuilder, Wire};

    fn line_net(sites: usize, seg_um: f64, rat_ps: f64) -> RoutingTree {
        let tech = Technology::tsmc180_like();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(180.0)));
        let mut prev = src;
        for _ in 0..sites {
            let s = b.buffer_site();
            b.connect(prev, s, Wire::from_length(&tech, Microns::new(seg_um)))
                .unwrap();
            prev = s;
        }
        let snk = b.sink(Farads::from_femto(15.0), Seconds::from_pico(rat_ps));
        b.connect(prev, snk, Wire::from_length(&tech, Microns::new(seg_um)))
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn frontier_starts_unbuffered_and_improves() {
        let tree = line_net(6, 1500.0, 2500.0);
        let lib = BufferLibrary::paper_synthetic(8).unwrap();
        let frontier = CostSolver::new(&tree, &lib).max_cost(80).solve().unwrap();
        assert!(!frontier.points.is_empty());
        assert_eq!(frontier.points[0].cost, 0);
        assert!(frontier.points[0].placements.is_empty());
        for w in frontier.points.windows(2) {
            assert!(w[1].cost > w[0].cost);
            assert!(w[1].slack > w[0].slack);
        }
    }

    #[test]
    fn unlimited_budget_matches_unconstrained_solver() {
        let tree = line_net(6, 1500.0, 2500.0);
        let lib = BufferLibrary::paper_synthetic(8).unwrap();
        // Budget large enough to never bind: 6 sites x max cost 39.
        let frontier = CostSolver::new(&tree, &lib).max_cost(250).solve().unwrap();
        let unconstrained = Solver::new(&tree, &lib).solve();
        let best = frontier.points.last().unwrap();
        assert!(
            (best.slack.picos() - unconstrained.slack.picos()).abs() < 1e-6,
            "{} vs {}",
            best.slack,
            unconstrained.slack
        );
    }

    #[test]
    fn every_frontier_point_verifies_and_costs_match() {
        let tree = line_net(5, 1800.0, 3000.0);
        let lib = BufferLibrary::paper_synthetic(4).unwrap();
        let frontier = CostSolver::new(&tree, &lib).max_cost(100).solve().unwrap();
        for p in &frontier.points {
            let pairs: Vec<_> = p.placements.iter().map(|x| (x.node, x.buffer)).collect();
            let report = elmore::evaluate(&tree, &lib, &pairs).unwrap();
            assert!(
                (report.slack.picos() - p.slack.picos()).abs() < 1e-6,
                "cost {}: predicted {} measured {}",
                p.cost,
                p.slack,
                report.slack
            );
            let spent: f64 = p.placements.iter().map(|x| lib.get(x.buffer).cost()).sum();
            assert_eq!(spent as u32, p.cost, "cost bookkeeping at {}", p.cost);
        }
    }

    #[test]
    fn budget_caps_solution_cost() {
        let tree = line_net(6, 1500.0, 2500.0);
        let lib = BufferLibrary::paper_synthetic(8).unwrap();
        let frontier = CostSolver::new(&tree, &lib).max_cost(10).solve().unwrap();
        for p in &frontier.points {
            assert!(p.cost <= 10);
        }
        // A tighter budget cannot beat a looser one.
        let loose = CostSolver::new(&tree, &lib).max_cost(200).solve().unwrap();
        assert!(
            frontier.points.last().unwrap().slack.picos()
                <= loose.points.last().unwrap().slack.picos() + 1e-9
        );
    }

    #[test]
    fn best_within_selects_by_budget() {
        let tree = line_net(4, 2000.0, 2500.0);
        let lib = BufferLibrary::paper_synthetic(4).unwrap();
        let frontier = CostSolver::new(&tree, &lib).max_cost(100).solve().unwrap();
        let p0 = frontier.best_within(0).unwrap();
        assert_eq!(p0.cost, 0);
        let all = frontier.best_within(u32::MAX).unwrap();
        assert_eq!(all.cost, frontier.points.last().unwrap().cost);
        // Budgets between points resolve to the cheaper point.
        if frontier.points.len() >= 2 {
            let second = frontier.points[1].cost;
            assert_eq!(frontier.best_within(second - 1).unwrap().cost, 0);
        }
    }

    #[test]
    fn non_integer_cost_rejected() {
        let lib = BufferLibrary::new(vec![BufferType::new(
            "x",
            Ohms::new(100.0),
            Farads::from_femto(1.0),
            Seconds::ZERO,
        )
        .with_cost(1.5)])
        .unwrap();
        let tree = line_net(1, 500.0, 100.0);
        let err = CostSolver::new(&tree, &lib).solve().unwrap_err();
        assert!(matches!(err, CostError::NonIntegerCost { .. }));
        assert!(err.to_string().contains("x"));
    }

    #[test]
    fn multi_pin_frontier_verifies() {
        let tech = Technology::tsmc180_like();
        let lib = BufferLibrary::paper_synthetic(4).unwrap();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(250.0)));
        let s0 = b.buffer_site();
        let tee = b.internal();
        let s1 = b.buffer_site();
        let s2 = b.buffer_site();
        let k1 = b.sink(Farads::from_femto(10.0), Seconds::from_pico(800.0));
        let k2 = b.sink(Farads::from_femto(25.0), Seconds::from_pico(1200.0));
        b.connect(src, s0, Wire::from_length(&tech, Microns::new(2000.0)))
            .unwrap();
        b.connect(s0, tee, Wire::from_length(&tech, Microns::new(500.0)))
            .unwrap();
        b.connect(tee, s1, Wire::from_length(&tech, Microns::new(1500.0)))
            .unwrap();
        b.connect(s1, k1, Wire::from_length(&tech, Microns::new(500.0)))
            .unwrap();
        b.connect(tee, s2, Wire::from_length(&tech, Microns::new(3000.0)))
            .unwrap();
        b.connect(s2, k2, Wire::from_length(&tech, Microns::new(800.0)))
            .unwrap();
        let tree = b.build().unwrap();

        let frontier = CostSolver::new(&tree, &lib).max_cost(150).solve().unwrap();
        for p in &frontier.points {
            let pairs: Vec<_> = p.placements.iter().map(|x| (x.node, x.buffer)).collect();
            let report = elmore::evaluate(&tree, &lib, &pairs).unwrap();
            assert!((report.slack.picos() - p.slack.picos()).abs() < 1e-6);
        }
        let unconstrained = Solver::new(&tree, &lib).solve();
        assert!(
            (frontier.points.last().unwrap().slack.picos() - unconstrained.slack.picos()).abs()
                < 1e-6
        );
    }

    #[test]
    fn prune_levels_removes_expensive_dominated() {
        use crate::arena::PredRef;
        let mut slab = CandidateSlab::default();
        let mut stats = SolveStats::default();
        let mut mk = |pts: &[(f64, f64)]| {
            Some(
                slab.load_list(&CandidateList::from_candidates(
                    pts.iter()
                        .map(|&(q, c)| Candidate::new(q, c, PredRef::NONE))
                        .collect(),
                )),
            )
        };
        let mut levels = vec![
            mk(&[(5.0, 2.0)]),
            mk(&[(4.0, 3.0), (6.0, 4.0)]), // (4,3) dominated by cheaper (5,2)
            mk(&[(5.0, 2.0)]),             // exactly equal but pricier: dominated
        ];
        prune_levels(&mut slab, &mut levels, &mut stats);
        assert_eq!(slab.len(levels[0].unwrap()), 1);
        assert_eq!(slab.len(levels[1].unwrap()), 1);
        assert_eq!(slab.view(levels[1].unwrap()).q[0], 6.0);
        assert!(levels[2].is_none(), "fully dominated level is dropped");
        assert_eq!(stats.slab_candidates_pruned, 2);
    }
}
