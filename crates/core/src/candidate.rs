//! Candidates and nonredundant candidate lists — the paper's `N(T_v)`.
//!
//! A *candidate* summarizes one way of buffering the subtree below a node by
//! the only two quantities visible upstream: the slack `Q` and the
//! downstream capacitance `C` (§2 of the paper). Candidate `a` *dominates*
//! `a'` when `Q(a) ≥ Q(a')` and `C(a) ≤ C(a')`; dominated candidates can
//! never be part of an optimal solution and are pruned eagerly. The
//! surviving *nonredundant* set, sorted by strictly increasing `Q` and `C`,
//! is what every DP operation manipulates.
//!
//! Internally `q`/`c` are raw `f64` in seconds/farads: these fields are read
//! and written in the innermost loops of every solver, where the unit
//! newtypes of `fastbuf-buflib` would only obscure the arithmetic. The
//! public solver APIs convert at the boundary.

use fastbuf_rctree::delay::{DelayModel, ElmoreModel};

use crate::arena::PredRef;
use crate::pool::CandidatePool;

/// One `(Q, C)` candidate of the dynamic program.
///
/// Besides the paper's two coordinates, every candidate carries `s`: the
/// worst in-stage wire delay of its *topmost unbuffered stage* — the
/// maximum, over the buffer inputs and sinks reachable from the candidate's
/// root without crossing a buffer, of the wire delay from the root to that
/// endpoint. When an upstream gate with resistance `R` later closes the
/// stage, the output slew at the worst endpoint is `slew₀ + ln9·(R·C + s)`
/// (see `fastbuf_rctree::delay`), which is what slew-constrained solving
/// prunes against. `s` rides along for free in unconstrained solves and
/// never influences `(Q, C)` dominance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// Slack at the current node, in seconds.
    pub q: f64,
    /// Downstream capacitance, in farads.
    pub c: f64,
    /// Worst in-stage wire delay to a stage endpoint, in seconds.
    pub s: f64,
    /// Reconstruction reference into the predecessor arena.
    pub pred: PredRef,
}

impl Candidate {
    /// Creates a candidate with zero stage delay (a sink, or a freshly
    /// buffered candidate whose stage endpoint is its own input).
    #[inline]
    pub fn new(q: f64, c: f64, pred: PredRef) -> Self {
        Candidate { q, c, s: 0.0, pred }
    }

    /// Replaces the stage wire delay and returns `self` (builder style,
    /// mostly for tests and branch merging).
    #[inline]
    #[must_use]
    pub fn with_stage_delay(mut self, s: f64) -> Self {
        self.s = s;
        self
    }

    /// The buffered slack `Q − (K + R·C)` this candidate would yield if
    /// driven by a gate with resistance `r` and intrinsic delay `k`.
    #[inline]
    pub fn driven_q(&self, r: f64, k: f64) -> f64 {
        self.q - k - r * self.c
    }
}

/// Appends `cand` to `out`, maintaining the nonredundant invariant, under
/// the precondition that `out` is nonredundant and `cand.c >= out.last().c`.
///
/// This is the O(1) amortized primitive behind every capacitance-ordered
/// merge in the solvers.
#[inline]
pub(crate) fn push_pruned_c_order(out: &mut Vec<Candidate>, cand: Candidate) {
    if let Some(top) = out.last_mut() {
        debug_assert!(
            cand.c >= top.c,
            "push_pruned_c_order requires c-sorted input"
        );
        if cand.q <= top.q {
            return; // dominated: no better slack at no smaller load
        }
        if cand.c == top.c {
            *top = cand; // same load, better slack
            return;
        }
    }
    out.push(cand);
}

/// A nonredundant candidate list sorted by strictly increasing `Q` *and*
/// strictly increasing `C` (the two orders coincide for nonredundant sets).
///
/// All mutating operations preserve the invariant; `debug_assert`s verify it
/// in debug builds.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CandidateList {
    cands: Vec<Candidate>,
}

impl CandidateList {
    /// Creates an empty list.
    pub fn new() -> Self {
        CandidateList::default()
    }

    /// Creates the singleton list of a sink: `Q = RAT`, `C = c_sink`.
    pub fn sink(q: f64, c: f64, pred: PredRef) -> Self {
        CandidateList {
            cands: vec![Candidate::new(q, c, pred)],
        }
    }

    /// Builds a list from arbitrary candidates: sorts and prunes dominated
    /// entries.
    pub fn from_candidates(mut cands: Vec<Candidate>) -> Self {
        cands.sort_by(|a, b| a.c.total_cmp(&b.c).then(b.q.total_cmp(&a.q)));
        let mut out = Vec::with_capacity(cands.len());
        let mut best_q = f64::NEG_INFINITY;
        for cand in cands {
            // c ascending; within equal c the best q comes first.
            if cand.q > best_q {
                best_q = cand.q;
                push_pruned_c_order(&mut out, cand);
            }
        }
        let list = CandidateList { cands: out };
        list.debug_validate();
        list
    }

    /// Wraps a vector that is already nonredundant and sorted.
    ///
    /// Only `debug_assert`s check the precondition; use
    /// [`CandidateList::from_candidates`] for untrusted input.
    pub fn from_sorted(cands: Vec<Candidate>) -> Self {
        let list = CandidateList { cands };
        list.debug_validate();
        list
    }

    /// The candidates, sorted by increasing `Q` and `C`.
    #[inline]
    pub fn as_slice(&self) -> &[Candidate] {
        &self.cands
    }

    /// Number of candidates (the paper's `k`).
    #[inline]
    pub fn len(&self) -> usize {
        self.cands.len()
    }

    /// `true` if the list holds no candidates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cands.is_empty()
    }

    /// Iterates over the candidates in `(Q, C)` order.
    pub fn iter(&self) -> std::slice::Iter<'_, Candidate> {
        self.cands.iter()
    }

    pub(crate) fn as_mut_vec(&mut self) -> &mut Vec<Candidate> {
        &mut self.cands
    }

    /// Consumes the list, releasing its backing vector (for recycling
    /// through a [`CandidatePool`]).
    pub(crate) fn into_vec(self) -> Vec<Candidate> {
        self.cands
    }

    /// Propagates the list through a wire of resistance `r` (Ω) and
    /// capacitance `cw` (F) — the paper's "add a wire" operation under the
    /// Elmore model:
    ///
    /// ```text
    /// Q ← Q − r·(cw/2 + C)        C ← C + cw        s ← s + r·(cw/2 + C)
    /// ```
    ///
    /// The shear can make a high-`C` candidate's `Q` fall below a lower-`C`
    /// candidate's (the wire penalizes big loads more), so dominated
    /// candidates are re-pruned in the same O(k) pass.
    pub fn add_wire(&mut self, r: f64, cw: f64) {
        self.add_wire_model(&ElmoreModel, r, cw);
    }

    /// [`CandidateList::add_wire`] under an arbitrary [`DelayModel`]: the
    /// wire delay charged against `Q` (and accumulated into `s`) is
    /// `model.wire_delay(r, cw, C)`. With [`ElmoreModel`] this is
    /// bit-identical to the historical hard-coded arithmetic.
    pub fn add_wire_model(&mut self, model: &dyn DelayModel, r: f64, cw: f64) {
        if r == 0.0 && cw == 0.0 {
            return;
        }
        let mut write = 0usize;
        for read in 0..self.cands.len() {
            let mut cand = self.cands[read];
            let d = model.wire_delay(r, cw, cand.c);
            cand.q -= d;
            cand.s += d;
            cand.c += cw;
            // c order is preserved, so one monotone pass restores the
            // nonredundant invariant.
            if write > 0 {
                let top = self.cands[write - 1];
                if cand.q <= top.q {
                    continue;
                }
                if cand.c == top.c {
                    self.cands[write - 1] = cand;
                    continue;
                }
            }
            self.cands[write] = cand;
            write += 1;
        }
        self.cands.truncate(write);
        self.debug_validate();
    }

    /// Removes every candidate whose stage wire delay `s` already exceeds
    /// `cap` — such a candidate violates the slew limit in *every*
    /// completion, because closing its stage with any driver only adds the
    /// non-negative `R·C` term and upstream wires only grow `s`.
    ///
    /// To keep the DP total (degenerate nets must solve, never panic), the
    /// single least-bad candidate is retained when all of them violate;
    /// the violation then surfaces at the root as `slew_ok = false`.
    /// Returns the number of candidates removed.
    pub(crate) fn prune_slew(&mut self, cap: f64) -> usize {
        if !cap.is_finite() || self.cands.is_empty() {
            return 0;
        }
        let before = self.cands.len();
        if self.cands.iter().all(|c| c.s > cap) {
            let least_bad = self
                .cands
                .iter()
                .copied()
                .min_by(|a, b| a.s.total_cmp(&b.s))
                .expect("list is non-empty");
            self.cands.clear();
            self.cands.push(least_bad);
            return before - 1;
        }
        self.cands.retain(|c| c.s <= cap);
        self.debug_validate();
        before - self.cands.len()
    }

    /// Merges `incoming` (sorted by strictly increasing `C`, e.g. the `β_i`
    /// buffered candidates of Theorem 2) into this list in
    /// O(len + incoming.len).
    pub fn merge_insert(&mut self, incoming: &[Candidate]) {
        let spent = self.merge_insert_into(incoming, Vec::new());
        drop(spent);
    }

    /// [`CandidateList::merge_insert`] with recycled storage: the output is
    /// built in a vector drawn from `pool` and the spent input vector is
    /// returned to it, so steady-state insertion performs no allocation.
    pub(crate) fn merge_insert_pooled(&mut self, incoming: &[Candidate], pool: &mut CandidatePool) {
        if incoming.is_empty() {
            return;
        }
        let out = pool.take();
        let spent = self.merge_insert_into(incoming, out);
        pool.put(spent);
    }

    /// Shared implementation: merges `incoming` into the list using `out`
    /// as the output storage and returns the replaced (spent) vector.
    fn merge_insert_into(
        &mut self,
        incoming: &[Candidate],
        mut out: Vec<Candidate>,
    ) -> Vec<Candidate> {
        if incoming.is_empty() {
            return out;
        }
        debug_assert!(incoming.windows(2).all(|w| w[0].c < w[1].c));
        let old = std::mem::take(&mut self.cands);
        out.clear();
        out.reserve(old.len() + incoming.len());
        let (mut i, mut j) = (0, 0);
        while i < old.len() || j < incoming.len() {
            let take_old = match (old.get(i), incoming.get(j)) {
                (Some(a), Some(b)) => {
                    // On equal c, feed the better-q one first; the other is
                    // then dropped by push_pruned_c_order.
                    if a.c < b.c {
                        true
                    } else if a.c > b.c {
                        false
                    } else {
                        a.q >= b.q
                    }
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!(),
            };
            let cand = if take_old {
                let c = old[i];
                i += 1;
                c
            } else {
                let c = incoming[j];
                j += 1;
                c
            };
            push_pruned_c_order(&mut out, cand);
        }
        self.cands = out;
        self.debug_validate();
        old
    }

    /// The candidate maximizing `Q − (k + r·C)` (slack seen by an upstream
    /// driver with resistance `r` and intrinsic delay `k`), breaking ties
    /// toward minimum `C`. `None` on an empty list.
    pub fn best_driven(&self, r: f64, k: f64) -> Option<&Candidate> {
        let mut best: Option<&Candidate> = None;
        for cand in &self.cands {
            match best {
                None => best = Some(cand),
                Some(b) => {
                    if cand.driven_q(r, k) > b.driven_q(r, k) {
                        best = Some(cand);
                    }
                }
            }
        }
        best
    }

    /// Validates the invariant in debug builds (strictly increasing `Q` and
    /// `C`, all finite `C`, no NaN `Q`).
    #[inline]
    pub fn debug_validate(&self) {
        #[cfg(debug_assertions)]
        {
            for w in self.cands.windows(2) {
                debug_assert!(
                    w[0].q < w[1].q && w[0].c < w[1].c,
                    "nonredundant invariant violated: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
            for c in &self.cands {
                debug_assert!(
                    !c.q.is_nan() && c.c.is_finite() && !c.s.is_nan(),
                    "bad candidate {c:?}"
                );
            }
        }
    }
}

impl<'a> IntoIterator for &'a CandidateList {
    type Item = &'a Candidate;
    type IntoIter = std::slice::Iter<'a, Candidate>;
    fn into_iter(self) -> Self::IntoIter {
        self.cands.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(q: f64, c: f64) -> Candidate {
        Candidate::new(q, c, PredRef::NONE)
    }

    #[test]
    fn from_candidates_prunes_dominated() {
        let list = CandidateList::from_candidates(vec![
            cand(5.0, 3.0),
            cand(1.0, 1.0),
            cand(0.5, 2.0), // dominated by (1,1)? q=0.5<1, c=2>1 -> dominated
            cand(6.0, 3.0), // dominates (5,3)
            cand(2.0, 2.0),
        ]);
        let qs: Vec<f64> = list.iter().map(|c| c.q).collect();
        let cs: Vec<f64> = list.iter().map(|c| c.c).collect();
        assert_eq!(qs, vec![1.0, 2.0, 6.0]);
        assert_eq!(cs, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_candidates_handles_duplicates() {
        let list = CandidateList::from_candidates(vec![cand(1.0, 1.0), cand(1.0, 1.0)]);
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn sink_singleton() {
        let l = CandidateList::sink(1e-10, 5e-15, PredRef::NONE);
        assert_eq!(l.len(), 1);
        assert_eq!(l.as_slice()[0].q, 1e-10);
    }

    #[test]
    fn add_wire_shears_and_shifts() {
        let mut l = CandidateList::from_candidates(vec![cand(10.0, 1.0), cand(20.0, 2.0)]);
        // r=1, cw=4: q -= 1*(2 + c); c += 4; s += the same wire delay.
        l.add_wire(1.0, 4.0);
        let got: Vec<(f64, f64)> = l.iter().map(|c| (c.q, c.c)).collect();
        assert_eq!(got, vec![(7.0, 5.0), (16.0, 6.0)]);
        let slews: Vec<f64> = l.iter().map(|c| c.s).collect();
        assert_eq!(slews, vec![3.0, 4.0]);
    }

    #[test]
    fn add_wire_accumulates_stage_delay() {
        let mut l = CandidateList::from_candidates(vec![cand(10.0, 1.0)]);
        l.add_wire(1.0, 2.0); // d = 1*(1 + 1) = 2
        l.add_wire(2.0, 0.0); // d = 2*(0 + 3) = 6
        assert_eq!(l.as_slice()[0].s, 8.0);
        assert_eq!(l.as_slice()[0].q, 10.0 - 8.0);
    }

    #[test]
    fn prune_slew_drops_violators_and_keeps_least_bad() {
        let mk = || {
            CandidateList::from_sorted(vec![
                cand(1.0, 1.0).with_stage_delay(5.0),
                cand(2.0, 2.0).with_stage_delay(1.0),
                cand(3.0, 3.0).with_stage_delay(9.0),
            ])
        };
        // cap = 2: only the middle candidate survives.
        let mut l = mk();
        assert_eq!(l.prune_slew(2.0), 2);
        assert_eq!(l.len(), 1);
        assert_eq!(l.as_slice()[0].q, 2.0);
        // cap = 0.5: all violate -> keep the minimum-s candidate.
        let mut l = mk();
        assert_eq!(l.prune_slew(0.5), 2);
        assert_eq!(l.len(), 1);
        assert_eq!(l.as_slice()[0].s, 1.0);
        // infinite cap: no-op.
        let mut l = mk();
        assert_eq!(l.prune_slew(f64::INFINITY), 0);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn add_wire_reprunes_reordered_candidates() {
        // High resistance punishes the big-C candidate below the small one.
        let mut l = CandidateList::from_candidates(vec![cand(10.0, 1.0), cand(11.0, 10.0)]);
        l.add_wire(1.0, 0.0); // q1 = 10-1 = 9; q2 = 11-10 = 1 -> dominated
        assert_eq!(l.len(), 1);
        assert_eq!(l.as_slice()[0].q, 9.0);
        l.debug_validate();
    }

    #[test]
    fn add_wire_zero_is_noop() {
        let mut l = CandidateList::from_candidates(vec![cand(1.0, 1.0)]);
        let before = l.clone();
        l.add_wire(0.0, 0.0);
        assert_eq!(l, before);
    }

    #[test]
    fn merge_insert_interleaves_and_prunes() {
        let mut l = CandidateList::from_candidates(vec![cand(1.0, 1.0), cand(5.0, 5.0)]);
        l.merge_insert(&[cand(3.0, 2.0), cand(4.0, 6.0)]); // second is dominated by (5,5)
        let got: Vec<(f64, f64)> = l.iter().map(|c| (c.q, c.c)).collect();
        assert_eq!(got, vec![(1.0, 1.0), (3.0, 2.0), (5.0, 5.0)]);
    }

    #[test]
    fn merge_insert_equal_c_keeps_better_q() {
        let mut l = CandidateList::from_candidates(vec![cand(2.0, 2.0)]);
        l.merge_insert(&[cand(3.0, 2.0)]);
        assert_eq!(l.as_slice(), &[cand(3.0, 2.0)]);

        let mut l = CandidateList::from_candidates(vec![cand(3.0, 2.0)]);
        l.merge_insert(&[cand(2.0, 2.0)]);
        assert_eq!(l.as_slice(), &[cand(3.0, 2.0)]);
    }

    #[test]
    fn merge_insert_dominating_beta_sweeps_list() {
        let mut l =
            CandidateList::from_candidates(vec![cand(1.0, 2.0), cand(2.0, 3.0), cand(3.0, 4.0)]);
        l.merge_insert(&[cand(10.0, 1.0)]); // dominates everything
        assert_eq!(l.as_slice(), &[cand(10.0, 1.0)]);
    }

    #[test]
    fn merge_insert_empty_incoming() {
        let mut l = CandidateList::from_candidates(vec![cand(1.0, 1.0)]);
        let before = l.clone();
        l.merge_insert(&[]);
        assert_eq!(l, before);
    }

    #[test]
    fn best_driven_maximizes_q_minus_rc() {
        let l =
            CandidateList::from_candidates(vec![cand(1.0, 1.0), cand(4.0, 2.0), cand(6.0, 5.0)]);
        // r = 1: values 0, 2, 1 -> (4,2).
        let b = l.best_driven(1.0, 0.0).unwrap();
        assert_eq!((b.q, b.c), (4.0, 2.0));
        // r = 0: values 1, 4, 6 -> (6,5).
        let b = l.best_driven(0.0, 0.0).unwrap();
        assert_eq!((b.q, b.c), (6.0, 5.0));
        // Intrinsic delay shifts all values equally: same argmax.
        let b = l.best_driven(1.0, 100.0).unwrap();
        assert_eq!((b.q, b.c), (4.0, 2.0));
    }

    #[test]
    fn best_driven_tie_breaks_to_min_c() {
        // Slope exactly 1 between the two: equal value under r = 1.
        let l = CandidateList::from_candidates(vec![cand(1.0, 1.0), cand(2.0, 2.0)]);
        let b = l.best_driven(1.0, 0.0).unwrap();
        assert_eq!((b.q, b.c), (1.0, 1.0));
    }

    #[test]
    fn best_driven_empty_is_none() {
        assert!(CandidateList::new().best_driven(1.0, 0.0).is_none());
    }

    #[test]
    fn driven_q_formula() {
        let c = cand(10.0, 3.0);
        assert_eq!(c.driven_q(2.0, 1.0), 10.0 - 1.0 - 6.0);
    }

    #[test]
    fn push_pruned_c_order_cases() {
        let mut v = vec![cand(1.0, 1.0)];
        // dominated: same c, worse q
        push_pruned_c_order(&mut v, cand(0.5, 1.0));
        assert_eq!(v.len(), 1);
        // replacement: same c, better q
        push_pruned_c_order(&mut v, cand(2.0, 1.0));
        assert_eq!(v, vec![cand(2.0, 1.0)]);
        // dominated: larger c, worse-or-equal q
        push_pruned_c_order(&mut v, cand(2.0, 3.0));
        assert_eq!(v.len(), 1);
        // extends
        push_pruned_c_order(&mut v, cand(3.0, 3.0));
        assert_eq!(v.len(), 2);
    }
}
