//! Skew-aware buffer insertion: the `(Q, C)` recursion extended with
//! per-sink **arrival windows**.
//!
//! Clock trees care about *skew* — the spread `max − min` of sink arrival
//! times — alongside (or instead of) worst-case slack. This module carries
//! a window `[lo, hi]` on every candidate: the minimum and maximum Elmore
//! delay from the candidate's node down to any sink of its subtree, under
//! the buffering decisions that candidate encodes. The recursion is
//! mechanical:
//!
//! * **sink** — `lo = hi = 0`;
//! * **wire** — the stage delay `d` every downstream sink sees is added to
//!   both ends (`lo += d`, `hi += d`), exactly the `d` subtracted from `q`;
//! * **merge** — `lo = min(lo_l, lo_r)`, `hi = max(hi_l, hi_r)`;
//! * **buffer** — the buffer stage delay `K + R·C(α)` is added to both ends.
//!
//! The window width `hi − lo` is therefore *invariant* under wire and
//! buffer steps and monotonically non-decreasing at merges, which yields
//! the one safe pruning rule: under a skew bound `W`, a candidate whose
//! width already exceeds `W` can never recover and may be dropped.
//!
//! **Exactness.** The windows are pure *passengers*: they never influence
//! which candidates survive `(q, c)` dominance pruning, which `α` the hull
//! walk picks, or which root candidate is driven. With **no skew bound**
//! the solver below therefore reproduces [`Solver`](crate::Solver)
//! bit-for-bit — same slack, same placements — while additionally reporting
//! the skew and latency of the optimal-slack solution. With a bound, the
//! solver applies the safe width rule plus standard `(q, c)` dominance;
//! that combination is a *heuristic* for skew-constrained optimization: a
//! dominated candidate with a narrower window can, in pathological trees,
//! be the only route to a feasible solution (no tractable exact dominance
//! exists for the 4-dimensional `(q, c, lo, hi)` state — see ALGORITHM.md
//! §11). Solutions reported with `skew_ok = true` are genuinely feasible
//! and their slack is a lower bound on the true optimum; an infeasibility
//! report is conservative. This mirrors the repo's other deliberate
//! projections ([`Algorithm::LiShiPermanent`] on multi-pin nets, the slew
//! `(Q, C)`-projection).

use std::time::Instant;

use fastbuf_buflib::units::{Farads, Seconds};
use fastbuf_buflib::{BufferLibrary, BufferTypeId};
use fastbuf_rctree::delay::{DelayModel, ElmoreModel};
use fastbuf_rctree::{NodeId, NodeKind, RoutingTree, SiteConstraint, SiteVariation};

use crate::arena::{PredArena, PredEntry, PredRef};
use crate::buffering::{params, Algorithm};
use crate::hull::{prunes_middle_vals, upper_hull_cols};
use crate::solution::Placement;
use crate::stats::SolveStats;

/// A `(Q, C)` candidate carrying its subtree's sink-delay window.
///
/// `q`/`c`/`pred` play exactly the roles of [`Candidate`](crate::Candidate);
/// `lo`/`hi` are the minimum/maximum delay from this node to any sink of
/// the candidate's subtree. They are passengers: no pruning or selection
/// rule of the unbounded solve reads them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowCandidate {
    /// Required arrival time at this node (the paper's `Q`).
    pub q: f64,
    /// Downstream capacitance seen at this node (the paper's `C`).
    pub c: f64,
    /// Minimum delay from this node to any sink of the subtree.
    pub lo: f64,
    /// Maximum delay from this node to any sink of the subtree.
    pub hi: f64,
    /// Reconstruction reference.
    pub pred: PredRef,
}

impl WindowCandidate {
    /// Window width `hi − lo` — the skew this candidate commits its
    /// subtree to.
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Slack when driven through resistance `r` and intrinsic delay `k`:
    /// `q − k − r·c`. Identical expression to
    /// [`Candidate::driven_q`](crate::Candidate::driven_q).
    #[inline]
    pub fn driven_q(&self, r: f64, k: f64) -> f64 {
        self.q - k - r * self.c
    }
}

/// Appends `cand` to a c-ascending list, preserving nonredundancy — the
/// window-carrying mirror of `push_pruned_c_order`: identical `q`/`c`
/// comparisons in the identical order.
fn push_pruned(out: &mut Vec<WindowCandidate>, cand: WindowCandidate) {
    if let Some(top) = out.last_mut() {
        if cand.q <= top.q {
            return;
        }
        if cand.c == top.c {
            *top = cand;
            return;
        }
    }
    out.push(cand);
}

/// The wire step — the window-carrying mirror of
/// [`CandidateList::add_wire_model`](crate::CandidateList): same early
/// return, same in-place compaction, same `q`/`c` arithmetic; the stage
/// delay `d` additionally shifts both window ends.
fn add_wire(list: &mut Vec<WindowCandidate>, model: &dyn DelayModel, r: f64, cw: f64) {
    if r == 0.0 && cw == 0.0 {
        return;
    }
    let mut write = 0usize;
    for read in 0..list.len() {
        let mut cand = list[read];
        let d = model.wire_delay(r, cw, cand.c);
        cand.q -= d;
        cand.lo += d;
        cand.hi += d;
        cand.c += cw;
        if write > 0 {
            let top = list[write - 1];
            if cand.q <= top.q {
                continue;
            }
            if cand.c == top.c {
                list[write - 1] = cand;
                continue;
            }
        }
        list[write] = cand;
        write += 1;
    }
    list.truncate(write);
}

/// The branch merge — the window-carrying mirror of `merge_branches_pooled`
/// (two-pointer walk, tie-advance both, monotone-stack prune), with merged
/// windows `lo = min`, `hi = max`.
fn merge_branches_windowed(
    left: Vec<WindowCandidate>,
    right: Vec<WindowCandidate>,
    arena: &mut PredArena,
    track: bool,
) -> Vec<WindowCandidate> {
    if left.is_empty() {
        return right;
    }
    if right.is_empty() {
        return left;
    }
    let mut raw = Vec::with_capacity(left.len() + right.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        let a = left[i];
        let b = right[j];
        let q = a.q.min(b.q);
        let c = a.c + b.c;
        let pred = if track {
            arena.push(PredEntry::Merge {
                left: a.pred,
                right: b.pred,
            })
        } else {
            PredRef::NONE
        };
        raw.push(WindowCandidate {
            q,
            c,
            lo: a.lo.min(b.lo),
            hi: a.hi.max(b.hi),
            pred,
        });
        if a.q <= b.q {
            i += 1;
        }
        if b.q <= a.q {
            j += 1;
        }
    }
    let mut out: Vec<WindowCandidate> = Vec::with_capacity(raw.len());
    for cand in raw {
        if let Some(top) = out.last() {
            if cand.q == top.q && cand.c >= top.c {
                continue;
            }
        }
        while out.last().is_some_and(|t| t.c >= cand.c) {
            out.pop();
        }
        out.push(cand);
    }
    out
}

/// The safe skew-bound prune: drops every candidate whose window width
/// already exceeds `bound` (width never shrinks upstream). If *all*
/// candidates violate the bound the narrowest one is kept so the DP stays
/// total — the root then reports `skew_ok = false` — mirroring the shape of
/// [`CandidateList::prune_slew`](crate::CandidateList). Returns the number
/// removed.
fn prune_width(list: &mut Vec<WindowCandidate>, bound: f64) -> usize {
    if !bound.is_finite() || list.is_empty() {
        return 0;
    }
    let before = list.len();
    if list.iter().all(|c| c.width() > bound) {
        let keep = *list
            .iter()
            .min_by(|a, b| a.width().total_cmp(&b.width()))
            .expect("list is non-empty");
        list.clear();
        list.push(keep);
    } else {
        list.retain(|c| c.width() <= bound);
    }
    before - list.len()
}

/// Scratch storage reused across `AddBuffer` invocations.
#[derive(Debug, Default)]
struct SkewScratch {
    hull: Vec<u32>,
    qs: Vec<f64>,
    cs: Vec<f64>,
    beta_slots: Vec<Option<WindowCandidate>>,
    betas: Vec<WindowCandidate>,
}

/// Builds the buffered candidate for type `id` from `alpha` — the mirror of
/// `make_beta`, with the buffer stage delay `k + r·C(α)` shifting both
/// window ends. `price` is always `0.0` here (the skew solver is unpriced);
/// subtracting it keeps the expression literally identical to the engine's.
#[allow(clippy::too_many_arguments)]
fn make_window_beta(
    alpha: &WindowCandidate,
    id: BufferTypeId,
    r: f64,
    k: f64,
    c_in: f64,
    price: f64,
    node: NodeId,
    arena: &mut PredArena,
    track: bool,
) -> WindowCandidate {
    let pred = if track {
        arena.push(PredEntry::Buffer {
            node,
            buffer: id,
            prev: alpha.pred,
        })
    } else {
        PredRef::NONE
    };
    let stage = k + r * alpha.c;
    WindowCandidate {
        q: alpha.driven_q(r, k) - price,
        c: c_in,
        lo: alpha.lo + stage,
        hi: alpha.hi + stage,
        pred,
    }
}

/// Per-type full scan — the window-carrying mirror of `find_alphas_scan`
/// (the slew branch never fires here: the skew solver is Elmore-only with
/// no slew limit, so the reference's `r·c + s > cap` test against an
/// infinite cap is identically false).
#[allow(clippy::too_many_arguments)]
fn find_alphas_scan(
    list: &[WindowCandidate],
    lib: &BufferLibrary,
    constraint: &SiteConstraint,
    variation: SiteVariation,
    node: NodeId,
    arena: &mut PredArena,
    track: bool,
    beta_slots: &mut [Option<WindowCandidate>],
    stats: &mut SolveStats,
) {
    for (id, _) in lib.iter() {
        if !constraint.allows(id) {
            continue;
        }
        let (r, k, c_in, max_load) = params(lib, id, variation);
        let mut best: Option<&WindowCandidate> = None;
        for cand in list {
            stats.scan_candidate_visits += 1;
            if cand.c > max_load {
                break;
            }
            if best.is_none_or(|b| cand.driven_q(r, 0.0) > b.driven_q(r, 0.0)) {
                best = Some(cand);
            }
        }
        if let Some(alpha) = best {
            beta_slots[id.index()] = Some(make_window_beta(
                alpha, id, r, k, c_in, 0.0, node, arena, track,
            ));
        }
    }
}

/// Monotone hull walk — the window-carrying mirror of `find_alphas_walk`,
/// including the exact-scan fallback for load-limited types.
#[allow(clippy::too_many_arguments)]
fn find_alphas_walk(
    list: &[WindowCandidate],
    lib: &BufferLibrary,
    constraint: &SiteConstraint,
    variation: SiteVariation,
    node: NodeId,
    arena: &mut PredArena,
    track: bool,
    hull: &[u32],
    beta_slots: &mut [Option<WindowCandidate>],
    stats: &mut SolveStats,
) {
    let mut ptr = 0usize;
    for &id in lib.by_resistance_desc() {
        if !constraint.allows(id) {
            continue;
        }
        let (r, k, c_in, max_load) = params(lib, id, variation);
        let alpha = if max_load.is_finite() {
            let mut best: Option<&WindowCandidate> = None;
            for cand in list {
                stats.scan_candidate_visits += 1;
                if cand.c > max_load {
                    break;
                }
                if best.is_none_or(|b| cand.driven_q(r, 0.0) > b.driven_q(r, 0.0)) {
                    best = Some(cand);
                }
            }
            match best {
                Some(a) => a,
                None => continue,
            }
        } else {
            while ptr + 1 < hull.len() {
                let cur = &list[hull[ptr] as usize];
                let nxt = &list[hull[ptr + 1] as usize];
                if nxt.driven_q(r, 0.0) > cur.driven_q(r, 0.0) {
                    ptr += 1;
                    stats.hull_walk_steps += 1;
                } else {
                    break;
                }
            }
            &list[hull[ptr] as usize]
        };
        beta_slots[id.index()] = Some(make_window_beta(
            alpha, id, r, k, c_in, 0.0, node, arena, track,
        ));
    }
}

/// In-place convex prune — the window-carrying mirror of
/// [`convex_prune_in_place`](crate::convex_prune_in_place): the identical
/// cross-multiplied predicate on the identical `q`/`c` values.
fn convex_prune_windowed(v: &mut Vec<WindowCandidate>) -> usize {
    let before = v.len();
    let mut top = 0usize;
    for i in 0..v.len() {
        let cand = v[i];
        while top >= 2
            && prunes_middle_vals(
                v[top - 2].q,
                v[top - 2].c,
                v[top - 1].q,
                v[top - 1].c,
                cand.q,
                cand.c,
            )
        {
            top -= 1;
        }
        v[top] = cand;
        top += 1;
    }
    v.truncate(top);
    before - top
}

/// `AddBuffer` — the window-carrying mirror of `find_betas` + beta
/// emission: same algorithm dispatch, same `by_input_cap_asc` emission
/// order, same two-pointer merge-insert with the equal-`c` old-first tie.
#[allow(clippy::too_many_arguments)]
fn add_buffers_windowed(
    algo: Algorithm,
    list: &mut Vec<WindowCandidate>,
    lib: &BufferLibrary,
    constraint: &SiteConstraint,
    node: NodeId,
    variation: SiteVariation,
    arena: &mut PredArena,
    track: bool,
    scratch: &mut SkewScratch,
    stats: &mut SolveStats,
) {
    if list.is_empty() || lib.is_empty() || !constraint.is_site() {
        return;
    }
    stats.addbuffer_ops += 1;
    scratch.beta_slots.clear();
    scratch.beta_slots.resize(lib.len(), None);
    match algo {
        Algorithm::Lillis => find_alphas_scan(
            list,
            lib,
            constraint,
            variation,
            node,
            arena,
            track,
            &mut scratch.beta_slots,
            stats,
        ),
        Algorithm::LiShi => {
            scratch.qs.clear();
            scratch.cs.clear();
            for cand in list.iter() {
                scratch.qs.push(cand.q);
                scratch.cs.push(cand.c);
            }
            upper_hull_cols(&scratch.qs, &scratch.cs, &mut scratch.hull);
            stats.hull_builds += 1;
            stats.hull_input_candidates += list.len() as u64;
            find_alphas_walk(
                list,
                lib,
                constraint,
                variation,
                node,
                arena,
                track,
                &scratch.hull,
                &mut scratch.beta_slots,
                stats,
            );
        }
        Algorithm::LiShiPermanent => {
            stats.convex_pruned += convex_prune_windowed(list) as u64;
            scratch.hull.clear();
            scratch.hull.extend(0..list.len() as u32);
            find_alphas_walk(
                list,
                lib,
                constraint,
                variation,
                node,
                arena,
                track,
                &scratch.hull,
                &mut scratch.beta_slots,
                stats,
            );
        }
    }
    scratch.betas.clear();
    for &id in lib.by_input_cap_asc() {
        if let Some(beta) = scratch.beta_slots[id.index()].take() {
            push_pruned(&mut scratch.betas, beta);
        }
    }
    stats.betas_generated += scratch.betas.len() as u64;
    merge_insert_windowed(list, &scratch.betas);
}

/// Merges the c-sorted `incoming` betas into `list` — the mirror of
/// `CandidateList::merge_insert_into`.
fn merge_insert_windowed(list: &mut Vec<WindowCandidate>, incoming: &[WindowCandidate]) {
    if incoming.is_empty() {
        return;
    }
    let old = std::mem::take(list);
    let mut out = Vec::with_capacity(old.len() + incoming.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() || j < incoming.len() {
        let take_old = match (old.get(i), incoming.get(j)) {
            (Some(a), Some(b)) => {
                if a.c < b.c {
                    true
                } else if a.c > b.c {
                    false
                } else {
                    a.q >= b.q
                }
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!(),
        };
        let cand = if take_old {
            let c = old[i];
            i += 1;
            c
        } else {
            let c = incoming[j];
            j += 1;
            c
        };
        push_pruned(&mut out, cand);
    }
    *list = out;
}

/// The result of a [`SkewSolver::solve`].
#[derive(Clone, Debug)]
pub struct SkewSolution {
    /// Slack at the source including the driver delay — identical (bit for
    /// bit) to [`Solution::slack`](crate::Solution) when no skew bound was
    /// set.
    pub slack: Seconds,
    /// `Q` of the chosen root candidate (before the driver charge).
    pub root_q: Seconds,
    /// Capacitive load of the chosen root candidate.
    pub root_load: Farads,
    /// Sink-to-sink skew of the chosen solution: `max − min` sink delay.
    pub skew: Seconds,
    /// Latest sink arrival (insertion delay), driver stage included.
    pub latency_max: Seconds,
    /// Earliest sink arrival, driver stage included.
    pub latency_min: Seconds,
    /// `true` when no skew bound was set, or when the chosen solution
    /// meets it. `false` means no candidate within the bound survived —
    /// the tree is infeasible under the bound *as far as the pruned search
    /// can tell* (the width prune is safe but the `(q, c)` dominance is a
    /// projection; see the [module docs](self)) — and the returned
    /// solution is the narrowest-window fallback.
    pub skew_ok: bool,
    /// The buffers to insert (empty when tracking was disabled).
    pub placements: Vec<Placement>,
    /// Which `AddBuffer` algorithm ran.
    pub algorithm: Algorithm,
    /// Whether placements were reconstructed.
    pub tracked: bool,
    /// Operation counters and timing.
    pub stats: SolveStats,
}

impl SkewSolution {
    /// Placements as `(node, buffer)` pairs, the form the forward
    /// [`elmore::evaluate`](fastbuf_rctree::elmore::evaluate) oracle takes.
    pub fn placement_pairs(&self) -> Vec<(NodeId, BufferTypeId)> {
        self.placements.iter().map(|p| (p.node, p.buffer)).collect()
    }
}

/// Skew-aware optimal buffer insertion; see the [module docs](self).
///
/// Elmore-only by construction (windows accumulate the same stage delays
/// the `q` recursion subtracts); no slew limits. The `fastbuf-api` layer
/// gates `Objective::SkewTarget` accordingly.
///
/// # Example
///
/// ```
/// use fastbuf_buflib::BufferLibrary;
/// use fastbuf_core::skew::SkewSolver;
///
/// let lib = BufferLibrary::paper_synthetic(8)?;
/// let tree = fastbuf_netgen::h_tree(3);
/// let sol = SkewSolver::new(&tree, &lib).solve();
/// // A symmetric H-tree buffers symmetrically: zero skew.
/// assert!(sol.skew.picos() < 1e-6);
/// assert!(sol.skew_ok);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SkewSolver<'a> {
    tree: &'a RoutingTree,
    library: &'a BufferLibrary,
    algorithm: Algorithm,
    track_predecessors: bool,
    max_skew: Option<Seconds>,
}

impl<'a> SkewSolver<'a> {
    /// Creates a solver with the default algorithm ([`Algorithm::LiShi`]),
    /// tracking on, and no skew bound.
    pub fn new(tree: &'a RoutingTree, library: &'a BufferLibrary) -> Self {
        SkewSolver {
            tree,
            library,
            algorithm: Algorithm::LiShi,
            track_predecessors: true,
            max_skew: None,
        }
    }

    /// Selects the `AddBuffer` algorithm.
    #[must_use]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Enables or disables placement reconstruction.
    #[must_use]
    pub fn track_predecessors(mut self, track: bool) -> Self {
        self.track_predecessors = track;
        self
    }

    /// Sets the skew bound (`None` = unbounded, the bit-identical mode).
    #[must_use]
    pub fn max_skew(mut self, bound: Option<Seconds>) -> Self {
        self.max_skew = bound;
        self
    }

    /// Runs the window-carrying DP. Panics never; infeasibility under a
    /// bound is reported via [`SkewSolution::skew_ok`].
    pub fn solve(&self) -> SkewSolution {
        let start = Instant::now();
        let tree = self.tree;
        let lib = self.library;
        let track = self.track_predecessors;
        let algo = self.algorithm;
        let model: &dyn DelayModel = &ElmoreModel;
        let bound = self.max_skew.map_or(f64::INFINITY, |s| s.value());

        let mut stats = SolveStats::default();
        let mut arena = PredArena::new();
        let mut scratch = SkewScratch::default();
        let mut lists: Vec<Option<Vec<WindowCandidate>>> = vec![None; tree.node_count()];

        for &node in tree.postorder() {
            let list = match tree.kind(node) {
                NodeKind::Sink {
                    capacitance,
                    required_arrival,
                } => {
                    vec![WindowCandidate {
                        q: required_arrival.value(),
                        c: capacitance.value(),
                        lo: 0.0,
                        hi: 0.0,
                        pred: PredRef::NONE,
                    }]
                }
                NodeKind::Internal | NodeKind::Source { .. } => {
                    let mut acc: Option<Vec<WindowCandidate>> = None;
                    for &child in tree.children(node) {
                        let mut cl = lists[child.index()]
                            .take()
                            .expect("post-order guarantees children are done");
                        let wire = tree
                            .wire_to_parent(child)
                            .expect("non-root child has a wire");
                        add_wire(
                            &mut cl,
                            model,
                            wire.resistance().value(),
                            wire.capacitance().value(),
                        );
                        stats.wire_ops += 1;
                        acc = Some(match acc {
                            None => cl,
                            Some(prev) => {
                                stats.merge_ops += 1;
                                let mut merged =
                                    merge_branches_windowed(prev, cl, &mut arena, track);
                                // Width only grows at merges, so this is the
                                // one place the skew bound prunes.
                                prune_width(&mut merged, bound);
                                merged
                            }
                        });
                    }
                    let mut list = acc.expect("internal nodes have children");
                    if tree.is_buffer_site(node) {
                        add_buffers_windowed(
                            algo,
                            &mut list,
                            lib,
                            tree.site_constraint(node),
                            node,
                            tree.site_variation(node),
                            &mut arena,
                            track,
                            &mut scratch,
                            &mut stats,
                        );
                    }
                    list
                }
            };
            stats.max_list_len = stats.max_list_len.max(list.len());
            lists[node.index()] = Some(list);
        }

        let root_list = lists[tree.root().index()]
            .take()
            .expect("root processed last");
        stats.root_list_len = root_list.len();
        let driver = tree.driver();
        let (dr, dk) = (
            driver.resistance().value(),
            driver.intrinsic_delay().value(),
        );
        let (best, skew_ok) = if !bound.is_finite() {
            // Mirror of `CandidateList::best_driven`: strict `>`, ties keep
            // the earlier (smaller-C) candidate.
            let mut b = &root_list[0];
            for cand in &root_list[1..] {
                if cand.driven_q(dr, dk) > b.driven_q(dr, dk) {
                    b = cand;
                }
            }
            (*b, true)
        } else {
            let mut choice: Option<&WindowCandidate> = None;
            for cand in root_list.iter().filter(|c| c.width() <= bound) {
                if choice.is_none_or(|b| cand.driven_q(dr, dk) > b.driven_q(dr, dk)) {
                    choice = Some(cand);
                }
            }
            match choice {
                Some(c) => (*c, true),
                None => (
                    *root_list
                        .iter()
                        .min_by(|a, b| a.width().total_cmp(&b.width()))
                        .expect("candidate lists are never empty"),
                    false,
                ),
            }
        };

        let placements = if track {
            arena
                .collect_placements(best.pred)
                .into_iter()
                .map(Into::into)
                .collect()
        } else {
            Vec::new()
        };
        stats.arena_entries = arena.len();
        stats.elapsed = start.elapsed();

        let driver_delay = dk + dr * best.c;
        SkewSolution {
            slack: Seconds::new(best.q - dk - dr * best.c),
            root_q: Seconds::new(best.q),
            root_load: Farads::new(best.c),
            skew: Seconds::new(best.hi - best.lo),
            latency_max: Seconds::new(driver_delay + best.hi),
            latency_min: Seconds::new(driver_delay + best.lo),
            skew_ok,
            placements,
            algorithm: algo,
            tracked: track,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Solver;
    use fastbuf_buflib::units::{Microns, Ohms};
    use fastbuf_buflib::{Driver, Technology};
    use fastbuf_rctree::{elmore, TreeBuilder, Wire};

    fn lib() -> BufferLibrary {
        BufferLibrary::paper_synthetic(8).unwrap()
    }

    #[test]
    fn unbounded_matches_plain_solver_bitwise() {
        let lib = lib();
        for tree in [
            fastbuf_netgen::h_tree(3),
            fastbuf_netgen::caterpillar_net(12, Microns::new(700.0), Microns::new(150.0)),
        ] {
            for algo in Algorithm::ALL {
                let plain = Solver::new(&tree, &lib).algorithm(algo).solve();
                let skew = SkewSolver::new(&tree, &lib).algorithm(algo).solve();
                assert_eq!(
                    plain.slack.value().to_bits(),
                    skew.slack.value().to_bits(),
                    "{algo:?}"
                );
                assert_eq!(plain.placements, skew.placements, "{algo:?}");
                assert_eq!(
                    plain.root_load.value().to_bits(),
                    skew.root_load.value().to_bits()
                );
                assert!(skew.skew_ok);
            }
        }
    }

    #[test]
    fn reported_skew_matches_forward_evaluation() {
        let lib = lib();
        let tree = fastbuf_netgen::caterpillar_net(10, Microns::new(900.0), Microns::new(200.0));
        let sol = SkewSolver::new(&tree, &lib).solve();
        let report = elmore::evaluate(&tree, &lib, &sol.placement_pairs()).unwrap();
        // arrival(sink) = RAT(sink) − slack(sink); skew = max − min arrival.
        let arrivals: Vec<f64> = report
            .sink_slacks
            .iter()
            .map(|&(n, s)| match tree.kind(n) {
                NodeKind::Sink {
                    required_arrival, ..
                } => required_arrival.value() - s.value(),
                _ => unreachable!(),
            })
            .collect();
        let measured = arrivals.iter().cloned().fold(f64::MIN, f64::max)
            - arrivals.iter().cloned().fold(f64::MAX, f64::min);
        let predicted = sol.skew.value();
        assert!(
            (measured - predicted).abs() <= 1e-9 * measured.abs().max(1e-12),
            "skew mismatch: DP {predicted} vs measured {measured}"
        );
    }

    #[test]
    fn symmetric_h_tree_has_zero_skew() {
        let sol = SkewSolver::new(&fastbuf_netgen::h_tree(3), &lib()).solve();
        assert!(sol.skew.picos().abs() < 1e-6, "skew = {}", sol.skew);
        assert!(sol.latency_max >= sol.latency_min);
    }

    #[test]
    fn width_prune_keeps_narrowest_when_all_violate() {
        let mut l = vec![
            WindowCandidate {
                q: 1.0,
                c: 1.0,
                lo: 0.0,
                hi: 5.0,
                pred: PredRef::NONE,
            },
            WindowCandidate {
                q: 2.0,
                c: 2.0,
                lo: 1.0,
                hi: 4.0,
                pred: PredRef::NONE,
            },
        ];
        assert_eq!(prune_width(&mut l, 1.0), 1);
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].width(), 3.0);
        // No bound: untouched.
        assert_eq!(prune_width(&mut l, f64::INFINITY), 0);
    }

    #[test]
    fn bounded_solution_is_feasible_or_flagged() {
        let lib = lib();
        // An asymmetric two-branch net with genuinely different path depths.
        let tech = Technology::tsmc180_like();
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(Ohms::new(150.0)));
        let fork = b.buffer_site();
        let near = b.sink(
            fastbuf_buflib::units::Farads::from_femto(10.0),
            Seconds::from_pico(2000.0),
        );
        let s1 = b.buffer_site();
        let far = b.sink(
            fastbuf_buflib::units::Farads::from_femto(10.0),
            Seconds::from_pico(2000.0),
        );
        b.connect(src, fork, Wire::from_length(&tech, Microns::new(500.0)))
            .unwrap();
        b.connect(fork, near, Wire::from_length(&tech, Microns::new(400.0)))
            .unwrap();
        b.connect(fork, s1, Wire::from_length(&tech, Microns::new(3000.0)))
            .unwrap();
        b.connect(s1, far, Wire::from_length(&tech, Microns::new(3000.0)))
            .unwrap();
        let tree = b.build().unwrap();

        let free = SkewSolver::new(&tree, &lib).solve();
        assert!(free.skew.value() > 0.0);
        // A bound looser than the free solution's skew changes nothing.
        let loose = SkewSolver::new(&tree, &lib)
            .max_skew(Some(Seconds::new(free.skew.value() * 2.0)))
            .solve();
        assert!(loose.skew_ok);
        assert!(loose.skew.value() <= free.skew.value() * 2.0);
        // A bound of zero on an asymmetric tree is infeasible: flagged, and
        // the fallback still returns a total solution.
        let tight = SkewSolver::new(&tree, &lib)
            .max_skew(Some(Seconds::ZERO))
            .solve();
        assert!(!tight.skew_ok);
        assert!(tight.skew.value() > 0.0);
    }
}
