//! Slew-constraint bookkeeping shared by the DP operations.
//!
//! A per-net maximum output slew translates, through the delay model's
//! [`stage_budget`](fastbuf_rctree::delay::DelayModel::stage_budget), into
//! budgets on the quantity `R·C + s` every candidate must satisfy when its
//! stage is closed by a driver:
//!
//! * the **wire/merge budget** [`SlewPolicy::cap`] assumes the most lenient
//!   possible closure (a zero-output-slew driver as `R → 0`, e.g. the
//!   source): a candidate whose `s` alone exceeds it is infeasible in
//!   every completion and is pruned eagerly;
//! * the **per-type budgets** [`SlewPolicy::type_cap`] fold in each buffer
//!   type's intrinsic output slew, and gate which candidates `AddBuffer`
//!   may close with that type.

use fastbuf_buflib::{BufferLibrary, BufferTypeId};
use fastbuf_rctree::delay::DelayModel;

/// Precomputed slew budgets for one solve. `cap = ∞` means unconstrained
/// and makes every check a no-op.
#[derive(Clone, Debug)]
pub(crate) struct SlewPolicy {
    /// Budget on `R·C + s` for a zero-output-slew driver (`∞` = no limit).
    pub cap: f64,
    /// Per-buffer-type budgets, indexed by [`BufferTypeId`]; empty when
    /// unconstrained.
    type_caps: Vec<f64>,
}

impl SlewPolicy {
    /// The policy of an unconstrained solve.
    pub fn unlimited() -> Self {
        SlewPolicy {
            cap: f64::INFINITY,
            type_caps: Vec::new(),
        }
    }

    /// Budgets for `limit` (seconds; non-finite = unconstrained) under
    /// `model`, one per type of `lib`.
    pub fn new(model: &dyn DelayModel, lib: &BufferLibrary, limit: f64) -> Self {
        if !limit.is_finite() {
            return SlewPolicy::unlimited();
        }
        SlewPolicy {
            cap: model.stage_budget(limit, 0.0),
            type_caps: lib
                .iter()
                .map(|(_, b)| model.stage_budget(limit, b.output_slew().value()))
                .collect(),
        }
    }

    /// `true` when a finite limit is in force.
    #[inline]
    pub fn active(&self) -> bool {
        self.cap.is_finite()
    }

    /// The `R·C + s` budget for stages closed by buffer type `id` (`∞`
    /// when unconstrained).
    #[inline]
    pub fn type_cap(&self, id: BufferTypeId) -> f64 {
        if self.type_caps.is_empty() {
            f64::INFINITY
        } else {
            self.type_caps[id.index()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbuf_buflib::units::{Farads, Ohms, Seconds};
    use fastbuf_buflib::BufferType;
    use fastbuf_rctree::delay::{ElmoreModel, LN9};

    #[test]
    fn budgets_account_for_output_slew() {
        let lib = BufferLibrary::new(vec![
            BufferType::new(
                "fast",
                Ohms::new(100.0),
                Farads::from_femto(5.0),
                Seconds::ZERO,
            ),
            BufferType::new(
                "slow",
                Ohms::new(200.0),
                Farads::from_femto(5.0),
                Seconds::ZERO,
            )
            .with_output_slew(Seconds::from_pico(10.0)),
        ])
        .unwrap();
        let p = SlewPolicy::new(&ElmoreModel, &lib, 50e-12);
        assert!(p.active());
        assert!((p.cap - 50e-12 / LN9).abs() < 1e-24);
        assert!((p.type_cap(BufferTypeId::new(0)) - 50e-12 / LN9).abs() < 1e-24);
        assert!((p.type_cap(BufferTypeId::new(1)) - 40e-12 / LN9).abs() < 1e-24);
    }

    #[test]
    fn infinite_limit_is_inactive() {
        let lib = BufferLibrary::paper_synthetic(2).unwrap();
        for p in [
            SlewPolicy::unlimited(),
            SlewPolicy::new(&ElmoreModel, &lib, f64::INFINITY),
        ] {
            assert!(!p.active());
            assert_eq!(p.type_cap(BufferTypeId::new(0)), f64::INFINITY);
        }
    }
}
