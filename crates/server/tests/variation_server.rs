//! Variation solves under concurrent ECO pressure.
//!
//! Clients hammer one resident design with Monte-Carlo yield solves while
//! other clients interleave an (idempotent) ECO edit against the same
//! design. The contract under test: every variation reply is bit-identical
//! to a direct in-process [`Session`] yield solve of one of the two trees
//! the design can legally be in (pristine, or post-edit) — never a blend.
//! A mid-request edit bleeding into another client's sample family would
//! produce per-sample slacks matching neither signature and fail here.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;

use fastbuf_api::wire::{self, Json};
use fastbuf_api::{Objective, Scenario, Session};
use fastbuf_buflib::units::Microns;
use fastbuf_buflib::BufferLibrary;
use fastbuf_incremental::parse_edits;
use fastbuf_netgen::line_net;
use fastbuf_rctree::{io as netio, RoutingTree};
use fastbuf_server::{Server, ServerConfig};

/// The spec every client sends: wire R/C variation over half the tree.
const SPEC: &str = "wire-r normal 1.0 0.05\nwire-c normal 1.0 0.05\nlocality 0.5\nseed 5\n";
const SAMPLES: usize = 12;
/// Idempotent: any number of applications leaves the same tree.
const ECO_EDIT: &str = "rat n11 -250";

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn ok(&mut self, id: &str, frame: &str) -> Json {
        writeln!(self.writer, "{frame}").expect("send");
        self.writer.flush().expect("flush");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("reply");
        let reply = Json::parse(line.trim()).expect("reply is valid JSON");
        assert_eq!(reply.get("id").and_then(Json::as_str), Some(id));
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "expected ok reply: {}",
            reply.to_json()
        );
        reply.get("result").expect("result").clone()
    }
}

fn lib_text() -> String {
    BufferLibrary::paper_synthetic(6).unwrap().to_text()
}

/// The tree as the server sees it (round-tripped through the text format).
fn net_a() -> RoutingTree {
    netio::parse(&netio::write(&line_net(Microns::new(8_000.0), 10))).unwrap()
}

/// Every float of a variation record as exact bit patterns, including the
/// full per-sample array — "close" is not "equal" here.
fn vsig(record: &Json) -> Vec<u64> {
    let f = |k: &str| {
        record
            .get(k)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("missing {k}"))
            .to_bits()
    };
    let u = |k: &str| record.get(k).and_then(Json::as_u64).unwrap();
    let mut sig = vec![
        u("samples"),
        f("quantile"),
        f("quantile_slack_ps"),
        f("min_slack_ps"),
        f("max_slack_ps"),
        f("mean_slack_ps"),
        f("yield"),
    ];
    for sample in record.get("per_sample").and_then(Json::as_array).unwrap() {
        sig.push(sample.get("index").and_then(Json::as_u64).unwrap());
        sig.push(
            sample
                .get("slack_ps")
                .and_then(Json::as_f64)
                .unwrap()
                .to_bits(),
        );
        sig.push(u64::from(
            sample.get("slew_ok").and_then(Json::as_bool).unwrap(),
        ));
    }
    sig
}

/// A direct in-process yield solve of `tree`, serialized through the same
/// wire record the server replies with.
fn direct_variation_sig(tree: &RoutingTree) -> Vec<u64> {
    let session = Session::builder(BufferLibrary::from_text(&lib_text()).unwrap()).build();
    let spec = fastbuf_api::parse_variation_spec(SPEC).unwrap();
    let outcome = session
        .request(tree)
        .objective(Objective::YieldTarget {
            samples: SAMPLES,
            quantile: 0.5,
        })
        .variation(spec)
        .scenarios(vec![Scenario::default()])
        .workers(1)
        .solve()
        .unwrap();
    let record = wire::variation_record(&outcome.scenarios[0], false, true).unwrap();
    vsig(&Json::parse(&record).unwrap())
}

#[test]
fn variation_solves_stay_bit_identical_under_interleaved_ecos() {
    const CLIENTS: usize = 4;
    const REQUESTS: usize = 6;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = Server::new(ServerConfig {
        workers: 4,
        max_inflight: 8,
        ..ServerConfig::default()
    });
    let server_thread = thread::spawn(move || server.serve_tcp(listener).unwrap());

    let mut admin = Client::connect(addr);
    admin.ok(
        "load-a",
        &format!(
            r#"{{"v": 1, "id": "load-a", "op": "load", "design": "a", "net": {}, "lib": {}}}"#,
            Json::Str(netio::write(&net_a())).to_json(),
            Json::Str(lib_text()).to_json(),
        ),
    );

    // The two legal sample families: the pristine tree, and the tree after
    // the idempotent edit has committed.
    let want_pristine = direct_variation_sig(&net_a());
    let edited_tree = {
        let session = Session::builder(BufferLibrary::from_text(&lib_text()).unwrap()).build();
        let mut solver = session.eco(&net_a(), vec![Scenario::default()]).unwrap();
        solver.apply_all(&parse_edits(ECO_EDIT).unwrap()).unwrap();
        solver.tree().clone()
    };
    let want_edited = direct_variation_sig(&edited_tree);
    assert_ne!(
        want_pristine, want_edited,
        "the edit must move the slack distribution, or the test is vacuous"
    );

    let yield_frame = |id: &str| {
        format!(
            r#"{{"v": 1, "id": "{id}", "op": "solve", "design": "a", "variation": {}, "samples": {SAMPLES}, "quantile": 0.5}}"#,
            Json::Str(SPEC.to_owned()).to_json(),
        )
    };

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let yield_frame = yield_frame(&format!("c{c}"));
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut sigs = Vec::new();
                for i in 0..REQUESTS {
                    if c % 2 == 0 {
                        let frame = yield_frame.replace(&format!("c{c}"), &format!("c{c}-r{i}"));
                        let result = client.ok(&format!("c{c}-r{i}"), &frame);
                        let records = result.get("results").and_then(Json::as_array).unwrap();
                        assert_eq!(records.len(), 1);
                        sigs.push(vsig(&records[0]));
                    } else {
                        let id = format!("c{c}-r{i}");
                        client.ok(
                            &id,
                            &format!(
                                r#"{{"v": 1, "id": "{id}", "op": "eco", "design": "a", "edits": ["{ECO_EDIT}"]}}"#
                            ),
                        );
                    }
                }
                sigs
            })
        })
        .collect();

    let all_sigs: Vec<Vec<u64>> = workers
        .into_iter()
        .flat_map(|w| w.join().unwrap())
        .collect();
    assert!(!all_sigs.is_empty());
    for (i, sig) in all_sigs.iter().enumerate() {
        assert!(
            *sig == want_pristine || *sig == want_edited,
            "reply {i} matches neither legal sample family — an ECO edit \
             bled into a variation solve mid-request"
        );
    }

    // After the dust settles the committed tree is the edited one, and a
    // fresh variation solve must match it exactly.
    let result = admin.ok("final", &yield_frame("final"));
    let records = result.get("results").and_then(Json::as_array).unwrap();
    assert_eq!(vsig(&records[0]), want_edited);

    // Yield parameters without a variation block are a typed error, and
    // eco refuses variation blocks outright.
    let mut hostile = Client::connect(addr);
    for (id, frame) in [
        (
            "orphan",
            r#"{"v": 1, "id": "orphan", "op": "solve", "design": "a", "samples": 4}"#.to_owned(),
        ),
        (
            "vareco",
            format!(
                r#"{{"v": 1, "id": "vareco", "op": "eco", "design": "a", "edits": ["{ECO_EDIT}"], "variation": {}}}"#,
                Json::Str(SPEC.to_owned()).to_json(),
            ),
        ),
    ] {
        writeln!(hostile.writer, "{frame}").unwrap();
        hostile.writer.flush().unwrap();
        let mut line = String::new();
        hostile.reader.read_line(&mut line).unwrap();
        let reply = Json::parse(line.trim()).unwrap();
        assert_eq!(reply.get("id").and_then(Json::as_str), Some(id));
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            reply
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("bad-request"),
            "{line}"
        );
    }
    // A malformed spec maps to the solver's typed parse error.
    writeln!(
        hostile.writer,
        r#"{{"v": 1, "id": "badspec", "op": "solve", "design": "a", "variation": "wire-r normal 1.0 -0.5"}}"#
    )
    .unwrap();
    hostile.writer.flush().unwrap();
    let mut line = String::new();
    hostile.reader.read_line(&mut line).unwrap();
    let reply = Json::parse(line.trim()).unwrap();
    assert_eq!(
        reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("variation-parse"),
        "{line}"
    );

    admin.ok("bye", r#"{"v": 1, "id": "bye", "op": "shutdown"}"#);
    server_thread.join().expect("server thread");
}
