//! Concurrent clients hammering one TCP server.
//!
//! Four client threads interleave `solve` and `eco` requests across two
//! resident designs while the test asserts the server's core contract:
//! every response is routed to the connection that asked (the echoed
//! `id`), solve results are **bit-identical** to a direct in-process
//! [`Session`] solve and eco results to a direct [`EcoSolver`] run,
//! malformed frames and over-deadline requests get typed error replies,
//! and the process stays up through all of it until a `shutdown` op
//! drains the pool.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;

use fastbuf_api::wire::{self, Json};
use fastbuf_api::{Scenario, Session};
use fastbuf_buflib::units::Microns;
use fastbuf_buflib::BufferLibrary;
use fastbuf_incremental::parse_edits;
use fastbuf_netgen::line_net;
use fastbuf_rctree::{io as netio, RoutingTree};
use fastbuf_server::{Server, ServerConfig};

/// One synchronous client: a request frame in, its reply frame out.
/// Each thread keeps one in-flight request per connection, so replies
/// landing on the *wrong* connection would surface as an id mismatch.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, id: &str, frame: &str) -> Json {
        writeln!(self.writer, "{frame}").expect("send");
        self.writer.flush().expect("flush");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("reply");
        let reply = Json::parse(line.trim()).expect("reply is valid JSON");
        assert_eq!(
            reply.get("id").and_then(Json::as_str),
            Some(id),
            "reply routed to the wrong request: {line}"
        );
        reply
    }

    fn ok(&mut self, id: &str, frame: &str) -> Json {
        let reply = self.roundtrip(id, frame);
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "expected ok reply: {}",
            reply.to_json()
        );
        reply
            .get("result")
            .expect("ok replies carry a result")
            .clone()
    }

    fn err_code(&mut self, id: &str, frame: &str) -> String {
        let reply = self.roundtrip(id, frame);
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
        reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .expect("error replies carry a code")
            .to_owned()
    }
}

fn lib_text() -> String {
    BufferLibrary::paper_synthetic(6).unwrap().to_text()
}

/// Nets round-trip through the text format: the server parses what the
/// `load` frame carried, so a bit-identity check must solve the *parsed*
/// tree, not the generator's in-memory one.
fn net_a() -> RoutingTree {
    netio::parse(&netio::write(&line_net(Microns::new(8_000.0), 10))).unwrap()
}

fn net_b() -> RoutingTree {
    netio::parse(&netio::write(&line_net(Microns::new(6_000.0), 8))).unwrap()
}

fn load_frame(id: &str, design: &str, tree: &RoutingTree) -> String {
    format!(
        r#"{{"v": 1, "id": "{id}", "op": "load", "design": "{design}", "net": {}, "lib": {}}}"#,
        Json::Str(netio::write(tree)).to_json(),
        Json::Str(lib_text()).to_json(),
    )
}

/// The bit-pattern signature of a solve record: every float compared by
/// `to_bits`, so "close" is not "equal" — only the exact same bits pass.
#[derive(Debug, PartialEq, Eq, Clone)]
struct Signature {
    slack_before: u64,
    slack_after: u64,
    slew_before: u64,
    max_slew: u64,
    cost: u64,
    buffers: u64,
    sinks: u64,
    sites: u64,
    slew_ok: bool,
}

impl Signature {
    fn of_reply(result: &Json) -> Signature {
        let records = result
            .get("results")
            .and_then(Json::as_array)
            .expect("solve results");
        assert_eq!(records.len(), 1, "one default scenario");
        Signature::of_record(&records[0])
    }

    fn of_record(record: &Json) -> Signature {
        let f = |key: &str| {
            record
                .get(key)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("missing {key}"))
                .to_bits()
        };
        let u = |key: &str| record.get(key).and_then(Json::as_u64).unwrap();
        Signature {
            slack_before: f("slack_before_ps"),
            slack_after: f("slack_after_ps"),
            slew_before: f("slew_before_ps"),
            max_slew: f("max_slew_ps"),
            cost: f("cost"),
            buffers: u("buffers"),
            sinks: u("sinks"),
            sites: u("sites"),
            slew_ok: record.get("slew_ok").and_then(Json::as_bool).unwrap(),
        }
    }

    fn of_owned(record: &fastbuf_api::json::NetRecordOwned) -> Signature {
        // Round-trip through the shared serializer so float formatting is
        // byte-for-byte the same code path as the server's replies.
        Signature::of_record(&Json::parse(&record.to_json()).unwrap())
    }
}

/// What a direct, in-process solve of design `a` produces (the server
/// serves with one intra-request worker; cross-request parallelism comes
/// from its pool).
fn direct_solve_signature() -> Signature {
    let session = Session::builder(BufferLibrary::from_text(&lib_text()).unwrap()).build();
    let tree = net_a();
    let outcome = session
        .request(&tree)
        .scenarios(vec![Scenario::default()])
        .workers(1)
        .solve()
        .unwrap();
    let record = wire::scenario_record(
        "a",
        0,
        &tree,
        session.library(),
        &outcome.scenarios[0],
        false,
        false,
    )
    .unwrap();
    Signature::of_owned(&record)
}

/// What a direct [`EcoSolver`] run produces for design `b` after the
/// (idempotent) edit every eco request applies.
fn direct_eco_signature(edit: &str) -> Signature {
    let session = Session::builder(BufferLibrary::from_text(&lib_text()).unwrap()).build();
    let mut solver = session.eco(&net_b(), vec![Scenario::default()]).unwrap();
    solver.apply_all(&parse_edits(edit).unwrap()).unwrap();
    let outcome = solver.solve().unwrap();
    let record = wire::scenario_record(
        "b",
        0,
        solver.tree(),
        session.library(),
        &outcome.scenarios[0],
        false,
        false,
    )
    .unwrap();
    Signature::of_owned(&record)
}

#[test]
fn newline_free_floods_are_capped_with_too_large_and_dropped() {
    const MAX_FRAME: usize = 1024;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = Server::new(ServerConfig {
        workers: 2,
        max_frame_bytes: MAX_FRAME,
        ..ServerConfig::default()
    });
    let server_thread = thread::spawn(move || server.serve_tcp(listener).unwrap());

    // A newline-free line at the reader's hard cap (frame limit plus
    // newline slack): the server must answer `too-large` after reading
    // at most that many bytes — not buffer until a newline shows up —
    // and then hang up on the connection.
    let mut flood = Client::connect(addr);
    flood.writer.write_all(&vec![b'x'; MAX_FRAME + 2]).unwrap();
    flood.writer.flush().unwrap();
    let mut line = String::new();
    flood.reader.read_line(&mut line).unwrap();
    let reply = Json::parse(line.trim()).expect("typed too-large reply");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("too-large")
    );
    line.clear();
    assert_eq!(
        flood.reader.read_line(&mut line).unwrap(),
        0,
        "over-cap connection must be dropped"
    );

    // The server itself is unharmed: fresh connections keep working.
    let mut fresh = Client::connect(addr);
    fresh.ok("alive", r#"{"v": 1, "id": "alive", "op": "ping"}"#);
    fresh.ok("bye", r#"{"v": 1, "id": "bye", "op": "shutdown"}"#);
    server_thread.join().expect("server thread");
}

#[test]
fn concurrent_clients_get_isolated_bit_identical_results() {
    // `rat` edits are idempotent, so any interleaving of eco requests
    // leaves design `b` in the same state and every eco reply must carry
    // the same result — a determinism check that needs no edit ordering.
    const ECO_EDIT: &str = "rat n9 -250";
    const CLIENTS: usize = 4;
    const REQUESTS: usize = 8;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = Server::new(ServerConfig {
        workers: 4,
        max_inflight: 8,
        ..ServerConfig::default()
    });
    let server_thread = thread::spawn(move || server.serve_tcp(listener).unwrap());

    let mut admin = Client::connect(addr);
    admin.ok("load-a", &load_frame("load-a", "a", &net_a()));
    admin.ok("load-b", &load_frame("load-b", "b", &net_b()));

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                (0..REQUESTS)
                    .map(|i| {
                        let id = format!("c{c}-r{i}");
                        // Even clients solve design `a`; odd clients eco
                        // design `b` — interleaved across the shared pool.
                        let frame = if c % 2 == 0 {
                            format!(
                                r#"{{"v": 1, "id": "{id}", "op": "solve", "design": "a"}}"#
                            )
                        } else {
                            format!(
                                r#"{{"v": 1, "id": "{id}", "op": "eco", "design": "b", "edits": ["{ECO_EDIT}"]}}"#
                            )
                        };
                        Signature::of_reply(&client.ok(&id, &frame))
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    let per_client: Vec<Vec<Signature>> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    let want_solve = direct_solve_signature();
    let want_eco = direct_eco_signature(ECO_EDIT);
    for (c, signatures) in per_client.iter().enumerate() {
        let want = if c % 2 == 0 { &want_solve } else { &want_eco };
        for (i, got) in signatures.iter().enumerate() {
            assert_eq!(got, want, "client {c} request {i} diverged");
        }
    }

    // The hammered server is still healthy and still has both designs.
    let stats = admin.ok("stats", r#"{"v": 1, "id": "stats", "op": "stats"}"#);
    assert_eq!(stats.get("resident").and_then(Json::as_u64), Some(2));

    // Failure modes are typed replies on the same connection, never a
    // dead process.
    let mut hostile = Client::connect(addr);
    {
        // A malformed frame has no parseable id; check the raw reply.
        writeln!(hostile.writer, "{{not json").unwrap();
        let mut line = String::new();
        hostile.reader.read_line(&mut line).unwrap();
        let reply = Json::parse(line.trim()).expect("typed reply to garbage");
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            reply
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("parse")
        );
    }
    let code = hostile.err_code("v9", r#"{"v": 9, "id": "v9", "op": "ping"}"#);
    assert_eq!(code, "unsupported-version");
    let code = hostile.err_code(
        "ghost",
        r#"{"v": 1, "id": "ghost", "op": "solve", "design": "nope"}"#,
    );
    assert_eq!(code, "unknown-design");
    let code = hostile.err_code(
        "late",
        r#"{"v": 1, "id": "late", "op": "solve", "design": "a", "deadline_ms": 0}"#,
    );
    assert_eq!(code, "deadline");
    // ...and the connection still works afterwards.
    hostile.ok("alive", r#"{"v": 1, "id": "alive", "op": "ping"}"#);

    // Graceful shutdown: the op is acknowledged, in-flight work drains,
    // and serve_tcp returns.
    admin.ok("bye", r#"{"v": 1, "id": "bye", "op": "shutdown"}"#);
    server_thread.join().expect("server thread");
}
