//! The multi-tenant design registry: warm per-design state keyed by id.
//!
//! Each loaded design owns one immutable [`Session`] (library,
//! technology, delay model, pooled workspaces) plus mutable
//! [`DesignState`] behind a `RwLock`: the current routing tree and the
//! warm per-corner [`EcoSolver`]. Reads (solves against a tree snapshot)
//! run concurrently; ECO edits serialize per design. Designs are
//! isolated — nothing is shared between ids, so evicting or reloading
//! one cannot disturb another's caches.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use fastbuf_api::{EcoSolver, Session};
use fastbuf_rctree::RoutingTree;

/// The warm per-corner incremental engine of a design, tagged with the
/// scenario fingerprint it was built for. An eco request whose scenario
/// set differs rebuilds the solver; one that matches reuses the subtree
/// caches across requests — the whole point of staying resident.
#[derive(Debug)]
pub struct EcoState {
    /// Fingerprint of the scenario set (+ defaults) the solver serves.
    pub key: String,
    /// The warm engine: one persistent subtree cache per corner.
    pub solver: EcoSolver,
}

/// The mutable state of a design.
#[derive(Debug)]
pub struct DesignState {
    /// The current routing tree (updated by each applied ECO edit).
    pub tree: Arc<RoutingTree>,
    /// The warm ECO engine, if an eco request has run.
    pub eco: Option<EcoState>,
}

/// Per-design request counters, incremented lock-free by the handler as
/// requests complete. Counters only ever count **successful** requests
/// (a failed solve or a rejected ECO batch leaves them untouched), with
/// one exception: `eco_warm_hits`/`eco_rebuilds` count at engine-lookup
/// time, so a warm hit whose edits are later rejected still registers —
/// that is exactly the reuse the stats are there to observe.
#[derive(Debug, Default)]
pub struct RequestMetrics {
    /// Plain (deterministic) solve requests completed.
    pub solves: AtomicU64,
    /// Monte-Carlo variation solve requests completed.
    pub variations: AtomicU64,
    /// ECO requests committed (tree updated).
    pub ecos: AtomicU64,
    /// ECO requests served by a resident warm engine (scenario
    /// fingerprint matched).
    pub eco_warm_hits: AtomicU64,
    /// ECO requests that had to build (or rebuild) the engine.
    pub eco_rebuilds: AtomicU64,
}

impl RequestMetrics {
    /// Relaxed-load snapshot as `(solves, variations, ecos, warm_hits,
    /// rebuilds)`.
    fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.solves.load(Ordering::Relaxed),
            self.variations.load(Ordering::Relaxed),
            self.ecos.load(Ordering::Relaxed),
            self.eco_warm_hits.load(Ordering::Relaxed),
            self.eco_rebuilds.load(Ordering::Relaxed),
        )
    }
}

/// One resident design.
#[derive(Debug)]
pub struct Design {
    /// The registry key.
    pub id: String,
    /// The immutable solve context (library, technology, delay model,
    /// workspace pool) shared by every request against this design.
    pub session: Session,
    /// Tree + ECO caches; `read` to solve, `write` to edit.
    pub state: RwLock<DesignState>,
    /// Lifetime request counters (reset when the design is reloaded).
    pub metrics: RequestMetrics,
    /// Logical timestamp of the last request that touched this design.
    last_used: AtomicU64,
}

/// Designs keyed by id with LRU eviction.
#[derive(Debug)]
pub struct DesignRegistry {
    designs: Mutex<HashMap<String, Arc<Design>>>,
    /// Monotonic logical clock; bumped on every touch.
    clock: AtomicU64,
    max_designs: usize,
}

/// One row of [`DesignRegistry::stats`].
#[derive(Clone, Debug)]
pub struct DesignStats {
    /// The design id.
    pub id: String,
    /// Sinks in the current tree.
    pub sinks: usize,
    /// Candidate buffer sites in the current tree.
    pub sites: usize,
    /// Whether a warm ECO engine is resident.
    pub eco_warm: bool,
    /// Plain solve requests completed against this design.
    pub solves: u64,
    /// Variation (Monte-Carlo) solve requests completed.
    pub variations: u64,
    /// ECO requests committed.
    pub ecos: u64,
    /// ECO engine lookups that hit a resident warm engine.
    pub eco_warm_hits: u64,
    /// ECO engine lookups that built or rebuilt the engine.
    pub eco_rebuilds: u64,
    /// Logical timestamp of the last touch (higher = more recent).
    pub last_used: u64,
}

impl DesignStats {
    /// Warm-hit fraction of all ECO engine lookups, `None` before the
    /// first ECO request.
    pub fn eco_reuse(&self) -> Option<f64> {
        let lookups = self.eco_warm_hits + self.eco_rebuilds;
        (lookups > 0).then(|| self.eco_warm_hits as f64 / lookups as f64)
    }
}

impl DesignRegistry {
    /// An empty registry holding at most `max_designs` designs
    /// (minimum 1).
    pub fn new(max_designs: usize) -> Self {
        DesignRegistry {
            designs: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            max_designs: max_designs.max(1),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Inserts (or replaces) a design, evicting least-recently-used
    /// entries beyond the cap. Returns the resident design and the ids
    /// evicted to make room.
    pub fn load(
        &self,
        id: &str,
        session: Session,
        tree: RoutingTree,
    ) -> (Arc<Design>, Vec<String>) {
        let design = Arc::new(Design {
            id: id.to_owned(),
            session,
            state: RwLock::new(DesignState {
                tree: Arc::new(tree),
                eco: None,
            }),
            metrics: RequestMetrics::default(),
            last_used: AtomicU64::new(self.tick()),
        });
        let mut designs = self.designs.lock().expect("registry lock poisoned");
        designs.insert(id.to_owned(), Arc::clone(&design));
        let mut evicted = Vec::new();
        while designs.len() > self.max_designs {
            // Evict the stalest entry; the one just loaded carries the
            // freshest tick, so it can never be the victim here.
            let victim = designs
                .iter()
                .min_by_key(|(_, d)| d.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
                .expect("len > cap >= 1 means non-empty");
            designs.remove(&victim);
            evicted.push(victim);
        }
        (design, evicted)
    }

    /// Looks a design up, marking it most recently used.
    pub fn get(&self, id: &str) -> Option<Arc<Design>> {
        let designs = self.designs.lock().expect("registry lock poisoned");
        let design = designs.get(id)?;
        design.last_used.store(self.tick(), Ordering::Relaxed);
        Some(Arc::clone(design))
    }

    /// Drops a design; `false` if the id was not resident. In-flight
    /// requests that already hold the `Arc` finish against the orphaned
    /// state (per-design isolation makes that safe).
    pub fn unload(&self, id: &str) -> bool {
        self.designs
            .lock()
            .expect("registry lock poisoned")
            .remove(id)
            .is_some()
    }

    /// A snapshot of the resident designs, most recently used first.
    pub fn stats(&self) -> Vec<DesignStats> {
        let designs = self.designs.lock().expect("registry lock poisoned");
        let mut rows: Vec<DesignStats> = designs
            .values()
            .map(|d| {
                let state = d.state.read().expect("design lock poisoned");
                let (solves, variations, ecos, eco_warm_hits, eco_rebuilds) = d.metrics.snapshot();
                DesignStats {
                    id: d.id.clone(),
                    sinks: state.tree.sink_count(),
                    sites: state.tree.buffer_site_count(),
                    eco_warm: state.eco.is_some(),
                    solves,
                    variations,
                    ecos,
                    eco_warm_hits,
                    eco_rebuilds,
                    last_used: d.last_used.load(Ordering::Relaxed),
                }
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.last_used));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbuf_buflib::units::Microns;
    use fastbuf_buflib::BufferLibrary;

    fn design(sites: usize) -> (Session, RoutingTree) {
        let session = Session::new(BufferLibrary::paper_synthetic(4).unwrap());
        let tree = fastbuf_netgen::line_net(Microns::new(5_000.0), sites);
        (session, tree)
    }

    #[test]
    fn lru_evicts_the_stalest_design() {
        let registry = DesignRegistry::new(2);
        for id in ["a", "b"] {
            let (session, tree) = design(4);
            let (_, evicted) = registry.load(id, session, tree);
            assert!(evicted.is_empty());
        }
        // Touch `a` so `b` is now the LRU entry.
        registry.get("a").unwrap();
        let (session, tree) = design(4);
        let (_, evicted) = registry.load("c", session, tree);
        assert_eq!(evicted, vec!["b".to_owned()]);
        assert!(registry.get("b").is_none());
        assert!(registry.get("a").is_some() && registry.get("c").is_some());
    }

    #[test]
    fn reload_replaces_without_eviction() {
        let registry = DesignRegistry::new(1);
        let (session, tree) = design(4);
        registry.load("a", session, tree);
        let (session, tree) = design(9);
        let (_, evicted) = registry.load("a", session, tree);
        // Replacing the same id is not an eviction.
        assert!(evicted.is_empty());
        let state = registry.get("a").unwrap();
        let sites = state.state.read().unwrap().tree.buffer_site_count();
        assert_eq!(sites, 9);
    }

    #[test]
    fn stats_order_by_recency_and_unload_drops() {
        let registry = DesignRegistry::new(4);
        for id in ["a", "b"] {
            let (session, tree) = design(4);
            registry.load(id, session, tree);
        }
        registry.get("a").unwrap();
        let rows = registry.stats();
        assert_eq!(rows[0].id, "a");
        assert!(!rows[0].eco_warm);
        assert!(registry.unload("b"));
        assert!(!registry.unload("b"));
        assert_eq!(registry.stats().len(), 1);
    }
}
