//! Request execution: one frame in, exactly one reply frame out.
//!
//! Every failure mode — malformed JSON, unsupported version, unknown
//! design, solver error, missed deadline, even a panic in the solve —
//! becomes a typed error reply (`{"ok": false, "error": {"code": …}}`);
//! nothing a client sends can take the process down. Error codes are
//! either envelope codes ([`wire::WireError::code`]) or the stable
//! [`SolveError::kind`] names, plus the transport-level codes
//! `too-large`, `io`, `net-parse`, `lib-parse`, `edit-parse`,
//! `unknown-design`, `deadline`, and `internal`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fastbuf_api::json::{json_f64, json_str, NetRecordOwned};
use fastbuf_api::wire::{
    self, error_frame, ok_frame, parse_frame, scenario_record, Op, SolveParams, Source,
};
use fastbuf_api::{parse_scenario_lines, Objective, Scenario, Session, SolveError};
use fastbuf_incremental::{parse_edits, Edit};
use fastbuf_rctree::{io as netio, model_by_name, DelayModel, RoutingTree};

use crate::registry::{Design, DesignRegistry, DesignState, EcoState};
use crate::ServerConfig;

/// What the transport should do with the reply.
#[derive(Debug)]
pub enum FrameOutcome {
    /// Send the reply; keep serving.
    Reply(String),
    /// Send the reply, then begin graceful shutdown (stop accepting,
    /// drain in-flight work).
    Shutdown(String),
}

impl FrameOutcome {
    /// The reply frame to send in either case.
    pub fn reply(&self) -> &str {
        match self {
            FrameOutcome::Reply(s) | FrameOutcome::Shutdown(s) => s,
        }
    }
}

/// Executes one request frame against the registry.
///
/// `received` is when the transport read the frame; deadlines count from
/// there, so time spent queued behind other requests is charged to the
/// request — a client's `deadline_ms` bounds its observed latency, not
/// just compute.
pub fn handle_frame(
    registry: &DesignRegistry,
    config: &ServerConfig,
    frame: &str,
    received: Instant,
) -> FrameOutcome {
    if frame.len() > config.max_frame_bytes {
        return FrameOutcome::Reply(error_frame(
            None,
            "too-large",
            &format!(
                "frame is {} bytes, limit is {}",
                frame.len(),
                config.max_frame_bytes
            ),
        ));
    }
    let (id, op) = parse_frame(frame);
    let id = id.as_ref();
    let op = match op {
        Ok(op) => op,
        Err(e) => return FrameOutcome::Reply(error_frame(id, e.code(), &e.to_string())),
    };
    if let Op::Shutdown = op {
        return FrameOutcome::Shutdown(ok_frame(id, "{\"stopping\": true}"));
    }
    // Solves can panic only on internal invariant violations; turn even
    // those into an error reply so one poisoned request cannot take the
    // server down. (A panic may poison that design's lock — subsequent
    // requests against it then also reply `internal` — but every other
    // design and the process itself stay healthy.)
    let result = catch_unwind(AssertUnwindSafe(|| {
        execute(registry, config, &op, received)
    }));
    FrameOutcome::Reply(match result {
        Ok(Ok(result)) => ok_frame(id, &result),
        Ok(Err(e)) => error_frame(id, e.code, &e.message),
        Err(panic) => {
            let what = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_owned());
            // Panic payloads name internal paths and invariants; keep
            // the detail in the server log, off the wire.
            eprintln!("fastbuf-server: request panicked: {what}");
            error_frame(id, "internal", "internal error while handling the request")
        }
    })
}

/// A typed handler error: a stable code plus a human-readable message.
struct HandlerError {
    code: &'static str,
    message: String,
}

impl HandlerError {
    fn new(code: &'static str, message: impl Into<String>) -> Self {
        HandlerError {
            code,
            message: message.into(),
        }
    }
}

impl From<SolveError> for HandlerError {
    fn from(e: SolveError) -> Self {
        HandlerError {
            code: e.kind(),
            message: e.to_string(),
        }
    }
}

fn deadline_of(params: &SolveParams, config: &ServerConfig) -> Option<Duration> {
    params
        .deadline_ms
        .map(Duration::from_millis)
        .or(config.default_deadline)
}

fn check_deadline(
    deadline: Option<Duration>,
    received: Instant,
    when: &str,
) -> Result<(), HandlerError> {
    if let Some(limit) = deadline {
        let spent = received.elapsed();
        if spent > limit {
            return Err(HandlerError::new(
                "deadline",
                format!(
                    "{when}: {:.1} ms spent against a {} ms deadline",
                    spent.as_secs_f64() * 1e3,
                    limit.as_millis()
                ),
            ));
        }
    }
    Ok(())
}

fn execute(
    registry: &DesignRegistry,
    config: &ServerConfig,
    op: &Op,
    received: Instant,
) -> Result<String, HandlerError> {
    match op {
        Op::Ping => Ok("{\"pong\": true}".to_owned()),
        Op::Stats => Ok(stats(registry)),
        Op::Shutdown => unreachable!("shutdown is intercepted before execute"),
        Op::Load {
            design,
            net,
            lib,
            model,
        } => load(registry, design, net, lib, model.as_deref()),
        Op::Unload { design } => {
            if registry.unload(design) {
                Ok(format!(
                    "{{\"design\": {}, \"unloaded\": true}}",
                    json_str(design)
                ))
            } else {
                Err(unknown_design(design))
            }
        }
        Op::Solve(params) => solve(registry, config, params, received),
        Op::Eco { params, edits } => eco(registry, config, params, edits, received),
        // `Op` is non-exhaustive: a future wire op this build predates.
        _ => Err(HandlerError::new(
            "unknown-op",
            "op not supported by this server build",
        )),
    }
}

fn unknown_design(id: &str) -> HandlerError {
    HandlerError::new(
        "unknown-design",
        format!("no design loaded under id `{id}`"),
    )
}

fn stats(registry: &DesignRegistry) -> String {
    let rows: Vec<String> = registry
        .stats()
        .iter()
        .map(|d| {
            format!(
                "{{\"design\": {}, \"sinks\": {}, \"sites\": {}, \"eco_warm\": {}, \
                 \"solves\": {}, \"variations\": {}, \"ecos\": {}, \
                 \"eco_warm_hits\": {}, \"eco_rebuilds\": {}, \"eco_reuse\": {}}}",
                json_str(&d.id),
                d.sinks,
                d.sites,
                d.eco_warm,
                d.solves,
                d.variations,
                d.ecos,
                d.eco_warm_hits,
                d.eco_rebuilds,
                d.eco_reuse().map_or_else(|| "null".to_owned(), json_f64)
            )
        })
        .collect();
    format!(
        "{{\"resident\": {}, \"designs\": [{}]}}",
        rows.len(),
        rows.join(", ")
    )
}

fn read_source(source: &Source, what: &str) -> Result<String, HandlerError> {
    match source {
        Source::Text(text) => Ok(text.clone()),
        Source::Path(path) => std::fs::read_to_string(path)
            .map_err(|e| HandlerError::new("io", format!("cannot read {what} `{path}`: {e}"))),
    }
}

fn load(
    registry: &DesignRegistry,
    design: &str,
    net: &Source,
    lib: &Source,
    model: Option<&str>,
) -> Result<String, HandlerError> {
    let net_text = read_source(net, "net")?;
    let lib_text = read_source(lib, "library")?;
    let tree =
        netio::parse(&net_text).map_err(|e| HandlerError::new("net-parse", e.to_string()))?;
    let library = fastbuf_buflib::BufferLibrary::from_text(&lib_text)
        .map_err(|e| HandlerError::new("lib-parse", e.to_string()))?;
    let model = resolve_model(model)?
        .unwrap_or_else(|| model_by_name("elmore").expect("elmore always exists"));
    let session = Session::builder(library).delay_model(model).build();
    let sinks = tree.sink_count();
    let sites = tree.buffer_site_count();
    let buffers = session.library().len();
    let (_, evicted) = registry.load(design, session, tree);
    let evicted: Vec<String> = evicted.iter().map(|id| json_str(id)).collect();
    Ok(format!(
        "{{\"design\": {}, \"sinks\": {sinks}, \"sites\": {sites}, \"buffers\": {buffers}, \
         \"evicted\": [{}]}}",
        json_str(design),
        evicted.join(", ")
    ))
}

fn resolve_model(name: Option<&str>) -> Result<Option<Arc<dyn DelayModel>>, HandlerError> {
    match name {
        None => Ok(None),
        Some(name) => model_by_name(name)
            .map(Some)
            .ok_or_else(|| SolveError::UnknownModel(name.to_owned()).into()),
    }
}

/// Builds the request's scenario list: explicit lines through the shared
/// [`parse_scenario_lines`] path (the CLI's `--scenarios` parser), or the
/// one anonymous default scenario. The request-level `algo`/`model` are
/// defaults, never overrides — a line's own `algo=`/`model=` wins.
fn build_scenarios(params: &SolveParams) -> Result<Vec<Scenario>, HandlerError> {
    let model = resolve_model(params.model.as_deref())?;
    match &params.scenarios {
        Some(lines) => Ok(parse_scenario_lines(
            &lines.join("\n"),
            params.algorithm,
            model.as_ref(),
        )?),
        None => {
            let mut scenario = Scenario::default();
            if let Some(algorithm) = params.algorithm {
                scenario = scenario.algorithm(algorithm);
            }
            scenario.delay_model = model;
            Ok(vec![scenario])
        }
    }
}

/// Serializes the solve/eco response body shared by both ops.
fn result_body(
    design: &str,
    records: &[NetRecordOwned],
    worst_slack_ps: Option<f64>,
    elapsed: Duration,
    extra: &str,
) -> String {
    let results: Vec<String> = records.iter().map(NetRecordOwned::to_json).collect();
    format!(
        "{{\"design\": {}, \"scenarios\": {}, \"worst_slack_ps\": {}, \"elapsed_us\": {}{extra}, \
         \"results\": [{}]}}",
        json_str(design),
        records.len(),
        worst_slack_ps.map_or_else(|| "null".to_owned(), json_f64),
        json_f64(elapsed.as_secs_f64() * 1e6),
        results.join(", ")
    )
}

fn solve(
    registry: &DesignRegistry,
    config: &ServerConfig,
    params: &SolveParams,
    received: Instant,
) -> Result<String, HandlerError> {
    let deadline = deadline_of(params, config);
    check_deadline(deadline, received, "not started")?;
    let design = registry
        .get(&params.design)
        .ok_or_else(|| unknown_design(&params.design))?;
    if params.variation.is_none() {
        for (name, present) in [
            ("samples", params.samples.is_some()),
            ("quantile", params.quantile.is_some()),
        ] {
            if present {
                return Err(HandlerError::new(
                    "bad-request",
                    format!("\"{name}\" needs a \"variation\" block"),
                ));
            }
        }
    }
    let scenarios = build_scenarios(params)?;
    let named = params.scenarios.is_some();
    // Snapshot the tree, then drop the lock: concurrent solves against
    // one design proceed in parallel; only ECO edits serialize. A
    // variation solve samples from this snapshot alone, so an ECO edit
    // committed mid-request can never bleed into its sample family.
    let tree: Arc<RoutingTree> = {
        let state = design.state.read().expect("design lock poisoned");
        Arc::clone(&state.tree)
    };
    if let Some(spec_text) = &params.variation {
        let spec = fastbuf_api::parse_variation_spec(spec_text)?;
        let samples = params.samples.unwrap_or(64) as usize;
        let quantile = params.quantile.unwrap_or(0.5);
        let outcome = design
            .session
            .request(&tree)
            .objective(Objective::YieldTarget { samples, quantile })
            .variation(spec)
            .scenarios(scenarios)
            .workers(1)
            .solve()?;
        let records = outcome
            .scenarios
            .iter()
            .map(|corner| wire::variation_record(corner, named, true).map_err(HandlerError::from))
            .collect::<Result<Vec<_>, _>>()?;
        check_deadline(deadline, received, "completed late")?;
        design.metrics.variations.fetch_add(1, Ordering::Relaxed);
        return Ok(format!(
            "{{\"design\": {}, \"scenarios\": {}, \"worst_slack_ps\": {}, \"elapsed_us\": {}, \
             \"results\": [{}]}}",
            json_str(&params.design),
            records.len(),
            outcome
                .worst_slack()
                .map_or_else(|| "null".to_owned(), |s| json_f64(s.picos())),
            json_f64(outcome.elapsed.as_secs_f64() * 1e6),
            records.join(", ")
        ));
    }
    // One workspace per request — cross-request parallelism comes from
    // the server's worker pool, not from fanning out inside a request.
    let outcome = design
        .session
        .request(&tree)
        .scenarios(scenarios)
        .workers(1)
        .solve()?;
    if params.verify {
        outcome.verify(&tree, design.session.library())?;
    }
    let records = records_of(
        &params.design,
        &tree,
        &design.session,
        &outcome,
        named,
        params,
    )?;
    // Read-only op: a blown deadline discards the result.
    check_deadline(deadline, received, "completed late")?;
    design.metrics.solves.fetch_add(1, Ordering::Relaxed);
    Ok(result_body(
        &params.design,
        &records,
        outcome.worst_slack().map(|s| s.picos()),
        outcome.elapsed,
        "",
    ))
}

fn records_of(
    design: &str,
    tree: &RoutingTree,
    session: &Session,
    outcome: &fastbuf_api::Outcome,
    named: bool,
    params: &SolveParams,
) -> Result<Vec<NetRecordOwned>, HandlerError> {
    outcome
        .scenarios
        .iter()
        .map(|corner| {
            scenario_record(
                design,
                0,
                tree,
                session.library(),
                corner,
                named,
                params.placements,
            )
            .map_err(HandlerError::from)
        })
        .collect()
}

fn eco(
    registry: &DesignRegistry,
    config: &ServerConfig,
    params: &SolveParams,
    edit_lines: &[String],
    received: Instant,
) -> Result<String, HandlerError> {
    let deadline = deadline_of(params, config);
    // ECO commits atomically once started, so the deadline is enforced
    // at admission only (see docs/PROTOCOL.md).
    check_deadline(deadline, received, "not started")?;
    if params.variation.is_some() || params.samples.is_some() || params.quantile.is_some() {
        return Err(HandlerError::new(
            "bad-request",
            "variation solves go through op \"solve\"; \"eco\" commits one deterministic tree",
        ));
    }
    let design = registry
        .get(&params.design)
        .ok_or_else(|| unknown_design(&params.design))?;
    let edits =
        parse_edits(&edit_lines.join("\n")).map_err(|e| HandlerError::new("edit-parse", e))?;
    let scenarios = build_scenarios(params)?;
    let named = params.scenarios.is_some();
    // Fingerprint of the scenario set this request wants; a warm solver
    // built for the same set is reused (its per-corner subtree caches are
    // the payoff of staying resident), anything else is rebuilt.
    let key = format!(
        "{:?}|{:?}|{:?}",
        params.scenarios, params.algorithm, params.model
    );

    let mut state = design.state.write().expect("design lock poisoned");
    let result = eco_locked(&design, params, &edits, scenarios, key, named, &mut state);
    if result.is_err() {
        // Edits apply into the warm engine one at a time, so a failure
        // anywhere in the locked section (an edit rejected partway
        // through the batch, a solve or verify error) can leave the
        // engine ahead of the committed tree. Drop it: the next request
        // rebuilds from `state.tree` and the failed request's edits are
        // never visible — the commit stays atomic (docs/PROTOCOL.md).
        state.eco = None;
    }
    result
}

/// The write-locked half of [`eco`]: ensure a warm solver for `key`,
/// apply, solve, verify, and only then commit the new tree. Nothing
/// fallible runs after the `state.tree` assignment; on any `Err` the
/// caller invalidates `state.eco`.
fn eco_locked(
    design: &Design,
    params: &SolveParams,
    edits: &[Edit],
    scenarios: Vec<Scenario>,
    key: String,
    named: bool,
    state: &mut DesignState,
) -> Result<String, HandlerError> {
    if state.eco.as_ref().is_none_or(|e| e.key != key) {
        design.metrics.eco_rebuilds.fetch_add(1, Ordering::Relaxed);
        let solver = design.session.eco(&state.tree, scenarios)?;
        state.eco = Some(EcoState { key, solver });
    } else {
        design.metrics.eco_warm_hits.fetch_add(1, Ordering::Relaxed);
    }
    let eco_state = state.eco.as_mut().expect("just ensured");
    eco_state.solver.apply_all(edits)?;
    let outcome = eco_state.solver.solve()?;
    if params.verify {
        outcome.verify(eco_state.solver.tree(), design.session.library())?;
    }
    let tree = Arc::new(eco_state.solver.tree().clone());
    let cache: Vec<String> = eco_state
        .solver
        .cache_report()
        .iter()
        .map(|(name, cached, applied)| {
            format!(
                "{{\"scenario\": {}, \"cached_nodes\": {cached}, \"edits_applied\": {applied}}}",
                json_str(name)
            )
        })
        .collect();
    let records = records_of(
        &params.design,
        &tree,
        &design.session,
        &outcome,
        named,
        params,
    )?;
    state.tree = tree;
    design.metrics.ecos.fetch_add(1, Ordering::Relaxed);
    Ok(result_body(
        &params.design,
        &records,
        outcome.worst_slack().map(|s| s.picos()),
        outcome.elapsed,
        &format!(
            ", \"edits\": {}, \"cache\": [{}]",
            edits.len(),
            cache.join(", ")
        ),
    ))
}

// Re-exported so integration tests can assert against the same wire
// helpers the handler uses.
pub use wire::WIRE_VERSION;

#[cfg(test)]
mod tests {
    use super::*;
    use fastbuf_api::wire::Json;
    use fastbuf_buflib::units::Microns;
    use fastbuf_buflib::BufferLibrary;

    fn loaded_registry() -> DesignRegistry {
        let registry = DesignRegistry::new(4);
        let session = Session::new(BufferLibrary::paper_synthetic(6).unwrap());
        let tree = fastbuf_netgen::line_net(Microns::new(8_000.0), 10);
        registry.load("d1", session, tree);
        registry
    }

    fn reply(registry: &DesignRegistry, frame: &str) -> Json {
        let outcome = handle_frame(registry, &ServerConfig::default(), frame, Instant::now());
        Json::parse(outcome.reply()).expect("replies are valid JSON")
    }

    #[test]
    fn solve_matches_a_direct_session_solve_bit_for_bit() {
        let registry = loaded_registry();
        let v = reply(
            &registry,
            r#"{"v": 1, "id": 1, "op": "solve", "design": "d1", "placements": true}"#,
        );
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
        let result = v.get("result").unwrap();
        let record = &result.get("results").and_then(Json::as_array).unwrap()[0];

        // The same solve done directly through the Session API.
        let session = Session::new(BufferLibrary::paper_synthetic(6).unwrap());
        let tree = fastbuf_netgen::line_net(Microns::new(8_000.0), 10);
        let outcome = session.request(&tree).solve().unwrap();
        let direct = outcome.scenarios[0].solution().unwrap();

        let served = record.get("slack_after_ps").and_then(Json::as_f64).unwrap();
        assert_eq!(served.to_bits(), direct.slack.picos().to_bits());
        assert_eq!(
            record.get("buffers").and_then(Json::as_u64).unwrap() as usize,
            direct.placements.len()
        );
        assert_eq!(
            result
                .get("worst_slack_ps")
                .and_then(Json::as_f64)
                .unwrap()
                .to_bits(),
            outcome.worst_slack().unwrap().picos().to_bits()
        );
    }

    #[test]
    fn typed_errors_never_kill_the_handler() {
        let registry = loaded_registry();
        let code = |frame: &str| {
            reply(&registry, frame)
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str)
                .map(str::to_owned)
                .expect("an error reply")
        };
        assert_eq!(code("garbage"), "parse");
        assert_eq!(code(r#"{"v": 9, "op": "ping"}"#), "unsupported-version");
        assert_eq!(code(r#"{"v": 1, "op": "warp"}"#), "unknown-op");
        assert_eq!(code(r#"{"v": 1, "op": "solve"}"#), "bad-request");
        assert_eq!(
            code(r#"{"v": 1, "op": "solve", "design": "nope"}"#),
            "unknown-design"
        );
        assert_eq!(
            code(r#"{"v": 1, "op": "solve", "design": "d1", "model": "spice"}"#),
            "unknown-model"
        );
        assert_eq!(
            code(r#"{"v": 1, "op": "solve", "design": "d1", "scenarios": ["a a="]}"#),
            "scenario-parse"
        );
        assert_eq!(
            code(r#"{"v": 1, "op": "eco", "design": "d1", "edits": ["explode n1"]}"#),
            "edit-parse"
        );
        assert_eq!(
            code(r#"{"v": 1, "op": "solve", "design": "d1", "deadline_ms": 0}"#),
            "deadline"
        );
        // …and the handler still works afterwards.
        let v = reply(&registry, r#"{"v": 1, "op": "ping"}"#);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn eco_updates_state_and_reuses_the_warm_solver() {
        let registry = loaded_registry();
        let frame = r#"{"v": 1, "op": "eco", "design": "d1", "edits": ["rat n11 1200"]}"#;
        let v = reply(&registry, frame);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
        let result = v.get("result").unwrap();
        assert_eq!(result.get("edits").and_then(Json::as_u64), Some(1));

        // Same scenario set again: the warm solver must be reused, so the
        // edit counter keeps counting instead of resetting.
        let frame2 =
            r#"{"v": 1, "op": "eco", "design": "d1", "edits": ["rat n11 900", "wire n2 400"]}"#;
        let v2 = reply(&registry, frame2);
        let result2 = v2.get("result").unwrap();
        let cache = result2.get("cache").and_then(Json::as_array).unwrap();
        assert_eq!(
            cache[0].get("edits_applied").and_then(Json::as_u64),
            Some(3),
            "warm solver was rebuilt instead of reused"
        );

        // A different scenario set rebuilds (edits_applied resets).
        let frame3 = r#"{"v": 1, "op": "eco", "design": "d1", "edits": ["rat n11 800"],
                         "scenarios": ["slow derate=0.9"]}"#;
        let v3 = reply(&registry, frame3);
        let cache3 = v3
            .get("result")
            .unwrap()
            .get("cache")
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(
            cache3[0].get("edits_applied").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            cache3[0].get("scenario").and_then(Json::as_str),
            Some("slow")
        );
    }

    #[test]
    fn failed_eco_batch_never_leaks_into_committed_state() {
        let registry = loaded_registry();
        // Commit one edit so a warm engine exists.
        let v = reply(
            &registry,
            r#"{"v": 1, "op": "eco", "design": "d1", "edits": ["rat n11 1200"]}"#,
        );
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");

        // Second batch: the first edit applies into the warm engine,
        // then the second is rejected (n2 is a buffer site, not a sink).
        // The whole request must fail...
        let v = reply(
            &registry,
            r#"{"v": 1, "op": "eco", "design": "d1", "edits": ["rat n11 500", "rat n2 0"]}"#,
        );
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("edit")
        );

        // ...and leave no trace: the next request rebuilds the engine
        // from the committed tree (its edit counter restarts at 1, not
        // 3) and solves exactly as if the failed batch never happened.
        let v = reply(
            &registry,
            r#"{"v": 1, "op": "eco", "design": "d1", "edits": ["wire n2 700"]}"#,
        );
        let result = v.get("result").expect("eco after failure succeeds");
        let cache = result.get("cache").and_then(Json::as_array).unwrap();
        assert_eq!(
            cache[0].get("edits_applied").and_then(Json::as_u64),
            Some(1),
            "warm engine survived a failed batch"
        );

        let session = Session::new(BufferLibrary::paper_synthetic(6).unwrap());
        let tree = fastbuf_netgen::line_net(Microns::new(8_000.0), 10);
        let mut solver = session.eco(&tree, vec![Scenario::default()]).unwrap();
        solver
            .apply_all(&parse_edits("rat n11 1200\nwire n2 700").unwrap())
            .unwrap();
        let outcome = solver.solve().unwrap();
        let direct = outcome.scenarios[0].solution().unwrap();
        let served = result.get("results").and_then(Json::as_array).unwrap()[0]
            .get("slack_after_ps")
            .and_then(Json::as_f64)
            .unwrap();
        assert_eq!(served.to_bits(), direct.slack.picos().to_bits());
    }

    #[test]
    fn stats_reports_per_design_request_metrics() {
        let registry = loaded_registry();
        let ok = |frame: &str| {
            let v = reply(&registry, frame);
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
        };
        // Two plain solves, one variation solve, two committed ECOs (the
        // second a warm hit), and one failed ECO batch (must not count).
        ok(r#"{"v": 1, "op": "solve", "design": "d1"}"#);
        ok(r#"{"v": 1, "op": "solve", "design": "d1"}"#);
        ok(r#"{"v": 1, "op": "solve", "design": "d1",
                "variation": "wire-r normal 1.0 0.05\nseed 7", "samples": 4}"#);
        ok(r#"{"v": 1, "op": "eco", "design": "d1", "edits": ["rat n11 1200"]}"#);
        ok(r#"{"v": 1, "op": "eco", "design": "d1", "edits": ["rat n11 900"]}"#);
        let failed = reply(
            &registry,
            r#"{"v": 1, "op": "eco", "design": "d1", "edits": ["rat n2 0"]}"#,
        );
        assert_eq!(failed.get("ok").and_then(Json::as_bool), Some(false));

        let v = reply(&registry, r#"{"v": 1, "op": "stats"}"#);
        let row = &v
            .get("result")
            .unwrap()
            .get("designs")
            .and_then(Json::as_array)
            .unwrap()[0];
        let count = |key: &str| row.get(key).and_then(Json::as_u64).unwrap();
        assert_eq!(count("solves"), 2);
        assert_eq!(count("variations"), 1);
        assert_eq!(count("ecos"), 2);
        // Lookups: rebuild, warm, warm (the failed batch still hit the
        // warm engine before its edit was rejected).
        assert_eq!(count("eco_rebuilds"), 1);
        assert_eq!(count("eco_warm_hits"), 2);
        let reuse = row.get("eco_reuse").and_then(Json::as_f64).unwrap();
        assert!((reuse - 2.0 / 3.0).abs() < 1e-12, "eco_reuse = {reuse}");
    }

    #[test]
    fn shutdown_is_signalled_to_the_transport() {
        let registry = loaded_registry();
        let outcome = handle_frame(
            &registry,
            &ServerConfig::default(),
            r#"{"v": 1, "id": "bye", "op": "shutdown"}"#,
            Instant::now(),
        );
        match &outcome {
            FrameOutcome::Shutdown(reply) => {
                let v = Json::parse(reply).unwrap();
                assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
                assert_eq!(v.get("id").and_then(Json::as_str), Some("bye"));
            }
            other => panic!("expected shutdown, got {other:?}"),
        }
    }

    #[test]
    fn load_and_lru_eviction_over_the_wire() {
        let registry = DesignRegistry::new(1);
        let config = ServerConfig::default();
        let net = netio::write(&fastbuf_netgen::line_net(Microns::new(4_000.0), 5));
        let lib = BufferLibrary::paper_synthetic(4).unwrap().to_text();
        let load_frame = |id: &str| {
            format!(
                "{{\"v\": 1, \"op\": \"load\", \"design\": {}, \"net\": {}, \"lib\": {}}}",
                json_str(id),
                json_str(&net),
                json_str(&lib)
            )
        };
        let v =
            Json::parse(handle_frame(&registry, &config, &load_frame("a"), Instant::now()).reply())
                .unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");

        let v =
            Json::parse(handle_frame(&registry, &config, &load_frame("b"), Instant::now()).reply())
                .unwrap();
        let evicted = v
            .get("result")
            .unwrap()
            .get("evicted")
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(evicted[0].as_str(), Some("a"));
    }
}
