//! Transports: newline-delimited JSON over TCP or stdio.
//!
//! Both transports share one shape: reader threads turn input lines into
//! jobs, a **bounded** crossbeam channel (capacity
//! [`ServerConfig::max_inflight`]) carries them to a worker pool, and
//! workers write reply frames under a per-connection writer lock.
//! The bounded queue is the backpressure invariant: when
//! `max_inflight` requests are admitted but unfinished, readers block on
//! `send`, the kernel's TCP buffers fill, and remote clients stall on
//! `write` — memory use is bounded no matter how fast clients push.
//! Line reads themselves are capped at [`ServerConfig::max_frame_bytes`]
//! (plus newline slack): a newline-free flood gets a `too-large` reply
//! and the connection is dropped, so one hostile client cannot grow a
//! line buffer without bound either.
//!
//! Graceful shutdown (a `shutdown` op, or [`Server::stop`]): the accept
//! loop stops admitting connections and shuts down the **read** half of
//! every open socket, so readers drain at EOF while in-flight replies
//! still go out on the write half; once every reader exits, the job
//! senders drop, workers drain the queue to disconnect, and
//! [`Server::serve_tcp`] returns.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use fastbuf_api::wire::error_frame;

use crate::handler::{handle_frame, FrameOutcome};
use crate::registry::DesignRegistry;
use crate::ServerConfig;

/// One client connection's reply sink. Workers may finish out of order;
/// each reply is one line written under this lock, and clients correlate
/// via the echoed `id`.
struct Conn {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl Conn {
    fn send_line(&self, line: &str) {
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        // A client that hung up mid-reply is not a server error.
        let _ = writeln!(writer, "{line}");
        let _ = writer.flush();
    }
}

struct Job {
    frame: String,
    received: Instant,
    conn: Arc<Conn>,
}

/// A resident solve server (see the crate docs for the protocol).
#[derive(Debug)]
pub struct Server {
    config: ServerConfig,
    registry: Arc<DesignRegistry>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// A server with an empty design registry.
    pub fn new(config: ServerConfig) -> Self {
        let registry = Arc::new(DesignRegistry::new(config.max_designs));
        Server {
            config,
            registry,
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The design registry (for preloading designs before serving).
    pub fn registry(&self) -> &Arc<DesignRegistry> {
        &self.registry
    }

    /// Requests graceful shutdown from another thread: stop accepting,
    /// drain in-flight work, return from the serve call.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Handle for stopping the server from another thread.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    fn worker_loop(&self, jobs: &Receiver<Job>) {
        while let Ok(job) = jobs.recv() {
            let outcome = handle_frame(&self.registry, &self.config, &job.frame, job.received);
            job.conn.send_line(outcome.reply());
            if let FrameOutcome::Shutdown(_) = outcome {
                self.stop.store(true, Ordering::SeqCst);
            }
        }
    }

    /// Reads newline-delimited frames from `input`, blocking on the
    /// bounded job queue when the pool is saturated (that block is the
    /// backpressure). Each line is read through a hard cap just above
    /// [`ServerConfig::max_frame_bytes`], so a newline-free flood cannot
    /// grow memory without bound: an over-cap line gets a `too-large`
    /// reply and the connection is dropped (a truncated frame cannot be
    /// parsed, and resynchronising would mean scanning unbounded
    /// garbage). Returns at EOF, on a read error, at shutdown, or on an
    /// over-cap line.
    fn reader_loop(&self, input: impl std::io::Read, conn: &Arc<Conn>, jobs: &Sender<Job>) {
        // +2 leaves room for a frame of exactly `max_frame_bytes` plus
        // its `\r\n`, so at-the-limit frames still reach the handler's
        // own `too-large` check rather than being cut off here.
        let cap = (self.config.max_frame_bytes as u64).saturating_add(2);
        let mut reader = BufReader::new(input);
        let mut buf = Vec::new();
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            buf.clear();
            let n = match (&mut reader).take(cap).read_until(b'\n', &mut buf) {
                Ok(0) => break, // EOF
                Ok(n) => n,
                Err(_) => break,
            };
            if buf.last() == Some(&b'\n') {
                buf.pop();
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
            } else if n as u64 == cap {
                conn.send_line(&error_frame(
                    None,
                    "too-large",
                    &format!(
                        "line exceeds the {} byte frame limit",
                        self.config.max_frame_bytes
                    ),
                ));
                break;
            }
            // Invalid UTF-8 becomes U+FFFD and fails JSON parsing, so it
            // gets a typed `parse` reply instead of ending the loop.
            let frame = String::from_utf8_lossy(&buf).into_owned();
            if frame.trim().is_empty() {
                continue;
            }
            let job = Job {
                frame,
                received: Instant::now(),
                conn: Arc::clone(conn),
            };
            if jobs.send(job).is_err() {
                break;
            }
        }
    }

    /// Serves concurrent clients on `listener` until a `shutdown` op or
    /// [`Server::stop`]. Each connection gets a reader thread; request
    /// execution is spread over [`ServerConfig::workers`] pool threads.
    ///
    /// # Errors
    ///
    /// Only setup errors (making the listener non-blocking); per-client
    /// I/O failures just end that client's connection.
    pub fn serve_tcp(&self, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let (jobs_tx, jobs_rx) = bounded::<Job>(self.config.max_inflight);
        // Read halves of open connections, for unblocking readers at
        // shutdown while their write halves finish delivering replies.
        // Each reader removes its own entry on exit, so long-running
        // servers do not accumulate file descriptors for dead clients.
        let open: Mutex<Vec<(u64, TcpStream)>> = Mutex::new(Vec::new());
        let open = &open;
        let mut next_conn: u64 = 0;

        std::thread::scope(|scope| {
            for _ in 0..self.config.workers.max(1) {
                let jobs_rx = jobs_rx.clone();
                scope.spawn(move || self.worker_loop(&jobs_rx));
            }
            drop(jobs_rx);

            while !self.stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        // Replies are small frames on a request/reply
                        // rhythm; leaving Nagle on costs a delayed-ACK
                        // stall (tens of ms) per round trip.
                        let _ = stream.set_nodelay(true);
                        let Ok(read_half) = stream.try_clone() else {
                            continue;
                        };
                        let conn_id = next_conn;
                        next_conn += 1;
                        open.lock()
                            .expect("open list poisoned")
                            .push(match stream.try_clone() {
                                Ok(s) => (conn_id, s),
                                Err(_) => continue,
                            });
                        // Readers block on socket reads; the listener's
                        // non-blocking mode must not leak onto them.
                        let _ = read_half.set_nonblocking(false);
                        let conn = Arc::new(Conn {
                            writer: Mutex::new(Box::new(stream)),
                        });
                        let jobs_tx = jobs_tx.clone();
                        scope.spawn(move || {
                            self.reader_loop(read_half, &conn, &jobs_tx);
                            // This connection is done reading; drop its
                            // shutdown handle so the socket can close
                            // once in-flight replies finish.
                            open.lock()
                                .expect("open list poisoned")
                                .retain(|(id, _)| *id != conn_id);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }

            // Shutdown: unblock every reader by closing the read half;
            // replies already in flight still go out on the write half.
            for (_, stream) in open.lock().expect("open list poisoned").iter() {
                let _ = stream.shutdown(Shutdown::Read);
            }
            // Dropping the last sender lets workers drain and exit.
            drop(jobs_tx);
        });
        Ok(())
    }

    /// Serves one client over stdin/stdout (same worker pool, same
    /// protocol). Returns at stdin EOF or after a `shutdown` op — note a
    /// `shutdown` is only observed once the blocking stdin read returns,
    /// i.e. on the next input line or EOF.
    pub fn serve_stdio(&self) {
        let (jobs_tx, jobs_rx) = bounded::<Job>(self.config.max_inflight);
        let conn = Arc::new(Conn {
            writer: Mutex::new(Box::new(std::io::stdout())),
        });
        std::thread::scope(|scope| {
            for _ in 0..self.config.workers.max(1) {
                let jobs_rx = jobs_rx.clone();
                scope.spawn(move || self.worker_loop(&jobs_rx));
            }
            drop(jobs_rx);
            self.reader_loop(std::io::stdin().lock(), &conn, &jobs_tx);
            drop(jobs_tx);
        });
    }
}
