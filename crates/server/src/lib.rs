//! `fastbuf serve`: a resident solve-as-a-service daemon.
//!
//! Every CLI invocation pays the full load cost — parse the net, parse
//! the library, build a [`Session`](fastbuf_api::Session), solve once,
//! exit — and throws the warm state away. Chip-scale flows are exactly
//! the opposite shape: thousands of solve/ECO requests against a handful
//! of designs whose library/technology context never changes between
//! requests. This crate keeps that context resident:
//!
//! * [`registry::DesignRegistry`] — designs keyed by id, each holding one
//!   warm [`Session`](fastbuf_api::Session) plus a per-corner
//!   [`EcoSolver`](fastbuf_api::EcoSolver) cache, with LRU eviction
//!   beyond a configurable cap.
//! * [`handler`] — executes one request frame against the registry and
//!   produces exactly one reply frame; every failure (malformed frame,
//!   unknown design, solver error, panic, missed deadline) becomes a
//!   typed error reply, never a dead process.
//! * [`Server`] — the transports: newline-delimited JSON over TCP
//!   (concurrent clients, worker pool, bounded in-flight backpressure)
//!   or over stdin/stdout (one client, same pool).
//!
//! The wire schema itself lives in [`fastbuf_api::wire`] and is
//! documented in `docs/PROTOCOL.md`; the CLI's `--json` paths serialize
//! through the same [`NetRecordOwned`](fastbuf_api::json::NetRecordOwned)
//! records, so a served solve and a direct `fastbuf solve --json` emit
//! byte-identical per-net results.
//!
//! ```no_run
//! use fastbuf_server::{Server, ServerConfig};
//!
//! let listener = std::net::TcpListener::bind("127.0.0.1:7333")?;
//! Server::new(ServerConfig::default()).serve_tcp(listener)?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod handler;
pub mod registry;
mod server;

pub use server::Server;

use std::time::Duration;

/// Tuning knobs of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing requests (default: the machine's
    /// available parallelism, at least 2 so a slow solve cannot starve
    /// pings).
    pub workers: usize,
    /// Maximum requests admitted but not yet completed. Beyond this the
    /// connection readers block (bounded job queue), which TCP turns
    /// into client-visible backpressure instead of unbounded memory
    /// growth.
    pub max_inflight: usize,
    /// Maximum resident designs; loading one more evicts the least
    /// recently used.
    pub max_designs: usize,
    /// Deadline applied to requests that do not carry their own
    /// `deadline_ms` (`None` = no default deadline).
    pub default_deadline: Option<Duration>,
    /// Largest accepted request frame in bytes; longer lines get a
    /// `too-large` error reply.
    pub max_frame_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(2),
            max_inflight: 64,
            max_designs: 8,
            default_deadline: None,
            max_frame_bytes: 16 << 20,
        }
    }
}
