//! Synthetic net generators reproducing the workload *shapes* of
//! Li & Shi, DATE 2005.
//!
//! The paper evaluates on three industrial nets (337 / 1944 / 2676 sinks;
//! the 1944-sink net carries 33133 candidate buffer positions) routed in a
//! 180 nm technology with sink capacitances between 2 and 41 fF. Those nets
//! are proprietary, so this crate generates deterministic synthetic stand-ins
//! matched on the published statistics:
//!
//! * [`line_net`] — 2-pin lines with a configurable number of buffer sites
//!   (the textbook van Ginneken workload, used for complexity sweeps);
//! * [`RandomNetSpec`] — random geometric Steiner-style trees at any sink
//!   count, with paper-matched sink loads and technology constants
//!   ([`RandomNetSpec::paper`] presets the three table rows);
//! * [`caterpillar_net`] — a trunk with periodic sink stubs (bus-like);
//! * [`h_tree`] — symmetric clock-style H-trees;
//! * [`SuiteSpec`] — whole *fleets* of nets with a realistic heavy-tailed
//!   size mix, for the batch subsystem and throughput benchmarks;
//! * [`eco`] — typed tree [`Edit`](eco::Edit)s and deterministic
//!   [`EditScriptSpec`](eco::EditScriptSpec) generation for incremental
//!   (ECO) re-solve workloads, plus a text format for edit scripts;
//! * [`variation`] — seeded process-variation families
//!   ([`VariationSpec`]) that expand into
//!   per-sample absolute edit scripts for Monte-Carlo yield solving;
//! * [`shared`] — fleets of nets contending for a *shared* pool of
//!   physical buffer sites ([`SharedSuiteSpec`]), plus the site-capacity
//!   text format, for the design-level pricing loop (`fastbuf-global`);
//! * [`cts`] — 2-D sink placements ([`CtsPlacementSpec`], a text format)
//!   and recursive-bipartition clock topology generation
//!   ([`build_topology`]) for the skew-aware CTS pipeline (`fastbuf cts`).
//!
//! Everything is seeded and deterministic: the same spec always builds the
//! same net, so benchmark tables are reproducible run to run.
//!
//! ```
//! use fastbuf_netgen::RandomNetSpec;
//!
//! let tree = RandomNetSpec::paper(337).build();
//! assert_eq!(tree.sink_count(), 337);
//! assert!(tree.buffer_site_count() > 3000); // paper-scale position density
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod clock;
pub mod cts;
pub mod eco;
mod line;
mod random;
pub mod shared;
mod suite;
pub mod variation;

pub use clock::{caterpillar_net, h_tree, try_caterpillar_net, ClockSpecError, HTreeSpec};
pub use cts::{
    build_topology, parse_placements, write_placements, CtsPlacementSpec, CtsTopology,
    CtsTopologySpec, SinkPlacement,
};
pub use line::{line_net, LineNetSpec};
pub use random::{RandomNetSpec, RatPolicy};
pub use shared::{parse_capacity, write_capacity, SharedNet, SharedSuiteSpec};
pub use suite::{heavy_tailed_sinks, SuiteSpec};
pub use variation::{parse_variation, write_variation, Dist, VariationSpec};
