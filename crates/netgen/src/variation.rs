//! Monte-Carlo process-variation sampling: seeded distributions over tree
//! parameters that expand into deterministic per-sample edit scripts.
//!
//! A [`VariationSpec`] describes *how* a net varies — distributions over
//! wire R/C, buffer intrinsic delay/drive, sink load, and required-arrival
//! derate — plus *where* (a locality-bounded pool of nodes, drawn by the
//! same seeded-shuffle scheme as [`EditScriptSpec`](crate::eco::EditScriptSpec)).
//! [`VariationSpec::sample_edits`] expands sample `k` into a plain
//! [`Edit`] script whose values are **absolute** (derived
//! from the base tree, never from a previously applied sample), and every
//! sample perturbs the **same pool** of nodes. Together these two choices
//! make sampled solving compose with the incremental engine:
//!
//! * applying sample `k`'s script on top of any previously applied sample
//!   produces exactly the sample-`k` tree (each script fully overwrites
//!   every knob the family varies);
//! * consecutive samples of one family dirty only the pool's root paths,
//!   so a `SubtreeCache` reuses every subtree the family never touches.
//!
//! Determinism: sample `k` draws from its own PRNG stream seeded from
//! `(spec.seed, k)`, so its values do not depend on which worker solves it
//! or in what order samples are generated — the property the parallel
//! yield solver's bit-reproducibility rests on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fastbuf_buflib::units::{Farads, Ohms, Seconds};
use fastbuf_rctree::{NodeId, NodeKind, RoutingTree};

use crate::eco::Edit;

/// Sampled factors are clamped into this range: a far tail of a normal
/// distribution must not produce zero/negative parasitics or derates.
const FACTOR_FLOOR: f64 = 0.05;
const FACTOR_CEIL: f64 = 20.0;

/// A distribution over a multiplicative factor (nominal is `1.0`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Dist {
    /// Always exactly `1.0`: the knob does not vary, and no edit is ever
    /// emitted for it.
    Fixed,
    /// Gaussian with the given mean and standard deviation, sampled by
    /// Box–Muller over the seeded uniform stream (the vendored `rand` has
    /// no normal sampler). Samples are clamped to `[0.05, 20.0]`.
    Normal {
        /// Mean factor (typically `1.0`).
        mean: f64,
        /// Standard deviation (must be non-negative and finite).
        sigma: f64,
    },
    /// Uniform over `[lo, hi]`.
    Uniform {
        /// Lower bound (must be positive).
        lo: f64,
        /// Upper bound (must be `>= lo`).
        hi: f64,
    },
}

impl Dist {
    /// `true` for [`Dist::Fixed`] — the knob never emits edits.
    pub fn is_fixed(&self) -> bool {
        matches!(self, Dist::Fixed)
    }

    /// `true` when the parameters are in-domain: finite everywhere,
    /// `sigma >= 0`, positive `mean`, and `0 < lo <= hi`.
    pub fn is_valid(&self) -> bool {
        match *self {
            Dist::Fixed => true,
            Dist::Normal { mean, sigma } => {
                mean.is_finite() && sigma.is_finite() && mean > 0.0 && sigma >= 0.0
            }
            Dist::Uniform { lo, hi } => lo.is_finite() && hi.is_finite() && lo > 0.0 && hi >= lo,
        }
    }

    /// Draws one factor. Non-fixed draws consume the PRNG; `Fixed` does
    /// not, so adding a fixed knob to a spec never shifts the stream of
    /// the others.
    fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            Dist::Fixed => 1.0,
            Dist::Normal { mean, sigma } => {
                // Box–Muller; u1 is bounded away from zero so ln() is finite.
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen_range(0.0f64..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (mean + sigma * z).clamp(FACTOR_FLOOR, FACTOR_CEIL)
            }
            Dist::Uniform { lo, hi } => rng.gen_range(lo..=hi).clamp(FACTOR_FLOOR, FACTOR_CEIL),
        }
    }
}

impl std::fmt::Display for Dist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dist::Fixed => write!(f, "fixed"),
            Dist::Normal { mean, sigma } => write!(f, "normal {mean} {sigma}"),
            Dist::Uniform { lo, hi } => write!(f, "uniform {lo} {hi}"),
        }
    }
}

/// Seeded, serializable description of one process-variation family.
///
/// Expand with [`VariationSpec::sample_edits`] / [`VariationSpec::expand`];
/// serialize with [`write_variation`] and read back with
/// [`parse_variation`] (line-numbered errors, like the edit-script format).
#[derive(Clone, Debug, PartialEq)]
pub struct VariationSpec {
    /// Factor on each perturbed wire's resistance.
    pub wire_r: Dist,
    /// Factor on each perturbed wire's capacitance.
    pub wire_c: Dist,
    /// Per-site factor on inserted buffers' intrinsic delay.
    pub buffer_delay: Dist,
    /// Per-site factor on inserted buffers' driving resistance.
    pub buffer_drive: Dist,
    /// Factor on each perturbed sink's load capacitance.
    pub sink_cap: Dist,
    /// Factor on each perturbed sink's required arrival time.
    pub rat_derate: Dist,
    /// Fraction `(0, 1]` of non-root nodes in the perturbed pool. Every
    /// sample perturbs the same pool, so cache reuse across samples scales
    /// inversely with this knob (exactly like ECO edit locality).
    pub locality: f64,
    /// PRNG seed: pool selection and every sample's draws derive from it.
    pub seed: u64,
}

impl Default for VariationSpec {
    fn default() -> Self {
        VariationSpec {
            wire_r: Dist::Fixed,
            wire_c: Dist::Fixed,
            buffer_delay: Dist::Fixed,
            buffer_drive: Dist::Fixed,
            sink_cap: Dist::Fixed,
            rat_derate: Dist::Fixed,
            locality: 0.05,
            seed: 1,
        }
    }
}

impl VariationSpec {
    /// A preset varying every knob by `Normal(1.0, sigma)` — the common
    /// "σ% process spread" family used by benches and tests.
    pub fn gaussian(sigma: f64, locality: f64, seed: u64) -> Self {
        let d = Dist::Normal { mean: 1.0, sigma };
        VariationSpec {
            wire_r: d,
            wire_c: d,
            buffer_delay: d,
            buffer_drive: d,
            sink_cap: d,
            rat_derate: d,
            locality,
            seed,
        }
    }

    /// `true` when every distribution is valid and `locality` is in
    /// `(0, 1]`.
    pub fn is_valid(&self) -> bool {
        self.dists().iter().all(|(_, d)| d.is_valid())
            && self.locality.is_finite()
            && self.locality > 0.0
            && self.locality <= 1.0
    }

    fn dists(&self) -> [(&'static str, Dist); 6] {
        [
            ("wire-r", self.wire_r),
            ("wire-c", self.wire_c),
            ("buffer-delay", self.buffer_delay),
            ("buffer-drive", self.buffer_drive),
            ("sink-cap", self.sink_cap),
            ("rat", self.rat_derate),
        ]
    }

    /// The perturbed pool: a seeded Fisher–Yates shuffle of all non-root
    /// nodes truncated to the locality budget, then sorted by node index
    /// so every sample's script lists edits in the same order.
    ///
    /// # Panics
    ///
    /// Panics if `locality` is not in `(0, 1]` (parse-level validation
    /// rejects such specs before they get here).
    pub fn pool(&self, tree: &RoutingTree) -> Vec<NodeId> {
        assert!(
            self.locality > 0.0 && self.locality <= 1.0,
            "locality must be in (0, 1], got {}",
            self.locality
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut pool: Vec<NodeId> = tree
            .node_ids()
            .filter(|&n| tree.parent(n).is_some())
            .collect();
        for i in (1..pool.len()).rev() {
            pool.swap(i, rng.gen_range(0usize..i + 1));
        }
        let keep =
            ((self.locality * pool.len() as f64).ceil() as usize).clamp(1, pool.len().max(1));
        pool.truncate(keep);
        pool.sort();
        pool
    }

    /// Expands sample `k` into an absolute edit script against the **base**
    /// tree: wire parasitics become [`Edit::SetWireRC`] (base × factor),
    /// sink parameters become [`Edit::SetSinkCap`] / [`Edit::SetSinkRat`]
    /// (base × factor), and site derates become [`Edit::DerateSite`]
    /// (factors are absolute by definition). Applying the script to a tree
    /// currently holding *any other sample of the same family* yields
    /// exactly the sample-`k` tree.
    pub fn sample_edits(&self, tree: &RoutingTree, k: usize) -> Vec<Edit> {
        let pool = self.pool(tree);
        self.sample_edits_with_pool(tree, &pool, k)
    }

    /// [`VariationSpec::sample_edits`] with a precomputed
    /// [`pool`](VariationSpec::pool) — callers expanding many samples
    /// hoist the pool out of the loop.
    pub fn sample_edits_with_pool(
        &self,
        tree: &RoutingTree,
        pool: &[NodeId],
        k: usize,
    ) -> Vec<Edit> {
        // One independent stream per (seed, sample): values never depend on
        // worker assignment or expansion order.
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (k as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut edits = Vec::new();
        for &node in pool {
            if let Some(wire) = tree.wire_to_parent(node) {
                if !self.wire_r.is_fixed() || !self.wire_c.is_fixed() {
                    let fr = self.wire_r.sample(&mut rng);
                    let fc = self.wire_c.sample(&mut rng);
                    edits.push(Edit::SetWireRC {
                        node,
                        resistance: Ohms::new(wire.resistance().value() * fr),
                        capacitance: Farads::new(wire.capacitance().value() * fc),
                    });
                }
            }
            match tree.kind(node) {
                NodeKind::Internal => {
                    if !self.buffer_delay.is_fixed() || !self.buffer_drive.is_fixed() {
                        edits.push(Edit::DerateSite {
                            node,
                            delay_scale: self.buffer_delay.sample(&mut rng),
                            drive_scale: self.buffer_drive.sample(&mut rng),
                        });
                    }
                }
                NodeKind::Sink {
                    capacitance,
                    required_arrival,
                } => {
                    if !self.sink_cap.is_fixed() {
                        let f = self.sink_cap.sample(&mut rng);
                        edits.push(Edit::SetSinkCap {
                            node,
                            cap: Farads::new(capacitance.value() * f),
                        });
                    }
                    if !self.rat_derate.is_fixed() {
                        let f = self.rat_derate.sample(&mut rng);
                        edits.push(Edit::SetSinkRat {
                            node,
                            rat: Seconds::new(required_arrival.value() * f),
                        });
                    }
                }
                NodeKind::Source { .. } => {}
            }
        }
        edits
    }

    /// Expands samples `0..samples` (hoisting the pool computation).
    pub fn expand(&self, tree: &RoutingTree, samples: usize) -> Vec<Vec<Edit>> {
        let pool = self.pool(tree);
        (0..samples)
            .map(|k| self.sample_edits_with_pool(tree, &pool, k))
            .collect()
    }
}

/// Serializes a spec in the text format [`parse_variation`] reads.
pub fn write_variation(spec: &VariationSpec) -> String {
    let mut out = String::new();
    for (name, dist) in spec.dists() {
        out.push_str(&format!("{name} {dist}\n"));
    }
    out.push_str(&format!("locality {}\n", spec.locality));
    out.push_str(&format!("seed {}\n", spec.seed));
    out
}

/// Parses the line-oriented variation format (`#` comments and blank lines
/// allowed; omitted knobs default to `fixed`, omitted `locality`/`seed` to
/// the [`VariationSpec::default`] values):
///
/// ```text
/// # knob: fixed | normal MEAN SIGMA | uniform LO HI
/// wire-r normal 1.0 0.05
/// wire-c normal 1.0 0.05
/// buffer-delay normal 1.0 0.08
/// buffer-drive uniform 0.9 1.1
/// sink-cap fixed
/// rat normal 1.0 0.02
/// locality 0.05
/// seed 42
/// ```
///
/// # Errors
///
/// A human-readable message naming the 1-based line of the first problem:
/// unknown knobs, non-finite (NaN/inf) parameters, negative sigma,
/// non-positive means/bounds, inverted uniform ranges, and out-of-range
/// locality are all rejected here — never deferred to solve time.
pub fn parse_variation(text: &str) -> Result<VariationSpec, String> {
    let mut spec = VariationSpec::default();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", i + 1);
        let mut tokens = line.split_whitespace();
        let key = tokens.next().expect("non-empty line has a first token");
        let num_arg = |tokens: &mut std::str::SplitWhitespace, what: &str| -> Result<f64, String> {
            let t = tokens
                .next()
                .ok_or_else(|| err(format!("`{key}` needs a {what}")))?;
            let v: f64 = t.parse().map_err(|_| err(format!("bad {what} `{t}`")))?;
            if !v.is_finite() {
                return Err(err(format!("{what} must be finite, got `{t}`")));
            }
            Ok(v)
        };
        match key {
            "locality" => {
                let v = num_arg(&mut tokens, "fraction")?;
                if !(v > 0.0 && v <= 1.0) {
                    return Err(err(format!("locality must be in (0, 1], got {v}")));
                }
                spec.locality = v;
            }
            "seed" => {
                let t = tokens
                    .next()
                    .ok_or_else(|| err("`seed` needs an integer".into()))?;
                spec.seed = t
                    .parse()
                    .map_err(|_| err(format!("bad seed `{t}` (expected an unsigned integer)")))?;
            }
            knob => {
                let slot = match knob {
                    "wire-r" => &mut spec.wire_r,
                    "wire-c" => &mut spec.wire_c,
                    "buffer-delay" => &mut spec.buffer_delay,
                    "buffer-drive" => &mut spec.buffer_drive,
                    "sink-cap" => &mut spec.sink_cap,
                    "rat" => &mut spec.rat_derate,
                    other => {
                        return Err(err(format!(
                            "unknown key `{other}` (expected wire-r, wire-c, buffer-delay, \
                             buffer-drive, sink-cap, rat, locality, seed)"
                        )))
                    }
                };
                let shape = tokens
                    .next()
                    .ok_or_else(|| err(format!("`{knob}` needs a distribution")))?;
                *slot = match shape {
                    "fixed" => Dist::Fixed,
                    "normal" => {
                        let mean = num_arg(&mut tokens, "mean")?;
                        let sigma = num_arg(&mut tokens, "sigma")?;
                        if mean <= 0.0 {
                            return Err(err(format!("mean must be positive, got {mean}")));
                        }
                        if sigma < 0.0 {
                            return Err(err(format!("sigma must be non-negative, got {sigma}")));
                        }
                        Dist::Normal { mean, sigma }
                    }
                    "uniform" => {
                        let lo = num_arg(&mut tokens, "lower bound")?;
                        let hi = num_arg(&mut tokens, "upper bound")?;
                        if lo <= 0.0 {
                            return Err(err(format!("lower bound must be positive, got {lo}")));
                        }
                        if hi < lo {
                            return Err(err(format!("empty range: {lo} > {hi}")));
                        }
                        Dist::Uniform { lo, hi }
                    }
                    other => {
                        return Err(err(format!(
                            "unknown distribution `{other}` (expected fixed, normal, uniform)"
                        )))
                    }
                };
            }
        }
        if let Some(extra) = tokens.next() {
            return Err(err(format!("unexpected trailing token `{extra}`")));
        }
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomNetSpec;

    fn tree() -> RoutingTree {
        RandomNetSpec {
            sinks: 15,
            seed: 7,
            ..RandomNetSpec::default()
        }
        .build()
    }

    #[test]
    fn expansion_is_deterministic_and_order_independent() {
        let t = tree();
        let spec = VariationSpec::gaussian(0.08, 0.3, 42);
        let a = spec.expand(&t, 5);
        let b = spec.expand(&t, 5);
        assert_eq!(a, b);
        // Sample k alone equals sample k of a batch: no cross-sample state.
        assert_eq!(spec.sample_edits(&t, 3), a[3]);
        // Different samples differ; different seeds differ.
        assert_ne!(a[0], a[1]);
        let other = VariationSpec { seed: 43, ..spec };
        assert_ne!(other.expand(&t, 1)[0], a[0]);
    }

    #[test]
    fn every_sample_perturbs_the_same_pool() {
        let t = tree();
        let spec = VariationSpec::gaussian(0.1, 0.2, 9);
        let scripts = spec.expand(&t, 8);
        let nodes = |s: &[Edit]| {
            let mut v: Vec<NodeId> = s
                .iter()
                .map(|e| match e {
                    Edit::SetWireRC { node, .. }
                    | Edit::DerateSite { node, .. }
                    | Edit::SetSinkCap { node, .. }
                    | Edit::SetSinkRat { node, .. }
                    | Edit::SetWireLength { node, .. }
                    | Edit::BlockSite { node }
                    | Edit::UnblockSite { node } => *node,
                    Edit::SwapLibrary { .. } => unreachable!("variation never swaps libraries"),
                })
                .collect();
            v.dedup();
            v
        };
        let first = nodes(&scripts[0]);
        for s in &scripts[1..] {
            assert_eq!(nodes(s), first, "pool must be identical across samples");
        }
        let budget = ((0.2 * (t.node_count() - 1) as f64).ceil()) as usize;
        assert!(first.len() <= budget);
    }

    #[test]
    fn factors_scale_base_values_and_stay_positive() {
        let t = tree();
        // Huge sigma: the clamp must keep everything legal.
        let spec = VariationSpec::gaussian(5.0, 1.0, 3);
        for script in spec.expand(&t, 20) {
            for e in script {
                match e {
                    Edit::SetWireRC {
                        resistance,
                        capacitance,
                        ..
                    } => {
                        assert!(resistance.value() >= 0.0 && resistance.is_finite());
                        assert!(capacitance.value() >= 0.0 && capacitance.is_finite());
                    }
                    Edit::DerateSite {
                        delay_scale,
                        drive_scale,
                        ..
                    } => {
                        assert!((FACTOR_FLOOR..=FACTOR_CEIL).contains(&delay_scale));
                        assert!((FACTOR_FLOOR..=FACTOR_CEIL).contains(&drive_scale));
                    }
                    Edit::SetSinkCap { cap, .. } => assert!(cap.value() >= 0.0),
                    Edit::SetSinkRat { rat, .. } => assert!(rat.is_finite()),
                    other => panic!("unexpected edit {other:?}"),
                }
            }
        }
    }

    #[test]
    fn fixed_knobs_emit_no_edits() {
        let t = tree();
        let spec = VariationSpec {
            sink_cap: Dist::Normal {
                mean: 1.0,
                sigma: 0.1,
            },
            locality: 1.0,
            ..VariationSpec::default()
        };
        for script in spec.expand(&t, 4) {
            assert!(!script.is_empty());
            assert!(script.iter().all(|e| matches!(e, Edit::SetSinkCap { .. })));
        }
        // All-fixed spec: every sample is the empty script (the nominal tree).
        let nominal = VariationSpec::default();
        assert!(nominal.expand(&t, 3).iter().all(|s| s.is_empty()));
    }

    #[test]
    fn text_roundtrip_preserves_specs() {
        let spec = VariationSpec {
            wire_r: Dist::Normal {
                mean: 1.0,
                sigma: 0.05,
            },
            wire_c: Dist::Uniform { lo: 0.9, hi: 1.15 },
            buffer_delay: Dist::Normal {
                mean: 1.02,
                sigma: 0.08,
            },
            buffer_drive: Dist::Fixed,
            sink_cap: Dist::Uniform { lo: 0.8, hi: 1.3 },
            rat_derate: Dist::Normal {
                mean: 1.0,
                sigma: 0.01,
            },
            locality: 0.125,
            seed: 777,
        };
        let text = write_variation(&spec);
        assert_eq!(parse_variation(&text).unwrap(), spec);
        // Defaults survive omission.
        let partial = parse_variation("rat normal 1 0.02\n").unwrap();
        assert_eq!(
            partial.rat_derate,
            Dist::Normal {
                mean: 1.0,
                sigma: 0.02
            }
        );
        assert_eq!(partial.wire_r, Dist::Fixed);
        assert_eq!(partial.locality, VariationSpec::default().locality);
    }

    #[test]
    fn parse_rejects_bad_specs_with_line_numbers() {
        let err = parse_variation("wire-r normal NaN 0.1\n").unwrap_err();
        assert!(err.contains("line 1") && err.contains("finite"), "{err}");
        let err = parse_variation("# ok\nwire-c normal 1.0 -0.2\n").unwrap_err();
        assert!(
            err.contains("line 2") && err.contains("non-negative"),
            "{err}"
        );
        let err = parse_variation("buffer-delay uniform 1.2 0.8\n").unwrap_err();
        assert!(err.contains("empty range"), "{err}");
        let err = parse_variation("buffer-drive uniform 0 1.1\n").unwrap_err();
        assert!(err.contains("positive"), "{err}");
        let err = parse_variation("rat normal -1 0.1\n").unwrap_err();
        assert!(err.contains("positive"), "{err}");
        let err = parse_variation("locality 1.5\n").unwrap_err();
        assert!(err.contains("(0, 1]"), "{err}");
        let err = parse_variation("locality 0\n").unwrap_err();
        assert!(err.contains("(0, 1]"), "{err}");
        let err = parse_variation("seed twelve\n").unwrap_err();
        assert!(err.contains("bad seed"), "{err}");
        let err = parse_variation("gravity normal 1 0.1\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
        let err = parse_variation("wire-r cauchy 1 0.1\n").unwrap_err();
        assert!(err.contains("unknown distribution"), "{err}");
        let err = parse_variation("wire-r normal 1 0.1 extra\n").unwrap_err();
        assert!(err.contains("trailing"), "{err}");
        let err = parse_variation("sink-cap normal inf 0.1\n").unwrap_err();
        assert!(err.contains("finite"), "{err}");
    }

    #[test]
    fn gaussian_preset_is_valid_and_spec_validation_catches_bad_fields() {
        assert!(VariationSpec::gaussian(0.05, 0.1, 1).is_valid());
        assert!(!VariationSpec::gaussian(f64::NAN, 0.1, 1).is_valid());
        assert!(!VariationSpec {
            locality: 0.0,
            ..VariationSpec::default()
        }
        .is_valid());
        assert!(!VariationSpec {
            rat_derate: Dist::Uniform { lo: 2.0, hi: 1.0 },
            ..VariationSpec::default()
        }
        .is_valid());
    }
}
