//! Random geometric Steiner-style nets at the paper's scales.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fastbuf_buflib::units::{Farads, Microns, Ohms, Seconds};
use fastbuf_buflib::{Driver, Technology};
use fastbuf_rctree::segment::segment_by_pitch;
use fastbuf_rctree::{RoutingTree, TreeBuilder, Wire};

/// How sink required arrival times are assigned.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RatPolicy {
    /// Every sink gets the same required arrival time.
    Constant(Seconds),
    /// Uniformly random in `[min, max]` (seeded, deterministic).
    Range {
        /// Smallest possible RAT.
        min: Seconds,
        /// Largest possible RAT.
        max: Seconds,
    },
}

/// Specification of a random geometric net.
///
/// Sinks are placed uniformly in a square die; the topology is a
/// nearest-neighbour insertion tree (each sink's tap connects to the closest
/// already-routed tap, wire length = Manhattan distance — a standard
/// Steiner-tree surrogate). Long wires are then segmented at
/// [`RandomNetSpec::site_pitch`] to create candidate buffer positions, which
/// is exactly how the paper's Figure 4 scales `n` on a fixed net.
///
/// [`RandomNetSpec::paper`] presets the three evaluation nets (337, 1944,
/// 2676 sinks) with the published sink-capacitance range (2–41 fF) and
/// technology constants, and a pitch calibrated to land near the published
/// position count (33133 positions on the 1944-sink net).
#[derive(Clone, Debug, PartialEq)]
pub struct RandomNetSpec {
    /// Number of sinks (the paper's `m`).
    pub sinks: usize,
    /// Side of the square die the sinks are scattered over.
    pub die: Microns,
    /// Interconnect technology.
    pub tech: Technology,
    /// Driver resistance at the source.
    pub driver_resistance: Ohms,
    /// Smallest sink load (paper: 2 fF).
    pub sink_cap_min: Farads,
    /// Largest sink load (paper: 41 fF).
    pub sink_cap_max: Farads,
    /// Required-arrival-time policy.
    pub rat: RatPolicy,
    /// Buffer sites are created every `site_pitch` of wire (`None` = only
    /// tap points are sites, no segmenting).
    pub site_pitch: Option<Microns>,
    /// PRNG seed; the same spec always builds the same net.
    pub seed: u64,
}

impl Default for RandomNetSpec {
    fn default() -> Self {
        RandomNetSpec {
            sinks: 64,
            die: Microns::new(2000.0),
            tech: Technology::tsmc180_like(),
            driver_resistance: Ohms::new(180.0),
            sink_cap_min: Farads::from_femto(2.0),
            sink_cap_max: Farads::from_femto(41.0),
            rat: RatPolicy::Range {
                min: Seconds::from_pico(800.0),
                max: Seconds::from_pico(2400.0),
            },
            site_pitch: Some(Microns::new(200.0)),
            seed: 1,
        }
    }
}

impl RandomNetSpec {
    /// The paper's evaluation nets: `m ∈ {337, 1944, 2676}` sinks (any
    /// other count is accepted and scaled accordingly). Die area grows with
    /// `√m`; the segmenting pitch is calibrated so the 1944-sink net gets
    /// ≈ 33k buffer positions as in the paper.
    pub fn paper(sinks: usize) -> Self {
        let scale = (sinks as f64 / 1944.0).sqrt();
        RandomNetSpec {
            sinks,
            die: Microns::new(8000.0 * scale),
            site_pitch: Some(Microns::new(16.0)),
            rat: RatPolicy::Range {
                min: Seconds::from_pico(1500.0),
                max: Seconds::from_pico(4000.0),
            },
            seed: sinks as u64, // distinct but reproducible per size
            ..RandomNetSpec::default()
        }
    }

    /// Re-targets [`RandomNetSpec::site_pitch`] so the built net has
    /// approximately `positions` buffer sites (used by the Figure 4 sweep).
    /// The calibration builds the unsegmented topology once to measure the
    /// total wirelength.
    #[must_use]
    pub fn with_target_positions(mut self, positions: usize) -> Self {
        let mut probe = self.clone();
        probe.site_pitch = None;
        let base = probe.build();
        let stats = base.stats();
        let total = stats.total_length.expect("generated wires carry lengths");
        let taps = stats.buffer_sites; // tap points are sites already
        let remaining = positions.saturating_sub(taps).max(1);
        self.site_pitch = Some(Microns::new(total.value() / remaining as f64));
        self
    }

    /// Builds the routing tree.
    ///
    /// # Panics
    ///
    /// Panics if `sinks == 0` or the die is not strictly positive.
    pub fn build(&self) -> RoutingTree {
        assert!(self.sinks > 0, "a net needs at least one sink");
        assert!(self.die > Microns::ZERO, "die must be strictly positive");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let die = self.die.value();

        // Source sits at the die center-left edge (a typical block pin).
        let src_xy = (0.0f64, die / 2.0);
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(self.driver_resistance));

        // Tap points already routed: (x, y, node).
        let mut routed: Vec<(f64, f64, fastbuf_rctree::NodeId)> = vec![(src_xy.0, src_xy.1, src)];

        for _ in 0..self.sinks {
            let x: f64 = rng.gen_range(0.0..die);
            let y: f64 = rng.gen_range(0.0..die);
            // Nearest already-routed tap by Manhattan distance.
            let (px, py, parent) = *routed
                .iter()
                .min_by(|a, b| {
                    let da = (a.0 - x).abs() + (a.1 - y).abs();
                    let db = (b.0 - x).abs() + (b.1 - y).abs();
                    da.total_cmp(&db)
                })
                .expect("source is always routed");
            let dist = (px - x).abs() + (py - y).abs();
            let tap = b.buffer_site();
            b.connect(
                parent,
                tap,
                Wire::from_length(&self.tech, Microns::new(dist.max(1.0))),
            )
            .expect("fresh tap");
            let cap =
                Farads::new(rng.gen_range(self.sink_cap_min.value()..=self.sink_cap_max.value()));
            let rat = match self.rat {
                RatPolicy::Constant(r) => r,
                RatPolicy::Range { min, max } => {
                    Seconds::new(rng.gen_range(min.value()..=max.value()))
                }
            };
            let sink = b.sink(cap, rat);
            // Short stub from tap to pin.
            b.connect(tap, sink, Wire::from_length(&self.tech, Microns::new(1.0)))
                .expect("fresh sink");
            routed.push((x, y, tap));
        }

        let base = b.build().expect("generated net is structurally valid");
        match self.site_pitch {
            None => base,
            Some(pitch) => {
                segment_by_pitch(&base, pitch)
                    .expect("generated wires carry lengths")
                    .tree
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = RandomNetSpec::default().build();
        let b = RandomNetSpec::default().build();
        assert_eq!(fastbuf_rctree::io::write(&a), fastbuf_rctree::io::write(&b));

        let c = RandomNetSpec {
            seed: 99,
            ..RandomNetSpec::default()
        }
        .build();
        assert_ne!(fastbuf_rctree::io::write(&a), fastbuf_rctree::io::write(&c));
    }

    #[test]
    fn sink_count_and_parameter_ranges() {
        let spec = RandomNetSpec::default();
        let t = spec.build();
        assert_eq!(t.sink_count(), spec.sinks);
        for s in t.sinks() {
            match t.kind(s) {
                fastbuf_rctree::NodeKind::Sink {
                    capacitance,
                    required_arrival,
                } => {
                    assert!(*capacitance >= spec.sink_cap_min);
                    assert!(*capacitance <= spec.sink_cap_max);
                    match spec.rat {
                        RatPolicy::Range { min, max } => {
                            assert!(*required_arrival >= min && *required_arrival <= max);
                        }
                        RatPolicy::Constant(_) => unreachable!(),
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn constant_rat_policy() {
        let spec = RandomNetSpec {
            rat: RatPolicy::Constant(Seconds::from_pico(1234.0)),
            sinks: 10,
            ..RandomNetSpec::default()
        };
        let t = spec.build();
        for s in t.sinks() {
            match t.kind(s) {
                fastbuf_rctree::NodeKind::Sink {
                    required_arrival, ..
                } => assert_eq!(*required_arrival, Seconds::from_pico(1234.0)),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn pitch_none_keeps_only_taps() {
        let spec = RandomNetSpec {
            site_pitch: None,
            sinks: 20,
            ..RandomNetSpec::default()
        };
        let t = spec.build();
        // One tap per sink, nothing else.
        assert_eq!(t.buffer_site_count(), 20);
    }

    #[test]
    fn smaller_pitch_means_more_sites() {
        let coarse = RandomNetSpec {
            site_pitch: Some(Microns::new(400.0)),
            ..RandomNetSpec::default()
        }
        .build();
        let fine = RandomNetSpec {
            site_pitch: Some(Microns::new(100.0)),
            ..RandomNetSpec::default()
        }
        .build();
        assert!(fine.buffer_site_count() > coarse.buffer_site_count());
    }

    #[test]
    fn target_positions_lands_close() {
        for target in [500usize, 2000] {
            let t = RandomNetSpec {
                sinks: 100,
                ..RandomNetSpec::default()
            }
            .with_target_positions(target)
            .build();
            let got = t.buffer_site_count();
            let err = (got as f64 - target as f64).abs() / target as f64;
            assert!(err < 0.25, "target {target}, got {got}");
        }
    }

    #[test]
    fn paper_presets_have_paper_stats() {
        let t = RandomNetSpec::paper(337).build();
        assert_eq!(t.sink_count(), 337);
        let stats = t.stats();
        assert!(stats.buffer_sites > 2000, "{stats}");
        // All leaves are sinks (validated by build); depth is sane.
        assert!(stats.max_depth > 5);
    }

    #[test]
    #[should_panic(expected = "at least one sink")]
    fn zero_sinks_panics() {
        let _ = RandomNetSpec {
            sinks: 0,
            ..RandomNetSpec::default()
        }
        .build();
    }
}
