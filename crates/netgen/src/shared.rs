//! Shared-site fleets and site-capacity text files for design-level
//! resource-constrained buffering (`fastbuf-global`).
//!
//! A [`SuiteSpec`](crate::SuiteSpec) fleet gives every net its own private
//! buffer sites; a real design has nets *competing* for the same physical
//! positions. [`SharedSuiteSpec`] builds such a fleet deterministically:
//! every net is a 2-pin line whose length (and therefore buffering benefit)
//! is jittered per net, and each net's candidate sites are mapped onto a
//! contiguous window of a small shared pool of physical site ids. With a
//! pool smaller than the fleet's total buffer appetite, independently
//! optimal solves collide on the hot ids — exactly the infeasible starting
//! point the Lagrangian pricing loop exists to repair, while the per-net
//! length jitter gives the pricing a gradient to separate nets with.
//!
//! The node→site mapping is kept *outside* [`RoutingTree`] (a plain
//! `Vec<Option<u32>>` indexed by [`NodeId::index`](fastbuf_rctree::NodeId))
//! so the single-net layers never learn about cross-net coupling.
//!
//! [`parse_capacity`] / [`write_capacity`] give site capacities the same
//! line-numbered text format treatment as edit scripts and variation specs.

use fastbuf_buflib::units::{Microns, Seconds};
use fastbuf_rctree::RoutingTree;

use crate::line::LineNetSpec;

/// One net of a shared-site fleet: its routing tree plus the mapping from
/// tree nodes to shared physical site ids.
#[derive(Clone, Debug)]
pub struct SharedNet {
    /// The routing tree (private node ids, as always).
    pub tree: RoutingTree,
    /// `site_of[node.index()]` is the shared physical site id the node sits
    /// on, or `None` for nodes that are not candidate buffer positions.
    pub site_of: Vec<Option<u32>>,
}

/// Specification of a deterministic shared-site fleet.
///
/// Net `i` is a 2-pin line with `sites_per_net` candidate positions whose
/// length is `base_length · (1 + length_jitter · u_i)` for a seeded
/// `u_i ∈ [−1, 1)`, and whose sites map to the shared ids
/// `(start_i + j) mod pool_sites` for a seeded window start `start_i`.
/// Everything derives from `seed` via SplitMix64, so the same spec always
/// builds the same fleet on every platform.
#[derive(Clone, Debug, PartialEq)]
pub struct SharedSuiteSpec {
    /// Number of nets in the fleet.
    pub nets: usize,
    /// Size of the shared physical site pool; ids are `0..pool_sites`.
    pub pool_sites: u32,
    /// Candidate buffer positions per net (each maps to a shared id).
    pub sites_per_net: usize,
    /// Nominal line length per net.
    pub base_length: Microns,
    /// Fractional per-net length jitter in `[0, 1)`; distinct lengths give
    /// distinct buffering benefits, which is what lets a price separate
    /// two nets contending for one site.
    pub length_jitter: f64,
    /// Sink required arrival time for every net.
    pub required_arrival: Seconds,
    /// Master seed.
    pub seed: u64,
}

impl Default for SharedSuiteSpec {
    /// Eight 9–15 mm lines with 8 candidate sites each over a pool of 24
    /// shared ids. The windows overlap *partially* — every site is shared
    /// by some nets but no net sees the whole pool — so unpriced solves
    /// collide under small capacities while a price change only dirties
    /// the nets whose windows cover the re-priced site (which is what
    /// makes warm per-net caches worth having).
    fn default() -> Self {
        SharedSuiteSpec {
            nets: 8,
            pool_sites: 24,
            sites_per_net: 8,
            base_length: Microns::new(12_000.0),
            length_jitter: 0.25,
            required_arrival: Seconds::from_pico(2000.0),
            seed: 1,
        }
    }
}

/// SplitMix64 — the same mixer `heavy_tailed_sinks` uses.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from a seed.
fn unit(seed: u64) -> f64 {
    (mix(seed) >> 11) as f64 / (1u64 << 53) as f64
}

impl SharedSuiteSpec {
    /// Builds net `i` of the fleet.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.nets` or the spec is degenerate
    /// (`pool_sites == 0`, `sites_per_net == 0`, a non-positive
    /// `base_length`, or `length_jitter` outside `[0, 1)`).
    pub fn build_net(&self, i: usize) -> SharedNet {
        assert!(i < self.nets, "net index {i} out of range ({})", self.nets);
        assert!(self.pool_sites > 0, "pool_sites must be positive");
        assert!(self.sites_per_net > 0, "sites_per_net must be positive");
        assert!(
            (0.0..1.0).contains(&self.length_jitter),
            "length_jitter must be in [0, 1)"
        );
        let per_net = self.seed.wrapping_add(i as u64);
        let u = 2.0 * unit(per_net) - 1.0; // [-1, 1)
        let length = self.base_length.value() * (1.0 + self.length_jitter * u);
        let tree = LineNetSpec {
            length: Microns::new(length),
            sites: self.sites_per_net,
            required_arrival: self.required_arrival,
            ..LineNetSpec::default()
        }
        .build();
        let start = (mix(per_net.wrapping_add(0x5EED)) % self.pool_sites as u64) as u32;
        let mut site_of = vec![None; tree.node_count()];
        for (j, node) in tree.buffer_sites().enumerate() {
            site_of[node.index()] = Some((start + j as u32) % self.pool_sites);
        }
        SharedNet { tree, site_of }
    }

    /// Builds the whole fleet, in index order.
    ///
    /// # Panics
    ///
    /// Panics if `nets == 0` or the spec is degenerate (see
    /// [`SharedSuiteSpec::build_net`]).
    pub fn build(&self) -> Vec<SharedNet> {
        assert!(self.nets > 0, "a fleet needs at least one net");
        (0..self.nets).map(|i| self.build_net(i)).collect()
    }
}

/// Parses a site-capacity file: one `site <id> <capacity>` entry per line,
/// `#` comments and blank lines ignored. Returns neutral `(site, capacity)`
/// pairs — the capacity *map* type lives in `fastbuf-global`, which
/// depends on this crate and not vice versa.
///
/// # Errors
///
/// A line-numbered message for the first malformed line (unknown keyword,
/// missing or unparsable fields, duplicate site id).
pub fn parse_capacity(text: &str) -> Result<Vec<(u32, u32)>, String> {
    let mut out: Vec<(u32, u32)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let keyword = fields.next().expect("non-empty line has a first field");
        if keyword != "site" {
            return Err(format!(
                "line {lineno}: unknown keyword `{keyword}` (expected `site <id> <capacity>`)"
            ));
        }
        let id: u32 = fields
            .next()
            .ok_or_else(|| format!("line {lineno}: missing site id"))?
            .parse()
            .map_err(|e| format!("line {lineno}: bad site id: {e}"))?;
        let cap: u32 = fields
            .next()
            .ok_or_else(|| format!("line {lineno}: missing capacity"))?
            .parse()
            .map_err(|e| format!("line {lineno}: bad capacity: {e}"))?;
        if let Some(extra) = fields.next() {
            return Err(format!(
                "line {lineno}: unexpected trailing field `{extra}`"
            ));
        }
        if out.iter().any(|&(seen, _)| seen == id) {
            return Err(format!("line {lineno}: duplicate site id {id}"));
        }
        out.push((id, cap));
    }
    Ok(out)
}

/// Writes `(site, capacity)` pairs in the format [`parse_capacity`] reads.
pub fn write_capacity(pairs: &[(u32, u32)]) -> String {
    let mut out = String::from("# site capacities: site <id> <capacity>\n");
    for &(id, cap) in pairs {
        out.push_str(&format!("site {id} {cap}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_is_deterministic_and_well_mapped() {
        let spec = SharedSuiteSpec::default();
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.len(), spec.nets);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                fastbuf_rctree::io::write(&x.tree),
                fastbuf_rctree::io::write(&y.tree)
            );
            assert_eq!(x.site_of, y.site_of);
        }
        for net in &a {
            assert_eq!(net.site_of.len(), net.tree.node_count());
            for (idx, site) in net.site_of.iter().enumerate() {
                let node = fastbuf_rctree::NodeId::new(idx);
                match site {
                    Some(id) => {
                        assert!(*id < spec.pool_sites);
                        assert!(net.tree.is_buffer_site(node));
                    }
                    None => assert!(!net.tree.is_buffer_site(node)),
                }
            }
            assert_eq!(
                net.site_of.iter().flatten().count(),
                spec.sites_per_net,
                "every candidate position maps to a shared id"
            );
        }
    }

    #[test]
    fn fleets_overlap_on_the_pool() {
        // The whole point: multiple nets must reference the same ids.
        let spec = SharedSuiteSpec::default();
        let fleet = spec.build();
        let pool = spec.pool_sites as usize;
        let mut nets_on_site = vec![0u32; pool];
        for net in &fleet {
            let mut seen = vec![false; pool];
            for id in net.site_of.iter().flatten() {
                seen[*id as usize] = true;
            }
            for (id, s) in seen.iter().enumerate() {
                nets_on_site[id] += *s as u32;
            }
        }
        assert!(
            nets_on_site.iter().any(|&n| n >= 2),
            "no shared site is referenced by two nets: {nets_on_site:?}"
        );
    }

    #[test]
    fn lengths_are_jittered_per_net() {
        let spec = SharedSuiteSpec::default();
        let fleet = spec.build();
        let total_wire = |t: &RoutingTree| -> f64 {
            t.node_ids()
                .filter_map(|n| t.wire_to_parent(n))
                .map(|w| w.resistance().value())
                .sum()
        };
        let r0 = total_wire(&fleet[0].tree);
        assert!(
            fleet
                .iter()
                .any(|n| (total_wire(&n.tree) - r0).abs() > 1e-9),
            "jitter must differentiate net lengths"
        );
    }

    #[test]
    fn capacity_round_trips() {
        let pairs = vec![(0u32, 1u32), (3, 0), (7, 12)];
        let text = write_capacity(&pairs);
        assert_eq!(parse_capacity(&text).unwrap(), pairs);
        assert_eq!(parse_capacity("").unwrap(), vec![]);
        assert_eq!(
            parse_capacity("# nothing\n\n  site 4 2  # inline\n").unwrap(),
            vec![(4, 2)]
        );
    }

    #[test]
    fn capacity_errors_carry_line_numbers() {
        for (text, needle) in [
            ("cap 1 2", "line 1: unknown keyword `cap`"),
            ("site 1 2\nsite", "line 2: missing site id"),
            ("site 9", "line 1: missing capacity"),
            ("site x 2", "line 1: bad site id"),
            ("site 1 y", "line 1: bad capacity"),
            ("site 1 2 3", "line 1: unexpected trailing field `3`"),
            ("site 1 2\nsite 1 5", "line 2: duplicate site id 1"),
        ] {
            let err = parse_capacity(text).unwrap_err();
            assert!(err.contains(needle), "{text:?}: {err}");
        }
    }
}
