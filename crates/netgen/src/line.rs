//! Two-pin line nets.

use fastbuf_buflib::units::{Farads, Microns, Ohms, Seconds};
use fastbuf_buflib::{Driver, Technology};
use fastbuf_rctree::{RoutingTree, TreeBuilder, Wire};

/// Specification of a 2-pin line: a source driving a single sink over a
/// straight wire with equally spaced buffer sites.
///
/// This is the workload of van Ginneken's original paper and the cleanest
/// way to sweep the paper's `n` (Figure 4): `sites` buffer positions divide
/// the wire into `sites + 1` equal segments.
#[derive(Clone, Debug, PartialEq)]
pub struct LineNetSpec {
    /// Total wire length.
    pub length: Microns,
    /// Number of equally spaced buffer sites.
    pub sites: usize,
    /// Interconnect technology.
    pub tech: Technology,
    /// Driver resistance at the source.
    pub driver_resistance: Ohms,
    /// Sink load.
    pub sink_capacitance: Farads,
    /// Sink required arrival time.
    pub required_arrival: Seconds,
}

impl Default for LineNetSpec {
    /// A 10 mm line with 99 sites in the paper's technology, 180 Ω driver,
    /// 20 fF load, 2 ns required arrival time.
    fn default() -> Self {
        LineNetSpec {
            length: Microns::new(10_000.0),
            sites: 99,
            tech: Technology::tsmc180_like(),
            driver_resistance: Ohms::new(180.0),
            sink_capacitance: Farads::from_femto(20.0),
            required_arrival: Seconds::from_pico(2000.0),
        }
    }
}

impl LineNetSpec {
    /// Builds the routing tree.
    ///
    /// # Panics
    ///
    /// Panics if `length` is not strictly positive.
    pub fn build(&self) -> RoutingTree {
        assert!(
            self.length > Microns::ZERO,
            "line length must be strictly positive"
        );
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(self.driver_resistance));
        let seg = Wire::from_length(&self.tech, self.length / (self.sites + 1) as f64);
        let mut prev = src;
        for _ in 0..self.sites {
            let site = b.buffer_site();
            b.connect(prev, site, seg).expect("chain is well-formed");
            prev = site;
        }
        let sink = b.sink(self.sink_capacitance, self.required_arrival);
        b.connect(prev, sink, seg).expect("chain is well-formed");
        b.build().expect("line net is always valid")
    }
}

/// Convenience: builds a 2-pin line of `length` with `sites` buffer sites
/// and otherwise default (paper-technology) parameters.
///
/// # Example
///
/// ```
/// use fastbuf_buflib::units::Microns;
/// use fastbuf_netgen::line_net;
///
/// let tree = line_net(Microns::new(5000.0), 9);
/// assert_eq!(tree.buffer_site_count(), 9);
/// assert_eq!(tree.sink_count(), 1);
/// ```
pub fn line_net(length: Microns, sites: usize) -> RoutingTree {
    LineNetSpec {
        length,
        sites,
        ..LineNetSpec::default()
    }
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_shape() {
        let t = line_net(Microns::new(1000.0), 4);
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.buffer_site_count(), 4);
        let stats = t.stats();
        assert_eq!(stats.max_depth, 5);
        assert!((stats.total_length.unwrap().value() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_sites_is_plain_wire() {
        let t = line_net(Microns::new(1000.0), 0);
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.buffer_site_count(), 0);
    }

    #[test]
    fn segments_are_equal() {
        let t = line_net(Microns::new(900.0), 2);
        for n in t.node_ids() {
            if let Some(w) = t.wire_to_parent(n) {
                assert!((w.length().unwrap().value() - 300.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_length_panics() {
        let _ = line_net(Microns::ZERO, 1);
    }
}
