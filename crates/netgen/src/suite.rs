//! Reproducible multi-net suites for batch and load testing.
//!
//! Single-net generators answer "how fast is one solve?"; the batch
//! subsystem (`fastbuf-batch`) and its throughput benchmarks need *fleets*
//! of nets whose size distribution looks like a real netlist: mostly small
//! nets, a heavy tail of large buses and spines that dominate the runtime.
//! [`SuiteSpec`] builds such a fleet deterministically — the same spec
//! always produces the same nets, on every platform — so batch results and
//! nets/sec numbers are reproducible run to run.
//!
//! ```
//! use fastbuf_netgen::SuiteSpec;
//!
//! let suite = SuiteSpec { nets: 20, seed: 7, ..SuiteSpec::default() }.build();
//! assert_eq!(suite.len(), 20);
//! // Deterministic: rebuilding yields byte-identical nets.
//! let again = SuiteSpec { nets: 20, seed: 7, ..SuiteSpec::default() }.build();
//! assert_eq!(
//!     fastbuf_rctree::io::write(&suite[3]),
//!     fastbuf_rctree::io::write(&again[3]),
//! );
//! ```

use fastbuf_buflib::units::Microns;
use fastbuf_rctree::RoutingTree;

use crate::random::RandomNetSpec;

/// Draws a heavy-tailed sink count from `seed`: ~70% small nets (2–8
/// sinks), ~25% medium (9–64), ~5% large (65–`max_sinks`) — the shape of
/// real netlists, where a few big buses and clock spines dominate the
/// runtime. Deterministic (SplitMix64 hash of the seed).
pub fn heavy_tailed_sinks(seed: u64, max_sinks: usize) -> usize {
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    let u = ((z >> 11) as f64) / (1u64 << 53) as f64;
    let sinks = if u < 0.70 {
        2 + (u / 0.70 * 7.0) as usize
    } else if u < 0.95 {
        9 + ((u - 0.70) / 0.25 * 55.0) as usize
    } else {
        let tail_span = max_sinks.saturating_sub(65).max(1);
        65 + ((u - 0.95) / 0.05 * tail_span as f64) as usize
    };
    sinks.min(max_sinks)
}

/// Specification of a deterministic net suite.
///
/// Net `i` is a [`RandomNetSpec`] seeded with `seed + i` whose sink count
/// is drawn by [`heavy_tailed_sinks`] and whose die grows with `√sinks`, so
/// wire lengths (and therefore buffer-site counts) stay realistic across
/// the size range.
#[derive(Clone, Debug, PartialEq)]
pub struct SuiteSpec {
    /// Number of nets in the suite.
    pub nets: usize,
    /// Largest net the heavy tail can produce.
    pub max_sinks: usize,
    /// Buffer-site pitch used for every net.
    pub site_pitch: Microns,
    /// Master seed; net `i` uses `seed + i`.
    pub seed: u64,
    /// Slew-stress scenario: stretch every die by 2.5×, so unbuffered
    /// stage delays (and therefore output slews) grow far past typical
    /// limits and slew-constrained solving actually binds. Off by default;
    /// used by the `slew_sweep` bench and `fastbuf gen suite
    /// --slew-stress`.
    pub slew_stress: bool,
}

impl Default for SuiteSpec {
    fn default() -> Self {
        SuiteSpec {
            nets: 100,
            max_sinks: 256,
            site_pitch: Microns::new(200.0),
            seed: 1,
            slew_stress: false,
        }
    }
}

impl SuiteSpec {
    /// The sink count net `i` will have.
    pub fn sinks_of(&self, i: usize) -> usize {
        heavy_tailed_sinks(self.seed.wrapping_add(i as u64), self.max_sinks)
    }

    /// Builds net `i` of the suite.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.nets` or `max_sinks < 8`.
    pub fn build_net(&self, i: usize) -> RoutingTree {
        assert!(i < self.nets, "net index {i} out of range ({})", self.nets);
        assert!(self.max_sinks >= 8, "max_sinks must be at least 8");
        let seed = self.seed.wrapping_add(i as u64);
        let sinks = self.sinks_of(i);
        let die = 400.0 + 120.0 * (sinks as f64).sqrt();
        let die = if self.slew_stress { die * 2.5 } else { die };
        RandomNetSpec {
            sinks,
            seed,
            site_pitch: Some(self.site_pitch),
            die: Microns::new(die),
            ..RandomNetSpec::default()
        }
        .build()
    }

    /// Builds the whole suite, in index order.
    ///
    /// # Panics
    ///
    /// Panics if `nets == 0` or `max_sinks < 8`.
    pub fn build(&self) -> Vec<RoutingTree> {
        assert!(self.nets > 0, "a suite needs at least one net");
        (0..self.nets).map(|i| self.build_net(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let spec = SuiteSpec {
            nets: 8,
            seed: 11,
            ..SuiteSpec::default()
        };
        let a = spec.build();
        let b = spec.build();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(fastbuf_rctree::io::write(x), fastbuf_rctree::io::write(y));
        }
        let c = SuiteSpec {
            nets: 8,
            seed: 12,
            ..SuiteSpec::default()
        }
        .build();
        assert_ne!(
            fastbuf_rctree::io::write(&a[0]),
            fastbuf_rctree::io::write(&c[0])
        );
    }

    #[test]
    fn sizes_follow_the_mix() {
        let spec = SuiteSpec {
            nets: 300,
            max_sinks: 128,
            seed: 7,
            ..SuiteSpec::default()
        };
        let sizes: Vec<usize> = (0..spec.nets).map(|i| spec.sinks_of(i)).collect();
        let small = sizes.iter().filter(|&&s| s <= 8).count();
        let large = sizes.iter().filter(|&&s| s >= 65).count();
        assert!(small > 150, "most nets should be small: {small}");
        assert!(large >= 3, "the tail should exist: {large}");
        assert!(sizes.iter().all(|&s| s <= 128));
    }

    #[test]
    fn build_net_matches_build() {
        let spec = SuiteSpec {
            nets: 5,
            seed: 3,
            ..SuiteSpec::default()
        };
        let all = spec.build();
        for (i, t) in all.iter().enumerate() {
            assert_eq!(
                fastbuf_rctree::io::write(t),
                fastbuf_rctree::io::write(&spec.build_net(i))
            );
            assert_eq!(t.sink_count(), spec.sinks_of(i));
        }
    }

    #[test]
    fn slew_stress_stretches_wirelength() {
        let base = SuiteSpec {
            nets: 4,
            seed: 9,
            ..SuiteSpec::default()
        };
        let stressed = SuiteSpec {
            slew_stress: true,
            ..base.clone()
        };
        for i in 0..4 {
            let a = base.build_net(i);
            let b = stressed.build_net(i);
            assert_eq!(a.sink_count(), b.sink_count());
            // Longer wires -> more buffer sites at the same pitch.
            assert!(
                b.buffer_site_count() > a.buffer_site_count(),
                "net {i}: {} vs {}",
                b.buffer_site_count(),
                a.buffer_site_count()
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one net")]
    fn empty_suite_panics() {
        let _ = SuiteSpec {
            nets: 0,
            ..SuiteSpec::default()
        }
        .build();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_net_panics() {
        let spec = SuiteSpec {
            nets: 2,
            ..SuiteSpec::default()
        };
        let _ = spec.build_net(2);
    }
}
