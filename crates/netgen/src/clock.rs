//! Structured nets: H-trees and caterpillars.

use std::error::Error;
use std::fmt;

use fastbuf_buflib::units::{Farads, Microns, Ohms, Seconds};
use fastbuf_buflib::{Driver, Technology};
use fastbuf_rctree::segment::segment_by_pitch;
use fastbuf_rctree::{NodeId, RoutingTree, TreeBuilder, Wire};

/// A degenerate parameter in a structured-net spec, naming the offending
/// field. The panicking constructors ([`HTreeSpec::build`],
/// [`caterpillar_net`]) panic with this error's message; the `try_` forms
/// return it instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClockSpecError {
    /// The spec field that was rejected.
    pub field: &'static str,
    /// Why it was rejected.
    pub message: &'static str,
}

impl fmt::Display for ClockSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}`: {}", self.field, self.message)
    }
}

impl Error for ClockSpecError {}

fn reject(field: &'static str, message: &'static str) -> ClockSpecError {
    ClockSpecError { field, message }
}

/// Specification of a symmetric H-tree (clock-distribution style).
///
/// `levels` H-recursions produce `4^levels` sinks at the leaf tips. Every
/// branch midpoint is an internal node; buffer sites are created by
/// segmenting at `site_pitch`.
#[derive(Clone, Debug, PartialEq)]
pub struct HTreeSpec {
    /// Number of H recursions (sinks = `4^levels`).
    pub levels: usize,
    /// Half-width of the top-level H.
    pub arm: Microns,
    /// Interconnect technology.
    pub tech: Technology,
    /// Driver resistance at the source (clock root).
    pub driver_resistance: Ohms,
    /// Leaf load capacitance.
    pub sink_capacitance: Farads,
    /// Required arrival time at every leaf.
    pub required_arrival: Seconds,
    /// Buffer-site pitch (`None` = no segmenting; only branch points are
    /// internal and none are sites).
    pub site_pitch: Option<Microns>,
}

impl Default for HTreeSpec {
    /// Three levels (64 sinks), 4 mm top arm, paper technology.
    fn default() -> Self {
        HTreeSpec {
            levels: 3,
            arm: Microns::new(4000.0),
            tech: Technology::tsmc180_like(),
            driver_resistance: Ohms::new(120.0),
            sink_capacitance: Farads::from_femto(15.0),
            required_arrival: Seconds::from_pico(1500.0),
            site_pitch: Some(Microns::new(250.0)),
        }
    }
}

impl HTreeSpec {
    /// Checks the spec for degenerate parameters: zero levels, a zero /
    /// negative / non-finite arm or segmenting pitch, a non-positive
    /// driver, or non-finite sink pin data. (A technology with *zero*
    /// per-micron parasitics is deliberately allowed — it builds ideal
    /// zero-RC wires, which the solvers treat as free and handle exactly.)
    ///
    /// # Errors
    ///
    /// [`ClockSpecError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), ClockSpecError> {
        if self.levels == 0 {
            return Err(reject("levels", "an H-tree needs at least one level"));
        }
        if !self.arm.value().is_finite() || self.arm <= Microns::ZERO {
            return Err(reject(
                "arm",
                "arm length must be strictly positive and finite",
            ));
        }
        if !self.driver_resistance.value().is_finite() || self.driver_resistance <= Ohms::ZERO {
            return Err(reject(
                "driver_resistance",
                "driver resistance must be strictly positive and finite",
            ));
        }
        if !self.sink_capacitance.is_finite() || self.sink_capacitance < Farads::ZERO {
            return Err(reject(
                "sink_capacitance",
                "sink capacitance must be finite and non-negative",
            ));
        }
        if !self.required_arrival.value().is_finite() {
            return Err(reject(
                "required_arrival",
                "required arrival must be finite",
            ));
        }
        if let Some(pitch) = self.site_pitch {
            if !pitch.value().is_finite() || pitch <= Microns::ZERO {
                return Err(reject(
                    "site_pitch",
                    "segmenting pitch must be strictly positive and finite",
                ));
            }
        }
        Ok(())
    }

    /// Builds the H-tree, rejecting degenerate specs with a typed error.
    ///
    /// # Errors
    ///
    /// See [`HTreeSpec::validate`].
    pub fn try_build(&self) -> Result<RoutingTree, ClockSpecError> {
        self.validate()?;
        Ok(self.build_unchecked())
    }

    /// Builds the H-tree.
    ///
    /// # Panics
    ///
    /// Panics on any spec [`HTreeSpec::validate`] rejects (historically
    /// only `levels == 0`; zero or non-finite geometry now panics too
    /// instead of silently building a zero-wire tree).
    pub fn build(&self) -> RoutingTree {
        match self.try_build() {
            Ok(tree) => tree,
            Err(e) => panic!("{e}"),
        }
    }

    fn build_unchecked(&self) -> RoutingTree {
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(self.driver_resistance));
        let root_len = self.arm;
        self.recurse(&mut b, src, self.levels, root_len);
        let base = b.build().expect("H-tree is structurally valid");
        match self.site_pitch {
            None => base,
            Some(pitch) => {
                segment_by_pitch(&base, pitch)
                    .expect("lengths present")
                    .tree
            }
        }
    }

    /// Attaches one H below `parent`: two horizontal arms to branch points,
    /// each splitting vertically into two tips (4 tips per H). Tips host
    /// sinks at the last level and sub-Hs otherwise.
    fn recurse(&self, b: &mut TreeBuilder, parent: NodeId, level: usize, arm: Microns) {
        for _side in 0..2 {
            let branch = b.internal();
            b.connect(parent, branch, Wire::from_length(&self.tech, arm))
                .expect("fresh branch");
            for _tip in 0..2 {
                let tip_wire = Wire::from_length(&self.tech, arm / 2.0);
                if level == 1 {
                    let sink = b.sink(self.sink_capacitance, self.required_arrival);
                    b.connect(branch, sink, tip_wire).expect("fresh sink");
                } else {
                    let tip = b.internal();
                    b.connect(branch, tip, tip_wire).expect("fresh tip");
                    self.recurse(b, tip, level - 1, arm / 2.0);
                }
            }
        }
    }
}

/// Builds a symmetric H-tree with `levels` recursions (`4^levels` sinks)
/// and otherwise default parameters.
///
/// # Example
///
/// ```
/// use fastbuf_netgen::h_tree;
///
/// let t = h_tree(2);
/// assert_eq!(t.sink_count(), 16);
/// ```
pub fn h_tree(levels: usize) -> RoutingTree {
    HTreeSpec {
        levels,
        ..HTreeSpec::default()
    }
    .build()
}

/// Builds a caterpillar: a trunk of `sinks` equally spaced taps, each with a
/// short stub to one sink — the shape of a bus tapping many receivers.
/// Buffer sites sit at every tap and every `pitch` along the trunk.
///
/// # Example
///
/// ```
/// use fastbuf_buflib::units::Microns;
/// use fastbuf_netgen::caterpillar_net;
///
/// let t = caterpillar_net(16, Microns::new(500.0), Microns::new(50.0));
/// assert_eq!(t.sink_count(), 16);
/// ```
///
/// # Panics
///
/// Panics on the specs [`try_caterpillar_net`] rejects (historically only
/// `sinks == 0`; negative or non-finite geometry now panics too).
pub fn caterpillar_net(sinks: usize, spacing: Microns, stub: Microns) -> RoutingTree {
    match try_caterpillar_net(sinks, spacing, stub) {
        Ok(tree) => tree,
        Err(e) => panic!("{e}"),
    }
}

/// [`caterpillar_net`] with typed rejection of degenerate parameters:
/// `sinks == 0`, or negative / non-finite spacing or stub length. *Zero*
/// spacing or stub is normalized, not rejected — it builds legal zero-RC
/// wires (all taps electrically coincident), a shape the solvers handle
/// exactly and `tests/degenerate_nets.rs` pins.
///
/// # Errors
///
/// [`ClockSpecError`] naming the first offending parameter.
pub fn try_caterpillar_net(
    sinks: usize,
    spacing: Microns,
    stub: Microns,
) -> Result<RoutingTree, ClockSpecError> {
    if sinks == 0 {
        return Err(reject("sinks", "a net needs at least one sink"));
    }
    if !spacing.value().is_finite() || spacing < Microns::ZERO {
        return Err(reject(
            "spacing",
            "tap spacing must be finite and non-negative",
        ));
    }
    if !stub.value().is_finite() || stub < Microns::ZERO {
        return Err(reject(
            "stub",
            "stub length must be finite and non-negative",
        ));
    }
    let tech = Technology::tsmc180_like();
    let mut b = TreeBuilder::new();
    let src = b.source(Driver::new(Ohms::new(180.0)));
    let mut prev = src;
    for i in 0..sinks {
        let tap = b.buffer_site();
        b.connect(prev, tap, Wire::from_length(&tech, spacing))
            .expect("fresh tap");
        let sink = b.sink(
            Farads::from_femto(4.0 + (i % 8) as f64 * 4.0),
            Seconds::from_pico(1000.0 + (i % 5) as f64 * 200.0),
        );
        b.connect(tap, sink, Wire::from_length(&tech, stub))
            .expect("fresh sink");
        prev = tap;
    }
    Ok(b.build().expect("caterpillar is structurally valid"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_tree_sink_count_is_power_of_four() {
        for levels in 1..=3 {
            let t = h_tree(levels);
            assert_eq!(t.sink_count(), 4usize.pow(levels as u32), "levels={levels}");
        }
    }

    #[test]
    fn h_tree_is_symmetric_in_depth() {
        let t = h_tree(2);
        // All sinks at identical depth.
        let stats = t.stats();
        let mut depths = std::collections::HashSet::new();
        for s in t.sinks() {
            let mut d = 0;
            let mut cur = s;
            while let Some(p) = t.parent(cur) {
                d += 1;
                cur = p;
            }
            depths.insert(d);
        }
        assert_eq!(depths.len(), 1, "{stats}");
    }

    #[test]
    fn h_tree_segmenting_adds_sites() {
        let unsegmented = HTreeSpec {
            site_pitch: None,
            ..HTreeSpec::default()
        }
        .build();
        assert_eq!(unsegmented.buffer_site_count(), 0);
        let segmented = HTreeSpec::default().build();
        assert!(segmented.buffer_site_count() > 50);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        let _ = h_tree(0);
    }

    #[test]
    fn degenerate_h_tree_specs_fail_typed() {
        let err = HTreeSpec {
            levels: 0,
            ..HTreeSpec::default()
        }
        .try_build()
        .unwrap_err();
        assert_eq!(err.field, "levels");
        // NaN is unrepresentable in unit types (constructor asserts), so the
        // degenerate non-finite case a caller can actually hand us is infinity.
        for arm in [
            Microns::ZERO,
            Microns::new(-1.0),
            Microns::new(f64::INFINITY),
        ] {
            let err = HTreeSpec {
                arm,
                ..HTreeSpec::default()
            }
            .try_build()
            .unwrap_err();
            assert_eq!(err.field, "arm", "{err}");
        }
        let err = HTreeSpec {
            site_pitch: Some(Microns::ZERO),
            ..HTreeSpec::default()
        }
        .try_build()
        .unwrap_err();
        assert_eq!(err.field, "site_pitch");
        assert!(err.to_string().contains("site_pitch"), "{err}");
        let err = HTreeSpec {
            driver_resistance: Ohms::ZERO,
            ..HTreeSpec::default()
        }
        .try_build()
        .unwrap_err();
        assert_eq!(err.field, "driver_resistance");
        let err = HTreeSpec {
            sink_capacitance: Farads::new(f64::INFINITY),
            ..HTreeSpec::default()
        }
        .try_build()
        .unwrap_err();
        assert_eq!(err.field, "sink_capacitance");
        let err = HTreeSpec {
            required_arrival: Seconds::new(f64::NEG_INFINITY),
            ..HTreeSpec::default()
        }
        .try_build()
        .unwrap_err();
        assert_eq!(err.field, "required_arrival");
        // The happy path still builds.
        assert_eq!(HTreeSpec::default().try_build().unwrap().sink_count(), 64);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_arm_panics_instead_of_building_a_zero_wire_tree() {
        let _ = HTreeSpec {
            arm: Microns::ZERO,
            ..HTreeSpec::default()
        }
        .build();
    }

    #[test]
    fn degenerate_caterpillars_normalize_or_fail_typed() {
        let err = try_caterpillar_net(0, Microns::new(100.0), Microns::new(10.0)).unwrap_err();
        assert_eq!(err.field, "sinks");
        let err = try_caterpillar_net(4, Microns::new(-1.0), Microns::new(10.0)).unwrap_err();
        assert_eq!(err.field, "spacing");
        let err =
            try_caterpillar_net(4, Microns::new(100.0), Microns::new(f64::INFINITY)).unwrap_err();
        assert_eq!(err.field, "stub");
        // Normalized survivors: single sink, and zero-length wires.
        let single = try_caterpillar_net(1, Microns::new(100.0), Microns::new(10.0)).unwrap();
        assert_eq!(single.sink_count(), 1);
        let zero = try_caterpillar_net(3, Microns::ZERO, Microns::ZERO).unwrap();
        assert_eq!(zero.sink_count(), 3);
        assert_eq!(zero.stats().total_length, Some(Microns::ZERO));
    }

    #[test]
    fn caterpillar_shape() {
        let t = caterpillar_net(10, Microns::new(300.0), Microns::new(30.0));
        assert_eq!(t.sink_count(), 10);
        assert_eq!(t.buffer_site_count(), 10);
        assert_eq!(t.stats().max_depth, 11); // trunk depth 10 + stub
    }

    #[test]
    fn caterpillar_parameters_vary_by_position() {
        let t = caterpillar_net(9, Microns::new(100.0), Microns::new(10.0));
        let caps: std::collections::HashSet<u64> = t
            .sinks()
            .map(|s| match t.kind(s) {
                fastbuf_rctree::NodeKind::Sink { capacitance, .. } => {
                    (capacitance.femtos() * 1000.0) as u64
                }
                _ => unreachable!(),
            })
            .collect();
        assert!(caps.len() > 4, "sink loads should vary: {caps:?}");
    }
}
