//! Structured nets: H-trees and caterpillars.

use fastbuf_buflib::units::{Farads, Microns, Ohms, Seconds};
use fastbuf_buflib::{Driver, Technology};
use fastbuf_rctree::segment::segment_by_pitch;
use fastbuf_rctree::{NodeId, RoutingTree, TreeBuilder, Wire};

/// Specification of a symmetric H-tree (clock-distribution style).
///
/// `levels` H-recursions produce `4^levels` sinks at the leaf tips. Every
/// branch midpoint is an internal node; buffer sites are created by
/// segmenting at `site_pitch`.
#[derive(Clone, Debug, PartialEq)]
pub struct HTreeSpec {
    /// Number of H recursions (sinks = `4^levels`).
    pub levels: usize,
    /// Half-width of the top-level H.
    pub arm: Microns,
    /// Interconnect technology.
    pub tech: Technology,
    /// Driver resistance at the source (clock root).
    pub driver_resistance: Ohms,
    /// Leaf load capacitance.
    pub sink_capacitance: Farads,
    /// Required arrival time at every leaf.
    pub required_arrival: Seconds,
    /// Buffer-site pitch (`None` = no segmenting; only branch points are
    /// internal and none are sites).
    pub site_pitch: Option<Microns>,
}

impl Default for HTreeSpec {
    /// Three levels (64 sinks), 4 mm top arm, paper technology.
    fn default() -> Self {
        HTreeSpec {
            levels: 3,
            arm: Microns::new(4000.0),
            tech: Technology::tsmc180_like(),
            driver_resistance: Ohms::new(120.0),
            sink_capacitance: Farads::from_femto(15.0),
            required_arrival: Seconds::from_pico(1500.0),
            site_pitch: Some(Microns::new(250.0)),
        }
    }
}

impl HTreeSpec {
    /// Builds the H-tree.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`.
    pub fn build(&self) -> RoutingTree {
        assert!(self.levels > 0, "an H-tree needs at least one level");
        let mut b = TreeBuilder::new();
        let src = b.source(Driver::new(self.driver_resistance));
        let root_len = self.arm;
        self.recurse(&mut b, src, self.levels, root_len);
        let base = b.build().expect("H-tree is structurally valid");
        match self.site_pitch {
            None => base,
            Some(pitch) => {
                segment_by_pitch(&base, pitch)
                    .expect("lengths present")
                    .tree
            }
        }
    }

    /// Attaches one H below `parent`: two horizontal arms to branch points,
    /// each splitting vertically into two tips (4 tips per H). Tips host
    /// sinks at the last level and sub-Hs otherwise.
    fn recurse(&self, b: &mut TreeBuilder, parent: NodeId, level: usize, arm: Microns) {
        for _side in 0..2 {
            let branch = b.internal();
            b.connect(parent, branch, Wire::from_length(&self.tech, arm))
                .expect("fresh branch");
            for _tip in 0..2 {
                let tip_wire = Wire::from_length(&self.tech, arm / 2.0);
                if level == 1 {
                    let sink = b.sink(self.sink_capacitance, self.required_arrival);
                    b.connect(branch, sink, tip_wire).expect("fresh sink");
                } else {
                    let tip = b.internal();
                    b.connect(branch, tip, tip_wire).expect("fresh tip");
                    self.recurse(b, tip, level - 1, arm / 2.0);
                }
            }
        }
    }
}

/// Builds a symmetric H-tree with `levels` recursions (`4^levels` sinks)
/// and otherwise default parameters.
///
/// # Example
///
/// ```
/// use fastbuf_netgen::h_tree;
///
/// let t = h_tree(2);
/// assert_eq!(t.sink_count(), 16);
/// ```
pub fn h_tree(levels: usize) -> RoutingTree {
    HTreeSpec {
        levels,
        ..HTreeSpec::default()
    }
    .build()
}

/// Builds a caterpillar: a trunk of `sinks` equally spaced taps, each with a
/// short stub to one sink — the shape of a bus tapping many receivers.
/// Buffer sites sit at every tap and every `pitch` along the trunk.
///
/// # Example
///
/// ```
/// use fastbuf_buflib::units::Microns;
/// use fastbuf_netgen::caterpillar_net;
///
/// let t = caterpillar_net(16, Microns::new(500.0), Microns::new(50.0));
/// assert_eq!(t.sink_count(), 16);
/// ```
///
/// # Panics
///
/// Panics if `sinks == 0`.
pub fn caterpillar_net(sinks: usize, spacing: Microns, stub: Microns) -> RoutingTree {
    assert!(sinks > 0, "a net needs at least one sink");
    let tech = Technology::tsmc180_like();
    let mut b = TreeBuilder::new();
    let src = b.source(Driver::new(Ohms::new(180.0)));
    let mut prev = src;
    for i in 0..sinks {
        let tap = b.buffer_site();
        b.connect(prev, tap, Wire::from_length(&tech, spacing))
            .expect("fresh tap");
        let sink = b.sink(
            Farads::from_femto(4.0 + (i % 8) as f64 * 4.0),
            Seconds::from_pico(1000.0 + (i % 5) as f64 * 200.0),
        );
        b.connect(tap, sink, Wire::from_length(&tech, stub))
            .expect("fresh sink");
        prev = tap;
    }
    b.build().expect("caterpillar is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_tree_sink_count_is_power_of_four() {
        for levels in 1..=3 {
            let t = h_tree(levels);
            assert_eq!(t.sink_count(), 4usize.pow(levels as u32), "levels={levels}");
        }
    }

    #[test]
    fn h_tree_is_symmetric_in_depth() {
        let t = h_tree(2);
        // All sinks at identical depth.
        let stats = t.stats();
        let mut depths = std::collections::HashSet::new();
        for s in t.sinks() {
            let mut d = 0;
            let mut cur = s;
            while let Some(p) = t.parent(cur) {
                d += 1;
                cur = p;
            }
            depths.insert(d);
        }
        assert_eq!(depths.len(), 1, "{stats}");
    }

    #[test]
    fn h_tree_segmenting_adds_sites() {
        let unsegmented = HTreeSpec {
            site_pitch: None,
            ..HTreeSpec::default()
        }
        .build();
        assert_eq!(unsegmented.buffer_site_count(), 0);
        let segmented = HTreeSpec::default().build();
        assert!(segmented.buffer_site_count() > 50);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        let _ = h_tree(0);
    }

    #[test]
    fn caterpillar_shape() {
        let t = caterpillar_net(10, Microns::new(300.0), Microns::new(30.0));
        assert_eq!(t.sink_count(), 10);
        assert_eq!(t.buffer_site_count(), 10);
        assert_eq!(t.stats().max_depth, 11); // trunk depth 10 + stub
    }

    #[test]
    fn caterpillar_parameters_vary_by_position() {
        let t = caterpillar_net(9, Microns::new(100.0), Microns::new(10.0));
        let caps: std::collections::HashSet<u64> = t
            .sinks()
            .map(|s| match t.kind(s) {
                fastbuf_rctree::NodeKind::Sink { capacitance, .. } => {
                    (capacitance.femtos() * 1000.0) as u64
                }
                _ => unreachable!(),
            })
            .collect();
        assert!(caps.len() > 4, "sink loads should vary: {caps:?}");
    }
}
