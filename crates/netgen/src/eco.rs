//! Reproducible ECO (engineering-change-order) workloads: typed tree
//! edits, deterministic edit-script generation, and a line-oriented text
//! format for them.
//!
//! An ECO workload is a routing tree plus a *sequence of localized edits* —
//! a wire that got longer after detailed routing, a sink whose required
//! time tightened after STA, a blockage that swallowed a buffer site.
//! `fastbuf-incremental` re-solves such sequences by recomputing only each
//! edit's root path; the generator here produces the scripts those solves
//! (and their differential tests and benchmarks) run on, with the same
//! seed-determinism guarantee as every other generator in this crate: the
//! same spec on the same tree always yields the same script.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fastbuf_buflib::units::{Farads, Microns, Ohms, Seconds};
use fastbuf_rctree::{NodeId, NodeKind, RoutingTree};

/// One typed, topology-preserving edit of an ECO script.
///
/// Node ids refer to the tree the script is applied to; every variant maps
/// onto one `RoutingTree` mutation (or, for [`Edit::SwapLibrary`], a
/// library replacement that flushes all cached state — see
/// `fastbuf-incremental`).
#[derive(Clone, Debug, PartialEq)]
pub enum Edit {
    /// Re-route the wire from `node` to its parent at a new length (the
    /// applier converts through its technology's per-micron parasitics).
    SetWireLength {
        /// Child endpoint of the edited wire.
        node: NodeId,
        /// New geometric length.
        length: Microns,
    },
    /// Replace sink `node`'s required arrival time.
    SetSinkRat {
        /// The sink.
        node: NodeId,
        /// New required arrival time.
        rat: Seconds,
    },
    /// Replace sink `node`'s load capacitance.
    SetSinkCap {
        /// The sink.
        node: NodeId,
        /// New load capacitance.
        cap: Farads,
    },
    /// Replace the wire from `node` to its parent with absolute lumped
    /// parasitics (no recorded length). This is how sampled process
    /// variation perturbs a wire: the sampler computes absolute `R`/`C`
    /// from the base tree, so applying sample `k`'s script always produces
    /// the same wire regardless of which sample was applied before.
    SetWireRC {
        /// Child endpoint of the edited wire.
        node: NodeId,
        /// New lumped resistance.
        resistance: Ohms,
        /// New lumped capacitance.
        capacitance: Farads,
    },
    /// Set the local process-variation factors at `node`: any buffer
    /// inserted there has its intrinsic delay scaled by `delay_scale` and
    /// its driving resistance by `drive_scale` (see
    /// `RoutingTree::set_site_variation`). `(1.0, 1.0)` restores nominal.
    DerateSite {
        /// The site (inert on nodes where buffering is impossible).
        node: NodeId,
        /// Multiplier on intrinsic delay `K`.
        delay_scale: f64,
        /// Multiplier on driving resistance `R`.
        drive_scale: f64,
    },
    /// Forbid buffering at `node` (a blockage landed on the site).
    BlockSite {
        /// The site to block.
        node: NodeId,
    },
    /// Re-allow any library buffer at internal node `node`.
    UnblockSite {
        /// The site to unblock.
        node: NodeId,
    },
    /// Swap in the deterministic synthetic library
    /// `BufferLibrary::paper_synthetic_jittered(size, jitter)` — a whole-
    /// library change, which invalidates every cached subtree (the
    /// "full flush" edit). Serializable by construction; appliers that
    /// need an arbitrary library call their `swap_library` entry directly.
    SwapLibrary {
        /// Library size `b`.
        size: usize,
        /// Jitter seed (`0` = the plain `paper_synthetic` library).
        jitter: u64,
    },
}

impl std::fmt::Display for Edit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Edit::SetWireLength { node, length } => {
                write!(f, "wire {node} {}", length.value())
            }
            Edit::SetSinkRat { node, rat } => write!(f, "rat {node} {}", rat.picos()),
            Edit::SetSinkCap { node, cap } => write!(f, "cap {node} {}", cap.femtos()),
            Edit::SetWireRC {
                node,
                resistance,
                capacitance,
            } => write!(
                f,
                "wirerc {node} {} {}",
                resistance.value(),
                capacitance.femtos()
            ),
            Edit::DerateSite {
                node,
                delay_scale,
                drive_scale,
            } => write!(f, "derate {node} {delay_scale} {drive_scale}"),
            Edit::BlockSite { node } => write!(f, "block {node}"),
            Edit::UnblockSite { node } => write!(f, "unblock {node}"),
            Edit::SwapLibrary { size, jitter } => write!(f, "swaplib {size} {jitter}"),
        }
    }
}

/// Serializes a script in the text format [`parse_edits`] reads (one edit
/// per line).
pub fn write_edits(edits: &[Edit]) -> String {
    let mut out = String::new();
    for e in edits {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

/// Parses the line-oriented edit format (`#` comments and blank lines
/// allowed):
///
/// ```text
/// wire n12 1450.5      # new length in microns
/// rat n7 950.25        # new required arrival in ps
/// cap n7 18.5          # new sink load in fF
/// wirerc n12 76.5 118.25   # absolute parasitics: ohms, fF
/// derate n5 1.08 0.96      # buffer delay x1.08, drive x0.96 at n5
/// block n4
/// unblock n4
/// swaplib 16 7         # paper_synthetic_jittered(16, 7)
/// ```
///
/// # Errors
///
/// A human-readable message naming the 1-based line of the first problem.
pub fn parse_edits(text: &str) -> Result<Vec<Edit>, String> {
    let mut edits = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", i + 1);
        let mut tokens = line.split_whitespace();
        let kind = tokens.next().expect("non-empty line has a first token");
        let node_arg = |tokens: &mut std::str::SplitWhitespace| -> Result<NodeId, String> {
            let t = tokens
                .next()
                .ok_or_else(|| err(format!("`{kind}` needs a node (like n12)")))?;
            let idx: usize = t
                .strip_prefix('n')
                .and_then(|d| d.parse().ok())
                .ok_or_else(|| err(format!("bad node id `{t}` (expected nN)")))?;
            Ok(NodeId::new(idx))
        };
        let num_arg = |tokens: &mut std::str::SplitWhitespace, what: &str| -> Result<f64, String> {
            let t = tokens
                .next()
                .ok_or_else(|| err(format!("`{kind}` needs a {what}")))?;
            let v: f64 = t.parse().map_err(|_| err(format!("bad {what} `{t}`")))?;
            if !v.is_finite() {
                return Err(err(format!("{what} must be finite, got `{t}`")));
            }
            Ok(v)
        };
        let edit = match kind {
            "wire" => {
                let node = node_arg(&mut tokens)?;
                let length = num_arg(&mut tokens, "length in microns")?;
                Edit::SetWireLength {
                    node,
                    length: Microns::new(length),
                }
            }
            "rat" => {
                let node = node_arg(&mut tokens)?;
                let ps = num_arg(&mut tokens, "required arrival in ps")?;
                Edit::SetSinkRat {
                    node,
                    rat: Seconds::from_pico(ps),
                }
            }
            "cap" => {
                let node = node_arg(&mut tokens)?;
                let ff = num_arg(&mut tokens, "capacitance in fF")?;
                Edit::SetSinkCap {
                    node,
                    cap: Farads::from_femto(ff),
                }
            }
            "wirerc" => {
                let node = node_arg(&mut tokens)?;
                let ohms = num_arg(&mut tokens, "resistance in ohms")?;
                let ff = num_arg(&mut tokens, "capacitance in fF")?;
                if ohms < 0.0 || ff < 0.0 {
                    return Err(err(format!(
                        "wire parasitics must be non-negative, got {ohms} / {ff}"
                    )));
                }
                Edit::SetWireRC {
                    node,
                    resistance: Ohms::new(ohms),
                    capacitance: Farads::from_femto(ff),
                }
            }
            "derate" => {
                let node = node_arg(&mut tokens)?;
                let delay_scale = num_arg(&mut tokens, "delay scale")?;
                let drive_scale = num_arg(&mut tokens, "drive scale")?;
                if delay_scale <= 0.0 || drive_scale <= 0.0 {
                    return Err(err(format!(
                        "derate scales must be positive, got {delay_scale} / {drive_scale}"
                    )));
                }
                Edit::DerateSite {
                    node,
                    delay_scale,
                    drive_scale,
                }
            }
            "block" => Edit::BlockSite {
                node: node_arg(&mut tokens)?,
            },
            "unblock" => Edit::UnblockSite {
                node: node_arg(&mut tokens)?,
            },
            "swaplib" => {
                let t = tokens
                    .next()
                    .ok_or_else(|| err("`swaplib` needs a library size".into()))?;
                let size: usize = t
                    .parse()
                    .map_err(|_| err(format!("bad library size `{t}` (expected an integer)")))?;
                let jitter = match tokens.next() {
                    None => 0,
                    Some(t) => t
                        .parse()
                        .map_err(|_| err(format!("bad jitter seed `{t}`")))?,
                };
                if size == 0 || size > 1024 {
                    return Err(err(format!(
                        "library size must be between 1 and 1024, got {size}"
                    )));
                }
                Edit::SwapLibrary { size, jitter }
            }
            other => {
                return Err(err(format!(
                    "unknown edit `{other}` (expected wire, rat, cap, wirerc, derate, \
                     block, unblock, swaplib)"
                )))
            }
        };
        if let Some(extra) = tokens.next() {
            return Err(err(format!("unexpected trailing token `{extra}`")));
        }
        edits.push(edit);
    }
    Ok(edits)
}

/// Specification of a deterministic random edit script over one tree.
///
/// **Locality** is the knob ECO workloads live and die by: the script only
/// ever touches a pool of `ceil(locality × editable-nodes)` nodes, drawn by
/// a seeded shuffle. At 1% locality almost every subtree stays clean
/// between re-solves (the incremental sweet spot); at 100% the script
/// roams the whole net.
#[derive(Clone, Debug, PartialEq)]
pub struct EditScriptSpec {
    /// Number of edits to generate.
    pub edits: usize,
    /// Fraction `(0, 1]` of editable nodes eligible as edit targets.
    pub locality: f64,
    /// PRNG seed; the same spec on the same tree yields the same script.
    pub seed: u64,
    /// Emit an [`Edit::SwapLibrary`] every this many edits (`0` = never).
    /// Library swaps are the full-flush edit, so scripts exercising cache
    /// invalidation sprinkle them in.
    pub swap_library_every: usize,
}

impl Default for EditScriptSpec {
    fn default() -> Self {
        EditScriptSpec {
            edits: 20,
            locality: 0.1,
            seed: 1,
            swap_library_every: 0,
        }
    }
}

impl EditScriptSpec {
    /// Generates the script against `tree`.
    ///
    /// Wire edits scale the wire's current length by a factor in
    /// `[0.6, 1.6]` (wires without a recorded length are skipped as
    /// targets); RAT edits scale by `[0.7, 1.3]`; capacitance edits by
    /// `[0.5, 2.0]`. Block/unblock edits toggle a site's *scripted* state,
    /// so applying the script in order alternates them meaningfully.
    ///
    /// # Panics
    ///
    /// Panics if `locality` is not in `(0, 1]`.
    pub fn generate(&self, tree: &RoutingTree) -> Vec<Edit> {
        assert!(
            self.locality > 0.0 && self.locality <= 1.0,
            "locality must be in (0, 1], got {}",
            self.locality
        );
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Every non-root node is editable one way or another.
        let mut pool: Vec<NodeId> = tree
            .node_ids()
            .filter(|&n| tree.parent(n).is_some())
            .collect();
        // Seeded Fisher-Yates, then keep the locality-sized prefix.
        for i in (1..pool.len()).rev() {
            pool.swap(i, rng.gen_range(0usize..i + 1));
        }
        let keep =
            ((self.locality * pool.len() as f64).ceil() as usize).clamp(1, pool.len().max(1));
        pool.truncate(keep);

        // Track the scripted block state so block/unblock alternate.
        let mut blocked: Vec<bool> = tree.node_ids().map(|n| !tree.is_buffer_site(n)).collect();

        let mut edits = Vec::with_capacity(self.edits);
        for k in 0..self.edits {
            if self.swap_library_every > 0 && (k + 1) % self.swap_library_every == 0 {
                edits.push(Edit::SwapLibrary {
                    size: rng.gen_range(2usize..17),
                    jitter: rng.next_u64() >> 32,
                });
                continue;
            }
            if pool.is_empty() {
                break;
            }
            let node = pool[rng.gen_range(0usize..pool.len())];
            let is_sink = tree.kind(node).is_sink();
            let is_internal = tree.kind(node).is_internal();
            let has_length = tree
                .wire_to_parent(node)
                .is_some_and(|w| w.length().is_some());
            // Weighted choice among the kinds this node supports.
            let edit = loop {
                match rng.gen_range(0u32..4) {
                    0 if has_length => {
                        let length = tree
                            .wire_to_parent(node)
                            .and_then(|w| w.length())
                            .expect("has_length checked");
                        let scaled = (length.value() * rng.gen_range(0.6f64..=1.6)).max(1.0);
                        break Edit::SetWireLength {
                            node,
                            length: Microns::new(scaled),
                        };
                    }
                    1 if is_sink => {
                        let NodeKind::Sink {
                            required_arrival, ..
                        } = tree.kind(node)
                        else {
                            unreachable!("is_sink checked")
                        };
                        break Edit::SetSinkRat {
                            node,
                            rat: Seconds::new(
                                required_arrival.value() * rng.gen_range(0.7f64..=1.3),
                            ),
                        };
                    }
                    2 if is_sink => {
                        let NodeKind::Sink { capacitance, .. } = tree.kind(node) else {
                            unreachable!("is_sink checked")
                        };
                        let scaled =
                            (capacitance.value() * rng.gen_range(0.5f64..=2.0)).max(0.1e-15);
                        break Edit::SetSinkCap {
                            node,
                            cap: Farads::new(scaled),
                        };
                    }
                    3 if is_internal => {
                        let b = &mut blocked[node.index()];
                        *b = !*b;
                        break if *b {
                            Edit::BlockSite { node }
                        } else {
                            Edit::UnblockSite { node }
                        };
                    }
                    // Every non-root node is a sink or internal, so at
                    // least one arm above always applies: re-roll until it
                    // lands.
                    _ => continue,
                }
            };
            edits.push(edit);
        }
        edits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomNetSpec;

    fn tree() -> RoutingTree {
        RandomNetSpec {
            sinks: 12,
            seed: 5,
            ..RandomNetSpec::default()
        }
        .build()
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let t = tree();
        let spec = EditScriptSpec {
            edits: 30,
            locality: 0.3,
            seed: 9,
            swap_library_every: 7,
        };
        assert_eq!(spec.generate(&t), spec.generate(&t));
        let other = EditScriptSpec { seed: 10, ..spec };
        assert_ne!(other.generate(&t), spec.generate(&t));
    }

    #[test]
    fn locality_bounds_the_touched_nodes() {
        let t = tree();
        let spec = EditScriptSpec {
            edits: 200,
            locality: 0.05,
            seed: 3,
            swap_library_every: 0,
        };
        let edits = spec.generate(&t);
        assert_eq!(edits.len(), 200);
        let editable = t.node_ids().filter(|&n| t.parent(n).is_some()).count();
        let budget = (0.05 * editable as f64).ceil() as usize;
        let mut touched: Vec<NodeId> = edits
            .iter()
            .filter_map(|e| match e {
                Edit::SetWireLength { node, .. }
                | Edit::SetSinkRat { node, .. }
                | Edit::SetSinkCap { node, .. }
                | Edit::SetWireRC { node, .. }
                | Edit::DerateSite { node, .. }
                | Edit::BlockSite { node }
                | Edit::UnblockSite { node } => Some(*node),
                Edit::SwapLibrary { .. } => None,
            })
            .collect();
        touched.sort();
        touched.dedup();
        assert!(
            touched.len() <= budget,
            "{} distinct nodes exceed the locality budget {budget}",
            touched.len()
        );
    }

    #[test]
    fn swap_cadence_and_block_alternation() {
        let t = tree();
        let spec = EditScriptSpec {
            edits: 40,
            locality: 1.0,
            seed: 4,
            swap_library_every: 5,
        };
        let edits = spec.generate(&t);
        let swaps = edits
            .iter()
            .filter(|e| matches!(e, Edit::SwapLibrary { .. }))
            .count();
        assert_eq!(swaps, 8);
        // Per node, block/unblock strictly alternate starting from the
        // tree's actual state.
        let mut blocked: Vec<bool> = t.node_ids().map(|n| !t.is_buffer_site(n)).collect();
        for e in &edits {
            match e {
                Edit::BlockSite { node } => {
                    assert!(!blocked[node.index()], "blocking an already-blocked node");
                    blocked[node.index()] = true;
                }
                Edit::UnblockSite { node } => {
                    assert!(blocked[node.index()], "unblocking an unblocked node");
                    blocked[node.index()] = false;
                }
                _ => {}
            }
        }
    }

    #[test]
    fn text_roundtrip_preserves_scripts() {
        let t = tree();
        let edits = EditScriptSpec {
            edits: 25,
            locality: 0.5,
            seed: 11,
            swap_library_every: 6,
        }
        .generate(&t);
        let text = write_edits(&edits);
        let back = parse_edits(&text).unwrap();
        // Like the net-file format (see `tests/proptest_dp.rs`), the text
        // stores fF/ps, so values may move by one ULP in the unit
        // conversion; structure and nodes must round-trip exactly.
        assert_eq!(back.len(), edits.len());
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1e-300);
        for (a, b) in edits.iter().zip(&back) {
            match (a, b) {
                (
                    Edit::SetWireLength {
                        node: n1,
                        length: l1,
                    },
                    Edit::SetWireLength {
                        node: n2,
                        length: l2,
                    },
                ) => {
                    assert_eq!(n1, n2);
                    assert!(close(l1.value(), l2.value()));
                }
                (
                    Edit::SetSinkRat { node: n1, rat: r1 },
                    Edit::SetSinkRat { node: n2, rat: r2 },
                ) => {
                    assert_eq!(n1, n2);
                    assert!(close(r1.value(), r2.value()));
                }
                (
                    Edit::SetSinkCap { node: n1, cap: c1 },
                    Edit::SetSinkCap { node: n2, cap: c2 },
                ) => {
                    assert_eq!(n1, n2);
                    assert!(close(c1.value(), c2.value()));
                }
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn parse_reports_line_numbers_and_bad_tokens() {
        assert!(parse_edits("# comment only\n\n").unwrap().is_empty());
        let err = parse_edits("wire n3\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = parse_edits("rat x7 100\n").unwrap_err();
        assert!(err.contains("bad node id"), "{err}");
        let err = parse_edits("block n1 extra\n").unwrap_err();
        assert!(err.contains("trailing"), "{err}");
        let err = parse_edits("teleport n1\n").unwrap_err();
        assert!(err.contains("unknown edit"), "{err}");
        let err = parse_edits("wire n1 oops\n").unwrap_err();
        assert!(err.contains("bad length"), "{err}");
        let err = parse_edits("cap n1 inf\n").unwrap_err();
        assert!(err.contains("finite"), "{err}");
        let err = parse_edits("swaplib 0\n").unwrap_err();
        assert!(err.contains("between 1 and 1024"), "{err}");
        // Sizes parse strictly as integers: no silent truncation, no
        // absurd values reaching the library builder.
        let err = parse_edits("swaplib 2.9\n").unwrap_err();
        assert!(err.contains("bad library size"), "{err}");
        let err = parse_edits("swaplib 1e300\n").unwrap_err();
        assert!(err.contains("bad library size"), "{err}");
        let err = parse_edits("swaplib 4096\n").unwrap_err();
        assert!(err.contains("between 1 and 1024"), "{err}");
        // Variation edits validate their numeric domains at parse.
        let err = parse_edits("derate n1 0 1\n").unwrap_err();
        assert!(err.contains("positive"), "{err}");
        let err = parse_edits("derate n1 1.1 nan\n").unwrap_err();
        assert!(err.contains("finite"), "{err}");
        let err = parse_edits("wirerc n1 -3 4\n").unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
        let ok = parse_edits("wirerc n2 76.5 118.25\nderate n5 1.08 0.96\n").unwrap();
        assert_eq!(ok.len(), 2);
        assert!(matches!(ok[0], Edit::SetWireRC { .. }));
        assert!(
            matches!(ok[1], Edit::DerateSite { node, delay_scale, drive_scale }
                if node == NodeId::new(5) && delay_scale == 1.08 && drive_scale == 0.96)
        );
        // Comments after content are stripped.
        let ok = parse_edits("block n4 # blockage from macro move\n").unwrap();
        assert_eq!(
            ok,
            vec![Edit::BlockSite {
                node: NodeId::new(4)
            }]
        );
    }
}
