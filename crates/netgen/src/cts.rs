//! Clock-tree synthesis inputs: 2-D sink placements and
//! recursive-bipartition topology generation.
//!
//! Classic CTS separates *topology generation* (where do the merge points
//! go) from *buffering* (what drives each stage). This module covers the
//! first half: a seeded placement generator, a line-oriented placement text
//! format, and a deterministic recursive-bipartition (DME-style) topology
//! builder whose merge taps become buffer sites. The second half — skew-
//! aware buffering — is `fastbuf_core::skew` driven through
//! `Objective::SkewTarget` or `fastbuf cts`.
//!
//! The bipartition is the standard one: split the sink set at the median of
//! the longer bounding-box dimension, place each half's tap at its bounding-
//! box center, wire taps with Manhattan lengths, and recurse until single
//! sinks remain. Everything is deterministic: ties in the median sort break
//! on the other coordinate and then the input index.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fastbuf_buflib::units::{Farads, Microns, Ohms, Seconds};
use fastbuf_buflib::{Driver, Technology};
use fastbuf_rctree::segment::segment_by_pitch;
use fastbuf_rctree::{NodeId, RoutingTree, TreeBuilder, Wire};

/// One clock sink: a 2-D position plus its electrical pin data.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SinkPlacement {
    /// X coordinate on the die.
    pub x: Microns,
    /// Y coordinate on the die.
    pub y: Microns,
    /// Pin load capacitance.
    pub capacitance: Farads,
    /// Required arrival time.
    pub required_arrival: Seconds,
}

impl SinkPlacement {
    /// `true` when every field is finite and loads are non-negative.
    pub fn is_valid(&self) -> bool {
        self.x.value().is_finite()
            && self.y.value().is_finite()
            && self.capacitance.is_finite()
            && self.capacitance >= Farads::ZERO
            && self.required_arrival.value().is_finite()
    }
}

/// Seeded generator of uniform-random sink placements on a square die.
#[derive(Clone, Debug, PartialEq)]
pub struct CtsPlacementSpec {
    /// Number of sinks.
    pub sinks: usize,
    /// Side of the square die.
    pub die: Microns,
    /// Smallest sink load.
    pub sink_cap_min: Farads,
    /// Largest sink load.
    pub sink_cap_max: Farads,
    /// Required arrival at every sink (clocks share one period edge).
    pub required_arrival: Seconds,
    /// PRNG seed; the same spec always generates the same placements.
    pub seed: u64,
}

impl Default for CtsPlacementSpec {
    /// 64 sinks on a 6 mm die, 8–25 fF flop clock pins, 2 ns edge.
    fn default() -> Self {
        CtsPlacementSpec {
            sinks: 64,
            die: Microns::new(6000.0),
            sink_cap_min: Farads::from_femto(8.0),
            sink_cap_max: Farads::from_femto(25.0),
            required_arrival: Seconds::from_pico(2000.0),
            seed: 1,
        }
    }
}

impl CtsPlacementSpec {
    /// Generates the placements.
    ///
    /// # Panics
    ///
    /// Panics if `sinks == 0` or the die is not strictly positive.
    pub fn generate(&self) -> Vec<SinkPlacement> {
        assert!(self.sinks > 0, "a placement needs at least one sink");
        assert!(self.die > Microns::ZERO, "die must be strictly positive");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let die = self.die.value();
        let (lo, hi) = (self.sink_cap_min.femtos(), self.sink_cap_max.femtos());
        (0..self.sinks)
            .map(|_| {
                let x: f64 = rng.gen_range(0.0..die);
                let y: f64 = rng.gen_range(0.0..die);
                let cap = if hi > lo { rng.gen_range(lo..hi) } else { lo };
                SinkPlacement {
                    x: Microns::new(x),
                    y: Microns::new(y),
                    capacitance: Farads::from_femto(cap),
                    required_arrival: self.required_arrival,
                }
            })
            .collect()
    }
}

/// Serializes placements to the text format [`parse_placements`] reads.
pub fn write_placements(placements: &[SinkPlacement]) -> String {
    let mut out = String::from("# fastbuf sink placements: sink <x_um> <y_um> <cap_ff> <rat_ps>\n");
    for p in placements {
        out.push_str(&format!(
            "sink {} {} {} {}\n",
            p.x.value(),
            p.y.value(),
            p.capacitance.femtos(),
            p.required_arrival.picos()
        ));
    }
    out
}

/// Parses the line-oriented placement format: `#` comments and blank lines
/// are skipped; every other line is `sink <x_um> <y_um> <cap_ff> <rat_ps>`.
///
/// # Errors
///
/// A human-readable message naming the 1-based line of the first problem
/// (same convention as the edit-script and variation formats).
pub fn parse_placements(text: &str) -> Result<Vec<SinkPlacement>, String> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", i + 1);
        let mut tokens = line.split_whitespace();
        let key = tokens.next().expect("non-empty line has a first token");
        if key != "sink" {
            return Err(err(format!("unknown directive `{key}` (expected `sink`)")));
        }
        let mut field = |name: &str| -> Result<f64, String> {
            let tok = tokens
                .next()
                .ok_or_else(|| err(format!("missing `{name}`")))?;
            tok.parse::<f64>()
                .map_err(|_| err(format!("cannot parse `{name}` value `{tok}`")))
        };
        let x = field("x_um")?;
        let y = field("y_um")?;
        let cap = field("cap_ff")?;
        let rat = field("rat_ps")?;
        if tokens.next().is_some() {
            return Err(err("trailing tokens after `rat_ps`".to_owned()));
        }
        // Validate the raw values before constructing unit types: the unit
        // constructors reject NaN outright (debug assertion), so a bad line
        // must be caught here to become a line-numbered error.
        if !(x.is_finite() && y.is_finite() && cap.is_finite() && rat.is_finite()) || cap < 0.0 {
            return Err(err(
                "fields must be finite and the capacitance non-negative".to_owned(),
            ));
        }
        out.push(SinkPlacement {
            x: Microns::new(x),
            y: Microns::new(y),
            capacitance: Farads::from_femto(cap),
            required_arrival: Seconds::from_pico(rat),
        });
    }
    if out.is_empty() {
        return Err("no sinks in placement file".to_owned());
    }
    Ok(out)
}

/// Parameters of the recursive-bipartition topology builder.
#[derive(Clone, Debug, PartialEq)]
pub struct CtsTopologySpec {
    /// Interconnect technology for tap-to-tap wires.
    pub tech: Technology,
    /// Driver resistance at the clock root.
    pub driver_resistance: Ohms,
    /// Extra buffer sites every `site_pitch` of wire (`None` = only merge
    /// taps are sites).
    pub site_pitch: Option<Microns>,
}

impl Default for CtsTopologySpec {
    fn default() -> Self {
        CtsTopologySpec {
            tech: Technology::tsmc180_like(),
            driver_resistance: Ohms::new(120.0),
            site_pitch: Some(Microns::new(400.0)),
        }
    }
}

/// A generated clock topology: the routing tree plus the sink node of each
/// input placement (same order as the input slice).
#[derive(Clone, Debug)]
pub struct CtsTopology {
    /// The buffered-solve-ready routing tree (merge taps are buffer sites).
    pub tree: RoutingTree,
    /// `sinks[i]` is the tree node of `placements[i]`. Node ids are stable
    /// under pitch segmenting, so these remain valid after it.
    pub sinks: Vec<NodeId>,
}

/// Builds a recursive-bipartition topology over `placements`.
///
/// # Errors
///
/// A message naming the first invalid placement (by 1-based position), or
/// the empty set / invalid pitch.
pub fn build_topology(
    placements: &[SinkPlacement],
    spec: &CtsTopologySpec,
) -> Result<CtsTopology, String> {
    if placements.is_empty() {
        return Err("placement set is empty".to_owned());
    }
    for (i, p) in placements.iter().enumerate() {
        if !p.is_valid() {
            return Err(format!(
                "sink {}: fields must be finite and the capacitance non-negative",
                i + 1
            ));
        }
    }
    if let Some(pitch) = spec.site_pitch {
        if pitch.value() <= 0.0 || !pitch.value().is_finite() {
            return Err("site pitch must be strictly positive and finite".to_owned());
        }
    }

    let mut b = TreeBuilder::new();
    let src = b.source(Driver::new(spec.driver_resistance));
    let mut idxs: Vec<usize> = (0..placements.len()).collect();
    let root_pt = bbox_center(placements, &idxs);
    let mut sinks = vec![NodeId::new(0); placements.len()];
    split(
        &mut b, placements, &mut idxs, src, root_pt, &spec.tech, &mut sinks,
    );
    let base = b.build().expect("bipartition tree is structurally valid");
    let tree = match spec.site_pitch {
        None => base,
        Some(pitch) => {
            segment_by_pitch(&base, pitch)
                .expect("generated wires carry lengths")
                .tree
        }
    };
    Ok(CtsTopology { tree, sinks })
}

/// Bounding-box center of the indexed placements.
fn bbox_center(placements: &[SinkPlacement], idxs: &[usize]) -> (f64, f64) {
    let (mut min_x, mut max_x) = (f64::MAX, f64::MIN);
    let (mut min_y, mut max_y) = (f64::MAX, f64::MIN);
    for &i in idxs {
        let (x, y) = (placements[i].x.value(), placements[i].y.value());
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    ((min_x + max_x) / 2.0, (min_y + max_y) / 2.0)
}

/// Attaches the subtree over `idxs` below `parent` (whose tap sits at
/// `parent_pt`). Single sinks connect directly; larger sets split at the
/// median of the longer bounding-box dimension, each half getting a
/// buffer-site tap at its own bounding-box center.
fn split(
    b: &mut TreeBuilder,
    placements: &[SinkPlacement],
    idxs: &mut [usize],
    parent: NodeId,
    parent_pt: (f64, f64),
    tech: &Technology,
    sinks: &mut [NodeId],
) {
    if let [only] = *idxs {
        let p = &placements[only];
        let sink = b.sink(p.capacitance, p.required_arrival);
        let len = manhattan(parent_pt, (p.x.value(), p.y.value()));
        b.connect(parent, sink, Wire::from_length(tech, Microns::new(len)))
            .expect("fresh sink");
        sinks[only] = sink;
        return;
    }
    // Median split on the longer bounding-box dimension; deterministic
    // tie-breaks (other coordinate, then input index).
    let (min_x, max_x) = min_max(idxs.iter().map(|&i| placements[i].x.value()));
    let (min_y, max_y) = min_max(idxs.iter().map(|&i| placements[i].y.value()));
    let split_x = max_x - min_x >= max_y - min_y;
    idxs.sort_by(|&a, &b| {
        let (pa, pb) = (&placements[a], &placements[b]);
        let (ka, kb) = if split_x {
            ((pa.x, pa.y), (pb.x, pb.y))
        } else {
            ((pa.y, pa.x), (pb.y, pb.x))
        };
        ka.0.value()
            .total_cmp(&kb.0.value())
            .then(ka.1.value().total_cmp(&kb.1.value()))
            .then(a.cmp(&b))
    });
    let mid = idxs.len() / 2;
    let (left, right) = idxs.split_at_mut(mid);
    for half in [left, right] {
        let pt = bbox_center(placements, half);
        let tap = b.buffer_site();
        let len = manhattan(parent_pt, pt);
        b.connect(parent, tap, Wire::from_length(tech, Microns::new(len)))
            .expect("fresh tap");
        split(b, placements, half, tap, pt, tech, sinks);
    }
}

fn manhattan(a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.0 - b.0).abs() + (a.1 - b.1).abs()
}

fn min_max(vals: impl Iterator<Item = f64>) -> (f64, f64) {
    vals.fold((f64::MAX, f64::MIN), |(lo, hi), v| (lo.min(v), hi.max(v)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_and_in_bounds() {
        let spec = CtsPlacementSpec::default();
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        for p in &a {
            assert!(p.x >= Microns::ZERO && p.x <= spec.die);
            assert!(p.y >= Microns::ZERO && p.y <= spec.die);
            assert!(p.capacitance >= spec.sink_cap_min);
            assert!(p.capacitance <= spec.sink_cap_max);
        }
        let c = CtsPlacementSpec {
            seed: 2,
            ..CtsPlacementSpec::default()
        }
        .generate();
        assert_ne!(a, c, "different seeds give different placements");
    }

    #[test]
    fn placement_text_round_trips() {
        let placements = CtsPlacementSpec {
            sinks: 10,
            ..CtsPlacementSpec::default()
        }
        .generate();
        let text = write_placements(&placements);
        let back = parse_placements(&text).unwrap();
        assert_eq!(placements.len(), back.len());
        for (a, b) in placements.iter().zip(&back) {
            assert!((a.x.value() - b.x.value()).abs() < 1e-12);
            assert!((a.capacitance.femtos() - b.capacitance.femtos()).abs() < 1e-9);
        }
    }

    #[test]
    fn parse_rejects_bad_lines_with_line_numbers() {
        let err = parse_placements("flop 1 2 3 4\n").unwrap_err();
        assert!(err.contains("line 1") && err.contains("flop"), "{err}");
        let err = parse_placements("sink 1 2 3\n").unwrap_err();
        assert!(err.contains("line 1") && err.contains("rat_ps"), "{err}");
        let err = parse_placements("# only comments\n\n").unwrap_err();
        assert!(err.contains("no sinks"), "{err}");
        let err = parse_placements("sink 0 0 10 1000\nsink nan 0 10 1000\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_placements("sink 1 2 3 4 5\n").unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }

    #[test]
    fn topology_covers_every_sink_once() {
        let placements = CtsPlacementSpec::default().generate();
        let topo = build_topology(&placements, &CtsTopologySpec::default()).unwrap();
        assert_eq!(topo.tree.sink_count(), 64);
        assert_eq!(topo.sinks.len(), 64);
        // Every recorded sink node is a sink with the matching pin data.
        for (p, &n) in placements.iter().zip(&topo.sinks) {
            match topo.tree.kind(n) {
                fastbuf_rctree::NodeKind::Sink { capacitance, .. } => {
                    assert!((capacitance.femtos() - p.capacitance.femtos()).abs() < 1e-9);
                }
                other => panic!("expected sink, got {other:?}"),
            }
        }
        // Merge taps became buffer sites; segmenting added more.
        assert!(topo.tree.buffer_site_count() > 63);
    }

    #[test]
    fn topology_is_deterministic() {
        let placements = CtsPlacementSpec::default().generate();
        let a = build_topology(&placements, &CtsTopologySpec::default()).unwrap();
        let b = build_topology(&placements, &CtsTopologySpec::default()).unwrap();
        assert_eq!(a.tree.node_count(), b.tree.node_count());
        assert_eq!(a.sinks, b.sinks);
    }

    #[test]
    fn topology_is_balanced() {
        // 2^k co-located... rather, uniform sinks: depth stays logarithmic,
        // not linear — the signature of bipartition vs chain topologies.
        let placements = CtsPlacementSpec {
            sinks: 128,
            ..CtsPlacementSpec::default()
        }
        .generate();
        let topo = build_topology(
            &placements,
            &CtsTopologySpec {
                site_pitch: None,
                ..CtsTopologySpec::default()
            },
        )
        .unwrap();
        // Unsegmented: max depth = bipartition levels + 1 ≈ log2(128) + 1.
        assert!(topo.tree.stats().max_depth <= 10, "{}", topo.tree.stats());
    }

    #[test]
    fn degenerate_topologies_build_or_fail_typed() {
        // Single sink: source connects straight to it.
        let one = [SinkPlacement {
            x: Microns::new(100.0),
            y: Microns::new(50.0),
            capacitance: Farads::from_femto(10.0),
            required_arrival: Seconds::from_pico(1000.0),
        }];
        let topo = build_topology(&one, &CtsTopologySpec::default()).unwrap();
        assert_eq!(topo.tree.sink_count(), 1);

        // Coincident sinks: zero-length tap wires are fine.
        let twin = [one[0], one[0]];
        let topo = build_topology(&twin, &CtsTopologySpec::default()).unwrap();
        assert_eq!(topo.tree.sink_count(), 2);

        // Empty and invalid inputs fail with messages, not panics.
        assert!(build_topology(&[], &CtsTopologySpec::default())
            .unwrap_err()
            .contains("empty"));
        // NaN cannot be represented inside a unit type (constructor asserts),
        // so the worst representable coordinate is an infinity.
        let bad = [SinkPlacement {
            x: Microns::new(f64::INFINITY),
            ..one[0]
        }];
        assert!(build_topology(&bad, &CtsTopologySpec::default())
            .unwrap_err()
            .contains("sink 1"));
        let bad_pitch = CtsTopologySpec {
            site_pitch: Some(Microns::ZERO),
            ..CtsTopologySpec::default()
        };
        assert!(build_topology(&one, &bad_pitch)
            .unwrap_err()
            .contains("pitch"));
    }
}
