//! The unified front door to the `fastbuf` solvers.
//!
//! The paper's DP is one engine, but the workspace historically exposed it
//! through four disjoint entry points (`Solver`, `CostSolver`,
//! `PolaritySolver`, `BatchSolver`) with manually threaded options. This
//! crate is the typed, `Result`-returning request layer on top of all of
//! them:
//!
//! * [`Session`] — the immutable shared context (buffer library,
//!   technology, default delay model, workspace pool). Cheap to clone,
//!   safe to share across threads; clones share the warm workspace pool.
//! * [`SolveRequest`] — one net, one [`Objective`]
//!   ([`MaxSlack`](Objective::MaxSlack),
//!   [`SlackCost`](Objective::SlackCost) → Pareto frontier,
//!   [`PolarityAware`](Objective::PolarityAware)), and one or more
//!   [`Scenario`]s (per-corner delay model, slew limit, required-time
//!   derate, algorithm override). Multi-scenario requests solve corners
//!   concurrently over the session's workspace pool.
//! * [`Outcome`] — per-scenario results plus the configuration that
//!   actually produced them, so [`Outcome::verify`] re-measures with the
//!   same delay model the DP predicted with (the legacy
//!   `Solution::verify` shim always measures with Elmore).
//! * [`EcoSolver`] — the incremental (ECO) entry: [`Session::eco`] keeps
//!   one persistent subtree cache *per scenario*, applies typed tree
//!   edits, and re-solves bit-identically to a fresh request on the
//!   edited tree while recomputing only the edited root paths.
//! * [`SolveError`] — the `#[non_exhaustive]` typed error surface; no
//!   entry point in this crate panics on user input.
//!
//! **Compatibility guarantee:** a request with one untouched scenario is
//! bit-identical to the legacy `Solver::new(tree, lib).solve()` path —
//! same slack bits, same placements, same stats. The workspace-level
//! equivalence suite (`tests/api_equivalence.rs`) asserts this across the
//! netgen suites for every algorithm, with and without slew limits.
//!
//! # Quick start
//!
//! ```
//! use fastbuf_api::{Scenario, Session};
//! use fastbuf_buflib::units::{Microns, Seconds};
//! use fastbuf_buflib::BufferLibrary;
//!
//! let session = Session::new(BufferLibrary::paper_synthetic(8)?);
//! let tree = fastbuf_netgen::line_net(Microns::new(12_000.0), 11);
//!
//! // One net, three corners, one call:
//! let outcome = session
//!     .request(&tree)
//!     .scenario(Scenario::named("typical"))
//!     .scenario(Scenario::named("slow").rat_derate(0.9))
//!     .scenario(Scenario::named("signoff").slew_limit(Seconds::from_pico(300.0)))
//!     .solve()?;
//!
//! for corner in &outcome.scenarios {
//!     let s = corner.solution().expect("max-slack objective");
//!     println!("{}: slack {} with {} buffers", corner.scenario.name, s.slack, s.placements.len());
//! }
//! // Verification uses each corner's own model and derate:
//! outcome.verify(&tree, session.library())?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod eco;
mod error;
pub mod json;
mod outcome;
mod request;
mod scenario;
mod session;
mod variation;
pub mod wire;

pub use eco::EcoSolver;
pub use error::SolveError;
pub use fastbuf_netgen::{parse_variation, write_variation, Dist, VariationSpec};
pub use outcome::{Outcome, ScenarioOutcome, ScenarioResult};
pub use request::{Objective, SolveRequest};
pub use scenario::{parse_scenario_lines, parse_scenarios, Scenario};
pub use session::{Session, SessionBuilder};
pub use variation::{
    parse_variation_spec, summarize_samples, SampleResult, VariationOutcome, VariationSummary,
};

#[cfg(test)]
mod tests {
    use super::*;
    use fastbuf_buflib::units::{Microns, Seconds};
    use fastbuf_buflib::BufferLibrary;
    use fastbuf_core::{Algorithm, Solver};
    use fastbuf_netgen::{line_net, RandomNetSpec};
    use fastbuf_rctree::ScaledElmoreModel;
    use std::sync::Arc;

    fn lib8() -> BufferLibrary {
        BufferLibrary::paper_synthetic(8).unwrap()
    }

    #[test]
    fn default_request_matches_legacy_solver_bit_for_bit() {
        let lib = lib8();
        let session = Session::new(lib.clone());
        for (len, sites) in [(10_000.0, 9), (6_000.0, 25)] {
            let tree = line_net(Microns::new(len), sites);
            let outcome = session.request(&tree).solve().unwrap();
            let legacy = Solver::new(&tree, &lib).solve();
            let s = outcome.solution().unwrap();
            assert_eq!(s.slack.value().to_bits(), legacy.slack.value().to_bits());
            assert_eq!(s.placements, legacy.placements);
            assert_eq!(s.stats.arena_entries, legacy.stats.arena_entries);
        }
    }

    #[test]
    fn multi_scenario_matches_independent_legacy_solves() {
        let lib = lib8();
        let session = Session::new(lib.clone());
        let tree = RandomNetSpec {
            sinks: 16,
            seed: 9,
            ..RandomNetSpec::default()
        }
        .build();
        let limit = Seconds::from_pico(250.0);
        let outcome = session
            .request(&tree)
            .scenario(Scenario::named("typical"))
            .scenario(Scenario::named("signoff").slew_limit(limit))
            .scenario(
                Scenario::named("optimistic")
                    .delay_model(Arc::new(ScaledElmoreModel::default()))
                    .rat_derate(0.9),
            )
            .workers(1)
            .solve()
            .unwrap();
        assert_eq!(outcome.scenarios.len(), 3);

        let typical = Solver::new(&tree, &lib).solve();
        let signoff = Solver::new(&tree, &lib).slew_limit(limit).solve();
        let derated = tree.with_derated_rats(0.9);
        let optimistic = Solver::new(&derated, &lib)
            .delay_model(Arc::new(ScaledElmoreModel::default()))
            .solve();
        for (name, legacy) in [
            ("typical", &typical),
            ("signoff", &signoff),
            ("optimistic", &optimistic),
        ] {
            let got = outcome.scenario(name).unwrap().solution().unwrap();
            assert_eq!(
                got.slack.value().to_bits(),
                legacy.slack.value().to_bits(),
                "{name}"
            );
            assert_eq!(got.placements, legacy.placements, "{name}");
        }
        // The sequential path checked exactly one workspace out of the
        // pool and returned it: all three scenarios shared it.
        assert_eq!(session.pooled_workspaces(), 1);

        // Verification under each scenario's own model/derate passes.
        outcome.verify(&tree, &lib).unwrap();

        // Worst slack is the minimum across corners.
        let expected = typical.slack.min(signoff.slack).min(optimistic.slack);
        assert_eq!(outcome.worst_slack().unwrap(), expected);
    }

    #[test]
    fn parallel_and_sequential_scenarios_agree() {
        let lib = lib8();
        let session = Session::new(lib);
        let tree = line_net(Microns::new(9_000.0), 10);
        let scenarios = || {
            vec![
                Scenario::named("a"),
                Scenario::named("b").slew_limit(Seconds::from_pico(220.0)),
                Scenario::named("c").algorithm(Algorithm::Lillis),
                Scenario::named("d").rat_derate(0.8),
            ]
        };
        let seq = session
            .request(&tree)
            .scenarios(scenarios())
            .workers(1)
            .solve()
            .unwrap();
        let par = session
            .request(&tree)
            .scenarios(scenarios())
            .workers(4)
            .solve()
            .unwrap();
        for (a, b) in seq.scenarios.iter().zip(&par.scenarios) {
            assert_eq!(a.scenario.name, b.scenario.name);
            let (sa, sb) = (a.solution().unwrap(), b.solution().unwrap());
            assert_eq!(sa.slack, sb.slack);
            assert_eq!(sa.placements, sb.placements);
        }
        // The pool retains every workspace the fan-out used, bounded by
        // the worker cap.
        assert!((1..=4).contains(&session.pooled_workspaces()));
    }

    #[test]
    fn request_validation_errors_are_typed() {
        let session = Session::new(lib8());
        let tree = line_net(Microns::new(2_000.0), 2);
        assert!(matches!(
            session.request(&tree).scenarios(Vec::new()).solve(),
            Err(SolveError::NoScenarios)
        ));
        assert!(matches!(
            session
                .request(&tree)
                .scenario(Scenario::named("x"))
                .scenario(Scenario::named("x"))
                .solve(),
            Err(SolveError::DuplicateScenario(n)) if n == "x"
        ));
        assert!(matches!(
            session
                .request(&tree)
                .scenario(Scenario::named("x").rat_derate(f64::NAN))
                .solve(),
            Err(SolveError::InvalidDerate { .. })
        ));
    }

    #[test]
    fn cost_and_polarity_objectives_are_elmore_only() {
        let session = Session::builder(lib8())
            .delay_model(Arc::new(ScaledElmoreModel::default()))
            .build();
        let tree = line_net(Microns::new(4_000.0), 4);
        // The *session default* model is non-Elmore: the cost DP must
        // refuse rather than silently fall back to Elmore.
        let err = session
            .request(&tree)
            .objective(Objective::SlackCost { max_cost: 40 })
            .solve()
            .unwrap_err();
        assert!(matches!(err, SolveError::Unsupported { .. }), "{err}");

        let session = Session::new(lib8());
        let err = session
            .request(&tree)
            .objective(Objective::SlackCost { max_cost: 40 })
            .scenario(Scenario::named("s").slew_limit(Seconds::from_pico(100.0)))
            .solve()
            .unwrap_err();
        assert!(matches!(err, SolveError::Unsupported { .. }), "{err}");

        let err = session
            .request(&tree)
            .objective(Objective::PolarityAware {
                negated_sinks: Vec::new(),
            })
            .scenario(Scenario::named("s").delay_model(Arc::new(ScaledElmoreModel::default())))
            .solve()
            .unwrap_err();
        assert!(matches!(err, SolveError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn skew_objective_gates_validates_and_matches_max_slack() {
        let lib = lib8();
        let session = Session::new(lib.clone());
        let tree = fastbuf_netgen::h_tree(3);

        // Unbounded skew-target is bit-identical to plain max-slack.
        let skewed = session
            .request(&tree)
            .objective(Objective::SkewTarget { max_skew: None })
            .solve()
            .unwrap();
        let plain = session.request(&tree).solve().unwrap();
        let s = skewed.scenarios[0].skew().unwrap();
        let p = plain.solution().unwrap();
        assert_eq!(s.slack.value().to_bits(), p.slack.value().to_bits());
        assert_eq!(s.placements, p.placements);
        assert!(s.skew_ok);
        assert_eq!(skewed.worst_slack().unwrap(), s.slack);
        skewed.verify(&tree, &lib).unwrap();

        // Elmore-only, like the cost and polarity DPs.
        let err = session
            .request(&tree)
            .objective(Objective::SkewTarget { max_skew: None })
            .scenario(Scenario::named("s").delay_model(Arc::new(ScaledElmoreModel::default())))
            .solve()
            .unwrap_err();
        assert!(matches!(err, SolveError::Unsupported { .. }), "{err}");
        let err = session
            .request(&tree)
            .objective(Objective::SkewTarget { max_skew: None })
            .scenario(Scenario::named("s").slew_limit(Seconds::from_pico(100.0)))
            .solve()
            .unwrap_err();
        assert!(matches!(err, SolveError::Unsupported { .. }), "{err}");

        // A negative or non-finite bound is a typed error.
        for bad in [-1.0, f64::INFINITY, f64::NEG_INFINITY] {
            let err = session
                .request(&tree)
                .objective(Objective::SkewTarget {
                    max_skew: Some(Seconds::from_pico(bad)),
                })
                .solve()
                .unwrap_err();
            assert!(matches!(err, SolveError::InvalidSkewBound { .. }), "{err}");
        }
    }

    #[test]
    fn cost_objective_returns_the_frontier() {
        let lib = lib8();
        let session = Session::new(lib.clone());
        let tree = line_net(Microns::new(9_000.0), 6);
        let outcome = session
            .request(&tree)
            .objective(Objective::SlackCost { max_cost: 80 })
            .solve()
            .unwrap();
        let frontier = outcome.scenarios[0].frontier().unwrap();
        let legacy = fastbuf_core::cost::CostSolver::new(&tree, &lib)
            .max_cost(80)
            .solve()
            .unwrap();
        assert_eq!(frontier.points.len(), legacy.points.len());
        for (a, b) in frontier.points.iter().zip(&legacy.points) {
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.slack.value().to_bits(), b.slack.value().to_bits());
            assert_eq!(a.placements, b.placements);
        }
        outcome.verify(&tree, &lib).unwrap();
        assert!(outcome.worst_slack().is_some());
    }

    #[test]
    fn polarity_objective_solves_and_verifies() {
        let lib = BufferLibrary::paper_synthetic_mixed(8).unwrap();
        let session = Session::new(lib.clone());
        let tree = line_net(Microns::new(6_000.0), 5);
        let sink = tree.sinks().next().unwrap();
        let outcome = session
            .request(&tree)
            .objective(Objective::PolarityAware {
                negated_sinks: vec![sink],
            })
            .solve()
            .unwrap();
        let polarity = outcome.scenarios[0].polarity().unwrap();
        assert!(
            polarity.inverter_count % 2 == 1,
            "negated sink needs odd parity"
        );
        outcome.verify(&tree, &lib).unwrap();
    }

    #[test]
    fn polarity_bad_sink_is_a_typed_error() {
        let session = Session::new(lib8());
        let tree = line_net(Microns::new(3_000.0), 3);
        let err = session
            .request(&tree)
            .objective(Objective::PolarityAware {
                negated_sinks: vec![tree.root()],
            })
            .solve()
            .unwrap_err();
        assert!(matches!(err, SolveError::Polarity(_)), "{err}");
    }

    #[test]
    fn derate_changes_slack_not_placements_semantics() {
        let lib = lib8();
        let session = Session::new(lib);
        let tree = line_net(Microns::new(10_000.0), 9);
        let outcome = session
            .request(&tree)
            .scenario(Scenario::named("derated").rat_derate(0.5))
            .solve()
            .unwrap();
        let s = outcome.scenario("derated").unwrap().solution().unwrap();
        let base = session.request(&tree).solve().unwrap();
        // Halving every RAT shifts the optimum slack down (RAT enters Q
        // additively) but the placements of a line net stay optimal.
        assert!(s.slack < base.solution().unwrap().slack);
        outcome.verify(&tree, session.library()).unwrap();
    }
}
