//! Building and solving requests.

use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crossbeam::channel;

use fastbuf_buflib::units::Seconds;
use fastbuf_core::cost::CostSolver;
use fastbuf_core::polarity::PolaritySolver;
use fastbuf_core::skew::SkewSolver;
use fastbuf_core::{SolveWorkspace, Solver};
use fastbuf_netgen::VariationSpec;
use fastbuf_rctree::{NodeId, RoutingTree};

use crate::error::SolveError;
use crate::outcome::{Outcome, ScenarioOutcome, ScenarioResult};
use crate::scenario::Scenario;
use crate::session::Session;

/// What a request solves for.
#[derive(Clone, Debug, PartialEq, Default)]
#[non_exhaustive]
pub enum Objective {
    /// Maximize slack at the source — the paper's problem; one
    /// [`Solution`](fastbuf_core::Solution) per scenario.
    #[default]
    MaxSlack,
    /// The full slack-vs-cost Pareto frontier up to a cost cap — one
    /// [`CostFrontier`](fastbuf_core::cost::CostFrontier) per scenario.
    /// Elmore-only: the cost DP does not take a delay model or slew limit.
    SlackCost {
        /// Largest total buffer cost explored.
        max_cost: u32,
    },
    /// Polarity-aware insertion with inverters — one
    /// [`PolaritySolution`](fastbuf_core::polarity::PolaritySolution) per
    /// scenario. Elmore-only, like [`Objective::SlackCost`].
    PolarityAware {
        /// Sinks required to receive negative polarity.
        negated_sinks: Vec<NodeId>,
    },
    /// Monte-Carlo process-variation solving: expand the request's
    /// [`VariationSpec`] (see [`SolveRequest::variation`]) into `samples`
    /// deterministic sampled scenarios, solve each through per-worker warm
    /// subtree caches, and report the slack distribution — one
    /// [`VariationOutcome`](crate::VariationOutcome) per scenario instead
    /// of a single worst-negative-slack number.
    YieldTarget {
        /// Number of Monte-Carlo samples (must be non-zero).
        samples: usize,
        /// The reported slack quantile in `[0, 1]` (e.g. `0.05` asks "what
        /// slack do 95 % of dice beat?").
        quantile: f64,
    },
    /// Skew-aware buffering for clock trees: the max-slack recursion with
    /// per-candidate sink arrival windows — one
    /// [`SkewSolution`](fastbuf_core::skew::SkewSolution) per scenario.
    /// Elmore-only, like [`Objective::SlackCost`]. With no bound the
    /// solution is bit-identical to [`Objective::MaxSlack`] and the skew is
    /// merely *reported*; with a bound, candidates whose window exceeds it
    /// are pruned at merges (feasible-or-flagged, see the
    /// [`skew`](fastbuf_core::skew) module docs for exactness caveats).
    SkewTarget {
        /// Hard sink-to-sink skew bound, or `None` to only report skew.
        /// Must be finite and non-negative when set.
        max_skew: Option<Seconds>,
    },
}

/// A solve request: one net, one [`Objective`], one or more
/// [`Scenario`]s.
///
/// Created by [`Session::request`]. An untouched request (no scenarios, no
/// objective) solves one default scenario for max slack and is
/// **bit-identical** to the legacy `Solver::new(tree, lib).solve()` shim
/// (asserted against golden slack bit patterns in the equivalence suite).
///
/// Multi-scenario requests solve scenarios concurrently over the session's
/// workspace pool ([`SolveRequest::workers`] caps the fan-out;
/// [`SolveRequest::solve_in`] runs them sequentially through one caller
/// workspace). Results are deterministic for every worker count.
///
/// ```
/// use fastbuf_api::{Objective, Scenario, Session};
/// use fastbuf_buflib::units::Microns;
/// use fastbuf_buflib::BufferLibrary;
///
/// let session = Session::new(BufferLibrary::paper_synthetic(8)?);
/// let tree = fastbuf_netgen::line_net(Microns::new(8_000.0), 7);
/// // The Pareto frontier, in two corners at once:
/// let outcome = session
///     .request(&tree)
///     .objective(Objective::SlackCost { max_cost: 60 })
///     .scenario(Scenario::named("typical"))
///     .scenario(Scenario::named("slow").rat_derate(0.9))
///     .solve()?;
/// let typical = outcome.scenario("typical").unwrap().frontier().unwrap();
/// let slow = outcome.scenario("slow").unwrap().frontier().unwrap();
/// assert!(!typical.points.is_empty() && !slow.points.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SolveRequest<'a> {
    session: &'a Session,
    tree: &'a RoutingTree,
    objective: Objective,
    scenarios: Option<Vec<Scenario>>,
    track_predecessors: bool,
    workers: Option<NonZeroUsize>,
    intra_net_workers: usize,
    variation: Option<VariationSpec>,
}

impl<'a> SolveRequest<'a> {
    pub(crate) fn new(session: &'a Session, tree: &'a RoutingTree) -> Self {
        SolveRequest {
            session,
            tree,
            objective: Objective::MaxSlack,
            scenarios: None,
            track_predecessors: true,
            workers: None,
            intra_net_workers: 1,
            variation: None,
        }
    }

    /// Selects the objective (default [`Objective::MaxSlack`]).
    #[must_use]
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Appends a scenario. A request with no scenarios solves one
    /// [`Scenario::default`].
    #[must_use]
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenarios.get_or_insert_with(Vec::new).push(scenario);
        self
    }

    /// Replaces the whole scenario list (an empty list is a
    /// [`SolveError::NoScenarios`] at solve time).
    #[must_use]
    pub fn scenarios(mut self, scenarios: Vec<Scenario>) -> Self {
        self.scenarios = Some(scenarios);
        self
    }

    /// Enables or disables predecessor tracking (default on;
    /// [`Objective::MaxSlack`] only — the other objectives always track).
    #[must_use]
    pub fn track_predecessors(mut self, track: bool) -> Self {
        self.track_predecessors = track;
        self
    }

    /// Sets the variation family an [`Objective::YieldTarget`] request
    /// samples from (ignored by the other objectives). A yield request
    /// without an explicit spec samples [`VariationSpec::default`] — all
    /// knobs fixed, so every sample is the nominal tree.
    #[must_use]
    pub fn variation(mut self, spec: VariationSpec) -> Self {
        self.variation = Some(spec);
        self
    }

    /// Caps the number of threads solving scenarios concurrently
    /// (default: available parallelism, capped at the scenario count).
    /// `workers(1)` forces the sequential single-workspace path.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(NonZeroUsize::new(workers.max(1)).expect("max(1) is nonzero"));
        self
    }

    /// Sets the *intra-net* worker count for [`Objective::MaxSlack`]
    /// scenarios: sibling subtrees of one net solved concurrently, joined
    /// in deterministic tree order (bit-identical at every count — see
    /// [`fastbuf_core::SolverOptions::intra_net_workers`]). Orthogonal to
    /// [`SolveRequest::workers`], which fans out across scenarios; the two
    /// multiply, so `workers(4).intra_net_workers(2)` can occupy 8 threads.
    /// Ignored by the other objectives and by cached (ECO/yield) solves.
    #[must_use]
    pub fn intra_net_workers(mut self, workers: usize) -> Self {
        self.intra_net_workers = workers.max(1);
        self
    }

    /// Validates the request and returns the effective scenario list.
    fn checked_scenarios(&self) -> Result<Vec<Scenario>, SolveError> {
        let scenarios = match &self.scenarios {
            None => vec![Scenario::default()],
            Some(list) if list.is_empty() => return Err(SolveError::NoScenarios),
            Some(list) => list.clone(),
        };
        crate::scenario::validate_scenario_list(&scenarios)?;
        Ok(scenarios)
    }

    /// Solves every scenario and returns the [`Outcome`], scenarios in
    /// request order. Multi-scenario requests fan out over the session's
    /// workspace pool; results are identical for every worker count.
    ///
    /// # Errors
    ///
    /// Request validation errors ([`SolveError::NoScenarios`],
    /// [`SolveError::DuplicateScenario`], scenario range errors),
    /// [`SolveError::Unsupported`] for objective/scenario combinations the
    /// underlying DP cannot honour, and the typed errors of the cost and
    /// polarity DPs. Never panics on user input.
    pub fn solve(&self) -> Result<Outcome, SolveError> {
        let start = Instant::now();
        let scenarios = self.checked_scenarios()?;
        let requested_workers = self.workers.map(NonZeroUsize::get).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });

        // Yield-target requests parallelize across *samples*, not
        // scenarios: each scenario runs its whole Monte-Carlo sweep with
        // per-worker warm caches before the next corner starts.
        if let Objective::YieldTarget { samples, quantile } = &self.objective {
            let outcomes = scenarios
                .iter()
                .map(|s| self.solve_yield_scenario(s, *samples, *quantile, requested_workers))
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(Outcome {
                objective: self.objective.clone(),
                scenarios: outcomes,
                elapsed: start.elapsed(),
            });
        }

        let workers = requested_workers.clamp(1, scenarios.len());

        let outcomes = if workers == 1 {
            let mut workspace = self.session.take_workspace();
            let result: Result<Vec<_>, _> = scenarios
                .iter()
                .map(|s| self.solve_scenario(s, &mut workspace))
                .collect();
            self.session.return_workspace(workspace);
            result?
        } else {
            self.solve_parallel(&scenarios, workers)?
        };

        Ok(Outcome {
            objective: self.objective.clone(),
            scenarios: outcomes,
            elapsed: start.elapsed(),
        })
    }

    /// [`SolveRequest::solve`] through one caller-owned workspace, all
    /// scenarios sequentially on the current thread. This is the
    /// zero-allocation path batch workloads use (one workspace per worker
    /// thread, reused across nets *and* scenarios); results are identical
    /// to [`SolveRequest::solve`].
    ///
    /// # Errors
    ///
    /// Same as [`SolveRequest::solve`].
    pub fn solve_in(&self, workspace: &mut SolveWorkspace) -> Result<Outcome, SolveError> {
        let start = Instant::now();
        let scenarios = self.checked_scenarios()?;
        let outcomes: Result<Vec<_>, _> = scenarios
            .iter()
            .map(|s| self.solve_scenario(s, workspace))
            .collect();
        Ok(Outcome {
            objective: self.objective.clone(),
            scenarios: outcomes?,
            elapsed: start.elapsed(),
        })
    }

    /// Fans the scenarios of one request out over `workers` threads, each
    /// with a workspace checked out of the session pool.
    fn solve_parallel(
        &self,
        scenarios: &[Scenario],
        workers: usize,
    ) -> Result<Vec<ScenarioOutcome>, SolveError> {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..scenarios.len() {
            tx.send(i).expect("receiver is alive");
        }
        drop(tx);

        let mut slots: Vec<Option<Result<ScenarioOutcome, SolveError>>> = Vec::new();
        slots.resize_with(scenarios.len(), || None);
        let slots = Mutex::new(&mut slots);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = rx.clone();
                let slots = &slots;
                scope.spawn(move || {
                    let mut workspace = self.session.take_workspace();
                    while let Ok(i) = rx.recv() {
                        let outcome = self.solve_scenario(&scenarios[i], &mut workspace);
                        slots.lock().expect("no panics hold the lock")[i] = Some(outcome);
                    }
                    self.session.return_workspace(workspace);
                });
            }
        });

        slots
            .into_inner()
            .expect("workers are joined")
            .drain(..)
            .map(|slot| slot.expect("every queued scenario was solved"))
            .collect()
    }

    /// Solves one scenario's Monte-Carlo sweep, fanning sample indices
    /// over `workers` threads (each owning one incremental solver and its
    /// warm subtree cache).
    fn solve_yield_scenario(
        &self,
        scenario: &Scenario,
        samples: usize,
        quantile: f64,
        workers: usize,
    ) -> Result<ScenarioOutcome, SolveError> {
        let start = Instant::now();
        let model = scenario
            .delay_model
            .clone()
            .unwrap_or_else(|| Arc::clone(self.session.delay_model()));
        let algorithm = scenario.algorithm.unwrap_or_default();
        let spec = self.variation.clone().unwrap_or_default();
        let tree = scenario.apply_derate(self.tree);
        let outcome = crate::variation::solve_variation(
            self.session,
            &tree,
            scenario,
            &spec,
            samples,
            quantile,
            workers,
        )?;
        Ok(ScenarioOutcome {
            scenario: scenario.clone(),
            model,
            algorithm,
            result: ScenarioResult::Variation(outcome),
            elapsed: start.elapsed(),
        })
    }

    /// Solves one scenario through `workspace`.
    fn solve_scenario(
        &self,
        scenario: &Scenario,
        workspace: &mut SolveWorkspace,
    ) -> Result<ScenarioOutcome, SolveError> {
        let start = Instant::now();
        let session = self.session;
        let library = session.library();
        let model = scenario
            .delay_model
            .clone()
            .unwrap_or_else(|| Arc::clone(session.delay_model()));
        let algorithm = scenario.algorithm.unwrap_or_default();
        let tree = scenario.apply_derate(self.tree);
        let tree = &*tree;

        let result = match &self.objective {
            Objective::MaxSlack => {
                let mut solver = Solver::new(tree, library)
                    .algorithm(algorithm)
                    .track_predecessors(self.track_predecessors)
                    .intra_net_workers(self.intra_net_workers)
                    .delay_model(Arc::clone(&model));
                if let Some(limit) = scenario.slew_limit {
                    solver = solver.slew_limit(limit);
                }
                ScenarioResult::Solution(solver.solve_with(workspace))
            }
            Objective::SlackCost { max_cost } => {
                self.require_elmore_only(scenario, &model, "the slack-vs-cost frontier")?;
                ScenarioResult::Frontier(
                    CostSolver::new(tree, library)
                        .max_cost(*max_cost)
                        .algorithm(algorithm)
                        .solve()?,
                )
            }
            Objective::PolarityAware { negated_sinks } => {
                self.require_elmore_only(scenario, &model, "polarity-aware solving")?;
                let mut solver = PolaritySolver::new(tree, library).algorithm(algorithm);
                for &sink in negated_sinks {
                    solver.require(sink, fastbuf_core::polarity::Polarity::Negative)?;
                }
                ScenarioResult::Polarity(solver.solve()?)
            }
            Objective::YieldTarget { samples, quantile } => {
                // The sequential (`solve_in`) path: the whole sweep on the
                // calling thread through one warm cache — bit-identical to
                // any parallel fan-out of the same request.
                let spec = self.variation.clone().unwrap_or_default();
                ScenarioResult::Variation(crate::variation::solve_variation(
                    session, tree, scenario, &spec, *samples, *quantile, 1,
                )?)
            }
            Objective::SkewTarget { max_skew } => {
                self.require_elmore_only(scenario, &model, "skew-target solving")?;
                if let Some(bound) = max_skew {
                    let skew_ps = bound.picos();
                    if !skew_ps.is_finite() || skew_ps < 0.0 {
                        return Err(SolveError::InvalidSkewBound { skew_ps });
                    }
                }
                ScenarioResult::Skew(
                    SkewSolver::new(tree, library)
                        .algorithm(algorithm)
                        .track_predecessors(self.track_predecessors)
                        .max_skew(*max_skew)
                        .solve(),
                )
            }
        };

        Ok(ScenarioOutcome {
            scenario: scenario.clone(),
            model,
            algorithm,
            result,
            elapsed: start.elapsed(),
        })
    }

    /// The cost and polarity DPs run hard-coded Elmore wire arithmetic and
    /// no slew pruning; asking them for anything else must be a typed
    /// error, never a silent fallback.
    fn require_elmore_only(
        &self,
        scenario: &Scenario,
        model: &Arc<dyn fastbuf_rctree::DelayModel>,
        what: &str,
    ) -> Result<(), SolveError> {
        if model.name() != "elmore" {
            return Err(SolveError::Unsupported {
                scenario: scenario.name.clone(),
                reason: format!(
                    "{what} supports only the Elmore model, not `{}`",
                    model.name()
                ),
            });
        }
        if scenario.slew_limit.is_some() {
            return Err(SolveError::Unsupported {
                scenario: scenario.name.clone(),
                reason: format!("{what} does not support a slew limit"),
            });
        }
        Ok(())
    }
}
