//! Hand-rolled JSON helpers and the shared per-net record schema.
//!
//! The workspace builds fully offline (no serde), so JSON is emitted by
//! hand. This module is the **single definition** of the per-net JSON
//! schema: both `fastbuf batch --json` (via `fastbuf-batch`) and
//! `fastbuf solve --json` serialize through [`NetRecord`], so the two
//! commands can never drift apart.

use std::time::Duration;

use fastbuf_buflib::units::Seconds;
use fastbuf_core::Placement;

/// Formats an `f64` as a valid JSON number (JSON has no `Infinity`/`NaN`;
/// those become `null`).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{}` on f64 always includes a sign/digits; it never produces the
        // `inf`/`NaN` spellings for finite values, so this is valid JSON.
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Escapes a string for JSON.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One per-net result in the shared JSON schema.
///
/// Field order and key names are the contract; `scenario` is emitted only
/// when present (multi-corner `solve` runs), so single-model batch output
/// is unchanged.
#[derive(Clone, Debug)]
pub struct NetRecord<'a> {
    /// Net label (file path or generated name).
    pub name: &'a str,
    /// Position in the input (batch index, or 0 for single solves).
    pub index: usize,
    /// Scenario name for multi-corner runs (`None` omits the key).
    pub scenario: Option<&'a str>,
    /// Sink count.
    pub sinks: usize,
    /// Candidate buffer positions.
    pub sites: usize,
    /// Slack before buffering.
    pub slack_before: Seconds,
    /// Slack after buffering.
    pub slack_after: Seconds,
    /// Worst output slew before buffering.
    pub slew_before: Seconds,
    /// Worst output slew after buffering.
    pub max_slew: Seconds,
    /// Whether the solve met its slew limit (or had none).
    pub slew_ok: bool,
    /// Number of buffers inserted (reported even when `placements` is not
    /// serialized).
    pub buffers: usize,
    /// Total cost of the inserted buffers.
    pub cost: f64,
    /// Wall-clock solve time.
    pub elapsed: Duration,
    /// Placement list to serialize (`None` omits the key; the `buffers`
    /// count is emitted either way).
    pub placements: Option<&'a [Placement]>,
}

impl NetRecord<'_> {
    /// Serializes this record as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push('{');
        s.push_str(&format!("\"net\": {}, ", json_str(self.name)));
        if let Some(scenario) = self.scenario {
            s.push_str(&format!("\"scenario\": {}, ", json_str(scenario)));
        }
        s.push_str(&format!("\"index\": {}, ", self.index));
        s.push_str(&format!("\"sinks\": {}, ", self.sinks));
        s.push_str(&format!("\"sites\": {}, ", self.sites));
        s.push_str(&format!(
            "\"slack_before_ps\": {}, ",
            json_f64(self.slack_before.picos())
        ));
        s.push_str(&format!(
            "\"slack_after_ps\": {}, ",
            json_f64(self.slack_after.picos())
        ));
        s.push_str(&format!(
            "\"slew_before_ps\": {}, ",
            json_f64(self.slew_before.picos())
        ));
        s.push_str(&format!(
            "\"max_slew_ps\": {}, ",
            json_f64(self.max_slew.picos())
        ));
        s.push_str(&format!(
            "\"slew_ok\": {}, ",
            if self.slew_ok { "true" } else { "false" }
        ));
        s.push_str(&format!("\"buffers\": {}, ", self.buffers));
        s.push_str(&format!("\"cost\": {}, ", json_f64(self.cost)));
        s.push_str(&format!(
            "\"elapsed_us\": {}",
            json_f64(self.elapsed.as_secs_f64() * 1e6)
        ));
        if let Some(placements) = self.placements {
            s.push_str(", \"placements\": [");
            for (j, p) in placements.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "{{\"node\": {}, \"buffer\": {}}}",
                    p.node.index(),
                    p.buffer.index()
                ));
            }
            s.push(']');
        }
        s.push('}');
        s
    }
}

/// The owned form of [`NetRecord`]: the same per-net record with no
/// borrowed fields, so it can outlive the solve that produced it, cross a
/// thread boundary, or be queued in a server response.
///
/// Serialization delegates to [`NetRecord::to_json`] through
/// [`NetRecordOwned::as_record`], so the owned and borrowed forms are
/// **byte-identical by construction** — `batch --json`, `solve --json`,
/// and `fastbuf serve` all emit the exact same bytes for the same record
/// (pinned by the cross-producer golden test below).
#[derive(Clone, Debug)]
pub struct NetRecordOwned {
    /// Net label (file path, design id, or generated name).
    pub name: String,
    /// Position in the input (batch index, or 0 for single solves).
    pub index: usize,
    /// Scenario name for multi-corner runs (`None` omits the key).
    pub scenario: Option<String>,
    /// Sink count.
    pub sinks: usize,
    /// Candidate buffer positions.
    pub sites: usize,
    /// Slack before buffering.
    pub slack_before: Seconds,
    /// Slack after buffering.
    pub slack_after: Seconds,
    /// Worst output slew before buffering.
    pub slew_before: Seconds,
    /// Worst output slew after buffering.
    pub max_slew: Seconds,
    /// Whether the solve met its slew limit (or had none).
    pub slew_ok: bool,
    /// Number of buffers inserted.
    pub buffers: usize,
    /// Total cost of the inserted buffers.
    pub cost: f64,
    /// Wall-clock solve time.
    pub elapsed: Duration,
    /// Placement list to serialize (`None` omits the key).
    pub placements: Option<Vec<Placement>>,
}

impl NetRecordOwned {
    /// Borrows this record as a [`NetRecord`] — the single serializer both
    /// forms go through.
    pub fn as_record(&self) -> NetRecord<'_> {
        NetRecord {
            name: &self.name,
            index: self.index,
            scenario: self.scenario.as_deref(),
            sinks: self.sinks,
            sites: self.sites,
            slack_before: self.slack_before,
            slack_after: self.slack_after,
            slew_before: self.slew_before,
            max_slew: self.max_slew,
            slew_ok: self.slew_ok,
            buffers: self.buffers,
            cost: self.cost,
            elapsed: self.elapsed,
            placements: self.placements.as_deref(),
        }
    }

    /// Serializes this record as a single-line JSON object, byte-identical
    /// to the borrowed [`NetRecord::to_json`].
    pub fn to_json(&self) -> String {
        self.as_record().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\ny"), "\"x\\ny\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_numbers() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(-0.25), "-0.25");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn record_schema_keys() {
        let record = NetRecord {
            name: "net00001",
            index: 1,
            scenario: None,
            sinks: 3,
            sites: 5,
            slack_before: Seconds::from_pico(-10.0),
            slack_after: Seconds::from_pico(25.0),
            slew_before: Seconds::from_pico(400.0),
            max_slew: Seconds::from_pico(120.0),
            slew_ok: true,
            buffers: 2,
            cost: 12.0,
            elapsed: Duration::from_micros(42),
            placements: None,
        };
        let json = record.to_json();
        for key in [
            "\"net\"",
            "\"index\"",
            "\"sinks\"",
            "\"sites\"",
            "\"slack_before_ps\"",
            "\"slack_after_ps\"",
            "\"slew_before_ps\"",
            "\"max_slew_ps\"",
            "\"slew_ok\"",
            "\"buffers\"",
            "\"cost\"",
            "\"elapsed_us\"",
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
        assert!(!json.contains("\"scenario\""));
        assert!(!json.contains("\"placements\""));

        let record = NetRecord {
            scenario: Some("slow"),
            placements: Some(&[]),
            ..record
        };
        let json = record.to_json();
        assert!(json.contains("\"scenario\": \"slow\""));
        assert!(json.contains("\"placements\": []"));
        assert!(json.contains("\"buffers\": 2"));
    }

    /// Cross-producer golden: the borrowed record (batch / `solve --json`)
    /// and the owned record (`fastbuf serve`) must emit the exact same
    /// bytes — and those bytes are pinned here, so any schema drift breaks
    /// this test, not a downstream consumer.
    #[test]
    fn owned_and_borrowed_records_are_byte_identical() {
        use fastbuf_buflib::BufferTypeId;
        use fastbuf_rctree::NodeId;

        let placements = vec![
            Placement {
                node: NodeId::new(3),
                buffer: BufferTypeId::new(1),
            },
            Placement {
                node: NodeId::new(7),
                buffer: BufferTypeId::new(0),
            },
        ];
        let owned = NetRecordOwned {
            name: "designs/top.net".to_owned(),
            index: 4,
            scenario: Some("slow".to_owned()),
            sinks: 9,
            sites: 21,
            slack_before: Seconds::from_pico(-12.5),
            slack_after: Seconds::from_pico(31.25),
            slew_before: Seconds::from_pico(500.0),
            max_slew: Seconds::from_pico(150.0),
            slew_ok: true,
            buffers: 2,
            cost: 7.0,
            elapsed: Duration::from_micros(123),
            placements: Some(placements.clone()),
        };
        let borrowed = NetRecord {
            name: "designs/top.net",
            index: 4,
            scenario: Some("slow"),
            sinks: 9,
            sites: 21,
            slack_before: Seconds::from_pico(-12.5),
            slack_after: Seconds::from_pico(31.25),
            slew_before: Seconds::from_pico(500.0),
            max_slew: Seconds::from_pico(150.0),
            slew_ok: true,
            buffers: 2,
            cost: 7.0,
            elapsed: Duration::from_micros(123),
            placements: Some(&placements),
        };
        // Pinned bytes, ulp noise and all: picosecond fields go through
        // `Seconds::from_pico(x).picos()` (an exact-value round trip is
        // not guaranteed), and that conversion is part of the schema.
        let golden = "{\"net\": \"designs/top.net\", \"scenario\": \"slow\", \
                      \"index\": 4, \"sinks\": 9, \"sites\": 21, \
                      \"slack_before_ps\": -12.5, \
                      \"slack_after_ps\": 31.250000000000004, \
                      \"slew_before_ps\": 500.00000000000006, \
                      \"max_slew_ps\": 150, \
                      \"slew_ok\": true, \"buffers\": 2, \"cost\": 7, \
                      \"elapsed_us\": 123.00000000000001, \
                      \"placements\": [{\"node\": 3, \"buffer\": 1}, \
                      {\"node\": 7, \"buffer\": 0}]}";
        assert_eq!(owned.to_json(), golden);
        assert_eq!(borrowed.to_json(), golden);
        assert_eq!(owned.as_record().to_json(), borrowed.to_json());
    }
}
