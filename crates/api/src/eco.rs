//! Session-level incremental (ECO) solving: one cache per scenario,
//! shared across edits.
//!
//! A multi-corner flow re-asks the same scenarios after every engineering
//! change. Solving each corner from scratch repeats almost all of the
//! work; [`EcoSolver`] instead keeps one
//! [`IncrementalSolver`](fastbuf_incremental::IncrementalSolver) — and
//! therefore one persistent subtree cache — **per scenario**, so
//! interleaved corner solves never thrash a shared cache and each re-solve
//! recomputes only the edited root paths. Results are bit-identical to
//! issuing a fresh [`SolveRequest`](crate::SolveRequest) on the edited
//! tree (asserted in `tests/incremental_equivalence.rs`).

use std::sync::Arc;
use std::time::Instant;

use fastbuf_buflib::units::Seconds;
use fastbuf_core::SolverOptions;
use fastbuf_incremental::{Edit, IncrementalSolver};
use fastbuf_rctree::RoutingTree;

use crate::error::SolveError;
use crate::outcome::{Outcome, ScenarioOutcome, ScenarioResult};
use crate::request::Objective;
use crate::scenario::{validate_scenario_list, Scenario};
use crate::session::Session;

/// A long-lived incremental solving handle for one net across one or more
/// scenarios. Created by [`Session::eco`]; see the module docs.
///
/// ```
/// use fastbuf_api::{Scenario, Session};
/// use fastbuf_buflib::units::Seconds;
/// use fastbuf_buflib::BufferLibrary;
/// use fastbuf_incremental::Edit;
///
/// let session = Session::new(BufferLibrary::paper_synthetic(8)?);
/// let tree = fastbuf_netgen::RandomNetSpec { sinks: 16, seed: 3, ..Default::default() }.build();
/// let mut eco = session.eco(
///     &tree,
///     vec![
///         Scenario::named("typical"),
///         Scenario::named("slow").rat_derate(0.9),
///     ],
/// )?;
/// let before = eco.solve()?;
///
/// // A sink's deadline tightened; both corners re-solve incrementally.
/// let sink = tree.sinks().next().unwrap();
/// eco.apply(&Edit::SetSinkRat { node: sink, rat: Seconds::from_pico(700.0) })?;
/// let after = eco.solve()?;
/// assert_eq!(after.scenarios.len(), 2);
/// // Verification re-measures each corner against the *edited* tree:
/// after.verify(eco.tree(), session.library())?;
/// # let _ = before;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct EcoSolver {
    /// The underated edited tree, kept in lockstep with the corners so
    /// [`Outcome::verify`] (which re-applies scenario derates) sees the
    /// same net every corner solved.
    base: IncrementalSolver,
    corners: Vec<EcoCorner>,
}

#[derive(Debug)]
struct EcoCorner {
    scenario: Scenario,
    solver: IncrementalSolver,
}

impl Session {
    /// Starts an incremental (ECO) session over `tree` for `scenarios`
    /// (max-slack objective; every scenario gets its own persistent
    /// subtree cache). The tree is copied — later edits go through
    /// [`EcoSolver::apply`], and [`EcoSolver::tree`] exposes the edited
    /// state.
    ///
    /// # Errors
    ///
    /// [`SolveError::NoScenarios`], [`SolveError::DuplicateScenario`], or
    /// a scenario validation error.
    pub fn eco(
        &self,
        tree: &RoutingTree,
        scenarios: Vec<Scenario>,
    ) -> Result<EcoSolver, SolveError> {
        if scenarios.is_empty() {
            return Err(SolveError::NoScenarios);
        }
        validate_scenario_list(&scenarios)?;
        let corners = scenarios
            .into_iter()
            .map(|scenario| {
                let mut options = SolverOptions::default();
                options.algorithm = scenario.algorithm.unwrap_or_default();
                options.delay_model = scenario
                    .delay_model
                    .clone()
                    .unwrap_or_else(|| Arc::clone(self.delay_model()));
                options.slew_limit = scenario.slew_limit;
                let corner_tree = scenario.apply_derate(tree).into_owned();
                let solver = IncrementalSolver::new(corner_tree, self.library().clone())
                    .with_technology(*self.technology())
                    .with_options(options);
                EcoCorner { scenario, solver }
            })
            .collect();
        let base = IncrementalSolver::new(tree.clone(), self.library().clone())
            .with_technology(*self.technology());
        Ok(EcoSolver { base, corners })
    }
}

impl EcoSolver {
    /// The current (edited, underated) tree — what [`Outcome::verify`]
    /// should be handed.
    pub fn tree(&self) -> &RoutingTree {
        self.base.tree()
    }

    /// Applies one edit to the base tree and to every corner. RAT edits
    /// are derated per corner (the corner solves a derated copy, so its
    /// edit must be derated the same way — keeping each corner
    /// bit-identical to a fresh request on the edited tree).
    ///
    /// # Errors
    ///
    /// [`SolveError::Unsupported`] for [`Edit::SwapLibrary`] (the library
    /// is shared session state; sessions are immutable — build a new
    /// session, or use `IncrementalSolver::swap_library` directly), and
    /// [`SolveError::Edit`] when the tree rejects the mutation, or when a
    /// RAT edit derates to a non-finite value in *any* corner (a derate
    /// above 1 can overflow an extreme but finite RAT). Both are checked
    /// *before* the base or any corner is touched, so a rejected edit
    /// leaves everything consistent.
    pub fn apply(&mut self, edit: &Edit) -> Result<(), SolveError> {
        if matches!(edit, Edit::SwapLibrary { .. }) {
            return Err(SolveError::Unsupported {
                scenario: "eco".into(),
                reason: "the session library is immutable shared state; \
                         swap libraries by building a new session (or use \
                         IncrementalSolver::swap_library directly)"
                    .into(),
            });
        }
        // Pre-check the one way a corner could reject an edit the base
        // accepts: a finite RAT whose derated product overflows. Everything
        // else is topology/kind-determined and identical across corners.
        if let Edit::SetSinkRat { node, rat } = edit {
            for corner in &self.corners {
                if !(rat.value() * corner.scenario.rat_derate).is_finite() {
                    return Err(SolveError::Edit(fastbuf_incremental::EcoError::Tree(
                        fastbuf_rctree::TreeError::InvalidSink { node: *node },
                    )));
                }
            }
        }
        // Validate against the base next: the corners share its topology,
        // so an edit the base accepts cannot fail on a corner (the derate
        // overflow case was just excluded above).
        self.base.apply(edit).map_err(SolveError::Edit)?;
        for corner in &mut self.corners {
            let derated;
            let corner_edit = match edit {
                Edit::SetSinkRat { node, rat } if corner.scenario.rat_derate != 1.0 => {
                    derated = Edit::SetSinkRat {
                        node: *node,
                        rat: Seconds::new(rat.value() * corner.scenario.rat_derate),
                    };
                    &derated
                }
                other => other,
            };
            corner
                .solver
                .apply(corner_edit)
                .expect("base tree accepted a topology-identical edit");
        }
        Ok(())
    }

    /// Applies a whole script in order.
    ///
    /// # Errors
    ///
    /// The first edit's error, with all earlier edits applied everywhere.
    pub fn apply_all(&mut self, edits: &[Edit]) -> Result<(), SolveError> {
        for edit in edits {
            self.apply(edit)?;
        }
        Ok(())
    }

    /// Re-solves every corner incrementally and returns the same
    /// [`Outcome`] shape as [`SolveRequest::solve`](crate::SolveRequest) —
    /// per-scenario solutions, each recording the model it solved with.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice (the max-slack DP is total); the
    /// `Result` matches the request API so new failure modes can surface
    /// without a breaking change.
    pub fn solve(&mut self) -> Result<Outcome, SolveError> {
        let start = Instant::now();
        let scenarios = self
            .corners
            .iter_mut()
            .map(|corner| {
                let t0 = Instant::now();
                let solution = corner.solver.solve();
                ScenarioOutcome {
                    scenario: corner.scenario.clone(),
                    model: Arc::clone(&corner.solver.options().delay_model),
                    algorithm: corner.solver.options().algorithm,
                    result: ScenarioResult::Solution(solution),
                    elapsed: t0.elapsed(),
                }
            })
            .collect();
        Ok(Outcome {
            objective: Objective::MaxSlack,
            scenarios,
            elapsed: start.elapsed(),
        })
    }

    /// Per-corner cache diagnostics: `(scenario name, nodes currently
    /// cached, edits applied)` — cached nodes are populated after the
    /// first [`EcoSolver::solve`]. Per-solve recompute/reuse splits live
    /// on each solution's [`stats`](fastbuf_core::SolveStats).
    pub fn cache_report(&self) -> Vec<(&str, usize, u64)> {
        self.corners
            .iter()
            .map(|c| {
                (
                    c.scenario.name.as_str(),
                    c.solver.cache().cached_nodes(),
                    c.solver.edits_applied(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbuf_buflib::units::{Farads, Microns};
    use fastbuf_buflib::BufferLibrary;
    use fastbuf_core::Algorithm;
    use fastbuf_netgen::eco::EditScriptSpec;
    use fastbuf_netgen::RandomNetSpec;
    use fastbuf_rctree::ScaledElmoreModel;

    fn scenarios() -> Vec<Scenario> {
        vec![
            Scenario::named("typical"),
            Scenario::named("slow").rat_derate(0.9),
            Scenario::named("signoff").slew_limit(Seconds::from_pico(300.0)),
            Scenario::named("optimistic")
                .delay_model(Arc::new(ScaledElmoreModel::default()))
                .algorithm(Algorithm::Lillis),
        ]
    }

    #[test]
    fn eco_outcome_matches_fresh_requests_after_every_edit() {
        let session = Session::new(BufferLibrary::paper_synthetic(8).unwrap());
        let tree = RandomNetSpec {
            sinks: 14,
            seed: 21,
            ..RandomNetSpec::default()
        }
        .build();
        let mut eco = session.eco(&tree, scenarios()).unwrap();
        let script = EditScriptSpec {
            edits: 12,
            locality: 0.5,
            seed: 8,
            swap_library_every: 0,
        }
        .generate(&tree);

        for edit in std::iter::once(None).chain(script.iter().map(Some)) {
            if let Some(edit) = edit {
                eco.apply(edit).unwrap();
            }
            let incremental = eco.solve().unwrap();
            let fresh = session
                .request(eco.tree())
                .scenarios(scenarios())
                .workers(1)
                .solve()
                .unwrap();
            assert_eq!(incremental.scenarios.len(), fresh.scenarios.len());
            for (a, b) in incremental.scenarios.iter().zip(&fresh.scenarios) {
                assert_eq!(a.scenario.name, b.scenario.name);
                assert_eq!(a.model.name(), b.model.name());
                let (sa, sb) = (a.solution().unwrap(), b.solution().unwrap());
                assert_eq!(
                    sa.slack.value().to_bits(),
                    sb.slack.value().to_bits(),
                    "{}",
                    a.scenario.name
                );
                assert_eq!(sa.placements, sb.placements, "{}", a.scenario.name);
                assert_eq!(sa.slew_ok, sb.slew_ok, "{}", a.scenario.name);
            }
            // Model-aware verification against the edited tree passes.
            incremental.verify(eco.tree(), session.library()).unwrap();
        }
        let report = eco.cache_report();
        assert_eq!(report.len(), 4);
        assert!(report.iter().all(|&(_, cached, _)| cached > 0));
    }

    #[test]
    fn eco_validates_scenarios_and_rejects_library_swaps() {
        let session = Session::new(BufferLibrary::paper_synthetic(4).unwrap());
        let tree = fastbuf_netgen::line_net(Microns::new(4_000.0), 3);
        assert!(matches!(
            session.eco(&tree, Vec::new()),
            Err(SolveError::NoScenarios)
        ));
        assert!(matches!(
            session.eco(&tree, vec![Scenario::named("x"), Scenario::named("x")]),
            Err(SolveError::DuplicateScenario(_))
        ));
        assert!(matches!(
            session.eco(&tree, vec![Scenario::named("x").rat_derate(-1.0)]),
            Err(SolveError::InvalidDerate { .. })
        ));

        let mut eco = session.eco(&tree, vec![Scenario::default()]).unwrap();
        let err = eco
            .apply(&Edit::SwapLibrary { size: 4, jitter: 0 })
            .unwrap_err();
        assert!(matches!(err, SolveError::Unsupported { .. }), "{err}");

        // A rejected edit is typed and leaves every corner consistent.
        let err = eco
            .apply(&Edit::SetSinkCap {
                node: tree.root(),
                cap: Farads::from_femto(1.0),
            })
            .unwrap_err();
        assert!(matches!(err, SolveError::Edit(_)), "{err}");
        let outcome = eco.solve().unwrap();
        outcome.verify(eco.tree(), session.library()).unwrap();
    }

    /// A derate > 1 can overflow an extreme-but-finite RAT to infinity in
    /// one corner; that must be a typed error *before* anything mutates,
    /// never a panic with base and corners out of lockstep.
    #[test]
    fn derate_overflowing_rat_edit_is_typed_and_atomic() {
        let session = Session::new(BufferLibrary::paper_synthetic(4).unwrap());
        let tree = fastbuf_netgen::line_net(Microns::new(4_000.0), 3);
        let sink = tree.sinks().next().unwrap();
        let mut eco = session
            .eco(
                &tree,
                vec![Scenario::named("a"), Scenario::named("big").rat_derate(2.0)],
            )
            .unwrap();
        let before = eco.solve().unwrap();
        let err = eco
            .apply(&Edit::SetSinkRat {
                node: sink,
                rat: Seconds::new(f64::MAX),
            })
            .unwrap_err();
        assert!(matches!(err, SolveError::Edit(_)), "{err}");
        // Nothing moved: base tree and every corner still solve to the
        // pre-edit answer and verify against the unmutated base.
        let after = eco.solve().unwrap();
        for (a, b) in before.scenarios.iter().zip(&after.scenarios) {
            assert_eq!(
                a.solution().unwrap().slack.value().to_bits(),
                b.solution().unwrap().slack.value().to_bits()
            );
        }
        after.verify(eco.tree(), session.library()).unwrap();
    }
}
