//! The typed error surface of the request layer.
//!
//! Every entry point of `fastbuf-api` returns `Result<_, SolveError>`;
//! nothing in the request layer panics on user input. The enum is
//! `#[non_exhaustive]` so new failure modes can be added without a
//! breaking release.

use std::error::Error;
use std::fmt;

use fastbuf_core::cost::CostError;
use fastbuf_core::polarity::PolarityError;
use fastbuf_core::VerifyError;

/// Errors from building or solving a
/// [`SolveRequest`](crate::SolveRequest), or from verifying an
/// [`Outcome`](crate::Outcome).
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SolveError {
    /// The request's scenario list was explicitly set to empty. (A request
    /// that never touches scenarios solves one default scenario.)
    NoScenarios,
    /// Two scenarios of one request share a name; per-scenario results are
    /// addressed by name, so names must be unique.
    DuplicateScenario(String),
    /// A scenario's required-time derate is not finite and positive.
    InvalidDerate {
        /// The offending scenario.
        scenario: String,
        /// The rejected factor.
        derate: f64,
    },
    /// A scenario-file line gave a non-positive slew limit (use no
    /// `slew-limit-ps=` key for "unconstrained"). The programmatic
    /// [`Scenario`](crate::Scenario) API instead accepts such limits
    /// best-effort, matching the legacy solver contract.
    InvalidSlewLimit {
        /// The offending scenario.
        scenario: String,
        /// The rejected limit in picoseconds.
        limit_ps: f64,
    },
    /// The scenario asks for a combination the chosen
    /// [`Objective`](crate::Objective) does not support (e.g. a non-Elmore
    /// delay model or a slew limit with the cost-frontier or polarity DP,
    /// which are Elmore-only — see the crate docs).
    Unsupported {
        /// The offending scenario.
        scenario: String,
        /// What was asked for and why it is unsupported.
        reason: String,
    },
    /// The cost-frontier DP rejected the library.
    Cost(CostError),
    /// The polarity DP failed (infeasible requirements, bad sink id) or
    /// its verification failed.
    Polarity(PolarityError),
    /// [`Outcome::verify`](crate::Outcome::verify) found a scenario whose
    /// forward re-evaluation disagrees with the DP's prediction.
    Verify {
        /// The scenario whose verification failed.
        scenario: String,
        /// The underlying mismatch.
        error: VerifyError,
    },
    /// A scenario file line could not be parsed
    /// (see [`parse_scenarios`](crate::parse_scenarios)).
    ScenarioParse {
        /// 1-based line number in the scenario file.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A scenario named a delay model that
    /// [`model_by_name`](fastbuf_rctree::model_by_name) does not know.
    UnknownModel(String),
    /// An ECO edit was rejected by the tree or library (see
    /// [`EcoSolver::apply`](crate::EcoSolver::apply)).
    Edit(fastbuf_incremental::EcoError),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NoScenarios => {
                write!(f, "the request has an empty scenario list")
            }
            SolveError::DuplicateScenario(name) => {
                write!(f, "duplicate scenario name `{name}`")
            }
            SolveError::InvalidDerate { scenario, derate } => {
                write!(
                    f,
                    "scenario `{scenario}`: RAT derate {derate} must be finite and positive"
                )
            }
            SolveError::InvalidSlewLimit { scenario, limit_ps } => {
                write!(
                    f,
                    "scenario `{scenario}`: slew limit {limit_ps} ps must be positive"
                )
            }
            SolveError::Unsupported { scenario, reason } => {
                write!(f, "scenario `{scenario}`: {reason}")
            }
            SolveError::Cost(e) => write!(f, "cost frontier: {e}"),
            SolveError::Polarity(e) => write!(f, "polarity: {e}"),
            SolveError::Verify { scenario, error } => {
                write!(f, "scenario `{scenario}` failed verification: {error}")
            }
            SolveError::ScenarioParse { line, message } => {
                write!(f, "scenario file line {line}: {message}")
            }
            SolveError::UnknownModel(name) => {
                write!(
                    f,
                    "unknown delay model `{name}` (expected elmore or scaled-elmore)"
                )
            }
            SolveError::Edit(e) => write!(f, "eco: {e}"),
        }
    }
}

impl Error for SolveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SolveError::Cost(e) => Some(e),
            SolveError::Polarity(e) => Some(e),
            SolveError::Verify { error, .. } => Some(error),
            SolveError::Edit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CostError> for SolveError {
    fn from(e: CostError) -> Self {
        SolveError::Cost(e)
    }
}

impl From<PolarityError> for SolveError {
    fn from(e: PolarityError) -> Self {
        SolveError::Polarity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SolveError::DuplicateScenario("fast".into());
        assert!(e.to_string().contains("fast"));
        assert!(e.source().is_none());

        let e = SolveError::Cost(CostError::NonIntegerCost {
            buffer: "B1".into(),
        });
        assert!(e.to_string().contains("B1"));
        assert!(e.source().is_some());

        let e = SolveError::Verify {
            scenario: "slow".into(),
            error: VerifyError::NotTracked,
        };
        assert!(e.to_string().contains("slow"));
        assert!(e.source().is_some());

        let e = SolveError::Unsupported {
            scenario: "s".into(),
            reason: "cost frontier is Elmore-only".into(),
        };
        assert!(e.to_string().contains("Elmore-only"));

        let e = SolveError::ScenarioParse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn conversions() {
        let e: SolveError = PolarityError::Infeasible.into();
        assert!(matches!(e, SolveError::Polarity(_)));
        let e: SolveError = CostError::NonIntegerCost { buffer: "x".into() }.into();
        assert!(matches!(e, SolveError::Cost(_)));
    }
}
