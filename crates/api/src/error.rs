//! The typed error surface of the request layer.
//!
//! Every entry point of `fastbuf-api` returns `Result<_, SolveError>`;
//! nothing in the request layer panics on user input. The enum is
//! `#[non_exhaustive]` so new failure modes can be added without a
//! breaking release.

use std::error::Error;
use std::fmt;

use fastbuf_core::cost::CostError;
use fastbuf_core::polarity::PolarityError;
use fastbuf_core::VerifyError;

/// Errors from building or solving a
/// [`SolveRequest`](crate::SolveRequest), or from verifying an
/// [`Outcome`](crate::Outcome).
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SolveError {
    /// The request's scenario list was explicitly set to empty. (A request
    /// that never touches scenarios solves one default scenario.)
    NoScenarios,
    /// Two scenarios of one request share a name; per-scenario results are
    /// addressed by name, so names must be unique.
    DuplicateScenario(String),
    /// A scenario's required-time derate is not finite and positive.
    InvalidDerate {
        /// The offending scenario.
        scenario: String,
        /// The rejected factor.
        derate: f64,
    },
    /// A scenario-file line gave a non-positive slew limit (use no
    /// `slew-limit-ps=` key for "unconstrained"). The programmatic
    /// [`Scenario`](crate::Scenario) API instead accepts such limits
    /// best-effort, matching the legacy solver contract.
    InvalidSlewLimit {
        /// The offending scenario.
        scenario: String,
        /// The rejected limit in picoseconds.
        limit_ps: f64,
    },
    /// The scenario asks for a combination the chosen
    /// [`Objective`](crate::Objective) does not support (e.g. a non-Elmore
    /// delay model or a slew limit with the cost-frontier or polarity DP,
    /// which are Elmore-only — see the crate docs).
    Unsupported {
        /// The offending scenario.
        scenario: String,
        /// What was asked for and why it is unsupported.
        reason: String,
    },
    /// The cost-frontier DP rejected the library.
    Cost(CostError),
    /// The polarity DP failed (infeasible requirements, bad sink id) or
    /// its verification failed.
    Polarity(PolarityError),
    /// [`Outcome::verify`](crate::Outcome::verify) found a scenario whose
    /// forward re-evaluation disagrees with the DP's prediction.
    Verify {
        /// The scenario whose verification failed.
        scenario: String,
        /// The underlying mismatch.
        error: VerifyError,
    },
    /// A scenario file line could not be parsed
    /// (see [`parse_scenarios`](crate::parse_scenarios)).
    ScenarioParse {
        /// 1-based line number in the scenario file.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A scenario named a delay model that
    /// [`model_by_name`](fastbuf_rctree::model_by_name) does not know.
    UnknownModel(String),
    /// An ECO edit was rejected by the tree or library (see
    /// [`EcoSolver::apply`](crate::EcoSolver::apply)).
    Edit(fastbuf_incremental::EcoError),
    /// A yield-target request asked for zero samples.
    NoSamples,
    /// A yield-target quantile was non-finite or outside `[0, 1]`.
    InvalidQuantile {
        /// The rejected quantile.
        quantile: f64,
    },
    /// A variation file could not be parsed (see
    /// [`parse_variation_spec`](crate::parse_variation_spec)).
    VariationParse {
        /// 1-based line number in the variation file.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A programmatically built
    /// [`VariationSpec`](fastbuf_netgen::VariationSpec) carries
    /// out-of-domain parameters (non-finite, negative sigma, locality
    /// outside `(0, 1]`, …).
    InvalidVariation(String),
    /// A skew-target bound was non-finite or negative (use `None` for
    /// "minimize skew without a hard bound").
    InvalidSkewBound {
        /// The rejected bound in picoseconds.
        skew_ps: f64,
    },
}

impl SolveError {
    /// The stable kebab-case kind of this error.
    ///
    /// This is the machine-readable name shared by every surface that has
    /// to map errors to something flat: the server uses it verbatim as
    /// the wire `error.code`, and the CLI derives its exit codes from the
    /// same table (see [`SolveError::exit_code`]). Adding a variant means
    /// adding a row here — the match is exhaustive on purpose.
    pub fn kind(&self) -> &'static str {
        match self {
            SolveError::NoScenarios => "no-scenarios",
            SolveError::DuplicateScenario(_) => "duplicate-scenario",
            SolveError::InvalidDerate { .. } => "invalid-derate",
            SolveError::InvalidSlewLimit { .. } => "invalid-slew-limit",
            SolveError::Unsupported { .. } => "unsupported",
            SolveError::Cost(_) => "cost",
            SolveError::Polarity(_) => "polarity",
            SolveError::Verify { .. } => "verify",
            SolveError::ScenarioParse { .. } => "scenario-parse",
            SolveError::UnknownModel(_) => "unknown-model",
            SolveError::Edit(_) => "edit",
            SolveError::NoSamples => "no-samples",
            SolveError::InvalidQuantile { .. } => "invalid-quantile",
            SolveError::VariationParse { .. } => "variation-parse",
            SolveError::InvalidVariation(_) => "invalid-variation",
            SolveError::InvalidSkewBound { .. } => "invalid-skew-bound",
        }
    }

    /// The documented CLI exit code of this error — one distinct code per
    /// variant, in the 10–20 range so they can never collide with the
    /// general codes (0 = success, 2 = usage, 3 = I/O). The full mapping
    /// is printed by `fastbuf --help`.
    pub fn exit_code(&self) -> u8 {
        match self {
            SolveError::NoScenarios => 10,
            SolveError::DuplicateScenario(_) => 11,
            SolveError::InvalidDerate { .. } => 12,
            SolveError::InvalidSlewLimit { .. } => 13,
            SolveError::Unsupported { .. } => 14,
            SolveError::Cost(_) => 15,
            SolveError::Polarity(_) => 16,
            SolveError::Verify { .. } => 17,
            SolveError::ScenarioParse { .. } => 18,
            SolveError::UnknownModel(_) => 19,
            SolveError::Edit(_) => 20,
            SolveError::NoSamples => 21,
            SolveError::InvalidQuantile { .. } => 22,
            SolveError::VariationParse { .. } => 23,
            SolveError::InvalidVariation(_) => 24,
            SolveError::InvalidSkewBound { .. } => 25,
        }
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NoScenarios => {
                write!(f, "the request has an empty scenario list")
            }
            SolveError::DuplicateScenario(name) => {
                write!(f, "duplicate scenario name `{name}`")
            }
            SolveError::InvalidDerate { scenario, derate } => {
                write!(
                    f,
                    "scenario `{scenario}`: RAT derate {derate} must be finite and positive"
                )
            }
            SolveError::InvalidSlewLimit { scenario, limit_ps } => {
                write!(
                    f,
                    "scenario `{scenario}`: slew limit {limit_ps} ps must be positive"
                )
            }
            SolveError::Unsupported { scenario, reason } => {
                write!(f, "scenario `{scenario}`: {reason}")
            }
            SolveError::Cost(e) => write!(f, "cost frontier: {e}"),
            SolveError::Polarity(e) => write!(f, "polarity: {e}"),
            SolveError::Verify { scenario, error } => {
                write!(f, "scenario `{scenario}` failed verification: {error}")
            }
            SolveError::ScenarioParse { line, message } => {
                write!(f, "scenario file line {line}: {message}")
            }
            SolveError::UnknownModel(name) => {
                write!(
                    f,
                    "unknown delay model `{name}` (expected elmore or scaled-elmore)"
                )
            }
            SolveError::Edit(e) => write!(f, "eco: {e}"),
            SolveError::NoSamples => {
                write!(f, "a yield-target request needs at least one sample")
            }
            SolveError::InvalidQuantile { quantile } => {
                write!(f, "quantile {quantile} must be finite and within [0, 1]")
            }
            SolveError::VariationParse { line, message } => {
                write!(f, "variation file line {line}: {message}")
            }
            SolveError::InvalidVariation(reason) => {
                write!(f, "invalid variation spec: {reason}")
            }
            SolveError::InvalidSkewBound { skew_ps } => {
                write!(f, "skew bound {skew_ps} ps must be finite and non-negative")
            }
        }
    }
}

impl Error for SolveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SolveError::Cost(e) => Some(e),
            SolveError::Polarity(e) => Some(e),
            SolveError::Verify { error, .. } => Some(error),
            SolveError::Edit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CostError> for SolveError {
    fn from(e: CostError) -> Self {
        SolveError::Cost(e)
    }
}

impl From<PolarityError> for SolveError {
    fn from(e: PolarityError) -> Self {
        SolveError::Polarity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SolveError::DuplicateScenario("fast".into());
        assert!(e.to_string().contains("fast"));
        assert!(e.source().is_none());

        let e = SolveError::Cost(CostError::NonIntegerCost {
            buffer: "B1".into(),
        });
        assert!(e.to_string().contains("B1"));
        assert!(e.source().is_some());

        let e = SolveError::Verify {
            scenario: "slow".into(),
            error: VerifyError::NotTracked,
        };
        assert!(e.to_string().contains("slow"));
        assert!(e.source().is_some());

        let e = SolveError::Unsupported {
            scenario: "s".into(),
            reason: "cost frontier is Elmore-only".into(),
        };
        assert!(e.to_string().contains("Elmore-only"));

        let e = SolveError::ScenarioParse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    /// Every variant must map to a distinct exit code and a distinct
    /// kind — the wire codes and the CLI exit codes both key off this.
    #[test]
    fn kinds_and_exit_codes_are_distinct() {
        let variants = [
            SolveError::NoScenarios,
            SolveError::DuplicateScenario("a".into()),
            SolveError::InvalidDerate {
                scenario: "a".into(),
                derate: 0.0,
            },
            SolveError::InvalidSlewLimit {
                scenario: "a".into(),
                limit_ps: -1.0,
            },
            SolveError::Unsupported {
                scenario: "a".into(),
                reason: "r".into(),
            },
            SolveError::Cost(CostError::NonIntegerCost { buffer: "b".into() }),
            SolveError::Polarity(PolarityError::Infeasible),
            SolveError::Verify {
                scenario: "a".into(),
                error: VerifyError::NotTracked,
            },
            SolveError::ScenarioParse {
                line: 1,
                message: "m".into(),
            },
            SolveError::UnknownModel("m".into()),
            SolveError::Edit(fastbuf_incremental::EcoError::Tree(
                fastbuf_rctree::TreeError::NoSource,
            )),
            SolveError::NoSamples,
            SolveError::InvalidQuantile { quantile: 1.5 },
            SolveError::VariationParse {
                line: 2,
                message: "m".into(),
            },
            SolveError::InvalidVariation("r".into()),
            SolveError::InvalidSkewBound { skew_ps: -1.0 },
        ];
        let mut kinds: Vec<&str> = variants.iter().map(SolveError::kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), variants.len(), "kinds collide");

        let mut codes: Vec<u8> = variants.iter().map(SolveError::exit_code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), variants.len(), "exit codes collide");
        // Never collide with success (0), usage (2), or I/O (3).
        assert!(codes.iter().all(|&c| c >= 10));
    }

    #[test]
    fn conversions() {
        let e: SolveError = PolarityError::Infeasible.into();
        assert!(matches!(e, SolveError::Polarity(_)));
        let e: SolveError = CostError::NonIntegerCost { buffer: "x".into() }.into();
        assert!(matches!(e, SolveError::Cost(_)));
    }
}
