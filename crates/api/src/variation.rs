//! Monte-Carlo yield solving ([`Objective::YieldTarget`]).
//!
//! A yield request expands a [`VariationSpec`] into `N` deterministic
//! sampled scenarios and solves every one. The solves route through **one
//! [`IncrementalSolver`] (and therefore one `SubtreeCache`) per worker**:
//! every sample of a family perturbs the same locality-bounded node pool
//! with *absolute* values, so applying sample `k`'s script on top of any
//! previously solved sample reproduces exactly the sample-`k` tree and
//! dirties only the pool's root paths. The cache invariant (cached solve ≡
//! bit-identical scratch solve of the same tree) then makes every sampled
//! result independent of which worker solved it and in what order — which
//! is what lets the sample fan-out scale without losing reproducibility.
//!
//! The distribution summary is folded in **sample-index order** regardless
//! of completion order ([`summarize_samples`] sorts first): float addition
//! does not commute, and a completion-order fold would make the reported
//! mean depend on thread scheduling.

use std::time::{Duration, Instant};

use fastbuf_buflib::units::Seconds;
use fastbuf_core::SolverOptions;
use fastbuf_incremental::IncrementalSolver;
use fastbuf_netgen::VariationSpec;
use fastbuf_rctree::RoutingTree;

use crate::error::SolveError;
use crate::scenario::Scenario;
use crate::session::Session;

/// One sampled scenario's solve result.
#[derive(Clone, Debug, PartialEq)]
pub struct SampleResult {
    /// The sample index `k` in `0..samples` (also the PRNG stream id:
    /// sample `k` is the same scenario at every worker count).
    pub index: usize,
    /// Source slack of the sampled tree.
    pub slack: Seconds,
    /// Whether the returned solution met the scenario's slew limit.
    pub slew_ok: bool,
    /// Subtrees recomputed by this sample's solve.
    pub nodes_recomputed: u64,
    /// Subtrees reused from the worker's warm cache.
    pub nodes_reused: u64,
}

/// The slack distribution over all samples, folded in fixed order.
#[derive(Clone, Debug, PartialEq)]
pub struct VariationSummary {
    /// Number of samples solved.
    pub samples: usize,
    /// Worst sampled slack.
    pub min_slack: Seconds,
    /// Best sampled slack.
    pub max_slack: Seconds,
    /// Mean sampled slack (folded in sample-index order).
    pub mean_slack: Seconds,
    /// The requested quantile `q` in `[0, 1]`.
    pub quantile: f64,
    /// The `q`-quantile of the slack distribution (nearest-rank on the
    /// ascending order: the slack at least `ceil(q·N)` samples stay at or
    /// below). `q = 0` is the minimum, `q = 1` the maximum.
    pub quantile_slack: Seconds,
    /// Fraction of samples that close timing: slack ≥ 0 **and** the slew
    /// limit (if any) was met.
    pub yield_fraction: f64,
    /// Total subtrees recomputed across all samples.
    pub nodes_recomputed: u64,
    /// Total subtrees reused from warm caches across all samples.
    pub nodes_reused: u64,
}

/// The payload of one scenario of a yield-target request: every sample's
/// result (in sample index order) plus the fixed-order summary.
#[derive(Clone, Debug, PartialEq)]
pub struct VariationOutcome {
    /// The variation family that generated the samples.
    pub spec: VariationSpec,
    /// Per-sample results, sorted by sample index.
    pub samples: Vec<SampleResult>,
    /// The distribution summary.
    pub summary: VariationSummary,
    /// Wall-clock time of the whole sample sweep.
    pub elapsed: Duration,
}

/// Parses a variation file through [`fastbuf_netgen::parse_variation`],
/// lifting the line-numbered message into the typed
/// [`SolveError::VariationParse`].
///
/// # Errors
///
/// [`SolveError::VariationParse`] with the 1-based line of the first
/// problem.
pub fn parse_variation_spec(text: &str) -> Result<VariationSpec, SolveError> {
    fastbuf_netgen::parse_variation(text).map_err(|msg| {
        // netgen formats every error as `line N: <detail>`; recover the
        // structured pair for the typed surface.
        let (line, message) = msg
            .strip_prefix("line ")
            .and_then(|rest| rest.split_once(": "))
            .and_then(|(n, detail)| Some((n.parse().ok()?, detail.to_owned())))
            .unwrap_or((0, msg.clone()));
        SolveError::VariationParse { line, message }
    })
}

/// Folds per-sample results into a [`VariationSummary`] with a fixed
/// reduction order: samples are sorted by index before any float
/// accumulation, so the summary is bit-identical no matter what order the
/// workers delivered results in. (Float addition does not commute — a
/// completion-order mean would differ in the low bits run to run.)
///
/// # Panics
///
/// Panics on an empty slice or an out-of-range quantile; request
/// validation rejects both before any solve starts.
pub fn summarize_samples(samples: &[SampleResult], quantile: f64) -> VariationSummary {
    assert!(!samples.is_empty(), "summary of zero samples");
    assert!(
        (0.0..=1.0).contains(&quantile),
        "quantile {quantile} outside [0, 1]"
    );
    let mut ordered: Vec<&SampleResult> = samples.iter().collect();
    ordered.sort_by_key(|s| s.index);

    let mut sum = 0.0;
    let mut closed = 0usize;
    let (mut recomputed, mut reused) = (0u64, 0u64);
    for s in &ordered {
        sum += s.slack.value();
        if s.slack.value() >= 0.0 && s.slew_ok {
            closed += 1;
        }
        recomputed += s.nodes_recomputed;
        reused += s.nodes_reused;
    }

    let mut slacks: Vec<f64> = ordered.iter().map(|s| s.slack.value()).collect();
    slacks.sort_by(f64::total_cmp);
    let n = slacks.len();
    // Nearest-rank: the smallest slack with at least ceil(q·N) samples at
    // or below it; q = 0 degenerates to the minimum.
    let rank = ((quantile * n as f64).ceil() as usize).clamp(1, n);
    VariationSummary {
        samples: n,
        min_slack: Seconds::new(slacks[0]),
        max_slack: Seconds::new(slacks[n - 1]),
        mean_slack: Seconds::new(sum / n as f64),
        quantile,
        quantile_slack: Seconds::new(slacks[rank - 1]),
        yield_fraction: closed as f64 / n as f64,
        nodes_recomputed: recomputed,
        nodes_reused: reused,
    }
}

/// Validates the yield-target knobs shared by every entry point.
pub(crate) fn validate_yield(
    spec: &VariationSpec,
    samples: usize,
    quantile: f64,
) -> Result<(), SolveError> {
    if samples == 0 {
        return Err(SolveError::NoSamples);
    }
    // Nearest-rank quantiles are defined on (0, 1]: q = 0 names no rank.
    if !quantile.is_finite() || quantile <= 0.0 || quantile > 1.0 {
        return Err(SolveError::InvalidQuantile { quantile });
    }
    if !spec.is_valid() {
        return Err(SolveError::InvalidVariation(format!(
            "out-of-domain variation spec: {spec:?}"
        )));
    }
    Ok(())
}

/// Solves `samples` sampled scenarios of `spec` over `tree` (already
/// derated for `scenario`), fanning sample indices across `workers`
/// threads. Each worker owns one [`IncrementalSolver`] — one warm
/// `SubtreeCache` per sample family — and results land in index-addressed
/// slots, so the outcome is identical for every worker count.
pub(crate) fn solve_variation(
    session: &Session,
    tree: &RoutingTree,
    scenario: &Scenario,
    spec: &VariationSpec,
    samples: usize,
    quantile: f64,
    workers: usize,
) -> Result<VariationOutcome, SolveError> {
    validate_yield(spec, samples, quantile)?;
    let start = Instant::now();

    let mut options = SolverOptions::default();
    options.algorithm = scenario.algorithm.unwrap_or_default();
    options.delay_model = scenario
        .delay_model
        .clone()
        .unwrap_or_else(|| std::sync::Arc::clone(session.delay_model()));
    options.slew_limit = scenario.slew_limit;
    // Yield sweeps report slack statistics, not placements.
    options.track_predecessors = false;

    // Every sample's script is expanded up front from the pristine base
    // tree (absolute values); workers only index into the list.
    let scripts = spec.expand(tree, samples);
    let workers = workers.clamp(1, samples);

    let run_sample =
        |solver: &mut IncrementalSolver, k: usize| -> Result<SampleResult, SolveError> {
            solver.apply_all(&scripts[k]).map_err(SolveError::Edit)?;
            let solution = solver.solve();
            Ok(SampleResult {
                index: k,
                slack: solution.slack,
                slew_ok: solution.slew_ok,
                nodes_recomputed: solution.stats.nodes_recomputed,
                nodes_reused: solution.stats.nodes_reused,
            })
        };
    let new_solver = || {
        IncrementalSolver::new(tree.clone(), session.library().clone())
            .with_options(options.clone())
    };

    let results: Vec<SampleResult> = if workers == 1 {
        let mut solver = new_solver();
        (0..samples)
            .map(|k| run_sample(&mut solver, k))
            .collect::<Result<_, _>>()?
    } else {
        let (tx, rx) = crossbeam::channel::unbounded::<usize>();
        for k in 0..samples {
            tx.send(k).expect("receiver is alive");
        }
        drop(tx);
        let mut slots: Vec<Option<Result<SampleResult, SolveError>>> = Vec::new();
        slots.resize_with(samples, || None);
        let slots = std::sync::Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = rx.clone();
                let slots = &slots;
                let run_sample = &run_sample;
                scope.spawn(move || {
                    let mut solver = new_solver();
                    while let Ok(k) = rx.recv() {
                        let result = run_sample(&mut solver, k);
                        slots.lock().expect("no panics hold the lock")[k] = Some(result);
                    }
                });
            }
        });
        slots
            .into_inner()
            .expect("workers are joined")
            .drain(..)
            .map(|slot| slot.expect("every queued sample was solved"))
            .collect::<Result<_, _>>()?
    };

    let summary = summarize_samples(&results, quantile);
    Ok(VariationOutcome {
        spec: spec.clone(),
        samples: results,
        summary,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(index: usize, slack_ps: f64, slew_ok: bool) -> SampleResult {
        SampleResult {
            index,
            slack: Seconds::from_pico(slack_ps),
            slew_ok,
            nodes_recomputed: 3,
            nodes_reused: 7,
        }
    }

    /// The regression test satellite #2 asks for: a fold in delivery order
    /// would produce different mean bits for a permuted delivery, and the
    /// summary must not.
    #[test]
    fn summary_is_independent_of_delivery_order() {
        // Magnitudes chosen so the sum depends on order: in index order
        // the 1.0s are absorbed by 1e16 (ulp 2 at that magnitude), in the
        // shuffled order they add first and survive.
        let values = [1.0e16, 1.0, -1.0e16, 1.0];
        let ordered: Vec<SampleResult> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| sample(i, v, true))
            .collect();
        let shuffled: Vec<SampleResult> = [1usize, 3, 0, 2]
            .iter()
            .map(|&i| ordered[i].clone())
            .collect();

        // A naive delivery-order fold really is order-dependent for these
        // inputs — the hazard the fixed order guards against.
        let fold = |xs: &[SampleResult]| xs.iter().fold(0.0f64, |acc, s| acc + s.slack.value());
        assert_ne!(
            fold(&ordered).to_bits(),
            fold(&shuffled).to_bits(),
            "chosen values must expose non-commutative addition"
        );

        let a = summarize_samples(&ordered, 0.5);
        let b = summarize_samples(&shuffled, 0.5);
        assert_eq!(
            a.mean_slack.value().to_bits(),
            b.mean_slack.value().to_bits()
        );
        assert_eq!(a, b);
    }

    #[test]
    fn quantiles_yield_and_extremes() {
        let samples: Vec<SampleResult> = [50.0, -10.0, 30.0, 0.0, -40.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| sample(i, v, true))
            .collect();
        let s = summarize_samples(&samples, 0.5);
        assert_eq!(s.min_slack, Seconds::from_pico(-40.0));
        assert_eq!(s.max_slack, Seconds::from_pico(50.0));
        // Ascending: -40 -10 0 30 50; ceil(0.5*5)=3rd → 0.
        assert_eq!(s.quantile_slack, Seconds::from_pico(0.0));
        // slack >= 0: 0, 30, 50.
        assert!((s.yield_fraction - 0.6).abs() < 1e-12);
        assert_eq!(s.nodes_recomputed, 15);
        assert_eq!(s.nodes_reused, 35);

        // q=0 is the minimum, q=1 the maximum.
        assert_eq!(
            summarize_samples(&samples, 0.0).quantile_slack,
            Seconds::from_pico(-40.0)
        );
        assert_eq!(
            summarize_samples(&samples, 1.0).quantile_slack,
            Seconds::from_pico(50.0)
        );

        // A slew-infeasible sample never counts toward yield even with
        // positive slack.
        let mut infeasible = samples.clone();
        for s in &mut infeasible {
            s.slew_ok = false;
        }
        assert_eq!(summarize_samples(&infeasible, 0.5).yield_fraction, 0.0);
    }

    /// Nearest-rank edge cases: `ceil(q·n)` must never index past the end
    /// (`q = 1.0` names exactly the maximum, not `slacks[n]`), and a
    /// single-sample sweep answers every quantile with that one sample.
    #[test]
    fn nearest_rank_edges_are_in_bounds() {
        let one = vec![sample(0, 17.0, true)];
        for q in [0.0, 1e-12, 0.5, 1.0 - f64::EPSILON, 1.0] {
            let s = summarize_samples(&one, q);
            assert_eq!(s.quantile_slack, Seconds::from_pico(17.0), "q = {q}");
            assert_eq!(s.min_slack, s.max_slack);
        }
        // q = 1.0: ceil(1.0 * n) = n exactly — the last (maximum) element.
        let many: Vec<SampleResult> = (0..7).map(|i| sample(i, i as f64, true)).collect();
        assert_eq!(
            summarize_samples(&many, 1.0).quantile_slack,
            Seconds::from_pico(6.0)
        );
        // Just below 1.0 still rounds up to the last rank for small n.
        assert_eq!(
            summarize_samples(&many, 1.0 - f64::EPSILON).quantile_slack,
            Seconds::from_pico(6.0)
        );
    }

    #[test]
    fn parse_wrapper_produces_typed_line_errors() {
        let err = parse_variation_spec("# ok\nwire-r normal 1.0 NaN\n").unwrap_err();
        match err {
            SolveError::VariationParse { line, ref message } => {
                assert_eq!(line, 2);
                assert!(message.contains("finite"), "{message}");
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_variation_spec("wire-r normal 1 0.1\n").is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_requests() {
        let spec = VariationSpec::default();
        assert!(matches!(
            validate_yield(&spec, 0, 0.5),
            Err(SolveError::NoSamples)
        ));
        for q in [-0.1, 1.1, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                validate_yield(&spec, 4, q),
                Err(SolveError::InvalidQuantile { .. })
            ));
        }
        let bad = VariationSpec {
            locality: 0.0,
            ..VariationSpec::default()
        };
        assert!(matches!(
            validate_yield(&bad, 4, 0.5),
            Err(SolveError::InvalidVariation(_))
        ));
        assert!(validate_yield(&spec, 4, 0.5).is_ok());
    }
}
